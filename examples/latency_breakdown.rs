//! A Fig. 6-style latency breakdown at the terminal: where do the
//! microseconds of a 4 KiB I/O go under each stack generation?
//!
//! Run with: `cargo run --release --example latency_breakdown`

use luna_solar::sa::{IoKind, IoRequest};
use luna_solar::sim::{SimDuration, SimTime};
use luna_solar::stack::{Breakdown, Testbed, TestbedConfig, Variant};
use rand::Rng;

fn main() {
    println!("4KB write latency breakdown (median), light load, per stack generation\n");
    let variants = [
        Variant::Kernel,
        Variant::Luna,
        Variant::Rdma,
        Variant::SolarStar,
        Variant::Solar,
    ];
    println!(
        "{:<8} {:>8} {:>8} {:>8} {:>8} {:>9}   bar (1 char ≈ 4us)",
        "stack", "SA", "FN", "BN", "SSD", "total"
    );
    println!("{}", "-".repeat(88));
    for variant in variants {
        let mut cfg = TestbedConfig::small(variant, 2, 4);
        cfg.seed = 7;
        let mut tb = Testbed::new(cfg);
        let mut rng = luna_solar::sim::rng::stream(7, "bkdn");
        let mut t = SimTime::from_millis(1);
        for i in 0..800u64 {
            tb.schedule_io(
                t,
                (i % 2) as usize,
                IoRequest {
                    vd_id: i % 2,
                    kind: IoKind::Write,
                    offset: rng.gen_range(0..4000u64) * 4096,
                    len: 4096,
                },
            );
            t += SimDuration::from_micros(rng.gen_range(150..300));
        }
        tb.run_until(t + SimDuration::from_secs(1));
        let b = Breakdown::collect(tb.traces(), IoKind::Write, 4096);
        let (sa, fn_, bn, ssd, total) = b.at(0.5);
        let bar = |v: f64, c: char| c.to_string().repeat((v / 4.0).round() as usize);
        println!(
            "{:<8} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>9.1}   {}{}{}{}",
            variant.label(),
            sa,
            fn_,
            bn,
            ssd,
            total,
            bar(sa, 'S'),
            bar(fn_, 'F'),
            bar(bn, 'b'),
            bar(ssd, 'D'),
        );
    }
    println!("\nS = storage agent, F = frontend network, b = backend network, D = chunk/SSD");
    println!("Kernel: the network dominates. Luna: the SA becomes the bottleneck (§3.3).");
    println!("Solar: the SA collapses into the FPGA pipeline and FN shrinks again (§4.7).");
}
