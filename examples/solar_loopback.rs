//! The SOLAR state machines on **real UDP sockets**: a block server and a
//! compute-side initiator exchanging genuine one-block-one-packet
//! datagrams over loopback, with real payloads, real ChaCha20 encryption
//! and the real CRC aggregation check.
//!
//! This demonstrates that the sans-io engines in `ebs-solar` are not
//! simulator-only: the same `SolarClient`/`SolarResponder` that drive the
//! discrete-event experiments here push actual packets through the
//! kernel's UDP stack.
//!
//! Run with: `cargo run --release --example solar_loopback`

use std::collections::HashMap;
use std::net::UdpSocket;
use std::time::{Duration, Instant};

use bytes::{Bytes, BytesMut};
use luna_solar::crc::{block_crc_raw, SegmentChecker, SegmentVerdict};
use luna_solar::crypto::SecEngine;
use luna_solar::sim::SimTime;
use luna_solar::solar::{
    InPacket, OutPacket, ReadBlock, ServerAction, SolarClient, SolarConfig, SolarEvent,
    SolarResponder, WriteBlock,
};
use luna_solar::wire::EbsHeader;

const BLOCK: usize = 4096;

fn encode(pkt: &OutPacket) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(EbsHeader::LEN + pkt.payload.len());
    pkt.hdr.encode(&mut buf);
    buf.extend_from_slice(&pkt.payload);
    buf.to_vec()
}

fn decode(datagram: &[u8]) -> Option<InPacket> {
    let mut cursor = datagram;
    let hdr = EbsHeader::decode(&mut cursor).ok()?;
    Some(InPacket {
        hdr,
        payload: Bytes::copy_from_slice(cursor),
        int: None,
    })
}

/// The block server: receives one-block packets, stores them, answers
/// per packet. Runs until the main thread drops the socket pair.
fn server(socket: UdpSocket) {
    let mut responder = SolarResponder::new();
    let mut disk: HashMap<u64, (Vec<u8>, u32)> = HashMap::new();
    let mut buf = [0u8; 16 * 1024];
    socket
        .set_read_timeout(Some(Duration::from_millis(200)))
        .expect("timeout");
    loop {
        let (len, peer) = match socket.recv_from(&mut buf) {
            Ok(x) => x,
            Err(_) => return, // idle timeout: done
        };
        let Some(pkt) = decode(&buf[..len]) else {
            continue;
        };
        match responder.on_packet(pkt) {
            ServerAction::StoreBlock { hdr, data, int } => {
                // Verify the block's CRC before persisting (the storage
                // side's own integrity gate).
                assert_eq!(
                    block_crc_raw(&data, BLOCK),
                    hdr.payload_crc,
                    "wire corruption"
                );
                disk.insert(hdr.block_addr, (data.to_vec(), hdr.payload_crc));
                let (ack, _) = responder.write_ack(&hdr, int);
                socket.send_to(&encode(&ack), peer).expect("send ack");
            }
            ServerAction::FetchBlock { hdr } => {
                let (data, crc) = disk
                    .get(&hdr.block_addr)
                    .cloned()
                    .unwrap_or((vec![0; BLOCK], block_crc_raw(&vec![0; BLOCK], BLOCK)));
                let resp = responder.read_resp(&hdr, Bytes::from(data), crc);
                socket.send_to(&encode(&resp), peer).expect("send resp");
            }
            ServerAction::Reply(p) => {
                socket.send_to(&encode(&p), peer).expect("send probe ack");
            }
            ServerAction::None => {}
        }
        // Receiver-side loss reports (per-path arrival gaps).
        while let Some(n) = responder.poll_gap_nack() {
            socket.send_to(&encode(&n), peer).expect("send gap nack");
        }
    }
}

fn main() {
    let server_sock = UdpSocket::bind("127.0.0.1:0").expect("bind server");
    let server_addr = server_sock.local_addr().unwrap();
    let handle = std::thread::spawn(move || server(server_sock));

    let client_sock = UdpSocket::bind("127.0.0.1:0").expect("bind client");
    client_sock.connect(server_addr).expect("connect");
    client_sock
        .set_read_timeout(Some(Duration::from_micros(300)))
        .expect("timeout");

    let mut client = SolarClient::new(SolarConfig::default());
    let sec = SecEngine::new([0x42; 32]);
    let epoch = Instant::now();
    let now = || SimTime::from_nanos(epoch.elapsed().as_nanos() as u64);

    // --- WRITE: 32 encrypted blocks, one packet each -------------------
    let n_blocks = 32u64;
    let vd = 1u64;
    let mut plain: Vec<Vec<u8>> = Vec::new();
    let blocks: Vec<WriteBlock> = (0..n_blocks)
        .map(|i| {
            let mut data = vec![(i * 7 + 13) as u8; BLOCK];
            plain.push(data.clone());
            // SEC stage: encrypt; CRC stage: checksum the ciphertext as
            // shipped (the FPGA order is CRC-then-SEC; over loopback we
            // checksum what's on the wire so the server can verify).
            sec.encrypt_block(vd, i, &mut data);
            let crc = block_crc_raw(&data, BLOCK);
            WriteBlock {
                block_addr: i,
                payload: Bytes::from(data),
                crc,
            }
        })
        .collect();
    client.submit_write(now(), 1, vd, 100, blocks);

    let mut rx = [0u8; 16 * 1024];
    let t0 = Instant::now();
    let mut write_done = false;
    while !write_done {
        while let Some(out) = client.poll_transmit(now()) {
            client_sock.send(&encode(&out)).expect("send");
        }
        if let Ok(len) = client_sock.recv(&mut rx) {
            if let Some(pkt) = decode(&rx[..len]) {
                client.on_packet(now(), pkt);
            }
        }
        if let Some(t) = client.poll_timer() {
            if t <= now() {
                client.on_timer(now());
            }
        }
        while let Some(ev) = client.poll_event() {
            if matches!(ev, SolarEvent::RpcCompleted { rpc_id: 1, .. }) {
                write_done = true;
            }
        }
        assert!(t0.elapsed() < Duration::from_secs(10), "write stalled");
    }
    println!(
        "WRITE: {n_blocks} x 4KiB blocks over real UDP in {:?} ({} pkts, {} retransmits)",
        t0.elapsed(),
        client.stats().pkts_sent,
        client.stats().retransmits
    );

    // --- READ them back, verify decryption + CRC aggregation ------------
    let reads: Vec<ReadBlock> = (0..n_blocks)
        .map(|i| ReadBlock {
            block_addr: i,
            guest_addr: i * BLOCK as u64,
        })
        .collect();
    client.submit_read(now(), 2, vd, 100, reads);
    let mut got: HashMap<u64, (Vec<u8>, u32)> = HashMap::new();
    let t0 = Instant::now();
    let mut read_done = false;
    while !read_done {
        while let Some(out) = client.poll_transmit(now()) {
            client_sock.send(&encode(&out)).expect("send");
        }
        if let Ok(len) = client_sock.recv(&mut rx) {
            if let Some(pkt) = decode(&rx[..len]) {
                client.on_packet(now(), pkt);
            }
        }
        if let Some(t) = client.poll_timer() {
            if t <= now() {
                client.on_timer(now());
            }
        }
        while let Some(ev) = client.poll_event() {
            match ev {
                SolarEvent::BlockReceived {
                    block_addr,
                    data,
                    crc,
                    ..
                } => {
                    got.insert(block_addr, (data.to_vec(), crc));
                }
                SolarEvent::RpcCompleted { rpc_id: 2, .. } => read_done = true,
                _ => {}
            }
        }
        assert!(t0.elapsed() < Duration::from_secs(10), "read stalled");
    }

    // Software CRC aggregation over the whole segment (§4.5): one XOR
    // accumulation + one CRC instead of 32 CRCs.
    let mut checker = SegmentChecker::new(BLOCK);
    for i in 0..n_blocks {
        let (data, crc) = &got[&i];
        checker.add_block(data, *crc);
    }
    assert_eq!(checker.verify_and_reset(), SegmentVerdict::Ok);

    // Decrypt and compare with the original plaintext.
    for i in 0..n_blocks {
        let (mut data, _) = got[&i].clone();
        sec.decrypt_block(vd, i, &mut data);
        assert_eq!(data, plain[i as usize], "block {i} roundtrip");
    }
    println!(
        "READ:  {n_blocks} blocks verified (segment CRC aggregate OK, ChaCha20 roundtrip OK) in {:?}",
        t0.elapsed()
    );
    drop(client_sock);
    let _ = handle.join();
    println!("\nThe same sans-io state machines drive both this socket loop and the simulator.");
}
