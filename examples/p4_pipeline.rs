//! §4.6's claim, executable: because SOLAR makes each packet one block,
//! the SA data path is a match-action pipeline — expressible in P4 and
//! portable to commodity DPU ASICs. This example builds the write and
//! read pipelines from the real table/stage implementations, pushes a
//! block through, and prints the equivalent P4-style control blocks.
//!
//! Run with: `cargo run --release --example p4_pipeline`

use bytes::Bytes;
use luna_solar::crypto::SecEngine;
use luna_solar::dpu::{AddrStage, BlockStage, CrcStage, PacketCtx, Pipeline, QosStage, SecStage};
use luna_solar::sa::{QosSpec, QosTable, SegmentTable};
use luna_solar::sim::SimTime;
use luna_solar::wire::{EbsHeader, EbsOp};

fn main() {
    // Control plane: provision a disk and its service level.
    let mut seg = SegmentTable::new(512);
    seg.provision(7, 64 * 512, |s| (s % 4) as u32);
    let mut qos = QosTable::new();
    qos.set_spec(7, QosSpec::unlimited());

    // The WRITE path of Fig. 12: QoS → Block → CRC → SEC → PktGen.
    let mut write_path = Pipeline::new(vec![
        Box::new(QosStage::new(qos)),
        Box::new(BlockStage::new(seg)),
        Box::new(CrcStage::new(4096, None)),
        Box::new(SecStage::encryptor(SecEngine::new([9; 32]))),
    ]);

    // The READ-response path of Fig. 13: Addr → (CRC check) → DMA.
    let mut addr = AddrStage::new();
    addr.insert(11, 0, 0xFEED_0000);
    let mut read_path = Pipeline::new(vec![Box::new(addr)]);

    // Push one 4 KiB write block through.
    let hdr = EbsHeader {
        version: EbsHeader::VERSION,
        op: EbsOp::WriteBlock,
        flags: 0,
        path_id: 2,
        vd_id: 7,
        rpc_id: 11,
        pkt_id: 0,
        total_pkts: 1,
        block_addr: 1234,
        len: 4096,
        payload_crc: 0,
        path_seq: 0,
        segment_id: 0,
    };
    let mut ctx = PacketCtx::new(hdr, Bytes::from(vec![0xA5u8; 4096]));
    let latency = write_path
        .process(SimTime::ZERO, &mut ctx)
        .expect("forwarded");
    println!("one 4KiB WRITE block through the hardware write path:");
    println!("  pipeline latency : {latency}");
    println!("  segment resolved : {}", ctx.hdr.segment_id);
    println!("  payload CRC      : {:#010x}", ctx.hdr.payload_crc);
    println!(
        "  encrypted        : {}\n",
        ctx.hdr.flags & luna_solar::wire::FLAG_ENCRYPTED != 0
    );

    let mut resp = PacketCtx::new(
        EbsHeader {
            op: EbsOp::ReadResp,
            ..hdr
        },
        Bytes::new(),
    );
    read_path.process(SimTime::ZERO, &mut resp).expect("hit");
    println!("one READ response through the Addr stage:");
    println!(
        "  DMA address      : {:#x}\n",
        resp.dma_addr.expect("addr entry")
    );

    println!("// ---- P4 rendering (what a commodity DPU would compile) ----\n");
    println!("{}", write_path.describe_p4("SolarWritePath"));
    println!("{}", read_path.describe_p4("SolarReadRespPath"));
}
