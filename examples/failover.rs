//! Failure recovery head-to-head: inject a silent ToR blackhole under
//! live traffic and watch LUNA's single-path connections hang while
//! SOLAR's multipath shifts traffic within milliseconds (§3.3 / §4.5 /
//! Table 2).
//!
//! Run with: `cargo run --release --example failover`

use luna_solar::net::{DeviceKind, FailureMode};
use luna_solar::sim::{SimDuration, SimTime};
use luna_solar::stack::{FioConfig, Testbed, TestbedConfig, Variant};

fn run(variant: Variant) -> (usize, usize, f64) {
    let n_compute = 6;
    let mut tb = Testbed::new(TestbedConfig::small(variant, n_compute, 5));
    for c in 0..n_compute {
        tb.attach_fio(
            SimTime::from_millis(1),
            c,
            FioConfig {
                depth: 2,
                bytes: 8192,
                read_fraction: 0.25,
            },
        );
    }
    // Silent blackhole on the first ToR at t = 0.5 s: one broken ECMP
    // bucket, invisible to routing.
    let tor = tb.fabric().topology().devices_of_kind(DeviceKind::Tor)[0];
    tb.schedule_failure(
        SimTime::from_millis(500),
        tor,
        FailureMode::Blackhole {
            fraction: 0.4,
            salt: 99,
        },
    );
    tb.run_until(SimTime::from_secs(5));
    let total = tb.traces().len();
    let hung = tb.hung_ios(SimDuration::from_secs(1));
    // Throughput after the failure (completions per second, fleet-wide).
    let done_after: usize = tb
        .traces()
        .iter()
        .filter(|t| t.completed.is_some_and(|c| c >= SimTime::from_millis(500)))
        .count();
    (total, hung, done_after as f64 / 4.5)
}

fn main() {
    println!("Injecting a silent 40% blackhole on a ToR at t=500ms under live fio load.\n");
    let mut solar_hung = 0;
    for variant in [Variant::Luna, Variant::Solar] {
        let (total, hung, rate) = run(variant);
        if variant == Variant::Solar {
            solar_hung = hung;
        }
        println!(
            "{:<6}  {total:>6} I/Os issued   {hung:>4} hung >=1s   {rate:>8.0} IO/s sustained after failure",
            variant.label()
        );
    }
    println!(
        "\nLUNA's flows that hash into the dead bucket stall until operators
intervene (the paper's production incidents took 42 minutes, §3.3);
SOLAR detects consecutive per-packet timeouts, declares the path down,
and reroutes onto healthy ECMP buckets — the I/O-hang count is zero."
    );
    // SOLAR failing to reroute would make the headline claim above a lie;
    // exit nonzero so CI catches the regression.
    if solar_hung > 0 {
        eprintln!(
            "\nerror: SOLAR left {solar_hung} I/Os hung >= 1s — multipath failover regressed"
        );
        std::process::exit(1);
    }
}
