//! The workload the paper's introduction motivates: a database flushing
//! LRU-evicted pages (16 KiB for MySQL, §3) and committing a 4 KiB redo
//! log, which is why EBS latency SLAs tightened when SSDs arrived.
//! Compares kernel TCP, LUNA and SOLAR on the same page-flush + log-commit
//! mix.
//!
//! Run with: `cargo run --release --example database_workload`

use luna_solar::sa::{IoKind, IoRequest};
use luna_solar::sim::{SimDuration, SimTime};
use luna_solar::stack::{Testbed, TestbedConfig, Variant};
use luna_solar::stats::Histogram;
use rand::Rng;

const PAGE: u32 = 16 * 1024; // MySQL page
const LOG: u32 = 4096; // redo log record

fn run(variant: Variant) -> (Histogram, Histogram) {
    let mut cfg = TestbedConfig::small(variant, 1, 4);
    cfg.seed = 42;
    let mut tb = Testbed::new(cfg);
    let mut rng = luna_solar::sim::rng::stream(42, "db");
    let mut t = SimTime::from_millis(1);
    // A commit every ~200µs: one log write; every 4th commit also flushes
    // a dirty page.
    for i in 0..3000u64 {
        tb.schedule_io(
            t,
            0,
            IoRequest {
                vd_id: 0,
                kind: IoKind::Write,
                offset: (i % 512) * LOG as u64,
                len: LOG,
            },
        );
        if i % 4 == 0 {
            let page_no = rng.gen_range(0..2000u64);
            tb.schedule_io(
                t + SimDuration::from_micros(20),
                0,
                IoRequest {
                    vd_id: 0,
                    kind: IoKind::Write,
                    offset: (8 << 20) | (page_no * PAGE as u64),
                    len: PAGE,
                },
            );
        }
        t += SimDuration::from_micros(rng.gen_range(150..260));
    }
    tb.run_until(t + SimDuration::from_secs(2));
    let mut log_lat = Histogram::new();
    let mut page_lat = Histogram::new();
    for tr in tb.traces() {
        if let Some(l) = tr.latency() {
            if tr.bytes == LOG {
                log_lat.record_ns(l.as_nanos());
            } else {
                page_lat.record_ns(l.as_nanos());
            }
        }
    }
    (log_lat, page_lat)
}

fn main() {
    println!("Database on EBS: 4K redo-log commits + 16K page flushes (all writes)\n");
    println!(
        "{:<8} {:>14} {:>14} {:>14} {:>14}",
        "stack", "log p50 (us)", "log p99 (us)", "page p50 (us)", "page p99 (us)"
    );
    println!("{}", "-".repeat(68));
    for variant in [Variant::Kernel, Variant::Luna, Variant::Solar] {
        let (log, page) = run(variant);
        println!(
            "{:<8} {:>14.1} {:>14.1} {:>14.1} {:>14.1}",
            variant.label(),
            log.median() as f64 / 1e3,
            log.p99() as f64 / 1e3,
            page.median() as f64 / 1e3,
            page.p99() as f64 / 1e3,
        );
    }
    println!(
        "\nEvery generation cuts commit latency: the transaction rate a single
connection can sustain is roughly 1/commit-latency, which is the story
behind ESSD's 100us-average SLA (§3)."
    );
}
