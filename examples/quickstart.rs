//! Quickstart: stand up a small EBS deployment on the SOLAR stack, issue
//! a few guest I/Os, and print the distributed-trace latency breakdown.
//!
//! Run with: `cargo run --release --example quickstart`

use luna_solar::sa::{IoKind, IoRequest};
use luna_solar::sim::{SimDuration, SimTime};
use luna_solar::stack::{Testbed, TestbedConfig, Variant};

fn main() {
    // 2 compute servers, 3 storage servers, SOLAR data path.
    let mut tb = Testbed::new(TestbedConfig::small(Variant::Solar, 2, 3));

    // A guest writes a 16 KiB database page, then reads it back, plus a
    // few 4 KiB journal writes.
    let mut t = SimTime::from_millis(1);
    tb.schedule_io(
        t,
        0,
        IoRequest {
            vd_id: 0,
            kind: IoKind::Write,
            offset: 0,
            len: 16384,
        },
    );
    t += SimDuration::from_millis(1);
    tb.schedule_io(
        t,
        0,
        IoRequest {
            vd_id: 0,
            kind: IoKind::Read,
            offset: 0,
            len: 16384,
        },
    );
    for i in 0..4u64 {
        t += SimDuration::from_micros(250);
        tb.schedule_io(
            t,
            1,
            IoRequest {
                vd_id: 1,
                kind: IoKind::Write,
                offset: 4096 * i,
                len: 4096,
            },
        );
    }
    tb.run_until(SimTime::from_secs(1));

    println!("compute  kind   size   latency      SA        FN        BN        SSD");
    println!("----------------------------------------------------------------------");
    for tr in tb.traces() {
        println!(
            "{:^7}  {:<5}  {:>5}  {:>9}  {:>8}  {:>8}  {:>8}  {:>8}",
            tr.compute,
            format!("{:?}", tr.kind),
            format!("{}K", tr.bytes / 1024),
            format!("{}", tr.latency().expect("completed")),
            format!("{}", tr.sa),
            format!("{}", tr.fn_),
            format!("{}", tr.bn),
            format!("{}", tr.ssd),
        );
    }
    let done = tb.traces().iter().filter(|t| t.completed.is_some()).count();
    println!("\n{done}/{} I/Os completed", tb.traces().len());

    // With the default `obs` feature on, the event journal can explain
    // where the slowest I/O spent its time, hop by hop.
    if let Some(explanation) = tb.explain_slowest_io() {
        println!("\n{}", explanation.render());
    }
}
