//! Offline vendored subset of the [`bytes`](https://crates.io/crates/bytes)
//! crate: just the API surface this workspace uses, with the same
//! semantics (reference-counted immutable [`Bytes`], growable
//! [`BytesMut`], and big-endian [`Buf`]/[`BufMut`] cursors).
//!
//! The container this repo builds in has no crates.io access, so the
//! handful of external dependencies are vendored as small, semantically
//! faithful local crates. Nothing here is performance-exotic: `Bytes` is
//! a window over either an `Arc<Vec<u8>>` (the common case, read with a
//! direct slice access) or an `Arc<dyn ByteStorage>` (caller-provided
//! storage such as pooled blocks, read through one virtual call), which
//! preserves the O(1) `clone` / `slice` / `split_to` contract the
//! simulator's zero-copy paths rely on.

#![forbid(unsafe_code)]

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Backing storage a [`Bytes`] handle can wrap.
///
/// The default backing is a plain `Vec<u8>`, but callers can provide their
/// own storage (e.g. a pooled block whose `Drop` recycles the buffer into a
/// free list). `Bytes` only ever reads through [`ByteStorage::as_slice`],
/// so the storage is free to carry whatever ownership or drop behaviour it
/// wants — the last `Bytes` clone dropping the `Arc` triggers it.
pub trait ByteStorage: Send + Sync {
    /// The stored bytes. Must return the same slice for the lifetime of
    /// the storage (views index into it).
    fn as_slice(&self) -> &[u8];
}

impl ByteStorage for Vec<u8> {
    fn as_slice(&self) -> &[u8] {
        self
    }
}

/// The backing of a [`Bytes`] handle.
///
/// The `Vec` case is kept separate from the general trait object so the
/// overwhelmingly common plain-vector reads compile to a direct slice
/// access — only pooled/custom storage pays a virtual call.
#[derive(Clone, Default)]
enum Repr {
    /// Empty: `Bytes::new()` performs no allocation.
    #[default]
    Empty,
    /// Plain vector storage (the `From<Vec<u8>>` path).
    Vec(Arc<Vec<u8>>),
    /// Caller-provided storage (pooled blocks, shared slabs).
    Shared(Arc<dyn ByteStorage>),
}

/// A cheaply cloneable, immutable, contiguous slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Repr,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer. Does not allocate.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wrap caller-provided shared storage (whole range). The storage's
    /// own `Drop` runs when the last view is dropped, which is how pooled
    /// buffers find their way back to their pool.
    pub fn from_shared(storage: Arc<dyn ByteStorage>) -> Self {
        let end = storage.as_slice().len();
        Bytes {
            data: Repr::Shared(storage),
            start: 0,
            end,
        }
    }

    /// A buffer borrowing a `'static` slice (copied here; the real crate
    /// points at it, but the observable behavior is identical).
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// Copy `s` into a new buffer.
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// Bytes in the current view.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    #[inline]
    fn as_slice(&self) -> &[u8] {
        match &self.data {
            Repr::Empty => &[],
            Repr::Vec(v) => &v[self.start..self.end],
            Repr::Shared(d) => &d.as_slice()[self.start..self.end],
        }
    }

    /// O(1) sub-view of the current view.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Split off and return the first `at` bytes, leaving the rest.
    ///
    /// # Panics
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: self.data.clone(),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Split off and return the bytes from `at` onward, keeping the head.
    ///
    /// # Panics
    /// Panics if `at > len`.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_off out of bounds");
        let tail = Bytes {
            data: self.data.clone(),
            start: self.start + at,
            end: self.end,
        };
        self.end = self.start + at;
        tail
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        if v.is_empty() {
            return Bytes::new();
        }
        let end = v.len();
        Bytes {
            data: Repr::Vec(Arc::new(v)),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from(s.to_vec())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from(s.as_bytes().to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for e in std::ascii::escape_default(b) {
                write!(f, "{}", e as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

/// A growable byte buffer with an efficient consumed-front window.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    /// Bytes logically consumed from the front (`split_to` / `advance`).
    start: usize,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes of capacity reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
            start: 0,
        }
    }

    /// Bytes in the current view.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// True if the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reserve capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Usable capacity beyond the consumed front.
    pub fn capacity(&self) -> usize {
        self.data.capacity() - self.start
    }

    /// Empty the view, keeping capacity.
    pub fn clear(&mut self) {
        self.data.clear();
        self.start = 0;
    }

    /// Append `other`.
    #[inline]
    pub fn extend_from_slice(&mut self, other: &[u8]) {
        self.data.extend_from_slice(other);
    }

    /// Resize the view to `new_len`, filling with `value` when growing.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.data.resize(self.start + new_len, value);
    }

    #[inline]
    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..]
    }

    /// Split off and return the first `at` bytes, leaving the rest.
    ///
    /// # Panics
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = self.data[self.start..self.start + at].to_vec();
        self.start += at;
        // Periodically reclaim the consumed prefix so a long-lived stream
        // decoder doesn't grow without bound.
        if self.start > 4096 && self.start * 2 > self.data.len() {
            self.data.drain(..self.start);
            self.start = 0;
        }
        BytesMut {
            data: head,
            start: 0,
        }
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        if self.start == 0 {
            Bytes::from(self.data)
        } else {
            Bytes::from(self.data[self.start..].to_vec())
        }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> Self {
        BytesMut {
            data: s.to_vec(),
            start: 0,
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::DerefMut for BytesMut {
    #[inline]
    fn deref_mut(&mut self) -> &mut [u8] {
        let start = self.start;
        &mut self.data[start..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        Bytes::from(self.as_slice().to_vec()).fmt(f)
    }
}

/// Read cursor over a byte source. All multi-byte getters are big-endian,
/// matching the real crate's defaults.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// The contiguous unread slice.
    fn chunk(&self) -> &[u8];
    /// Consume `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// True if any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copy `dst.len()` bytes out, advancing.
    ///
    /// # Panics
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Read a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Read a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

impl Buf for Bytes {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }
    #[inline]
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    #[inline]
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

impl Buf for BytesMut {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }
    #[inline]
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    #[inline]
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        *self = &self[cnt..];
    }
}

impl<T: Buf + ?Sized> Buf for &mut T {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }
    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }
    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt)
    }
}

/// Write cursor. All multi-byte putters are big-endian, matching the real
/// crate's defaults.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<T: BufMut + ?Sized> BufMut for &mut T {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_be() {
        let mut b = BytesMut::new();
        b.put_u8(1);
        b.put_u16(0x0203);
        b.put_u32(0x04050607);
        b.put_u64(0x08090a0b0c0d0e0f);
        assert_eq!(b.len(), 15);
        let mut r = b.freeze();
        assert_eq!(r.get_u8(), 1);
        assert_eq!(r.get_u16(), 0x0203);
        assert_eq!(r.get_u32(), 0x04050607);
        assert_eq!(r.get_u64(), 0x08090a0b0c0d0e0f);
        assert!(r.is_empty());
    }

    #[test]
    fn slice_and_split_share_storage() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let mid = b.slice(2..5);
        assert_eq!(&mid[..], &[2, 3, 4]);
        let mut c = b.clone();
        let head = c.split_to(2);
        assert_eq!(&head[..], &[0, 1]);
        assert_eq!(&c[..], &[2, 3, 4, 5]);
    }

    #[test]
    fn bytes_mut_split_to_consumes_front() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"hello world");
        let head = b.split_to(6);
        assert_eq!(&head[..], b"hello ");
        assert_eq!(&b[..], b"world");
        assert_eq!(b.freeze(), Bytes::from_static(b"world"));
    }

    #[test]
    fn from_shared_runs_storage_drop_on_last_view() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Tracked(Vec<u8>);
        impl ByteStorage for Tracked {
            fn as_slice(&self) -> &[u8] {
                &self.0
            }
        }
        impl Drop for Tracked {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let b = Bytes::from_shared(Arc::new(Tracked(vec![1, 2, 3, 4])));
        let view = b.slice(1..3);
        assert_eq!(&view[..], &[2, 3]);
        drop(b);
        assert_eq!(DROPS.load(Ordering::SeqCst), 0, "view still live");
        drop(view);
        assert_eq!(DROPS.load(Ordering::SeqCst), 1, "last view frees storage");
    }

    #[test]
    fn slice_buf_advances() {
        let mut s: &[u8] = &[1, 2, 3, 4];
        assert_eq!(s.get_u16(), 0x0102);
        assert_eq!(s.remaining(), 2);
    }
}
