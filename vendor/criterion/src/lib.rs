//! Offline vendored micro-benchmark harness with the
//! [`criterion`](https://crates.io/crates/criterion) API subset this
//! workspace uses. The build container has no crates.io access, so the
//! external dev-dependencies are vendored as small local crates.
//!
//! Measurement model: per benchmark, a calibration run sizes the batch so
//! one sample takes roughly `measurement_time / sample_size`, then
//! `sample_size` timed batches are taken and the per-iteration mean,
//! median and min are reported, plus derived throughput when configured.
//! Passing `--test` (as `cargo test --benches` does) runs every benchmark
//! for a single iteration, exactly like real criterion's test mode.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of the measured-value blinder (real criterion has its own;
/// the std one is equivalent for our purposes).
pub use std::hint::black_box;

/// Throughput annotation for a benchmark group: turns per-iteration time
/// into a rate in the report.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A parameterised benchmark name, rendered as `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    cfg: &'a Config,
    /// Collected per-iteration nanoseconds for each sample.
    result_ns: Option<Samples>,
}

struct Samples {
    mean_ns: f64,
    median_ns: f64,
    min_ns: f64,
}

impl Bencher<'_> {
    /// Time `routine`, keeping its output alive so the optimizer can't
    /// delete the work.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.cfg.test_mode {
            black_box(routine());
            self.result_ns = Some(Samples {
                mean_ns: 0.0,
                median_ns: 0.0,
                min_ns: 0.0,
            });
            return;
        }
        // Calibrate: how many iterations fit one sample slot?
        let slot = self.cfg.measurement_time.as_secs_f64() / self.cfg.sample_size as f64;
        let t0 = Instant::now();
        black_box(routine());
        let one = t0.elapsed().as_secs_f64().max(1e-9);
        let iters_per_sample = ((slot / one).ceil() as u64).clamp(1, 100_000_000);
        // Warm-up.
        let warm_until = Instant::now() + self.cfg.warm_up_time;
        while Instant::now() < warm_until {
            black_box(routine());
        }
        // Measure.
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.cfg.sample_size);
        for _ in 0..self.cfg.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            per_iter.push(t0.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        self.result_ns = Some(Samples {
            mean_ns: mean,
            median_ns: per_iter[per_iter.len() / 2],
            min_ns: per_iter[0],
        });
    }
}

#[derive(Debug, Clone)]
struct Config {
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
            sample_size: 30,
            test_mode: false,
            filter: None,
        }
    }
}

/// The benchmark manager: owns configuration and prints the report.
#[derive(Default)]
pub struct Criterion {
    cfg: Config,
}

impl Criterion {
    /// Target cumulative measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.cfg.measurement_time = d;
        self
    }

    /// Warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.cfg.warm_up_time = d;
        self
    }

    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.cfg.sample_size = n;
        self
    }

    /// Apply CLI args (`--test` runs one iteration per bench; any bare
    /// token is a substring filter). Called by [`criterion_main!`].
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" | "--quick" => self.cfg.test_mode = true,
                "--bench" | "--verbose" | "-n" | "--noplot" => {}
                s if s.starts_with('-') => {}
                s => self.cfg.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Benchmark a single function outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut g = self.benchmark_group("");
        g.bench_function(id, f);
        g.finish();
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        group: &str,
        id: &str,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        let full = if group.is_empty() {
            id.to_string()
        } else {
            format!("{group}/{id}")
        };
        if let Some(filter) = &self.cfg.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            cfg: &self.cfg,
            result_ns: None,
        };
        f(&mut b);
        let Some(s) = b.result_ns else {
            println!("{full:<44} (no measurement: closure never called iter)");
            return;
        };
        if self.cfg.test_mode {
            println!("{full:<44} ok (test mode)");
            return;
        }
        let rate = throughput.map(|t| match t {
            Throughput::Bytes(n) => format!(
                "  {:>10.1} MiB/s",
                n as f64 / (s.median_ns / 1e9) / (1024.0 * 1024.0)
            ),
            Throughput::Elements(n) => {
                format!("  {:>10.0} elem/s", n as f64 / (s.median_ns / 1e9))
            }
        });
        println!(
            "{full:<44} median {:>12} mean {:>12} min {:>12}{}",
            fmt_ns(s.median_ns),
            fmt_ns(s.mean_ns),
            fmt_ns(s.min_ns),
            rate.unwrap_or_default()
        );
    }

    /// Print the trailing summary line (no-op placeholder, for API
    /// compatibility).
    pub fn final_summary(&self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// A group of related benchmarks sharing a name prefix and throughput
/// annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used in the report.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        let (name, tp) = (self.name.clone(), self.throughput);
        self.criterion.run_one(&name, id.as_ref(), tp, f);
        self
    }

    /// Run one parameterised benchmark in this group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let (name, tp) = (self.name.clone(), self.throughput);
        self.criterion.run_one(&name, &id.full, tp, |b| f(b, input));
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Define a benchmark group fn. Both the `name/config/targets` form and
/// the positional form are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke(c: &mut Criterion) {
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Bytes(64));
        g.bench_function("add", |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(black_box(3));
                x
            })
        });
        g.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &p| {
            b.iter(|| black_box(p) * 2)
        });
        g.finish();
    }

    #[test]
    fn runs_quickly_in_test_mode() {
        let mut c = Criterion::default()
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1))
            .sample_size(5);
        c.cfg.test_mode = true;
        smoke(&mut c);
    }

    #[test]
    fn measures_without_test_mode() {
        let mut c = Criterion::default()
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(2))
            .sample_size(5);
        smoke(&mut c);
    }
}
