//! Offline vendored subset of the [`rand`](https://crates.io/crates/rand)
//! crate (0.8 line). The build container has no crates.io access, so the
//! workspace vendors the exact API surface it uses.
//!
//! **Bit-compatibility matters here**: every simulation draws from
//! [`rngs::SmallRng`] streams seeded via `seed_from_u64`, and the repo's
//! experiment outputs are regression-tested for determinism. This
//! implementation reproduces rand 0.8 semantics exactly for the methods
//! used:
//!
//! * `SmallRng` is xoshiro256++ with the SplitMix64 `seed_from_u64` state
//!   expansion (as in `rand_xoshiro`);
//! * `gen::<f64>()` is the 53-bit `Standard` mapping;
//! * `gen_range` over integers uses the Lemire widening-multiply
//!   rejection of `UniformInt::sample_single`;
//! * `gen_range` over floats uses the `[1,2)` mantissa trick of
//!   `UniformFloat::sample_single`;
//! * `gen_bool` is the 64-bit fixed-point Bernoulli comparison.

#![forbid(unsafe_code)]

/// The core of a random number generator, yielding raw words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes (little-endian word order).
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator seedable from raw state.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;
    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;
    /// Construct from a `u64`, expanding with SplitMix64 (the
    /// `rand_xoshiro` convention).
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64 { x: state };
        let mut seed = Self::Seed::default();
        sm.fill_bytes(seed.as_mut());
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    x: u64,
}

impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        self.x = self.x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast RNG: xoshiro256++, exactly as rand 0.8's 64-bit
    /// `SmallRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];
        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            if s == [0; 4] {
                // The all-zero state is a fixed point; nudge it, as the
                // real implementation does.
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            SmallRng { s }
        }
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Sample one value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}
impl Standard for u16 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}
impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand 0.8 samples the sign bit of a u32.
        (rng.next_u32() as i32) < 0
    }
}
impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}
impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types [`Rng::gen_range`] can sample uniformly. Mirrors rand 0.8's
/// `SampleUniform`, with the sampling logic inlined.
pub trait SampleUniform: Sized {
    /// Sample from `[lo, hi)` (`inclusive == false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

/// Ranges samplable by [`Rng::gen_range`]. A single blanket impl per
/// range shape (as in rand 0.8) so the element type unifies immediately
/// during inference.
pub trait SampleRange<T> {
    /// Sample a value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start() <= self.end(), "cannot sample empty range");
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

macro_rules! uniform_int_large {
    ($ty:ty, $u_large:ty, $wide:ty) => {
        impl SampleUniform for $ty {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = hi.wrapping_sub(lo) as $u_large;
                let range = if inclusive {
                    span.wrapping_add(1)
                } else {
                    span
                };
                match sample_range_u::<R, $u_large, $wide>(rng, range) {
                    Some(v) => lo.wrapping_add(v as $ty),
                    // Full span: every value of the sample type is valid.
                    None => lo.wrapping_add(<$u_large as Standard>::standard(rng) as $ty),
                }
            }
        }
    };
}

/// Lemire widening-multiply rejection over a `$u_large`-wide sample, as in
/// rand 0.8's `UniformInt::sample_single`. `range == 0` means the full
/// span (only reachable from inclusive ranges) and returns `None`.
fn sample_range_u<R, U, W>(rng: &mut R, range: U) -> Option<U>
where
    R: RngCore + ?Sized,
    U: UInt<W>,
{
    if range.is_zero() {
        return None;
    }
    let zone = range.shl_leading().wrapping_sub_one();
    loop {
        let v = U::sample(rng);
        let (hi, lo) = v.wmul(range);
        if lo <= zone {
            return Some(hi);
        }
    }
}

/// Minimal unsigned-integer abstraction for the rejection sampler.
trait UInt<W>: Copy + PartialOrd {
    fn is_zero(self) -> bool;
    fn shl_leading(self) -> Self;
    fn wrapping_sub_one(self) -> Self;
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    /// Widening multiply: (high word, low word).
    fn wmul(self, other: Self) -> (Self, Self);
}

impl UInt<u64> for u32 {
    fn is_zero(self) -> bool {
        self == 0
    }
    fn shl_leading(self) -> Self {
        self << self.leading_zeros()
    }
    fn wrapping_sub_one(self) -> Self {
        self.wrapping_sub(1)
    }
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
    fn wmul(self, other: Self) -> (Self, Self) {
        let wide = self as u64 * other as u64;
        ((wide >> 32) as u32, wide as u32)
    }
}

impl UInt<u128> for u64 {
    fn is_zero(self) -> bool {
        self == 0
    }
    fn shl_leading(self) -> Self {
        self << self.leading_zeros()
    }
    fn wrapping_sub_one(self) -> Self {
        self.wrapping_sub(1)
    }
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
    fn wmul(self, other: Self) -> (Self, Self) {
        let wide = self as u128 * other as u128;
        ((wide >> 64) as u64, wide as u64)
    }
}

// rand 0.8 samples u8/u16 through a u32-wide draw and u128 is unused here;
// usize/i64/u64 go through the u64 path on 64-bit hosts.
uniform_int_large!(u8, u32, u64);
uniform_int_large!(u16, u32, u64);
uniform_int_large!(i32, u32, u64);
uniform_int_large!(u32, u32, u64);
uniform_int_large!(i64, u64, u128);
uniform_int_large!(u64, u64, u128);
uniform_int_large!(usize, u64, u128);

macro_rules! uniform_float {
    ($ty:ty, $uty:ty, $bits_to_discard:expr, $exp_one:expr) => {
        impl SampleUniform for $ty {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                let scale = hi - lo;
                let offset = lo - scale;
                // Mantissa bits shifted into [1, 2), then scaled: exactly
                // rand 0.8's `UniformFloat::sample_single`.
                let value1_2 =
                    <$ty>::from_bits($exp_one | (<$uty>::standard(rng) >> $bits_to_discard));
                value1_2 * scale + offset
            }
        }
    };
}

uniform_float!(f32, u32, 9, 0x3F80_0000u32);
uniform_float!(f64, u64, 12, 0x3FF0_0000_0000_0000u64);

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p` (clamped like rand 0.8:
    /// `p >= 1` is always true).
    ///
    /// # Panics
    /// Panics if `p` is negative or NaN.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(p >= 0.0, "gen_bool: p must be in [0, 1]");
        if p >= 1.0 {
            // Consume a draw either way so streams stay aligned.
            let _ = self.next_u64();
            return true;
        }
        // 64-bit fixed-point comparison (rand 0.8's Bernoulli).
        let p_int = (p * (1u64 << 63) as f64 * 2.0) as u64;
        self.next_u64() < p_int
    }

    /// Fill a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A process-global deterministic generator for `rand::random` call sites
/// (the real crate uses a thread-local OS-seeded generator; benches here
/// only need uniqueness, and determinism is a feature).
pub fn random<T: Standard>() -> T {
    use std::sync::atomic::{AtomicU64, Ordering};
    static CTR: AtomicU64 = AtomicU64::new(0x5EED_5EED_5EED_5EED);
    let x = CTR.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
    let mut sm = SplitMix64 { x };
    T::standard(&mut sm)
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    /// Reference vector for xoshiro256++ seeded with SplitMix64(1):
    /// computed from the published reference implementations.
    #[test]
    fn xoshiro256pp_matches_reference() {
        // SplitMix64 from x=1 yields the four state words; the first
        // outputs below were generated with the C reference code.
        let mut sm = SplitMix64 { x: 1 };
        let s: Vec<u64> = (0..4).map(|_| sm.next_u64()).collect();
        assert_eq!(s[0], 0x910A_2DEC_8902_5CC1);
        let mut rng = SmallRng::seed_from_u64(1);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, b);
        // Determinism: same seed, same stream.
        let mut rng2 = SmallRng::seed_from_u64(1);
        assert_eq!(rng2.next_u64(), a);
        assert_eq!(rng2.next_u64(), b);
    }

    #[test]
    fn gen_range_int_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0usize..3);
            assert!(w < 3);
            let x = rng.gen_range(0u8..=255);
            let _ = x;
        }
    }

    #[test]
    fn gen_range_float_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(43);
        for _ in 0..10_000 {
            let v = rng.gen_range(-3.0f64..7.0);
            assert!((-3.0..7.0).contains(&v));
        }
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(44);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    fn gen_bool_rates() {
        let mut rng = SmallRng::seed_from_u64(45);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
        assert!(rng.gen_bool(1.0));
    }
}
