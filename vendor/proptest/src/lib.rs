//! Offline vendored mini re-implementation of the
//! [`proptest`](https://crates.io/crates/proptest) API surface this
//! workspace uses. The build container has no crates.io access, so the
//! external dev-dependencies are vendored as small local crates.
//!
//! Semantics: each `proptest!` test runs `ProptestConfig::cases`
//! deterministic cases (seeded from the test name, overridable with
//! `PROPTEST_SEED`), generating inputs from composable [`Strategy`]
//! values. Failures panic with the standard assertion message. Shrinking
//! is intentionally not implemented — failing inputs print as-is via the
//! assert formatting the call sites already provide.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The RNG handed to strategies.
pub struct TestRng(SmallRng);

impl TestRng {
    fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        if let Ok(seed) = std::env::var("PROPTEST_SEED") {
            if let Ok(s) = seed.parse::<u64>() {
                h ^= s;
            }
        }
        TestRng(SmallRng::seed_from_u64(h))
    }

    fn rng(&mut self) -> &mut SmallRng {
        &mut self.0
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Produce one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;
}

/// Drive `cases` cases of `body` with a per-test deterministic RNG.
/// Called by the generated test fns; not public API in real proptest.
pub fn run_cases(name: &str, cfg: &ProptestConfig, mut body: impl FnMut(&mut TestRng)) {
    let mut rng = TestRng::for_test(name);
    for _ in 0..cfg.cases {
        body(&mut rng);
    }
}

// ---- primitive strategies -------------------------------------------------

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for core::ops::Range<$ty> {
            type Value = $ty;
            fn new_value(&self, rng: &mut TestRng) -> $ty {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn new_value(&self, rng: &mut TestRng) -> $ty {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! float_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for core::ops::Range<$ty> {
            type Value = $ty;
            fn new_value(&self, rng: &mut TestRng) -> $ty {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---- any::<T>() -----------------------------------------------------------

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(core::marker::PhantomData<T>);

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arb_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.rng().gen::<u64>() as $ty
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.rng().gen::<u64>() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite full-ish range; real proptest biases toward special
        // values, which no call site here depends on.
        rng.rng().gen_range(-1e12f64..1e12)
    }
}

// ---- collection -----------------------------------------------------------

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// An inclusive size band for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }
    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }
    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy yielding `Vec`s of `element` with a length in `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy over `element` with the given size band.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.rng().gen_range(self.size.lo..=self.size.hi);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

// ---- sample ---------------------------------------------------------------

/// Sampling strategies (`proptest::sample`).
pub mod sample {
    use super::{Arbitrary, Strategy, TestRng};
    use rand::Rng;

    /// An index into a collection of not-yet-known size; resolve with
    /// [`Index::index`].
    #[derive(Debug, Clone, Copy)]
    pub struct Index(usize);

    impl Index {
        /// Resolve against a collection of `size` elements.
        ///
        /// # Panics
        /// Panics if `size == 0`.
        pub fn index(&self, size: usize) -> usize {
            assert!(size > 0, "Index::index on empty collection");
            self.0 % size
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.rng().gen::<u64>() as usize)
        }
    }

    /// Strategy choosing uniformly among the given options.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    /// Choose uniformly from `options`.
    ///
    /// # Panics
    /// Panics if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty options");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.rng().gen_range(0..self.0.len());
            self.0[i].clone()
        }
    }
}

// ---- macros ---------------------------------------------------------------

/// Define property tests. Supports the subset of the real macro's grammar
/// used in this workspace: an optional `#![proptest_config(...)]` inner
/// attribute, then `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$attr:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                $crate::run_cases(stringify!($name), &__cfg, |__rng| {
                    $(let $pat = $crate::Strategy::new_value(&($strat), __rng);)+
                    $body
                });
            }
        )*
    };
}

/// Assert inside a property test (panics on failure, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };

    /// The `prop` module alias (`prop::sample::...`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Doc comments and attributes pass through.
        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 0.5f64..2.5, b in any::<bool>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.5..2.5).contains(&y));
            let _ = b;
        }

        #[test]
        fn vec_and_tuple(
            v in crate::collection::vec((0u8..4, any::<u16>()), 2..=5),
            mut w in crate::collection::vec(0u32..9, 1..4),
        ) {
            prop_assert!(v.len() >= 2 && v.len() <= 5);
            w.sort_unstable();
            prop_assert!(w.windows(2).all(|p| p[0] <= p[1]));
        }

        #[test]
        fn select_and_index(
            pick in crate::sample::select(vec!["a", "b", "c"]),
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!(["a", "b", "c"].contains(&pick));
            prop_assert!(idx.index(7) < 7);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        for out in [&mut a, &mut b] {
            crate::run_cases("det", &ProptestConfig::with_cases(10), |rng| {
                out.push(crate::Strategy::new_value(&(0u64..1000), rng));
            });
        }
        assert_eq!(a, b);
    }
}
