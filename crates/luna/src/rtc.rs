//! Run-to-complete, share-nothing engine layout.
//!
//! LUNA pins each connection to exactly one core and runs network +
//! storage processing of a packet to completion on that core — no locks,
//! no cross-core buffer sharing (§3.2). This module models that layout:
//! a deterministic flow-steering function and per-core engine structs
//! that own their connections outright (Rust's ownership model *is* the
//! share-nothing guarantee: there is no shared mutable state to lock).

/// Steer a connection to a core: stable hash of the peer id.
pub fn steer(peer_id: u64, cores: usize) -> usize {
    assert!(cores > 0);
    // SplitMix64 finalizer: avalanches low-entropy peer ids.
    let mut x = peer_id.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    ((x ^ (x >> 31)) % cores as u64) as usize
}

/// One core's engine: exclusively owns its connections.
#[derive(Debug)]
pub struct CoreEngine<C> {
    /// Core index.
    pub core: usize,
    connections: ebs_sim::FxHashMap<u64, C>,
    ops: u64,
}

impl<C> CoreEngine<C> {
    fn new(core: usize) -> Self {
        CoreEngine {
            core,
            connections: ebs_sim::FxHashMap::default(),
            ops: 0,
        }
    }

    /// Connections owned by this core.
    pub fn connections(&self) -> usize {
        self.connections.len()
    }

    /// Operations processed on this core.
    pub fn ops(&self) -> u64 {
        self.ops
    }
}

/// The multi-core run-to-complete engine.
#[derive(Debug)]
pub struct RtcEngine<C> {
    cores: Vec<CoreEngine<C>>,
}

impl<C> RtcEngine<C> {
    /// An engine over `cores` cores.
    ///
    /// # Panics
    /// Panics if `cores` is zero.
    pub fn new(cores: usize) -> Self {
        assert!(cores > 0);
        RtcEngine {
            cores: (0..cores).map(CoreEngine::new).collect(),
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.cores.len()
    }

    /// Register a connection for `peer_id`; returns the owning core.
    pub fn add_connection(&mut self, peer_id: u64, conn: C) -> usize {
        let core = steer(peer_id, self.cores.len());
        self.cores[core].connections.insert(peer_id, conn);
        core
    }

    /// Run a closure against the connection, on its owning core, to
    /// completion. Returns `None` for unknown peers.
    pub fn with_connection<R>(
        &mut self,
        peer_id: u64,
        f: impl FnOnce(&mut C) -> R,
    ) -> Option<(usize, R)> {
        let core = steer(peer_id, self.cores.len());
        let engine = &mut self.cores[core];
        let conn = engine.connections.get_mut(&peer_id)?;
        engine.ops += 1;
        Some((core, f(conn)))
    }

    /// Per-core view.
    pub fn core(&self, i: usize) -> &CoreEngine<C> {
        &self.cores[i]
    }

    /// Total connections.
    pub fn total_connections(&self) -> usize {
        self.cores.iter().map(|c| c.connections()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steering_is_stable() {
        for peer in 0..1000u64 {
            assert_eq!(steer(peer, 8), steer(peer, 8));
        }
    }

    #[test]
    fn steering_balances() {
        let cores = 8;
        let mut counts = vec![0usize; cores];
        for peer in 0..8000u64 {
            counts[steer(peer, cores)] += 1;
        }
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        assert!(max < min * 2, "imbalanced: {counts:?}");
    }

    #[test]
    fn ops_always_hit_the_owning_core() {
        let mut rtc: RtcEngine<u32> = RtcEngine::new(4);
        let owner = rtc.add_connection(99, 0);
        for _ in 0..10 {
            let (core, _) = rtc.with_connection(99, |c| *c += 1).unwrap();
            assert_eq!(core, owner, "no cross-core access, ever");
        }
        assert_eq!(rtc.core(owner).ops(), 10);
        let (_, val) = rtc.with_connection(99, |c| *c).unwrap();
        assert_eq!(val, 10);
    }

    #[test]
    fn unknown_peer_is_none() {
        let mut rtc: RtcEngine<u32> = RtcEngine::new(2);
        assert!(rtc.with_connection(1, |_| ()).is_none());
    }

    #[test]
    fn tens_of_thousands_of_connections() {
        // The FN-side scalability requirement of §3.1: a storage node
        // holds tens of thousands of connections; per-core ownership must
        // stay balanced.
        let mut rtc: RtcEngine<u8> = RtcEngine::new(6);
        for peer in 0..30_000u64 {
            rtc.add_connection(peer, 0);
        }
        assert_eq!(rtc.total_connections(), 30_000);
        for i in 0..6 {
            let n = rtc.core(i).connections();
            assert!((4_000..6_000).contains(&n), "core {i} has {n}");
        }
    }
}
