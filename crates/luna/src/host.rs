//! Host overhead models: kernel TCP vs LUNA.
//!
//! Kernel TCP and LUNA run the *same protocol engine* (`ebs-tcp`); what
//! differs is everything around it — syscalls, softirq wakeups, copies
//! between kernel and user buffers, lock contention — versus LUNA's
//! run-to-complete, zero-copy, share-nothing design (§3.2). The constants
//! here are calibrated against Table 1:
//!
//! * single 4 KiB RPC (2×25GE): kernel 70.1 µs vs LUNA 13.1 µs (base RTT
//!   ≈ 8.3 µs) — four stack crossings per RPC, so per-crossing added
//!   latency ≈ 15.5 µs (kernel) vs ≈ 1.2 µs (LUNA);
//! * 50 Gbps stress: kernel burns 4 cores, LUNA 1 (2×25GE); 200 Gbps:
//!   12 vs 4 (2×100GE) — dominated by per-byte costs (copies vs
//!   zero-copy), so CPU is `per_rpc + per_kb × size`.

use ebs_sim::SimDuration;

/// CPU and latency costs a stack adds around the TCP engine.
#[derive(Debug, Clone, Copy)]
pub struct StackCosts {
    /// Added latency per stack crossing (tx or rx of one RPC's data).
    pub crossing_latency: SimDuration,
    /// CPU time per RPC endpoint operation (framing, dispatch, wakeup).
    pub cpu_per_rpc: SimDuration,
    /// CPU time per KiB moved (copies, checksums in software).
    pub cpu_per_kb: SimDuration,
}

impl StackCosts {
    /// The kernel TCP stack (§3.1's baseline).
    pub fn kernel() -> Self {
        StackCosts {
            crossing_latency: SimDuration::from_micros_f64(15.5),
            cpu_per_rpc: SimDuration::from_micros_f64(4.0),
            cpu_per_kb: SimDuration::from_micros_f64(0.38),
        }
    }

    /// LUNA: run-to-complete + zero-copy + share-nothing.
    pub fn luna() -> Self {
        StackCosts {
            crossing_latency: SimDuration::from_micros_f64(1.2),
            cpu_per_rpc: SimDuration::from_micros_f64(1.2),
            cpu_per_kb: SimDuration::from_micros_f64(0.10),
        }
    }

    /// CPU time to push/pull one RPC of `bytes` through this stack (one
    /// endpoint, one direction pair).
    pub fn cpu_for_rpc(&self, bytes: usize) -> SimDuration {
        self.cpu_per_rpc + self.cpu_per_kb.mul_f64(bytes as f64 / 1024.0)
    }

    /// Added latency for a full RPC round trip (four crossings: tx req,
    /// rx req, tx resp, rx resp).
    pub fn rpc_added_latency(&self) -> SimDuration {
        self.crossing_latency * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rpc_latency_matches_table1() {
        let base_rtt = SimDuration::from_micros_f64(8.3);
        let kernel = (StackCosts::kernel().rpc_added_latency() + base_rtt).as_micros_f64();
        let luna = (StackCosts::luna().rpc_added_latency() + base_rtt).as_micros_f64();
        assert!(
            (65.0..76.0).contains(&kernel),
            "kernel {kernel}us vs paper 70.1"
        );
        assert!((12.0..14.5).contains(&luna), "luna {luna}us vs paper 13.1");
    }

    #[test]
    fn stress_core_counts_match_table1() {
        // 50 Gbps of 32 KiB RPCs (stress test uses concurrent bulk RPCs).
        let rps = 50e9 / 8.0 / 32768.0;
        let kernel_cores = rps * StackCosts::kernel().cpu_for_rpc(32768).as_secs_f64();
        let luna_cores = rps * StackCosts::luna().cpu_for_rpc(32768).as_secs_f64();
        assert!(
            (3.0..5.0).contains(&kernel_cores),
            "kernel {kernel_cores} cores vs 4"
        );
        assert!(luna_cores <= 1.1, "luna {luna_cores} cores vs 1");

        // 200 Gbps.
        let rps = 200e9 / 8.0 / 32768.0;
        let kernel_cores = rps * StackCosts::kernel().cpu_for_rpc(32768).as_secs_f64();
        let luna_cores = rps * StackCosts::luna().cpu_for_rpc(32768).as_secs_f64();
        assert!(
            (10.0..15.0).contains(&kernel_cores),
            "kernel {kernel_cores} vs 12"
        );
        assert!((2.5..5.0).contains(&luna_cores), "luna {luna_cores} vs 4");
    }

    #[test]
    fn luna_is_strictly_cheaper() {
        let k = StackCosts::kernel();
        let l = StackCosts::luna();
        assert!(l.crossing_latency < k.crossing_latency);
        assert!(l.cpu_for_rpc(4096) < k.cpu_for_rpc(4096));
    }
}
