//! The storage RPC layer over the TCP engine.
//!
//! One [`RpcClient`] / [`RpcServer`] pair per (compute, storage) server
//! connection. The client correlates responses by rpc-id and reports
//! completion latency; the server turns the byte stream back into frames
//! and lets the host answer them. Both delegate transport entirely to
//! `ebs-tcp` — LUNA and kernel TCP differ only in the `StackCosts` the
//! host charges around these calls.

use std::collections::VecDeque;

use ebs_sim::{FxHashMap, SimDuration, SimTime};
use ebs_tcp::{Segment, TcpConfig, TcpEngine};
use ebs_wire::{FrameDecoder, RpcFrame, RpcMethod};

/// Completion event from the client.
#[derive(Debug)]
pub struct RpcCompletion {
    /// The request's id.
    pub rpc_id: u64,
    /// Round-trip latency (submit → response decoded).
    pub latency: SimDuration,
    /// The response frame.
    pub response: RpcFrame,
}

/// Client half of one RPC connection.
#[derive(Debug)]
pub struct RpcClient {
    tcp: TcpEngine,
    dec: FrameDecoder,
    inflight: FxHashMap<u64, SimTime>,
    completions: VecDeque<RpcCompletion>,
    decode_errors: u64,
}

impl RpcClient {
    /// An actively connecting client.
    pub fn connect(cfg: TcpConfig) -> Self {
        RpcClient {
            tcp: TcpEngine::connect(cfg),
            dec: FrameDecoder::new(),
            inflight: FxHashMap::default(),
            completions: VecDeque::new(),
            decode_errors: 0,
        }
    }

    /// The underlying transport (diagnostics).
    pub fn tcp(&self) -> &TcpEngine {
        &self.tcp
    }

    /// True once the connection is usable.
    pub fn is_established(&self) -> bool {
        self.tcp.is_established()
    }

    /// Requests awaiting responses.
    pub fn inflight(&self) -> usize {
        self.inflight.len()
    }

    /// Malformed frames seen (should stay zero).
    pub fn decode_errors(&self) -> u64 {
        self.decode_errors
    }

    /// Submit a request frame.
    ///
    /// # Panics
    /// Panics if the rpc-id is already in flight.
    pub fn call(&mut self, now: SimTime, frame: &RpcFrame) {
        let prev = self.inflight.insert(frame.rpc_id, now);
        assert!(prev.is_none(), "rpc id {} reused", frame.rpc_id);
        self.tcp.send(frame.to_bytes());
    }

    /// Feed a segment from the wire.
    pub fn on_segment(&mut self, now: SimTime, seg: Segment) {
        self.tcp.on_segment(now, seg);
        self.drain(now);
    }

    /// Produce the next outgoing segment.
    pub fn poll_segment(&mut self, now: SimTime) -> Option<Segment> {
        self.tcp.poll_segment(now)
    }

    /// Next timer deadline.
    pub fn poll_timer(&self) -> Option<SimTime> {
        self.tcp.poll_timer()
    }

    /// Fire due timers.
    pub fn on_timer(&mut self, now: SimTime) {
        self.tcp.on_timer(now);
    }

    /// Drain the next completion.
    pub fn poll_completion(&mut self) -> Option<RpcCompletion> {
        self.completions.pop_front()
    }

    fn drain(&mut self, now: SimTime) {
        while let Some(chunk) = self.tcp.recv() {
            self.dec.extend(&chunk);
        }
        loop {
            match self.dec.next_frame() {
                Ok(Some(frame)) => {
                    if let Some(t0) = self.inflight.remove(&frame.rpc_id) {
                        self.completions.push_back(RpcCompletion {
                            rpc_id: frame.rpc_id,
                            latency: now.saturating_since(t0),
                            response: frame,
                        });
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    self.decode_errors += 1;
                    break;
                }
            }
        }
    }
}

/// Server half of one RPC connection.
#[derive(Debug)]
pub struct RpcServer {
    tcp: TcpEngine,
    dec: FrameDecoder,
    requests: VecDeque<RpcFrame>,
    decode_errors: u64,
}

impl RpcServer {
    /// A passively listening server endpoint.
    pub fn listen(cfg: TcpConfig) -> Self {
        RpcServer {
            tcp: TcpEngine::listen(cfg),
            dec: FrameDecoder::new(),
            requests: VecDeque::new(),
            decode_errors: 0,
        }
    }

    /// True once the connection is usable.
    pub fn is_established(&self) -> bool {
        self.tcp.is_established()
    }

    /// Feed a segment from the wire.
    pub fn on_segment(&mut self, now: SimTime, seg: Segment) {
        self.tcp.on_segment(now, seg);
        while let Some(chunk) = self.tcp.recv() {
            self.dec.extend(&chunk);
        }
        loop {
            match self.dec.next_frame() {
                Ok(Some(frame)) => self.requests.push_back(frame),
                Ok(None) => break,
                Err(_) => {
                    self.decode_errors += 1;
                    break;
                }
            }
        }
    }

    /// Produce the next outgoing segment.
    pub fn poll_segment(&mut self, now: SimTime) -> Option<Segment> {
        self.tcp.poll_segment(now)
    }

    /// Next timer deadline.
    pub fn poll_timer(&self) -> Option<SimTime> {
        self.tcp.poll_timer()
    }

    /// Fire due timers.
    pub fn on_timer(&mut self, now: SimTime) {
        self.tcp.on_timer(now);
    }

    /// Take the next decoded request.
    pub fn poll_request(&mut self) -> Option<RpcFrame> {
        self.requests.pop_front()
    }

    /// Send a response frame.
    pub fn respond(&mut self, frame: &RpcFrame) {
        self.tcp.send(frame.to_bytes());
    }

    /// Malformed frames seen.
    pub fn decode_errors(&self) -> u64 {
        self.decode_errors
    }
}

impl ebs_obs::Sample for RpcClient {
    /// Component `luna.rpc` plus the underlying shared `tcp` engine.
    fn sample_into(&self, now: SimTime, m: &mut ebs_obs::Metrics) {
        m.gauge_set("luna.rpc", "inflight", self.inflight() as f64);
        m.counter_add("luna.rpc", "decode_errors", self.decode_errors());
        self.tcp().sample_into(now, m);
    }
}

impl ebs_obs::Sample for RpcServer {
    /// Component `luna.rpc` (server side shares the counter namespace:
    /// counters accumulate across samplers by design).
    fn sample_into(&self, now: SimTime, m: &mut ebs_obs::Metrics) {
        m.counter_add("luna.rpc", "decode_errors", self.decode_errors());
        self.tcp.sample_into(now, m);
    }
}

/// Make a write request frame.
pub fn write_request(rpc_id: u64, vd_id: u64, offset: u64, payload: bytes::Bytes) -> RpcFrame {
    RpcFrame {
        rpc_id,
        method: RpcMethod::Write,
        vd_id,
        offset,
        len: payload.len() as u32,
        payload,
    }
}

/// Make a read request frame.
pub fn read_request(rpc_id: u64, vd_id: u64, offset: u64, len: u32) -> RpcFrame {
    RpcFrame {
        rpc_id,
        method: RpcMethod::Read,
        vd_id,
        offset,
        len,
        payload: bytes::Bytes::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    /// Lockstep exchange until quiescent.
    fn run(c: &mut RpcClient, s: &mut RpcServer, mut now: SimTime, answer: bool) -> SimTime {
        for _ in 0..200 {
            let mut progressed = false;
            while let Some(seg) = c.poll_segment(now) {
                now += SimDuration::from_micros(4);
                s.on_segment(now, seg);
                progressed = true;
            }
            if answer {
                while let Some(req) = s.poll_request() {
                    let resp = RpcFrame {
                        rpc_id: req.rpc_id,
                        method: RpcMethod::WriteResp,
                        vd_id: req.vd_id,
                        offset: req.offset,
                        len: 0,
                        payload: Bytes::new(),
                    };
                    s.respond(&resp);
                    progressed = true;
                }
            }
            while let Some(seg) = s.poll_segment(now) {
                now += SimDuration::from_micros(4);
                c.on_segment(now, seg);
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        now
    }

    #[test]
    fn request_response_roundtrip() {
        let mut c = RpcClient::connect(TcpConfig::default());
        let mut s = RpcServer::listen(TcpConfig::default());
        let now = run(&mut c, &mut s, SimTime::ZERO, true);
        assert!(c.is_established());
        c.call(
            now,
            &write_request(1, 7, 4096, Bytes::from(vec![1u8; 4096])),
        );
        run(&mut c, &mut s, now, true);
        let done = c.poll_completion().expect("completed");
        assert_eq!(done.rpc_id, 1);
        assert_eq!(done.response.method, RpcMethod::WriteResp);
        assert!(done.latency > SimDuration::ZERO);
        assert_eq!(c.inflight(), 0);
    }

    #[test]
    fn pipelined_rpcs_complete_in_any_submission_volume() {
        let mut c = RpcClient::connect(TcpConfig::default());
        let mut s = RpcServer::listen(TcpConfig::default());
        let now = run(&mut c, &mut s, SimTime::ZERO, true);
        for i in 0..32 {
            c.call(
                now,
                &write_request(i, 7, i * 4096, Bytes::from(vec![0u8; 4096])),
            );
        }
        run(&mut c, &mut s, now, true);
        let mut done = 0;
        while c.poll_completion().is_some() {
            done += 1;
        }
        assert_eq!(done, 32);
    }

    #[test]
    fn server_sees_exact_frames() {
        let mut c = RpcClient::connect(TcpConfig::default());
        let mut s = RpcServer::listen(TcpConfig::default());
        let now = run(&mut c, &mut s, SimTime::ZERO, false);
        let payload = Bytes::from((0..8192u32).map(|i| i as u8).collect::<Vec<_>>());
        c.call(now, &write_request(42, 9, 12288, payload.clone()));
        run(&mut c, &mut s, now, false);
        let req = s.poll_request().expect("arrived");
        assert_eq!(req.rpc_id, 42);
        assert_eq!(req.vd_id, 9);
        assert_eq!(req.offset, 12288);
        assert_eq!(req.payload, payload);
        assert_eq!(s.decode_errors(), 0);
    }

    #[test]
    #[should_panic(expected = "reused")]
    fn duplicate_rpc_id_panics() {
        let mut c = RpcClient::connect(TcpConfig::default());
        c.call(SimTime::ZERO, &read_request(1, 1, 0, 4096));
        c.call(SimTime::ZERO, &read_request(1, 1, 0, 4096));
    }
}
