//! Zero-copy buffer pool.
//!
//! LUNA's first big win over kernel TCP is a zero-copy design *across SA
//! and RPC*: buffers are recycled and shared between layers instead of
//! copied at each boundary (§3.2). This pool is a LUNA-flavoured front for
//! the workspace-wide [`ebs_wire::BlockPool`]: it hands out writable
//! buffers whose storage keeps recycling even after they are frozen into
//! [`bytes::Bytes`] and shipped through the RPC layer — the freeze that
//! used to leak a buffer out of the pool now rides the pooled storage all
//! the way around the loop.

use ebs_wire::{BlockPool, PooledBuf};

/// A recycling pool of fixed-size buffers.
#[derive(Debug, Clone)]
pub struct BufferPool {
    pool: BlockPool,
}

impl BufferPool {
    /// A pool of `buf_size`-byte buffers, keeping at most `max_free`
    /// spares.
    ///
    /// # Panics
    /// Panics if `buf_size` is zero.
    pub fn new(buf_size: usize, max_free: usize) -> Self {
        BufferPool {
            pool: BlockPool::new(buf_size, max_free),
        }
    }

    /// Take an empty buffer (recycled when possible). Freeze it into
    /// [`bytes::Bytes`] with [`PooledBuf::freeze`] for the RPC layer;
    /// dropping either form returns the storage here.
    pub fn take(&self) -> PooledBuf {
        self.pool.take()
    }

    /// Take a buffer pre-filled with a copy of `data` (oversized data
    /// falls back to a plain allocation that will not recycle).
    pub fn take_copy(&self, data: &[u8]) -> PooledBuf {
        self.pool.take_copy(data)
    }

    /// Fresh allocations performed.
    pub fn allocations(&self) -> u64 {
        self.pool.stats().misses
    }

    /// Buffers served from the free list.
    pub fn reuses(&self) -> u64 {
        self.pool.stats().hits
    }

    /// Spares currently pooled.
    pub fn free_buffers(&self) -> usize {
        self.pool.free_blocks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_stops_allocating() {
        let pool = BufferPool::new(4096, 64);
        // Simulate a queue depth of 8 in steady state.
        let mut live = Vec::new();
        for round in 0..100 {
            for _ in 0..8 {
                live.push(pool.take());
            }
            live.clear(); // drop returns the storage
            if round == 0 {
                assert_eq!(pool.allocations(), 8);
            }
        }
        assert_eq!(pool.allocations(), 8, "no allocation after warm-up");
        assert_eq!(pool.reuses(), 99 * 8);
    }

    #[test]
    fn recycling_survives_freeze_into_bytes() {
        // The property the old Vec<BytesMut> pool lacked: a buffer frozen
        // and shipped as `Bytes` still comes home when the last clone
        // drops.
        let pool = BufferPool::new(4096, 64);
        for round in 0..50 {
            let mut b = pool.take();
            b.resize(4096, 0xA5);
            let frozen: bytes::Bytes = b.freeze().into_bytes();
            let clone = frozen.clone();
            drop(frozen);
            assert_eq!(clone.len(), 4096);
            drop(clone);
            if round > 0 {
                assert_eq!(pool.allocations(), 1, "round {round} allocated");
            }
        }
    }

    #[test]
    fn recycled_buffers_start_empty() {
        let pool = BufferPool::new(64, 4);
        {
            let mut b = pool.take();
            b.resize(5, b'x');
        }
        let b2 = pool.take();
        assert!(b2.is_empty());
        assert!(b2.capacity() >= 64);
    }

    #[test]
    fn free_list_is_bounded() {
        let pool = BufferPool::new(64, 2);
        let bufs: Vec<PooledBuf> = (0..5).map(|_| pool.take()).collect();
        drop(bufs);
        assert_eq!(pool.free_buffers(), 2);
    }

    #[test]
    fn oversized_copies_do_not_pollute_the_pool() {
        let pool = BufferPool::new(16, 4);
        let big = pool.take_copy(&[1u8; 64]);
        assert_eq!(big.len(), 64);
        drop(big);
        assert_eq!(pool.free_buffers(), 0);
    }
}
