//! Zero-copy buffer pool.
//!
//! LUNA's first big win over kernel TCP is a zero-copy design *across SA
//! and RPC*: buffers are recycled and shared between layers instead of
//! copied at each boundary (§3.2). This pool hands out fixed-size buffers
//! and takes them back; the hit-rate counter shows how quickly a steady
//! workload stops allocating entirely.

use bytes::BytesMut;

/// A recycling pool of fixed-size buffers.
#[derive(Debug)]
pub struct BufferPool {
    buf_size: usize,
    free: Vec<BytesMut>,
    max_free: usize,
    allocations: u64,
    reuses: u64,
}

impl BufferPool {
    /// A pool of `buf_size`-byte buffers, keeping at most `max_free`
    /// spares.
    ///
    /// # Panics
    /// Panics if `buf_size` is zero.
    pub fn new(buf_size: usize, max_free: usize) -> Self {
        assert!(buf_size > 0);
        BufferPool {
            buf_size,
            free: Vec::new(),
            max_free,
            allocations: 0,
            reuses: 0,
        }
    }

    /// Take a cleared buffer (recycled when possible).
    pub fn take(&mut self) -> BytesMut {
        match self.free.pop() {
            Some(mut b) => {
                self.reuses += 1;
                b.clear();
                b
            }
            None => {
                self.allocations += 1;
                BytesMut::with_capacity(self.buf_size)
            }
        }
    }

    /// Return a buffer to the pool. Foreign or undersized buffers are
    /// dropped rather than pooled.
    pub fn put(&mut self, b: BytesMut) {
        if b.capacity() >= self.buf_size && self.free.len() < self.max_free {
            self.free.push(b);
        }
    }

    /// Fresh allocations performed.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Buffers served from the free list.
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    /// Spares currently pooled.
    pub fn free_buffers(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_stops_allocating() {
        let mut pool = BufferPool::new(4096, 64);
        // Simulate a queue depth of 8 in steady state.
        let mut live = Vec::new();
        for round in 0..100 {
            for _ in 0..8 {
                live.push(pool.take());
            }
            for b in live.drain(..) {
                pool.put(b);
            }
            if round == 0 {
                assert_eq!(pool.allocations(), 8);
            }
        }
        assert_eq!(pool.allocations(), 8, "no allocation after warm-up");
        assert_eq!(pool.reuses(), 99 * 8);
    }

    #[test]
    fn recycled_buffers_are_cleared() {
        let mut pool = BufferPool::new(64, 4);
        let mut b = pool.take();
        b.extend_from_slice(b"dirty");
        pool.put(b);
        let b2 = pool.take();
        assert!(b2.is_empty());
        assert!(b2.capacity() >= 64);
    }

    #[test]
    fn free_list_is_bounded() {
        let mut pool = BufferPool::new(64, 2);
        let bufs: Vec<BytesMut> = (0..5).map(|_| pool.take()).collect();
        for b in bufs {
            pool.put(b);
        }
        assert_eq!(pool.free_buffers(), 2);
    }

    #[test]
    fn undersized_foreign_buffers_rejected() {
        let mut pool = BufferPool::new(4096, 4);
        pool.put(BytesMut::with_capacity(16));
        assert_eq!(pool.free_buffers(), 0);
    }
}
