//! # ebs-luna — the user-space TCP stack (and its kernel baseline)
//!
//! LUNA (§3) replaced kernel TCP on the frontend network to match SSD
//! latency: an mTCP-style user-space stack with run-to-complete
//! scheduling, zero-copy buffers shared across SA and RPC layers, and
//! share-nothing per-core engines. This crate provides:
//!
//! * [`RpcClient`] / [`RpcServer`] — the storage RPC layer over the
//!   shared `ebs-tcp` engine;
//! * [`StackCosts`] — the calibrated host-overhead models that are the
//!   *only* difference between kernel TCP and LUNA (Table 1);
//! * [`BufferPool`] — the zero-copy recycling pool;
//! * [`RtcEngine`] — the share-nothing core layout with stable flow
//!   steering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod host;
mod rpc;
mod rtc;

pub use buffer::BufferPool;
pub use host::StackCosts;
pub use rpc::{read_request, write_request, RpcClient, RpcCompletion, RpcServer};
pub use rtc::{steer, CoreEngine, RtcEngine};
