//! Congestion-control comparison matrix (`BENCH_CC.json`).
//!
//! The Fig. 15-style experiment the CC refactor exists for: every
//! algorithm behind the [`ebs_cc::CongestionControl`] trait (HPCC,
//! Swift, DCQCN, fixed-window) runs the same four adversarial traffic
//! patterns from [`ebs_workload::adversarial`] on the same SOLAR
//! testbed, and the matrix reports per cell:
//!
//! * **p99 latency (µs)** over all completed guest I/Os,
//! * **goodput (Gbps)** — completed guest bytes over the measured span,
//! * **max switch-queue occupancy (KiB)** across every fabric egress.
//!
//! RED/ECN marking is enabled for every cell so the DCQCN arm has its
//! signal; the HPCC and Swift arms simply ignore the echo bit, and the
//! marking draws from a dedicated RNG stream so enabling it shifts no
//! other randomness. Each cell is an independent deterministic
//! simulation — same seed per cell across algorithms, so the workload
//! arriving at each controller is identical.

use ebs_cc::CcAlgo;
use ebs_sa::{IoKind, IoRequest};
use ebs_sim::{SimDuration, SimTime};
use ebs_stack::{Testbed, TestbedConfig, Variant};
use ebs_stats::{f1, TextTable};
use ebs_workload::adversarial::{self, AdversarialConfig};
use std::time::Instant;

use crate::output::ExperimentOutput;
use crate::{ExperimentReport, RunReport};

/// The algorithms compared, in table order.
pub const ALGOS: [CcAlgo; 4] = [CcAlgo::Hpcc, CcAlgo::Swift, CcAlgo::Dcqcn, CcAlgo::Fixed];

/// One cell's measurements.
#[derive(Debug, Clone, Copy)]
pub struct CcCell {
    /// p99 guest-I/O latency, microseconds.
    pub p99_us: f64,
    /// Completed guest goodput, Gbps.
    pub gbps: f64,
    /// Peak egress-queue occupancy anywhere in the fabric, KiB.
    pub max_queue_kib: f64,
    /// Completed guest I/Os.
    pub completed: u64,
}

const N_COMPUTE: usize = 8;
const N_STORAGE: usize = 8;

/// Build the testbed for one (algorithm, workload) cell.
fn cc_testbed(algo: CcAlgo) -> Testbed {
    let mut cfg = TestbedConfig::small(Variant::Solar, N_COMPUTE, N_STORAGE);
    cfg.seed = 92;
    cfg.ecn.enabled = true;
    cfg.solar.cc = algo;
    // Swift's stock 25 µs target is a fabric-delay target; the SOLAR ack
    // path also carries SSD + server-stack time, so an end-to-end delay
    // controller needs a target above the unloaded storage RTT or it
    // pins the window at the floor.
    cfg.solar.swift.target_delay = SimDuration::from_micros(250);
    Testbed::new(cfg)
}

/// Run one cell: replay the pattern's events, then measure.
pub fn cc_cell(algo: CcAlgo, events: &[ebs_workload::IoEvent], duration_us: u64) -> CcCell {
    let mut tb = cc_testbed(algo);
    let start = SimTime::from_millis(1);
    let mut last = start;
    for e in events {
        let at = start + SimDuration::from_micros(e.at_us);
        last = last.max(at);
        tb.schedule_io(
            at,
            e.compute as usize,
            IoRequest {
                vd_id: e.compute as u64,
                kind: if e.write { IoKind::Write } else { IoKind::Read },
                offset: e.offset,
                len: e.bytes,
            },
        );
    }
    // Generous drain: adversarial queues take a while to clear.
    let horizon = last + SimDuration::from_millis(200);
    tb.run_until(horizon);
    let mut lats: Vec<f64> = tb
        .traces()
        .iter()
        .filter_map(|tr| tr.latency())
        .map(|l| l.as_micros_f64())
        .collect();
    lats.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let p99 = if lats.is_empty() {
        f64::NAN
    } else {
        lats[((lats.len() as f64 * 0.99) as usize).min(lats.len() - 1)]
    };
    let completed: u64 = (0..N_COMPUTE).map(|c| tb.compute_progress(c).0).sum();
    let bytes: u64 = tb
        .traces()
        .iter()
        .filter(|tr| tr.latency().is_some())
        .map(|tr| tr.bytes as u64)
        .sum();
    // Goodput over the pattern's active span (submission window plus the
    // time the last I/O actually took), not the padded drain horizon.
    let span_s = (duration_us as f64 / 1e6).max(1e-9);
    let gbps = bytes as f64 * 8.0 / span_s / 1e9;
    CcCell {
        p99_us: p99,
        gbps,
        max_queue_kib: tb.fabric().max_queue_bytes() as f64 / 1024.0,
        completed,
    }
}

/// The full matrix: 4 algorithms × 4 adversarial workloads, each cell an
/// independent simulation run on a scoped thread.
pub fn cc_matrix(quick: bool) -> ExperimentReport {
    let t0 = Instant::now();
    let adv = AdversarialConfig {
        n_compute: N_COMPUTE as u32,
        duration_us: if quick { 2_000 } else { 8_000 },
    };
    let suite = adversarial::suite();
    let cells: Vec<(&'static str, CcAlgo, CcCell)> = std::thread::scope(|s| {
        let handles: Vec<_> = suite
            .iter()
            .flat_map(|&(name, gen)| {
                let events = gen(&adv);
                ALGOS.into_iter().map(move |algo| {
                    let events = events.clone();
                    (
                        name,
                        algo,
                        s.spawn(move || cc_cell(algo, &events, adv.duration_us)),
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|(name, algo, h)| (name, algo, h.join().expect("cc cell panicked")))
            .collect()
    });

    let mut tables = Vec::new();
    let mut metrics = Vec::new();
    for &(wname, _) in &suite {
        let mut table = TextTable::new(["algorithm", "p99 (us)", "goodput (Gbps)", "max q (KiB)"]);
        for algo in ALGOS {
            let &(_, _, cell) = cells
                .iter()
                .find(|&&(n, a, _)| n == wname && a == algo)
                .expect("all cells computed");
            table.row([
                algo.name().to_string(),
                f1(cell.p99_us),
                f1(cell.gbps),
                f1(cell.max_queue_kib),
            ]);
            let k = format!("{}_{}", algo.name(), wname);
            metrics.push((format!("{k}_p99_us"), cell.p99_us));
            metrics.push((format!("{k}_gbps"), cell.gbps));
            metrics.push((format!("{k}_maxq_kib"), cell.max_queue_kib));
            metrics.push((format!("{k}_completed"), cell.completed as f64));
        }
        tables.push((wname.to_string(), table));
    }
    ExperimentReport {
        output: ExperimentOutput {
            id: "cc_matrix",
            title: "congestion control under adversarial load: HPCC vs Swift vs DCQCN vs fixed"
                .into(),
            tables,
            notes: vec![
                "All cells run SOLAR with RED/ECN marking on; same per-cell seed across algorithms so each controller sees an identical arrival pattern.".into(),
            ],
        },
        metrics,
        wall_s: t0.elapsed().as_secs_f64(),
    }
}

/// The whole `BENCH_CC.json` report.
pub fn run_cc_report(quick: bool) -> RunReport {
    let t0 = Instant::now();
    let experiments = vec![cc_matrix(quick)];
    RunReport {
        quick,
        parallel: true,
        total_wall_s: t0.elapsed().as_secs_f64(),
        experiments,
    }
}
