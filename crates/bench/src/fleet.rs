//! Fleet-scale experiments on the sharded engine: run a region's worth
//! of pods through [`ShardedTestbed`] and measure what the flat testbed
//! cannot reach — ≥10K compute servers and ≥1M virtual disks in one
//! deterministic simulation, plus the structural speedup sharding buys.
//!
//! Three experiments, written to `BENCH_FLEET.json` with the same schema
//! as `BENCH_RESULTS.json` (so `scripts/bench_compare.py` gates both):
//!
//! * `fleet_smoke` — a 4-shard fleet with cross-shard replication and a
//!   ToR blackhole; re-runs the window sequence on 2 worker threads and
//!   asserts the fleet digest is byte-identical (`determinism_ok`).
//! * `fleet_10k` — 256 pod-group shards, 10,240 compute servers,
//!   1,064,960 virtual disks under an open-loop probe workload; one
//!   blackhole per fabric tier (ToR, spine) lands in separate shards and
//!   the Fig. 8-style hung-VM blast radius is read per tier.
//! * `fleet_speedup` — the same server count and workload run as one
//!   flat shard vs four shards (both serial, the honest 1-core
//!   comparison): partitioning alone must buy ≥2× wall clock, because
//!   the flat run interleaves the whole region's events in timestamp
//!   order while each shard window revisits a quarter-size working set
//!   that the cache hierarchy can hold.
//!
//! Wall-derived numbers (occupancy, stall shares, the raw speedup
//! ratio) go into the experiment *notes*, never into gated metrics —
//! only the binary `speedup_ge_2x` verdict is gated, with the 2× bar
//! leaving margin over scheduler noise.

use std::time::Instant;

use ebs_sim::{SimDuration, SimTime};
use ebs_stack::{ReplicationConfig, ShardedTestbed, ShardedTestbedConfig, Variant};
use ebs_stats::TextTable;

use crate::{ExperimentOutput, ExperimentReport, RunReport};

/// Hung threshold for the fleet blast-radius metrics: an I/O outstanding
/// this long has hung its VM (same bar as the reliability scenarios).
const HUNG_AFTER: SimDuration = SimDuration::from_millis(10);

/// Attach the open-loop probe workload to every compute of every shard:
/// the fleet stand-in for thousands of lightly loaded VMs (closed-loop
/// fio at this scale would model a region-wide stress test, not a fleet).
fn attach_probes(fleet: &mut ShardedTestbed, interval: SimDuration, bytes: u32) {
    for s in 0..fleet.shards() {
        let tb = fleet.shard_mut(s);
        for c in 0..tb.config().n_compute {
            tb.attach_probe(SimTime::from_millis(1), c, interval, bytes, 0.7);
        }
    }
}

/// Blackhole one device of `kind` in shard `s` for `[at, heal)`.
fn blackhole(fleet: &mut ShardedTestbed, s: usize, kind: ebs_net::DeviceKind, at: SimTime) {
    let tb = fleet.shard_mut(s);
    let dev = tb.fabric().topology().devices_of_kind(kind)[0];
    tb.schedule_failure(
        at,
        dev,
        ebs_net::FailureMode::Blackhole {
            fraction: 0.75,
            salt: 11,
        },
    );
    tb.schedule_heal(at + SimDuration::from_millis(20), dev);
}

/// Summarize the wall-clock execution shares: per-shard occupancy spread
/// and per-worker barrier-stall share. Informational only (notes).
fn execution_notes(fleet: &ShardedTestbed) -> Vec<String> {
    let mut busy: Vec<u64> = fleet.shard_stats().iter().map(|s| s.busy_ns).collect();
    busy.sort_unstable();
    let total: u64 = busy.iter().sum::<u64>().max(1);
    let share = |ns: u64| ns as f64 / total as f64 * 100.0;
    let mut notes = vec![format!(
        "shard occupancy share min/median/max = {:.2}%/{:.2}%/{:.2}% of {} busy-ms across {} shards",
        share(busy[0]),
        share(busy[busy.len() / 2]),
        share(busy[busy.len() - 1]),
        total / 1_000_000,
        busy.len()
    )];
    for (w, ws) in fleet.worker_stats().iter().enumerate() {
        let wall = (ws.busy_ns + ws.stall_ns).max(1);
        notes.push(format!(
            "worker {w}: busy {}ms, barrier-stall {}ms ({:.1}% stalled) over {} windows",
            ws.busy_ns / 1_000_000,
            ws.stall_ns / 1_000_000,
            ws.stall_ns as f64 / wall as f64 * 100.0,
            ws.windows
        ));
    }
    notes
}

/// Print the per-shard occupancy table to stderr (`--profile`).
pub fn profile_shards(fleet: &ShardedTestbed) {
    let total: u64 = fleet
        .shard_stats()
        .iter()
        .map(|s| s.busy_ns)
        .sum::<u64>()
        .max(1);
    eprintln!("per-shard occupancy ({} shards):", fleet.shards());
    for (i, st) in fleet.shard_stats().iter().enumerate() {
        eprintln!(
            "  shard {i:4}: busy {:8}us ({:5.2}%)  sent {:6}  received {:6}",
            st.busy_ns / 1000,
            st.busy_ns as f64 / total as f64 * 100.0,
            st.sent,
            st.received
        );
    }
}

/// The 4-shard smoke fleet: replication + probes + a ToR blackhole, run
/// serially and on 2 threads; the two digests must be byte-identical.
fn build_smoke(threads: usize) -> ShardedTestbed {
    let mut cfg = ShardedTestbedConfig::new(Variant::Solar, 32, 16, 4);
    cfg.base.vds_per_compute = 4;
    cfg.threads = threads;
    cfg.replication = Some(ReplicationConfig {
        start: SimTime::from_millis(1),
        interval: SimDuration::from_micros(200),
        blocks: 4,
    });
    let mut fleet = ShardedTestbed::new(cfg);
    attach_probes(&mut fleet, SimDuration::from_micros(500), 4096);
    blackhole(
        &mut fleet,
        0,
        ebs_net::DeviceKind::Tor,
        SimTime::from_millis(5),
    );
    fleet.run_until(SimTime::from_millis(40));
    fleet
}

/// Build and run the smoke fleet serially, for `--profile`'s per-shard
/// occupancy table.
pub fn profile_smoke_fleet() -> ShardedTestbed {
    build_smoke(1)
}

/// `fleet_smoke`: the CI-speed cell. Gated metrics are all exact
/// (deterministic simulation counters plus the binary determinism
/// verdict), so the 1% drift gate means "behaviour changed".
pub fn fleet_smoke() -> ExperimentReport {
    let t = Instant::now();
    let serial = build_smoke(1);
    let threaded = build_smoke(2);
    let determinism_ok = serial.metrics_digest() == threaded.metrics_digest();

    let (ios, bytes) = serial.total_progress();
    let (_, _, repl_completed, _) = serial.replication_totals();
    let mut table = TextTable::new([
        "shard",
        "computes",
        "storages",
        "completed I/Os",
        "hung VMs",
    ]);
    for s in 0..serial.shards() {
        let tb = serial.shard(s);
        let done: u64 = (0..tb.config().n_compute)
            .map(|c| tb.compute_progress(c).0)
            .sum();
        table.row([
            s.to_string(),
            tb.config().n_compute.to_string(),
            tb.config().n_storage.to_string(),
            done.to_string(),
            tb.hung_vms_at(serial.now(), HUNG_AFTER).to_string(),
        ]);
    }
    let mut notes = execution_notes(&serial);
    if !determinism_ok {
        notes.push("DETERMINISM VIOLATION: 2-thread digest diverged from serial".to_string());
    }
    let metrics = vec![
        ("completed_ios".to_string(), ios as f64),
        ("completed_mib".to_string(), bytes as f64 / (1 << 20) as f64),
        ("exchanged_msgs".to_string(), serial.exchanged() as f64),
        ("windows".to_string(), serial.windows() as f64),
        ("repl_completed".to_string(), repl_completed as f64),
        ("hung_vms".to_string(), serial.hung_vms(HUNG_AFTER) as f64),
        (
            "determinism_ok".to_string(),
            if determinism_ok { 1.0 } else { 0.0 },
        ),
    ];
    ExperimentReport {
        output: ExperimentOutput {
            id: "fleet_smoke",
            title: "4-shard fleet smoke: replication, ToR blackhole, thread determinism".into(),
            tables: vec![("per-shard".into(), table)],
            notes,
        },
        metrics,
        wall_s: t.elapsed().as_secs_f64(),
    }
}

/// `fleet_10k`: 256 pod-group shards / 10,240 compute servers /
/// 1,064,960 virtual disks — the scale §2.1 describes a region at and
/// the flat testbed cannot represent (its route cache alone is O(n²) in
/// fabric size). One blackhole per tier lands in separate shards; shard
/// isolation means each tier's hung-VM blast radius is read cleanly
/// from its own shard.
pub fn fleet_10k(threads: usize) -> ExperimentReport {
    let t = Instant::now();
    const SHARDS: u32 = 256;
    const VDS_PER_COMPUTE: u64 = 104;
    let mut cfg = ShardedTestbedConfig::new(Variant::Solar, 10_240, 3_072, SHARDS);
    cfg.base.vds_per_compute = VDS_PER_COMPUTE;
    // 1M volumes × 16 segments would be all segment table; 4 keeps the
    // address-space model while the fleet stays memory-light.
    cfg.base.vd_segments = 4;
    cfg.threads = threads;
    cfg.replication = Some(ReplicationConfig {
        start: SimTime::from_millis(2),
        interval: SimDuration::from_millis(2),
        blocks: 8,
    });
    let mut fleet = ShardedTestbed::new(cfg);
    let n_computes: usize = (0..fleet.shards())
        .map(|s| fleet.shard(s).config().n_compute)
        .sum();
    let n_volumes = n_computes as u64 * VDS_PER_COMPUTE;
    attach_probes(&mut fleet, SimDuration::from_millis(2), 16 * 1024);
    blackhole(
        &mut fleet,
        0,
        ebs_net::DeviceKind::Tor,
        SimTime::from_millis(20),
    );
    blackhole(
        &mut fleet,
        1,
        ebs_net::DeviceKind::Spine,
        SimTime::from_millis(20),
    );
    fleet.run_until(SimTime::from_millis(100));

    let (ios, bytes) = fleet.total_progress();
    let (_, _, repl_completed, _) = fleet.replication_totals();
    let events: u64 = (0..fleet.shards())
        .map(|s| fleet.shard(s).events_processed())
        .sum();
    let tor_hung = fleet.shard(0).hung_vms_at(fleet.now(), HUNG_AFTER);
    let spine_hung = fleet.shard(1).hung_vms_at(fleet.now(), HUNG_AFTER);

    let mut table = TextTable::new(["fleet", "value"]);
    table.row(["compute servers", &n_computes.to_string()]);
    table.row(["virtual disks", &n_volumes.to_string()]);
    table.row(["shards", &fleet.shards().to_string()]);
    table.row(["completed I/Os", &ios.to_string()]);
    table.row(["events processed", &events.to_string()]);
    table.row(["cross-shard msgs", &fleet.exchanged().to_string()]);
    let mut tiers = TextTable::new(["blackholed tier", "VMs with I/O hang (own shard)"]);
    tiers.row(["tor", &tor_hung.to_string()]);
    tiers.row(["spine", &spine_hung.to_string()]);

    let mut notes = execution_notes(&fleet);
    notes.push(
        "core/dc_router tiers are not blackholed here: the shard fabric ends at its core tier \
         and the inter-shard boundary is latency-only, so their blast radius needs the Fig. 8 \
         incident model (fig8), not the fleet engine"
            .to_string(),
    );
    let metrics = vec![
        ("compute_servers".to_string(), n_computes as f64),
        ("virtual_disks".to_string(), n_volumes as f64),
        ("completed_ios".to_string(), ios as f64),
        ("completed_gib".to_string(), bytes as f64 / (1 << 30) as f64),
        ("events_millions".to_string(), events as f64 / 1e6),
        ("exchanged_msgs".to_string(), fleet.exchanged() as f64),
        ("repl_completed".to_string(), repl_completed as f64),
        ("tor_hung_vms".to_string(), tor_hung as f64),
        ("spine_hung_vms".to_string(), spine_hung as f64),
    ];
    ExperimentReport {
        output: ExperimentOutput {
            id: "fleet_10k",
            title: "10,240-server / 1.06M-volume fleet under probe load with per-tier blackholes"
                .into(),
            tables: vec![
                ("fleet totals".into(), table),
                ("blast radius".into(), tiers),
            ],
            notes,
        },
        metrics,
        wall_s: t.elapsed().as_secs_f64(),
    }
}

/// Servers in the speedup cells: large enough that the flat region's hot
/// state (fabric queues, route cache, per-compute transports, event
/// heap) outgrows the cache hierarchy. Below ~2K servers both cells fit
/// and the speedup collapses to ~1.05×; at this size the flat cell pays
/// ~3× more per event purely in locality, and the cell doubles as the
/// ≥10K-compute-server completion proof.
const SPEEDUP_COMPUTES: usize = 12_288;
const SPEEDUP_STORAGES: usize = 3_072;

/// One `fleet_speedup` cell: `n_shards` over the same 15,360 servers and
/// probe workload. Returns (wall seconds, completed I/Os, events).
pub fn speedup_cell(n_shards: u32) -> (f64, u64, u64) {
    let mut cfg =
        ShardedTestbedConfig::new(Variant::Solar, SPEEDUP_COMPUTES, SPEEDUP_STORAGES, n_shards);
    cfg.base.vds_per_compute = 4;
    cfg.threads = 1;
    let mut fleet = ShardedTestbed::new(cfg);
    attach_probes(&mut fleet, SimDuration::from_millis(1), 4096);
    let t = Instant::now();
    fleet.run_until(SimTime::from_millis(18));
    let wall = t.elapsed().as_secs_f64();
    let events = (0..fleet.shards())
        .map(|s| fleet.shard(s).events_processed())
        .sum();
    (wall, fleet.total_progress().0, events)
}

/// Entry point for the bench binary's `--cell N` child mode: run one
/// speedup cell and print a line the parent can parse. Kept here so the
/// cell construction can't drift between parent and child.
pub fn speedup_cell_main(n_shards: u32) {
    let (wall, ios, events) = speedup_cell(n_shards);
    println!("cell-result: wall_s={wall:.6} ios={ios} events={events}");
}

/// Run one speedup cell in a fresh child process (re-exec of the bench
/// binary with `--cell N`) and parse its result line. `None` if the
/// spawn or the parse fails — the caller falls back to in-process.
fn speedup_cell_fresh(n_shards: u32) -> Option<(f64, u64, u64)> {
    let exe = std::env::current_exe().ok()?;
    let out = std::process::Command::new(exe)
        .args(["--cell", &n_shards.to_string()])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout.lines().find(|l| l.starts_with("cell-result:"))?;
    let mut wall = None;
    let mut ios = None;
    let mut events = None;
    for field in line.split_whitespace() {
        if let Some(v) = field.strip_prefix("wall_s=") {
            wall = v.parse().ok();
        } else if let Some(v) = field.strip_prefix("ios=") {
            ios = v.parse().ok();
        } else if let Some(v) = field.strip_prefix("events=") {
            events = v.parse().ok();
        }
    }
    Some((wall?, ios?, events?))
}

/// Best-of-N fresh-process measurement of one cell. Sim counters are
/// deterministic (identical across repeats); the min wall is the
/// least-interference estimate of the cell's cost.
fn speedup_cell_best(n_shards: u32, attempts: u32) -> Option<(f64, u64, u64)> {
    let mut best: Option<(f64, u64, u64)> = None;
    for _ in 0..attempts {
        let r = speedup_cell_fresh(n_shards)?;
        best = Some(match best {
            Some(b) if b.0 <= r.0 => b,
            _ => r,
        });
    }
    best
}

/// `fleet_speedup`: one flat shard vs four shards, both serial on one
/// core — the structural win of partitioning (smaller fabrics, smaller
/// route caches, shallower event heaps), separate from thread scaling.
/// Only the binary ≥2× verdict is gated; raw walls go to notes.
///
/// Each cell is measured in a fresh child process, best of two runs:
/// the flat cell's wall is sensitive to inherited process state (after
/// `fleet_10k` frees gigabytes, allocator page reuse was measured to
/// speed the flat run ~2× and collapse the ratio), so in-process
/// sequencing would compare the cells under unequal conditions.
pub fn fleet_speedup() -> ExperimentReport {
    let t = Instant::now();
    let fresh = speedup_cell_best(1, 2).zip(speedup_cell_best(4, 2));
    let isolated = fresh.is_some();
    let ((flat_wall, flat_ios, flat_events), (shard_wall, shard_ios, shard_events)) = fresh
        .unwrap_or_else(|| {
            // Re-exec unavailable (unusual harness); measure in-process.
            (speedup_cell(1), speedup_cell(4))
        });
    let speedup = flat_wall / shard_wall.max(1e-9);

    let mut table = TextTable::new(["cell", "wall (s)", "completed I/Os", "events"]);
    table.row([
        "1 shard (flat)".to_string(),
        format!("{flat_wall:.2}"),
        flat_ios.to_string(),
        flat_events.to_string(),
    ]);
    table.row([
        "4 shards (serial)".to_string(),
        format!("{shard_wall:.2}"),
        shard_ios.to_string(),
        shard_events.to_string(),
    ]);
    let notes = vec![
        format!(
            "serial 4-shard speedup over flat: {speedup:.2}x ({flat_wall:.2}s -> \
             {shard_wall:.2}s, {:.0} -> {:.0} ns/event, same {} servers and probe workload)",
            flat_wall * 1e9 / flat_events.max(1) as f64,
            shard_wall * 1e9 / shard_events.max(1) as f64,
            SPEEDUP_COMPUTES + SPEEDUP_STORAGES
        ),
        "the win is working-set locality: the flat run interleaves the whole region's events \
         in timestamp order while each shard window revisits a quarter-size hot set; \
         route-churn amplification (reboot cycles forcing fabric-wide route-cache \
         invalidation) was hypothesized to dominate but measured ~0"
            .to_string(),
        "both cells run on one worker thread: this isolates the partitioning win from thread \
         scaling, which a single-core host cannot demonstrate (the parallel executor's \
         byte-identical results are asserted by fleet_smoke and the ebs-stack tests instead)"
            .to_string(),
        if isolated {
            "methodology: each cell measured in a fresh child process (best of 2) so allocator \
             and page-reuse state from earlier suite experiments cannot leak into the \
             comparison — in-process sequencing after the 10k fleet was measured to speed the \
             flat cell ~2x and understate the partitioning win"
                .to_string()
        } else {
            "methodology: fresh-process isolation unavailable (re-exec failed); cells measured \
             in-process — the flat wall may be understated by inherited allocator state"
                .to_string()
        },
    ];
    let metrics = vec![
        (
            "speedup_ge_2x".to_string(),
            if speedup >= 2.0 { 1.0 } else { 0.0 },
        ),
        ("compute_servers".to_string(), SPEEDUP_COMPUTES as f64),
        ("flat_completed_ios".to_string(), flat_ios as f64),
        ("sharded_completed_ios".to_string(), shard_ios as f64),
    ];
    ExperimentReport {
        output: ExperimentOutput {
            id: "fleet_speedup",
            title: "partitioning speedup: 15,360 servers flat vs 4 shards, one core".into(),
            tables: vec![("cells".into(), table)],
            notes,
        },
        metrics,
        wall_s: t.elapsed().as_secs_f64(),
    }
}

/// The full fleet suite in `BENCH_FLEET.json` order. `threads` feeds the
/// 10k fleet's executor (metrics are thread-count-independent; only
/// wall-clock changes).
pub fn run_fleet_report(threads: usize) -> RunReport {
    let t0 = Instant::now();
    let experiments = vec![fleet_smoke(), fleet_10k(threads), fleet_speedup()];
    RunReport {
        quick: false,
        parallel: threads > 1,
        total_wall_s: t0.elapsed().as_secs_f64(),
        experiments,
    }
}
