//! Table 2: I/Os with no response for ≥ 1 s under failure scenarios,
//! LUNA vs SOLAR.
//!
//! The paper's testbed is 90 compute × 82 storage servers with 4-32 KiB
//! blocks, I/O depth 4, read:write 1:4. We run a geometry-preserving
//! scaled-down testbed (9 × 8 by default) — absolute hang counts scale
//! with server count and load, but the qualitative result (zero for SOLAR
//! everywhere, non-zero for LUNA wherever a silent or slowly-converging
//! failure hits) is scale-independent.

use ebs_net::{DeviceKind, FailureMode};
use ebs_sim::{SimDuration, SimTime};
use ebs_stack::{FioConfig, Testbed, TestbedConfig, Variant};
use ebs_stats::TextTable;

use crate::output::ExperimentOutput;

/// The seven scenarios of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// One ToR port flaps (brief low-rate loss).
    TorPortFailure,
    /// A ToR fail-stops; host-side failover is slow.
    TorSwitchFailure,
    /// A spine fail-stops; fabric link-down converges fast.
    SpineSwitchFailure,
    /// A device drops 75% of packets (sick line card).
    PacketDrop75,
    /// ToR taken down for maintenance and brought back.
    TorRebootIsolation,
    /// Silent blackhole in a ToR (subset of ECMP buckets die).
    BlackholeTor,
    /// Silent blackhole in a spine.
    BlackholeSpine,
}

impl Scenario {
    /// All scenarios in the table's order.
    pub const ALL: [Scenario; 7] = [
        Scenario::TorPortFailure,
        Scenario::TorSwitchFailure,
        Scenario::SpineSwitchFailure,
        Scenario::PacketDrop75,
        Scenario::TorRebootIsolation,
        Scenario::BlackholeTor,
        Scenario::BlackholeSpine,
    ];

    /// Row label matching the paper.
    pub fn label(&self) -> &'static str {
        match self {
            Scenario::TorPortFailure => "ToR switch port failure",
            Scenario::TorSwitchFailure => "ToR switch failure",
            Scenario::SpineSwitchFailure => "Spine switch failure",
            Scenario::PacketDrop75 => "Packet drop rate=75%",
            Scenario::TorRebootIsolation => "ToR switch reboot/isolation",
            Scenario::BlackholeTor => "Blackhole in a ToR switch",
            Scenario::BlackholeSpine => "Blackhole in a Spine switch",
        }
    }

    /// The paper's LUNA column (SOLAR is 0 everywhere).
    pub fn paper_luna(&self) -> &'static str {
        match self {
            Scenario::TorPortFailure => "0",
            Scenario::TorSwitchFailure => "216",
            Scenario::SpineSwitchFailure => "0",
            Scenario::PacketDrop75 => "10 per second",
            Scenario::TorRebootIsolation => "123",
            Scenario::BlackholeTor => "611",
            Scenario::BlackholeSpine => "1043",
        }
    }
}

/// Count hung I/Os (≥ 1 s without response) for one scenario + variant.
pub fn run_scenario(scenario: Scenario, variant: Variant, quick: bool) -> usize {
    let (n_compute, n_storage) = if quick { (4, 3) } else { (9, 8) };
    let mut cfg = TestbedConfig::small(variant, n_compute, n_storage);
    cfg.seed = 2 + scenario as u64;
    // The paper's testbed scenarios assume normal operations: fabric
    // fail-stop convergence differs per scenario below.
    let mut tb = Testbed::new(cfg);
    for c in 0..n_compute {
        tb.attach_fio(
            SimTime::from_millis(1),
            c,
            FioConfig {
                depth: 2,
                bytes: 16 * 1024,   // mid of the 4-32 KiB band
                read_fraction: 0.2, // read:write 1:4
            },
        );
    }
    let t_fail = SimTime::from_secs(1);
    let tor = tb.fabric().topology().devices_of_kind(DeviceKind::Tor)[0];
    let spine = tb.fabric().topology().devices_of_kind(DeviceKind::Spine)[0];
    match scenario {
        Scenario::TorPortFailure => {
            // A flapping port: 1% loss for 2 s on the ToR; both stacks'
            // retransmissions absorb it.
            tb.schedule_failure(t_fail, tor, FailureMode::RandomLoss { rate: 0.01 });
            tb.schedule_heal(t_fail + SimDuration::from_secs(2), tor);
        }
        Scenario::TorSwitchFailure => {
            // Host-facing failure: bonding failover / host detection is
            // slow, so ECMP exclusion takes ~30 s (beyond the run).
            tb.schedule_failure(t_fail, tor, FailureMode::FailStop);
        }
        Scenario::SpineSwitchFailure => {
            // Fabric-internal fail-stop: link-down propagates and the
            // ToRs re-hash within ~50 ms.
            tb.schedule_failure_with(
                t_fail,
                spine,
                FailureMode::FailStop,
                SimDuration::from_millis(50),
            );
        }
        Scenario::PacketDrop75 => {
            tb.schedule_failure(t_fail, spine, FailureMode::RandomLoss { rate: 0.75 });
        }
        Scenario::TorRebootIsolation => {
            tb.schedule_failure(t_fail, tor, FailureMode::FailStop);
            tb.schedule_heal(t_fail + SimDuration::from_secs(2), tor);
        }
        Scenario::BlackholeTor => {
            tb.schedule_failure(
                t_fail,
                tor,
                FailureMode::Blackhole {
                    fraction: 0.25,
                    salt: 7,
                },
            );
        }
        Scenario::BlackholeSpine => {
            tb.schedule_failure(
                t_fail,
                spine,
                FailureMode::Blackhole {
                    fraction: 0.25,
                    salt: 9,
                },
            );
        }
    }
    let horizon = SimTime::from_secs(if quick { 3 } else { 5 });
    tb.run_until(horizon);
    tb.hung_ios(SimDuration::from_secs(1))
}

/// Hung-I/O counts for the given scenarios, Luna and Solar.
///
/// Every (scenario, variant) cell is an independent simulation with its
/// own seed, so the cells run on scoped threads and are joined back in
/// the caller's order — results are byte-identical to a serial loop (see
/// the `tab2_determinism` integration test).
pub fn tab2_counts(scenarios: &[Scenario], quick: bool) -> Vec<(Scenario, usize, usize)> {
    std::thread::scope(|s| {
        let handles: Vec<_> = scenarios
            .iter()
            .map(|&sc| {
                (
                    sc,
                    s.spawn(move || run_scenario(sc, Variant::Luna, quick)),
                    s.spawn(move || run_scenario(sc, Variant::Solar, quick)),
                )
            })
            .collect();
        handles
            .into_iter()
            .map(|(sc, luna, solar)| {
                (
                    sc,
                    luna.join().expect("luna scenario panicked"),
                    solar.join().expect("solar scenario panicked"),
                )
            })
            .collect()
    })
}

/// Table 2 over an arbitrary scenario subset (the determinism test uses a
/// cheap subset; [`tab2`] uses all seven rows).
pub fn tab2_with(scenarios: &[Scenario], quick: bool) -> ExperimentOutput {
    tab2_render(&tab2_counts(scenarios, quick), quick)
}

/// Render already-computed Table 2 counts (so a harness that timed the
/// runs itself doesn't re-run them to build the table).
pub fn tab2_render(counts: &[(Scenario, usize, usize)], quick: bool) -> ExperimentOutput {
    let mut table = TextTable::new([
        "failure scenario",
        "Luna",
        "Solar",
        "paper Luna",
        "paper Solar",
    ]);
    for &(s, luna, solar) in counts {
        table.row([
            s.label().to_string(),
            luna.to_string(),
            solar.to_string(),
            s.paper_luna().to_string(),
            "0".to_string(),
        ]);
    }
    ExperimentOutput {
        id: "tab2",
        title: "I/Os with no response in one second or longer under failure scenarios".into(),
        tables: vec![(
            format!(
                "{} testbed, depth 2, 16KB, r:w 1:4 (paper: 90x82 servers, depth 4, 4-32KB)",
                if quick { "4x3" } else { "9x8" }
            ),
            table,
        )],
        notes: vec![
            "Absolute counts scale with testbed size and load; the paper's qualitative result is Solar = 0 in every row.".into(),
        ],
    }
}

/// Table 2 in full.
pub fn tab2(quick: bool) -> ExperimentOutput {
    tab2_with(&Scenario::ALL, quick)
}
