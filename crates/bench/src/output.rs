//! Experiment output container: every reproduced figure/table renders to
//! the same structure, printed by the bench harness and asserted on by
//! integration tests.

use ebs_stats::TextTable;

/// One reproduced figure or table.
pub struct ExperimentOutput {
    /// Short id ("fig6", "tab2", ...).
    pub id: &'static str,
    /// Human title quoting the paper's caption.
    pub title: String,
    /// One or more captioned tables.
    pub tables: Vec<(String, TextTable)>,
    /// Free-form notes: paper-vs-measured commentary, substitutions.
    pub notes: Vec<String>,
}

impl ExperimentOutput {
    /// Render the whole experiment as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "================ {} — {} ================\n",
            self.id, self.title
        ));
        for (caption, table) in &self.tables {
            if !caption.is_empty() {
                out.push_str(&format!("\n-- {caption}\n"));
            }
            out.push_str(&table.render());
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }
}
