//! Ablations of SOLAR's design choices (DESIGN.md §4): how much each
//! mechanism contributes, measured on the same testbed as the paper
//! experiments.

use ebs_net::{DeviceKind, FailureMode};
use ebs_sim::{SimDuration, SimTime};
use ebs_stack::{FioConfig, Testbed, TestbedConfig, Variant};
use ebs_stats::{f1, TextTable};

use crate::output::ExperimentOutput;

/// Ablation A: number of persistent paths (1/2/4/8) vs disruption when a
/// ToR silently blackholes a quarter of the ECMP buckets. More paths =
/// more immediately-healthy alternatives = smaller latency spike.
pub fn paths_ablation(quick: bool) -> ExperimentOutput {
    let mut table = TextTable::new([
        "paths",
        "hung >=1s",
        "p99 (us)",
        "worst I/O (us)",
        "retransmits",
    ]);
    for n_paths in [1usize, 2, 4, 8] {
        let mut cfg = TestbedConfig::small(Variant::Solar, 4, 3);
        cfg.solar.n_paths = n_paths;
        cfg.seed = 33;
        let mut tb = Testbed::new(cfg);
        for c in 0..4 {
            tb.attach_fio(
                SimTime::from_millis(1),
                c,
                FioConfig {
                    depth: 2,
                    bytes: 8192,
                    read_fraction: 0.2,
                },
            );
        }
        let tor = tb.fabric().topology().devices_of_kind(DeviceKind::Tor)[0];
        let t_fail = SimTime::from_millis(500);
        tb.schedule_failure(
            t_fail,
            tor,
            FailureMode::Blackhole {
                fraction: 0.25,
                salt: 5,
            },
        );
        tb.run_until(SimTime::from_secs(if quick { 2 } else { 4 }));
        let hung = tb.hung_ios(SimDuration::from_secs(1));
        let mut lats: Vec<f64> = tb
            .traces()
            .iter()
            .filter(|t| t.submitted >= t_fail)
            .filter_map(|t| t.latency())
            .map(|l| l.as_micros_f64())
            .collect();
        lats.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p99 = lats
            .get((lats.len() as f64 * 0.99) as usize)
            .copied()
            .unwrap_or(f64::NAN);
        let worst = lats.last().copied().unwrap_or(f64::NAN);
        let retx: u64 = (0..4).map(|c| tb.solar_retransmits(c)).sum();
        table.row([
            n_paths.to_string(),
            hung.to_string(),
            f1(p99),
            f1(worst),
            retx.to_string(),
        ]);
    }
    ExperimentOutput {
        id: "ablate-paths",
        title: "Multi-path width vs blackhole disruption (§4.5 uses 4 paths)".into(),
        tables: vec![("25% ToR blackhole at t=500ms".into(), table)],
        notes: vec![
            "Even 1 path recovers via probe-driven ECMP remapping (no hangs), but its worst I/O eats the full probe-and-remap delay; width lets traffic shift instantly to already-healthy paths.".into(),
        ],
    }
}

/// Ablation B: HPCC (INT-driven) vs a fixed BDP window under incast-like
/// background load. HPCC keeps fabric queues — and thus tail latency — low.
pub fn hpcc_ablation(quick: bool) -> ExperimentOutput {
    let mut table = TextTable::new([
        "congestion control",
        "probe p50 (us)",
        "probe p99 (us)",
        "bg goodput (MB/s)",
        "max switch queue (KB)",
    ]);
    for (label, int_enabled, window_scale) in [
        ("HPCC from INT", true, 1u64),
        // The alternative to feedback CC is a static window big enough
        // for peak throughput — i.e. HPCC's growth ceiling (4x BDP).
        ("fixed peak-sized window", false, 4),
    ] {
        let n_bg = 5;
        let mut cfg = TestbedConfig::small(Variant::Solar, 1 + n_bg, 3);
        cfg.solar.int_enabled = int_enabled;
        cfg.solar.hpcc.line_rate =
            ebs_sim::Bandwidth::from_bps(cfg.solar.hpcc.line_rate.as_bps() * window_scale);
        cfg.seed = 44;
        let mut tb = Testbed::new(cfg);
        for b in 0..n_bg {
            tb.attach_fio(
                SimTime::from_millis(1),
                1 + b,
                FioConfig {
                    depth: 24,
                    bytes: 64 * 1024,
                    read_fraction: 0.0,
                },
            );
        }
        let mut t = SimTime::from_millis(5);
        let n = if quick { 150 } else { 600 };
        for i in 0..n {
            tb.schedule_io(
                t,
                0,
                ebs_sa::IoRequest {
                    vd_id: 0,
                    kind: ebs_sa::IoKind::Write,
                    offset: (i % 100) * 4096,
                    len: 4096,
                },
            );
            t += SimDuration::from_micros(400);
        }
        tb.run_until(t + SimDuration::from_millis(100));
        let mut lats: Vec<f64> = tb
            .traces()
            .iter()
            .filter(|tr| tr.compute == 0)
            .filter_map(|tr| tr.latency())
            .map(|l| l.as_micros_f64())
            .collect();
        lats.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p50 = lats[lats.len() / 2];
        let p99 = lats[(lats.len() as f64 * 0.99) as usize];
        let bg_bytes: u64 = (1..=n_bg).map(|b| tb.compute_progress(b).1).sum();
        let goodput = bg_bytes as f64 / tb.now().as_secs_f64() / 1e6;
        table.row([
            label.to_string(),
            f1(p50),
            f1(p99),
            format!("{goodput:.0}"),
            f1(tb.fabric().max_queue_bytes() as f64 / 1024.0),
        ]);
    }
    ExperimentOutput {
        id: "ablate-hpcc",
        title: "Fine-grained CC vs fixed window under heavy background load (§4.8)".into(),
        tables: vec![("4KB write probe among 64KB writers".into(), table)],
        notes: vec![
            "Without INT feedback the transport is blind: overload -> drops -> timeout-halving -> collapse, and no signal to grow back. HPCC sustains ~1.5x the background goodput at bounded queues; the probe's extra latency is the price of a fabric that is actually full.".into(),
        ],
    }
}

/// Ablation C: the CPU cost of SOLAR's segment CRC aggregation vs a full
/// software CRC per block (the alternative §4.5 rejects). Wall-clock
/// measured in-process.
pub fn crc_ablation() -> ExperimentOutput {
    const BLOCK: usize = 4096;
    const BLOCKS: usize = 512; // one 2 MiB segment
    let blocks: Vec<Vec<u8>> = (0..BLOCKS)
        .map(|i| (0..BLOCK).map(|j| ((i * 31 + j) % 251) as u8).collect())
        .collect();
    let crcs: Vec<u32> = blocks
        .iter()
        .map(|b| ebs_crc::block_crc_raw(b, BLOCK))
        .collect();

    let reps = 20;
    // (a) full software CRC of every block (what moving CRC back to the
    // CPU would cost).
    let t0 = std::time::Instant::now();
    let mut acc = 0u32;
    for _ in 0..reps {
        for (b, &c) in blocks.iter().zip(&crcs) {
            acc ^= ebs_crc::crc32_raw(b) ^ c;
        }
    }
    let full = t0.elapsed().as_secs_f64() / reps as f64;
    assert_eq!(acc, 0);

    // (b) SOLAR: XOR-accumulate blocks + claimed CRCs, one CRC at the end.
    let t0 = std::time::Instant::now();
    for _ in 0..reps {
        let mut chk = ebs_crc::SegmentChecker::new(BLOCK);
        for (b, &c) in blocks.iter().zip(&crcs) {
            chk.add_block(b, c);
        }
        assert_eq!(chk.verify_and_reset(), ebs_crc::SegmentVerdict::Ok);
    }
    let agg = t0.elapsed().as_secs_f64() / reps as f64;

    let mut table = TextTable::new(["scheme", "us per 2MiB segment", "relative"]);
    table.row([
        "software CRC per block".to_string(),
        f1(full * 1e6),
        "1.00x".to_string(),
    ]);
    table.row([
        "XOR aggregate + 1 CRC (SOLAR)".to_string(),
        f1(agg * 1e6),
        format!("{:.2}x", agg / full),
    ]);
    ExperimentOutput {
        id: "ablate-crc",
        title: "CPU cost of integrity checking: per-block CRC vs segment aggregation".into(),
        tables: vec![("512 x 4KiB blocks, this machine".into(), table)],
        notes: vec![
            "Both schemes detect any single-block corruption; the aggregate trades k CRC passes for k XOR passes + 1 CRC. See tests/integrity.rs for the detection proof.".into(),
        ],
    }
}

/// Ablation D: receive-path state, SOLAR vs TCP — the "few maintained
/// states" claim of §4.4 made concrete.
pub fn state_ablation() -> ExperimentOutput {
    // A TCP responder under out-of-order delivery buffers segments; the
    // SOLAR responder holds nothing but counters, no matter what arrives.
    let mut tcp = ebs_tcp::TcpEngine::listen(ebs_tcp::TcpConfig::default());
    let mut client = ebs_tcp::TcpEngine::connect(ebs_tcp::TcpConfig::default());
    let now = SimTime::ZERO;
    // Handshake.
    for _ in 0..3 {
        while let Some(s) = client.poll_segment(now) {
            tcp.on_segment(now, s);
        }
        while let Some(s) = tcp.poll_segment(now) {
            client.on_segment(now, s);
        }
    }
    client.send(bytes::Bytes::from(vec![0u8; 256 * 1024]));
    let mut segs = Vec::new();
    while let Some(s) = client.poll_segment(now) {
        segs.push(s);
    }
    // Drop the first segment; deliver the rest out of order → they all
    // sit in the receiver's reassembly buffer.
    let tcp_buffered: usize = segs[1..].iter().map(|s| s.payload.len()).sum();
    for s in segs.into_iter().skip(1) {
        tcp.on_segment(now, s);
    }

    let solar_state = std::mem::size_of::<ebs_solar::SolarResponder>();
    let mut table = TextTable::new(["receive path", "state held under reordering"]);
    table.row([
        "TCP (kernel/LUNA): reassembly buffer".to_string(),
        format!(
            "{} KB buffered for ONE dropped segment",
            tcp_buffered / 1024
        ),
    ]);
    table.row([
        "SOLAR responder: total struct size".to_string(),
        format!("{} bytes, forever", solar_state),
    ]);
    ExperimentOutput {
        id: "ablate-state",
        title: "One-block-one-packet: receive-path state under loss+reordering (§4.4)".into(),
        tables: vec![("".into(), table)],
        notes: vec![
            "This is why the SA data path fits in FPGA BRAM: Table 3's Addr table is the only per-request state, and it is bounded by in-flight reads.".into(),
        ],
    }
}

/// Ablation E: why the FN is not RDMA (§3.1) — the RNIC connection
/// cliff. A storage node fronts tens of thousands of compute-side
/// connections; RNIC on-chip QP caches hold ~5,000.
pub fn rnic_cliff_ablation() -> ExperimentOutput {
    let model = ebs_rdma::RnicModel::default();
    let mut table = TextTable::new([
        "active connections",
        "latency multiplier",
        "per-node throughput (rel.)",
    ]);
    for conns in [100usize, 1_000, 5_000, 10_000, 20_000, 50_000] {
        table.row([
            conns.to_string(),
            format!("{:.2}x", model.latency_multiplier(conns)),
            format!("{:.2}", model.throughput_factor(conns)),
        ]);
    }
    ExperimentOutput {
        id: "ablate-rnic",
        title: "The RNIC connection-scalability cliff that ruled RDMA out for the FN (§3.1)".into(),
        tables: vec![(
            "QP-cache capacity 5,000 (the paper's observed threshold)".into(),
            table,
        )],
        notes: vec![
            "Paper: the RNIC throughput went down quickly beyond 5,000 connections; a software stack holds 30K+ connections per node (see ebs-luna RtcEngine tests).".into(),
        ],
    }
}

/// All ablations.
pub fn run_all(quick: bool) -> Vec<ExperimentOutput> {
    vec![
        paths_ablation(quick),
        hpcc_ablation(quick),
        crc_ablation(),
        state_ablation(),
        rnic_cliff_ablation(),
    ]
}
