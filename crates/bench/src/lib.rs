//! # ebs-bench — the experiment harness
//!
//! One function per figure/table of the paper's evaluation; each returns
//! an [`ExperimentOutput`] the bench target prints and integration tests
//! assert on. `quick = true` shrinks run lengths; `cargo bench` runs the
//! full sizes.
//!
//! | id | content | module |
//! |----|---------|--------|
//! | fig3/fig4/fig5/fig7/fig8 | workload & fleet characterization | [`characterization`] |
//! | fig6/tab1/fig14/fig15 | latency & throughput on the testbed | [`performance`] |
//! | tab2 | failure scenarios, Luna vs Solar | [`reliability`] |
//! | fig11/tab3 | FPGA faults & resources | [`hardware`] |
//! | ablate-* | design-choice ablations | [`ablations`] |
//!
//! # Parallel harness
//!
//! Every experiment (and every inner sweep point of fig6/fig14/fig15/tab2)
//! is an independent simulation with its own seed, so [`run_report`] runs
//! them on scoped threads and joins the results back in paper order. The
//! rendered output is byte-identical to a serial run — determinism comes
//! from per-run seeds, never from execution order. `fig7` is derived from
//! fig6 + fig14 numbers and is computed after both join.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

pub mod ablations;
pub mod blk;
pub mod cc;
pub mod characterization;
pub mod fleet;
pub mod hardware;
pub mod obs;
mod output;
pub mod performance;
pub mod reliability;

pub use output::ExperimentOutput;

/// One experiment's output plus its measured cost and headline numbers.
pub struct ExperimentReport {
    /// The rendered figure/table.
    pub output: ExperimentOutput,
    /// Wall-clock seconds this experiment took (its own thread's time).
    pub wall_s: f64,
    /// Headline numbers for `BENCH_RESULTS.json` (name → value).
    pub metrics: Vec<(String, f64)>,
}

/// A full harness run: every experiment in paper order plus wall-clock
/// accounting, serializable to `BENCH_RESULTS.json`.
pub struct RunReport {
    /// Quick (CI) sizes or full paper sizes.
    pub quick: bool,
    /// Whether the multi-threaded harness was used.
    pub parallel: bool,
    /// End-to-end wall-clock seconds for the whole suite.
    pub total_wall_s: f64,
    /// Per-experiment reports, paper order.
    pub experiments: Vec<ExperimentReport>,
}

impl RunReport {
    /// Serialize to JSON (hand-rolled: the build is offline and vendors no
    /// serde). Metric names and experiment ids are ASCII identifiers.
    pub fn to_json(&self) -> String {
        fn num(v: f64) -> String {
            if v.is_finite() {
                format!("{v:.4}")
            } else {
                "null".to_string()
            }
        }
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"quick\": {},\n", self.quick));
        s.push_str(&format!("  \"parallel\": {},\n", self.parallel));
        s.push_str(&format!(
            "  \"total_wall_s\": {},\n",
            num(self.total_wall_s)
        ));
        s.push_str("  \"experiments\": [\n");
        for (i, e) in self.experiments.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"id\": \"{}\", \"wall_s\": {}, \"metrics\": {{",
                e.output.id,
                num(e.wall_s)
            ));
            for (j, (k, v)) in e.metrics.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!("\"{}\": {}", k, num(*v)));
            }
            s.push('}');
            // Notes are informational context (wall-derived shares,
            // substitutions) — bench_compare renders them but never
            // gates on them.
            if !e.output.notes.is_empty() {
                s.push_str(", \"notes\": [");
                for (j, n) in e.output.notes.iter().enumerate() {
                    if j > 0 {
                        s.push_str(", ");
                    }
                    s.push('"');
                    for c in n.chars() {
                        match c {
                            '"' => s.push_str("\\\""),
                            '\\' => s.push_str("\\\\"),
                            c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
                            c => s.push(c),
                        }
                    }
                    s.push('"');
                }
                s.push(']');
            }
            s.push('}');
            if i + 1 < self.experiments.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ]\n}\n");
        s
    }
}

fn timed(f: impl FnOnce() -> (ExperimentOutput, Vec<(String, f64)>)) -> ExperimentReport {
    let t = Instant::now();
    let (output, metrics) = f();
    ExperimentReport {
        output,
        metrics,
        wall_s: t.elapsed().as_secs_f64(),
    }
}

fn variant_key(v: ebs_stack::Variant) -> &'static str {
    match v {
        ebs_stack::Variant::Kernel => "kernel",
        ebs_stack::Variant::Luna => "luna",
        ebs_stack::Variant::Rdma => "rdma",
        ebs_stack::Variant::SolarStar => "solar_star",
        ebs_stack::Variant::Solar => "solar",
    }
}

fn exp_fig6(quick: bool) -> (ExperimentReport, performance::Fig6Numbers) {
    let t = Instant::now();
    let (output, nums) = performance::fig6(quick);
    let mut metrics = Vec::new();
    for (i, key) in ["kernel", "luna", "solar"].iter().enumerate() {
        metrics.push((format!("{key}_write_median_us"), nums.write_median_us[i]));
        metrics.push((format!("{key}_read_median_us"), nums.read_median_us[i]));
    }
    let report = ExperimentReport {
        output,
        metrics,
        wall_s: t.elapsed().as_secs_f64(),
    };
    (report, nums)
}

fn exp_fig14(quick: bool) -> (ExperimentReport, performance::Fig14Numbers) {
    let t = Instant::now();
    let (output, nums) = performance::fig14(quick);
    let mut metrics = Vec::new();
    for &(v, c, mbps) in &nums.throughput {
        metrics.push((format!("{}_{}core_mbps", variant_key(v), c), mbps));
    }
    for &(v, c, iops) in &nums.iops {
        metrics.push((format!("{}_{}core_iops", variant_key(v), c), iops));
    }
    let report = ExperimentReport {
        output,
        metrics,
        wall_s: t.elapsed().as_secs_f64(),
    };
    (report, nums)
}

fn exp_fig15(quick: bool) -> ExperimentReport {
    let t = Instant::now();
    let (output, nums) = performance::fig15(quick);
    let mut metrics = Vec::new();
    for &(v, heavy, median, p99) in &nums.points {
        let load = if heavy { "heavy" } else { "light" };
        metrics.push((format!("{}_{load}_median_us", variant_key(v)), median));
        metrics.push((format!("{}_{load}_p99_us", variant_key(v)), p99));
    }
    ExperimentReport {
        output,
        metrics,
        wall_s: t.elapsed().as_secs_f64(),
    }
}

fn exp_tab2(quick: bool) -> ExperimentReport {
    let t = Instant::now();
    let counts = reliability::tab2_counts(&reliability::Scenario::ALL, quick);
    let mut metrics = Vec::new();
    let mut luna_total = 0usize;
    let mut solar_total = 0usize;
    for &(_, luna, solar) in &counts {
        luna_total += luna;
        solar_total += solar;
    }
    metrics.push(("luna_hung_total".to_string(), luna_total as f64));
    metrics.push(("solar_hung_total".to_string(), solar_total as f64));
    ExperimentReport {
        // Rebuilding the table re-runs nothing: tab2_with would, so
        // render from the counts we already have.
        output: reliability::tab2_render(&counts, quick),
        metrics,
        wall_s: t.elapsed().as_secs_f64(),
    }
}

fn exp_fig7(
    fig6: &performance::Fig6Numbers,
    fig14: &performance::Fig14Numbers,
) -> ExperimentReport {
    let t = Instant::now();
    let (k, l, s) = performance::stack_perfs(fig6, fig14);
    let metrics = vec![
        ("kernel_weighted_us".to_string(), k.latency_us),
        ("luna_weighted_us".to_string(), l.latency_us),
        ("solar_weighted_us".to_string(), s.latency_us),
        ("solar_iops".to_string(), s.iops),
    ];
    ExperimentReport {
        output: characterization::fig7(k, l, s),
        metrics,
        wall_s: t.elapsed().as_secs_f64(),
    }
}

/// Run every experiment, timing each; `parallel` selects the scoped-thread
/// harness (the output is byte-identical either way).
pub fn run_report(quick: bool, parallel: bool) -> RunReport {
    let t0 = Instant::now();
    let mut experiments: Vec<ExperimentReport> = Vec::with_capacity(12);
    let (fig6_nums, fig14_nums);
    if parallel {
        (experiments, fig6_nums, fig14_nums) = std::thread::scope(|s| {
            let fig3 = s.spawn(|| timed(characterization::fig3));
            let fig4 = s.spawn(|| timed(characterization::fig4));
            let fig5 = s.spawn(|| timed(characterization::fig5));
            let fig6 = s.spawn(move || exp_fig6(quick));
            let tab1 = s.spawn(move || timed(|| performance::tab1(quick)));
            let fig8 = s.spawn(|| timed(characterization::fig8));
            let fig11 = s.spawn(|| timed(hardware::fig11));
            let fig14 = s.spawn(move || exp_fig14(quick));
            let fig15 = s.spawn(move || exp_fig15(quick));
            let tab2 = s.spawn(move || exp_tab2(quick));
            let tab3 = s.spawn(|| timed(|| (hardware::tab3(), vec![])));
            let mut out = Vec::with_capacity(12);
            out.push(fig3.join().expect("fig3 panicked"));
            out.push(fig4.join().expect("fig4 panicked"));
            out.push(fig5.join().expect("fig5 panicked"));
            let (fig6_r, f6) = fig6.join().expect("fig6 panicked");
            out.push(fig6_r);
            out.push(tab1.join().expect("tab1 panicked"));
            out.push(fig8.join().expect("fig8 panicked"));
            out.push(fig11.join().expect("fig11 panicked"));
            let (fig14_r, f14) = fig14.join().expect("fig14 panicked");
            out.push(fig14_r);
            out.push(fig15.join().expect("fig15 panicked"));
            out.push(tab2.join().expect("tab2 panicked"));
            out.push(tab3.join().expect("tab3 panicked"));
            (out, f6, f14)
        });
    } else {
        experiments.push(timed(characterization::fig3));
        experiments.push(timed(characterization::fig4));
        experiments.push(timed(characterization::fig5));
        let (fig6_r, f6) = exp_fig6(quick);
        experiments.push(fig6_r);
        experiments.push(timed(|| performance::tab1(quick)));
        experiments.push(timed(characterization::fig8));
        experiments.push(timed(hardware::fig11));
        let (fig14_r, f14) = exp_fig14(quick);
        experiments.push(fig14_r);
        experiments.push(exp_fig15(quick));
        experiments.push(exp_tab2(quick));
        experiments.push(timed(|| (hardware::tab3(), vec![])));
        fig6_nums = f6;
        fig14_nums = f14;
    }
    experiments.push(exp_fig7(&fig6_nums, &fig14_nums));
    RunReport {
        quick,
        parallel,
        total_wall_s: t0.elapsed().as_secs_f64(),
        experiments,
    }
}

/// Run every experiment in paper order (parallel harness), returning just
/// the printable outputs.
pub fn run_all(quick: bool) -> Vec<ExperimentOutput> {
    run_report(quick, true)
        .experiments
        .into_iter()
        .map(|e| e.output)
        .collect()
}
