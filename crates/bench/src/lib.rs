//! # ebs-bench — the experiment harness
//!
//! One function per figure/table of the paper's evaluation; each returns
//! an [`ExperimentOutput`] the bench target prints and integration tests
//! assert on. `quick = true` shrinks run lengths for CI-grade tests;
//! `cargo bench` runs the full sizes.
//!
//! | id | content | module |
//! |----|---------|--------|
//! | fig3/fig4/fig5/fig7/fig8 | workload & fleet characterization | [`characterization`] |
//! | fig6/tab1/fig14/fig15 | latency & throughput on the testbed | [`performance`] |
//! | tab2 | failure scenarios, Luna vs Solar | [`reliability`] |
//! | fig11/tab3 | FPGA faults & resources | [`hardware`] |
//! | ablate-* | design-choice ablations | [`ablations`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod characterization;
pub mod hardware;
mod output;
pub mod performance;
pub mod reliability;

pub use output::ExperimentOutput;

/// Run every experiment in paper order, printing each.
pub fn run_all(quick: bool) -> Vec<ExperimentOutput> {
    let mut out = Vec::new();
    out.push(characterization::fig3());
    out.push(characterization::fig4());
    out.push(characterization::fig5());
    let (fig6, fig6_nums) = performance::fig6(quick);
    out.push(fig6);
    out.push(performance::tab1(quick));
    out.push(characterization::fig8());
    out.push(hardware::fig11());
    let (fig14, fig14_nums) = performance::fig14(quick);
    out.push(fig14);
    let (fig15, _) = performance::fig15(quick);
    out.push(fig15);
    out.push(reliability::tab2(quick));
    out.push(hardware::tab3());
    let (k, l, s) = performance::stack_perfs(&fig6_nums, &fig14_nums);
    out.push(characterization::fig7(k, l, s));
    out
}
