//! Pushdown placement matrix (`BENCH_BLK.json`).
//!
//! The experiment the blk frontend exists for: the same storage-function
//! workload — filtered range scans, checksum-verifies, compaction merges
//! — executed at each of the three placements behind
//! [`ebs_wire::PushdownPlacement`] (client baseline, storage-node CPU,
//! DPU match-action stage) on the same SOLAR testbed. Per cell the
//! matrix reports:
//!
//! * **p99 request latency (µs)** over all completed blk requests,
//! * **data moved (MiB)** — block payload bytes crossing the
//!   compute↔storage boundary (the frontend's `data_bytes` counter; the
//!   headline pushdown claim is this column shrinking for remote
//!   placements),
//! * **result blocks** — blocks the client actually received, identical
//!   across placements (the frontend CRC-verifies remote results against
//!   the reference execution, so this is an exactness check, not a
//!   summary),
//! * **DPU cycles** — the metered match-action budget (zero for the
//!   other placements).
//!
//! Each cell is an independent deterministic simulation with the same
//! seed, so every placement sees an identical request stream.

use ebs_sim::{SimDuration, SimTime};
use ebs_stack::blk::{BlkReq, Predicate, StorageFn};
use ebs_stack::{BlkMountConfig, Testbed, TestbedConfig, Variant};
use ebs_stats::{f1, TextTable};
use ebs_wire::PushdownPlacement;
use std::time::Instant;

use crate::output::ExperimentOutput;
use crate::{ExperimentReport, RunReport};

/// The placements compared, in table order.
pub const PLACEMENTS: [PushdownPlacement; 3] = [
    PushdownPlacement::Client,
    PushdownPlacement::StorageNode,
    PushdownPlacement::Dpu,
];

/// One cell's measurements.
#[derive(Debug, Clone, Copy)]
pub struct BlkCell {
    /// p99 blk-request latency, microseconds.
    pub p99_us: f64,
    /// Block payload bytes moved compute↔storage, MiB.
    pub data_mib: f64,
    /// Result blocks delivered to the client across all requests.
    pub blocks_out: u64,
    /// DPU match-action cycles metered (zero off the DPU placement).
    pub dpu_cycles: u64,
    /// Requests completed (must equal requests accepted).
    pub completed: u64,
    /// Pushdown parts retransmitted (zero on a healthy fabric).
    pub retransmits: u64,
}

const N_COMPUTE: usize = 4;
const N_STORAGE: usize = 4;

/// The workloads swept, in table order: a ~1/16-selective scan, a
/// checksum-verify (no data returned at all when pushed down), and an
/// 8:1 compaction merge.
pub fn functions() -> [(&'static str, StorageFn); 3] {
    [
        (
            "scan",
            StorageFn::scan(Predicate {
                offset: 0,
                mask: 0x0F,
                value: 0x07,
            }),
        ),
        ("verify", StorageFn::checksum_verify()),
        ("merge8", StorageFn::merge(8)),
    ]
}

/// Run one (placement, function) cell: `requests` pushdown requests of
/// `blocks` blocks each, strided across segments so consecutive requests
/// land on different block servers and some ranges split into
/// multi-part responses.
pub fn blk_cell(
    placement: PushdownPlacement,
    func: StorageFn,
    requests: u32,
    blocks: u32,
) -> BlkCell {
    let mut cfg = TestbedConfig::small(Variant::Solar, N_COMPUTE, N_STORAGE);
    cfg.seed = 57;
    let mut tb = Testbed::new(cfg);
    tb.blk_mount(0, BlkMountConfig::with_placement(placement))
        .expect("the default feature set always negotiates");

    let start = SimTime::from_millis(1);
    let gap = SimDuration::from_micros(100);
    let window = 8 * ebs_sa::SEGMENT_BLOCKS;
    let stride = ebs_sa::SEGMENT_BLOCKS / 2 + u64::from(blocks);
    for i in 0..requests {
        let first = (u64::from(i) * stride) % window;
        tb.schedule_blk(
            start + gap * u64::from(i),
            0,
            (i % 2) as usize,
            BlkReq::pushdown(0, first, blocks, func),
        );
    }
    tb.run_until(start + gap * u64::from(requests) + SimDuration::from_millis(500));

    let c = tb.blk_counters();
    let mut lats: Vec<f64> = tb
        .blk_traces()
        .iter()
        .filter_map(|t| t.completed.map(|done| (done - t.submitted).as_micros_f64()))
        .collect();
    lats.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let p99 = if lats.is_empty() {
        f64::NAN
    } else {
        lats[((lats.len() as f64 * 0.99) as usize).min(lats.len() - 1)]
    };
    let blocks_out: u64 = tb
        .blk_traces()
        .iter()
        .map(|t| u64::from(t.blocks_out))
        .sum();
    let (_, cycles, _) = tb.blk_dpu_stats();
    BlkCell {
        p99_us: p99,
        data_mib: c.data_bytes as f64 / (1024.0 * 1024.0),
        blocks_out,
        dpu_cycles: cycles,
        completed: c.completed,
        retransmits: c.retransmits,
    }
}

/// The full matrix: 3 placements × 3 storage functions, each cell an
/// independent deterministic simulation on a scoped thread.
pub fn blk_matrix(quick: bool) -> ExperimentReport {
    let t0 = Instant::now();
    let (requests, blocks) = if quick { (24, 128) } else { (96, 256) };
    let funcs = functions();
    let cells: Vec<(&'static str, PushdownPlacement, BlkCell)> = std::thread::scope(|s| {
        let handles: Vec<_> = funcs
            .iter()
            .flat_map(|&(name, func)| {
                PLACEMENTS.into_iter().map(move |placement| {
                    (
                        name,
                        placement,
                        s.spawn(move || blk_cell(placement, func, requests, blocks)),
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|(name, p, h)| (name, p, h.join().expect("blk cell panicked")))
            .collect()
    });

    let mut tables = Vec::new();
    let mut metrics = Vec::new();
    for &(fname, _) in &funcs {
        let mut table = TextTable::new([
            "placement",
            "p99 (us)",
            "data moved (MiB)",
            "result blocks",
            "dpu cycles",
        ]);
        for placement in PLACEMENTS {
            let &(_, _, cell) = cells
                .iter()
                .find(|&&(n, p, _)| n == fname && p == placement)
                .expect("all cells computed");
            table.row([
                placement.label().to_string(),
                f1(cell.p99_us),
                format!("{:.2}", cell.data_mib),
                cell.blocks_out.to_string(),
                cell.dpu_cycles.to_string(),
            ]);
            let k = format!("{}_{}", placement.label(), fname);
            metrics.push((format!("{k}_p99_us"), cell.p99_us));
            metrics.push((format!("{k}_data_mib"), cell.data_mib));
            metrics.push((format!("{k}_blocks_out"), cell.blocks_out as f64));
            metrics.push((format!("{k}_completed"), cell.completed as f64));
        }
        tables.push((fname.to_string(), table));
    }
    ExperimentReport {
        output: ExperimentOutput {
            id: "blk_pushdown_matrix",
            title: "storage-function pushdown: client vs storage-node vs DPU placement".into(),
            tables,
            notes: vec![
                "Same seed per cell across placements, so every placement executes an identical request stream; result blocks match across rows because the frontend CRC-verifies remote results against the reference execution.".into(),
                "'data moved' is the frontend's data_bytes counter (block payload crossing compute<->storage), not fabric frame bytes — see DESIGN.md section 11 for the SOLAR header-only read-response convention.".into(),
            ],
        },
        metrics,
        wall_s: t0.elapsed().as_secs_f64(),
    }
}

/// The whole `BENCH_BLK.json` report.
pub fn run_blk_report(quick: bool) -> RunReport {
    let t0 = Instant::now();
    let experiments = vec![blk_matrix(quick)];
    RunReport {
        quick,
        parallel: true,
        total_wall_s: t0.elapsed().as_secs_f64(),
        experiments,
    }
}
