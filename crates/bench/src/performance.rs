//! Performance experiments on the composed testbed: Fig. 6 (latency
//! breakdown), Table 1 (RPC latency + cores), Fig. 14 (per-core
//! throughput/IOPS), Fig. 15 (latency under load).

use ebs_sa::{IoKind, IoRequest, BLOCK_SIZE};
use ebs_sim::{Bandwidth, SimDuration, SimTime};
use ebs_stack::{Breakdown, FioConfig, Testbed, TestbedConfig, Variant};
use ebs_stats::{f1, TextTable};
use ebs_storage::{BnConfig, SsdConfig};
use ebs_workload::StackPerf;
use rand::Rng;

use crate::output::ExperimentOutput;

/// Measured medians used by downstream experiments (Fig. 7) and the
/// shape tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fig6Numbers {
    /// Median 4K write latency per variant (µs): kernel, luna, solar.
    pub write_median_us: [f64; 3],
    /// Median 4K read latency per variant (µs).
    pub read_median_us: [f64; 3],
}

impl Fig6Numbers {
    /// Production-weighted mean latency (writes outnumber reads ~3.5:1,
    /// §2.3) for variant `i`.
    pub fn weighted_us(&self, i: usize) -> f64 {
        0.78 * self.write_median_us[i] + 0.22 * self.read_median_us[i]
    }
}

/// Run `n` open-loop 4 KiB probe I/Os of each kind on a small testbed,
/// alongside a moderate same-server background load (Fig. 6 is measured
/// on *production* servers, which are never idle — the background is what
/// separates production medians from Table 1's unloaded RPC numbers).
fn light_load_run(variant: Variant, n: usize, seed: u64) -> Testbed {
    let mut cfg = TestbedConfig::small(variant, 2, 4);
    cfg.seed = seed;
    let mut tb = Testbed::new(cfg);
    for c in 0..2 {
        tb.attach_fio(
            SimTime::from_micros(100),
            c,
            FioConfig {
                depth: 6,
                bytes: 16 * 1024,
                read_fraction: 0.25,
            },
        );
    }
    let mut rng = ebs_sim::rng::stream(seed, "fig6-arrivals");
    let mut t = SimTime::from_millis(1);
    let vd_blocks = 16 * ebs_sa::SEGMENT_BLOCKS;
    for i in 0..n * 2 {
        let kind = if i % 2 == 0 {
            IoKind::Write
        } else {
            IoKind::Read
        };
        let offset = rng.gen_range(0..vd_blocks - 1) * BLOCK_SIZE as u64;
        tb.schedule_io(
            t,
            i % 2,
            IoRequest {
                vd_id: (i % 2) as u64,
                kind,
                offset,
                len: 4096,
            },
        );
        t += SimDuration::from_micros(rng.gen_range(120..260));
    }
    tb.run_until(t + SimDuration::from_millis(60));
    tb
}

/// Fig. 6: 4K read/write latency breakdown, median and p95, for kernel /
/// Luna / Solar. Returns the output plus the means fig7 consumes.
pub fn fig6(quick: bool) -> (ExperimentOutput, Fig6Numbers) {
    let n = if quick { 300 } else { 1500 };
    let variants = [Variant::Kernel, Variant::Luna, Variant::Solar];
    let mut tables = Vec::new();
    let mut nums = Fig6Numbers::default();

    // One run per variant, reused across all four table views; the three
    // runs are seed-independent, so they execute concurrently.
    let runs: Vec<Testbed> = std::thread::scope(|s| {
        let handles: Vec<_> = variants
            .iter()
            .enumerate()
            .map(|(vi, &v)| s.spawn(move || light_load_run(v, n, 60 + vi as u64)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fig6 run panicked"))
            .collect()
    });
    for (kind, label) in [(IoKind::Read, "4KB Read"), (IoKind::Write, "4KB Write")] {
        for (q, qlabel) in [(0.5, "median"), (0.95, "95th percentile")] {
            let mut table = TextTable::new(["stack", "SA", "FN", "BN", "SSD", "total (us)"]);
            for (vi, &variant) in variants.iter().enumerate() {
                let b = Breakdown::collect(runs[vi].traces(), kind, 4096);
                let (sa, fn_, bn, ssd, total) = b.at(q);
                if q == 0.5 {
                    if kind == IoKind::Write {
                        nums.write_median_us[vi] = total;
                    } else {
                        nums.read_median_us[vi] = total;
                    }
                }
                table.row([
                    variant.label().to_string(),
                    f1(sa),
                    f1(fn_),
                    f1(bn),
                    f1(ssd),
                    f1(total),
                ]);
            }
            tables.push((format!("{label} ({qlabel})"), table));
        }
    }
    let out = ExperimentOutput {
        id: "fig6",
        title: "I/O latency breakdown of 4KB size (SA / FN / BN / SSD)".into(),
        tables,
        notes: vec![
            "Kernel: FN dominates. Luna: FN shrinks ~80%, SA becomes the bottleneck (§3.3). Solar: SA collapses, FN halves again.".into(),
            "Run under moderate same-server background load (Fig. 6 is production data, not an idle testbed).".into(),
        ],
    };
    (out, nums)
}

/// Null-storage testbed config: storage answers in ~50 ns so everything
/// measured is FN RPC (Table 1's methodology).
fn rpc_only_config(variant: Variant, server_gbps: u64) -> TestbedConfig {
    let mut cfg = TestbedConfig::small(variant, 1, 2);
    cfg.fabric.server_link.rate = Bandwidth::from_gbps(server_gbps);
    // Table 1 predates the bare-metal DPU: no starved internal PCIe in
    // the loop, and the benchmark is the bare RPC path without the SA.
    cfg.pcie.internal_rate = Bandwidth::from_gbps(4000);
    cfg.pcie.host_rate = Bandwidth::from_gbps(4000);
    cfg.sa_enabled = false;
    // Lab RPC benchmarks run deep-buffered (no production shallow-buffer
    // policy): without this, a 192-deep TCP burst tail-drops its way into
    // serial RTOs instead of pipelining at line rate.
    let deep = 8 * 1024 * 1024;
    cfg.fabric.server_link.queue_bytes = deep;
    cfg.fabric.tor_spine.queue_bytes = deep;
    cfg.fabric.spine_core.queue_bytes = deep;
    cfg.fabric.core_router.queue_bytes = deep;
    cfg.ssd = SsdConfig {
        write_cache_us: 0.05,
        write_sigma: 0.01,
        read_nand_us: 0.05,
        read_sigma: 0.01,
        channels: 64,
        per_block_us: 0.0,
    };
    cfg.bn = BnConfig {
        base_latency: SimDuration::from_nanos(20),
        rate: Bandwidth::from_gbps(4000),
        jitter_sigma: 0.01,
    };
    cfg.compute_cores = 16; // report consumed cores, don't clamp them
    cfg
}

/// Table 1: FN RPC latency and consumed cores, kernel vs LUNA, at 2×25GE
/// and 2×100GE, single 4KB RPC and line-rate stress.
pub fn tab1(quick: bool) -> (ExperimentOutput, Vec<(String, f64)>) {
    let mut tables = Vec::new();
    let mut metrics = Vec::new();
    for (nic, gbps) in [("2x25GE", 50u64), ("2x100GE", 200u64)] {
        let mut table = TextTable::new(["load", "stack", "avg RPC latency (us)", "consumed cores"]);
        for variant in [Variant::Kernel, Variant::Luna] {
            // --- single 4KB RPC, unloaded ---
            let mut tb = Testbed::new(rpc_only_config(variant, gbps));
            let mut t = SimTime::from_millis(1);
            let n = if quick { 60 } else { 300 };
            for _ in 0..n {
                tb.schedule_io(
                    t,
                    0,
                    IoRequest {
                        vd_id: 0,
                        kind: IoKind::Write,
                        offset: 0,
                        len: 4096,
                    },
                );
                t += SimDuration::from_millis(1);
            }
            tb.run_until(t + SimDuration::from_millis(50));
            let done: Vec<f64> = tb
                .traces()
                .iter()
                .filter_map(|tr| tr.latency())
                // RPC latency = e2e minus the (software) SA stage; the
                // nulled storage contributes ~0.
                .zip(tb.traces().iter())
                .map(|(lat, tr)| (lat.saturating_sub(tr.sa)).as_micros_f64())
                .collect();
            let avg = done.iter().sum::<f64>() / done.len() as f64;
            metrics.push((
                format!(
                    "{}_{}_single_rpc_us",
                    variant.label().to_lowercase(),
                    nic.to_lowercase()
                ),
                avg,
            ));
            table.row([
                "single 4KB RPC".to_string(),
                variant.label().to_string(),
                f1(avg),
                "1".to_string(),
            ]);

            // --- stress to line rate ---
            let mut tb = Testbed::new(rpc_only_config(variant, gbps));
            let depth = if gbps > 100 { 512 } else { 192 };
            tb.attach_fio(
                SimTime::from_millis(1),
                0,
                FioConfig {
                    depth,
                    bytes: 32 * 1024,
                    read_fraction: 0.0,
                },
            );
            let warmup = SimTime::from_millis(20);
            tb.run_until(warmup);
            tb.reset_compute_stats();
            let (ios0, bytes0) = tb.compute_progress(0);
            let horizon = warmup + SimDuration::from_millis(if quick { 40 } else { 120 });
            tb.run_until(horizon);
            let (ios1, bytes1) = tb.compute_progress(0);
            let window = tb.now().saturating_since(warmup).as_secs_f64();
            let gbps_done = (bytes1 - bytes0) as f64 * 8.0 / window / 1e9;
            let cores = tb.consumed_cores(0);
            // Mean latency of I/Os completed during the window.
            let lat: Vec<f64> = tb
                .traces()
                .iter()
                .filter(|t| t.completed.is_some_and(|c| c >= warmup))
                .filter_map(|t| t.latency())
                .map(|l| l.as_micros_f64())
                .collect();
            let avg = lat.iter().sum::<f64>() / lat.len().max(1) as f64;
            metrics.push((
                format!(
                    "{}_{}_stress_cores",
                    variant.label().to_lowercase(),
                    nic.to_lowercase()
                ),
                cores.max(1.0),
            ));
            table.row([
                format!("{:.0} Gbps stress ({} deep)", gbps_done, depth),
                variant.label().to_string(),
                f1(avg),
                f1(cores.max(1.0)),
            ]);
            let _ = ios0;
            let _ = ios1;
        }
        tables.push((format!("Tested using {nic}"), table));
    }
    let output = ExperimentOutput {
        id: "tab1",
        title: "FN RPC latency and CPU used under different load".into(),
        tables,
        notes: vec![
            "Paper: single 4KB RPC 70.1 vs 13.1 us (2x25GE), 43.4 vs 12.4 us (2x100GE); stress cores 4 vs 1 and 12 vs 4.".into(),
            "Storage is nulled (~50ns) so the measurement isolates the FN RPC path.".into(),
        ],
    };
    (output, metrics)
}

/// Fig. 14 results for integration tests.
#[derive(Debug, Clone)]
pub struct Fig14Numbers {
    /// (variant, cores) → 64K read throughput MB/s.
    pub throughput: Vec<(Variant, usize, f64)>,
    /// (variant, cores) → 4K read IOPS.
    pub iops: Vec<(Variant, usize, f64)>,
}

fn fio_rate(variant: Variant, cores: usize, bytes: u32, quick: bool, seed: u64) -> (f64, f64) {
    let mut cfg = TestbedConfig::small(variant, 1, 6);
    cfg.compute_cores = cores;
    cfg.seed = seed;
    let mut tb = Testbed::new(cfg);
    tb.attach_fio(
        SimTime::from_millis(1),
        0,
        FioConfig {
            depth: 32,
            bytes,
            read_fraction: 1.0,
        },
    );
    let warmup = SimTime::from_millis(15);
    tb.run_until(warmup);
    let (ios0, bytes0) = tb.compute_progress(0);
    let horizon = warmup + SimDuration::from_millis(if quick { 30 } else { 100 });
    tb.run_until(horizon);
    let (ios1, bytes1) = tb.compute_progress(0);
    let window = tb.now().saturating_since(warmup).as_secs_f64();
    let mbps = (bytes1 - bytes0) as f64 / window / 1e6;
    let iops = (ios1 - ios0) as f64 / window;
    (mbps, iops)
}

/// Fig. 14: fio read, 32 I/O depth, under 1-3 cores.
///
/// The 24 sweep points (4 variants × 3 core counts × {throughput, IOPS})
/// are independent simulations with per-point seeds; they run on scoped
/// threads and are assembled back in the figure's fixed order.
pub fn fig14(quick: bool) -> (ExperimentOutput, Fig14Numbers) {
    let variants = [
        Variant::Luna,
        Variant::Rdma,
        Variant::SolarStar,
        Variant::Solar,
    ];
    let cores_sweep = [1usize, 2, 3];
    let mut tput = TextTable::new(["stack", "1-core", "2-core", "3-core (MB/s)"]);
    let mut iops_t = TextTable::new(["stack", "1-core", "2-core", "3-core (IOPS)"]);
    let mut numbers = Fig14Numbers {
        throughput: Vec::new(),
        iops: Vec::new(),
    };
    let points: Vec<(Variant, usize, f64, f64)> = std::thread::scope(|s| {
        let handles: Vec<_> = variants
            .iter()
            .flat_map(|&v| cores_sweep.iter().map(move |&c| (v, c)))
            .map(|(v, c)| {
                let mbps = s.spawn(move || fio_rate(v, c, 64 * 1024, quick, 140 + c as u64).0);
                let iops = s.spawn(move || fio_rate(v, c, 4096, quick, 150 + c as u64).1);
                (v, c, mbps, iops)
            })
            .collect();
        handles
            .into_iter()
            .map(|(v, c, mbps, iops)| {
                (
                    v,
                    c,
                    mbps.join().expect("fig14 throughput point panicked"),
                    iops.join().expect("fig14 iops point panicked"),
                )
            })
            .collect()
    });
    for &v in &variants {
        let mut row_t = vec![v.label().to_string()];
        let mut row_i = vec![v.label().to_string()];
        for &c in &cores_sweep {
            let &(_, _, mbps, iops) = points
                .iter()
                .find(|&&(pv, pc, _, _)| pv == v && pc == c)
                .expect("all sweep points computed");
            numbers.throughput.push((v, c, mbps));
            row_t.push(format!("{mbps:.0}"));
            numbers.iops.push((v, c, iops));
            row_i.push(format!("{iops:.0}"));
        }
        tput.row(row_t);
        iops_t.row(row_i);
    }
    let out = ExperimentOutput {
        id: "fig14",
        title: "Fio read test with 32 I/O depth under different numbers of cores".into(),
        tables: vec![
            ("(a) Throughput of 64KB I/O".into(), tput),
            ("(b) IOPS of 4KB I/O".into(), iops_t),
        ],
        notes: vec![
            "Luna/RDMA/Solar* hairpin the DPU's internal PCIe twice -> goodput ceiling ~32 Gbps (4000 MB/s); Solar bypasses it (Fig. 10).".into(),
            "Paper: Solar single-core throughput +78%, IOPS +46% vs Luna; ~150K IOPS/core (§4.8).".into(),
        ],
    };
    (out, numbers)
}

/// Fig. 15 results for integration tests: (variant, heavy?) → (median,
/// p99) µs.
#[derive(Debug, Clone)]
pub struct Fig15Numbers {
    /// Measured points.
    pub points: Vec<(Variant, bool, f64, f64)>,
}

/// One fig15 point: (median, p99) µs of the 4KB-write probe for one
/// variant under light or heavy background load.
fn fig15_point(v: Variant, heavy: bool, quick: bool) -> (f64, f64) {
    let mut cfg = TestbedConfig::small(v, 1, 4);
    cfg.seed = 15;
    let mut tb = Testbed::new(cfg);
    // Heavy load = bulk writes on the *same server* as the probe:
    // they contend for the DPU CPU and the PCIe channels, which is
    // exactly what the offloaded data path isolates the probe from.
    if heavy {
        // Production "heavy" is IOPS-heavy (the 4K-dominated mix
        // of Fig. 5): it stresses the per-I/O CPU path, which is
        // what the offloaded data plane shields the probe from.
        tb.attach_fio(
            SimTime::from_millis(1),
            0,
            FioConfig {
                depth: 96,
                bytes: 4096,
                read_fraction: 0.0,
            },
        );
    }
    // The probe: open-loop single 4KB writes.
    let n = if quick { 200 } else { 800 };
    let mut t = SimTime::from_millis(5);
    let mut rng = ebs_sim::rng::stream(15, "fig15-probe");
    for _ in 0..n {
        let offset = rng.gen_range(0..1000u64) * BLOCK_SIZE as u64;
        tb.schedule_io(
            t,
            0,
            IoRequest {
                vd_id: 0,
                kind: IoKind::Write,
                offset,
                len: 4096,
            },
        );
        t += SimDuration::from_micros(rng.gen_range(300..600));
    }
    tb.run_until(t + SimDuration::from_millis(120));
    let mut lats: Vec<f64> = tb
        .traces()
        .iter()
        .filter(|tr| tr.compute == 0 && tr.bytes == 4096)
        .filter_map(|tr| tr.latency())
        .map(|l| l.as_micros_f64())
        .collect();
    lats.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = lats[lats.len() / 2];
    let p99 = lats[(lats.len() as f64 * 0.99) as usize];
    (median, p99)
}

/// Fig. 15: single 4KB write latency under light vs heavy background load.
/// The 8 (load, variant) points run concurrently, each with its own
/// deterministic seed and probe RNG stream.
pub fn fig15(quick: bool) -> (ExperimentOutput, Fig15Numbers) {
    let variants = [
        Variant::Luna,
        Variant::Rdma,
        Variant::SolarStar,
        Variant::Solar,
    ];
    let mut tables = Vec::new();
    let mut numbers = Fig15Numbers { points: Vec::new() };
    let points: Vec<(Variant, bool, f64, f64)> = std::thread::scope(|s| {
        let handles: Vec<_> = [false, true]
            .into_iter()
            .flat_map(|heavy| variants.iter().map(move |&v| (v, heavy)))
            .map(|(v, heavy)| (v, heavy, s.spawn(move || fig15_point(v, heavy, quick))))
            .collect();
        handles
            .into_iter()
            .map(|(v, heavy, h)| {
                let (median, p99) = h.join().expect("fig15 point panicked");
                (v, heavy, median, p99)
            })
            .collect()
    });
    for heavy in [false, true] {
        let mut table = TextTable::new(["stack", "median (us)", "99th (us)"]);
        for &v in &variants {
            let &(_, _, median, p99) = points
                .iter()
                .find(|&&(pv, ph, _, _)| pv == v && ph == heavy)
                .expect("all fig15 points computed");
            numbers.points.push((v, heavy, median, p99));
            table.row([v.label().to_string(), f1(median), f1(p99)]);
        }
        tables.push((
            if heavy {
                "(b) Heavy load".to_string()
            } else {
                "(a) Light load".to_string()
            },
            table,
        ));
    }
    let out = ExperimentOutput {
        id: "fig15",
        title: "I/O latency of a single 4KB write under background load".into(),
        tables,
        notes: vec![
            "Paper: Solar close to RDMA at light load; under heavy load Solar's HPCC + offload keep tail latency far below Luna.".into(),
        ],
    };
    (out, numbers)
}

/// Helper: derive the StackPerf inputs for fig7 from fig6 + fig14 runs.
pub fn stack_perfs(fig6: &Fig6Numbers, fig14: &Fig14Numbers) -> (StackPerf, StackPerf, StackPerf) {
    let iops_of = |v: Variant| {
        fig14
            .iops
            .iter()
            .filter(|(vv, c, _)| *vv == v && *c == 3)
            .map(|(_, _, i)| *i)
            .next()
            .unwrap_or(1.0)
    };
    let luna_iops = iops_of(Variant::Luna);
    let solar_iops = iops_of(Variant::Solar);
    (
        StackPerf {
            latency_us: fig6.weighted_us(0),
            iops: luna_iops * 0.4, // kernel-era servers: kernel not in fig14; scaled by stack CPU
        },
        StackPerf {
            latency_us: fig6.weighted_us(1),
            iops: luna_iops,
        },
        StackPerf {
            latency_us: fig6.weighted_us(2),
            iops: solar_iops,
        },
    )
}
