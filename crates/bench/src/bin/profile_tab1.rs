//! Ad-hoc timing probe for individual experiments (not part of the suite).

use ebs_bench::reliability::{run_scenario, Scenario};
use ebs_stack::Variant;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "tab1".into());
    let t = std::time::Instant::now();
    match which.as_str() {
        "tab1" => {
            let (o, _) = ebs_bench::performance::tab1(true);
            eprintln!("{}", o.title);
        }
        "fig6" => {
            let (o, _) = ebs_bench::performance::fig6(true);
            eprintln!("{}", o.title);
        }
        "fig14" => {
            let (o, _) = ebs_bench::performance::fig14(true);
            eprintln!("{}", o.title);
        }
        "fig15" => {
            let (o, _) = ebs_bench::performance::fig15(true);
            eprintln!("{}", o.title);
        }
        "tab2" => {
            let c = ebs_bench::reliability::tab2_counts(&Scenario::ALL, true);
            eprintln!("{:?}", c);
        }
        "sizes" => {
            use ebs_stack::{Event, Msg, Reply};
            eprintln!("Event={}", std::mem::size_of::<Event>());
            eprintln!("NetEvent={}", std::mem::size_of::<ebs_net::NetEvent>());
            eprintln!(
                "FabricPacket<Msg>={}",
                std::mem::size_of::<ebs_net::FabricPacket<Msg>>()
            );
            eprintln!("Msg={}", std::mem::size_of::<Msg>());
            eprintln!("Reply={}", std::mem::size_of::<Reply>());
            eprintln!("Segment={}", std::mem::size_of::<ebs_tcp::Segment>());
            eprintln!("EbsHeader={}", std::mem::size_of::<ebs_wire::EbsHeader>());
            eprintln!("IntStack={}", std::mem::size_of::<ebs_wire::IntStack>());
            eprintln!("OutPacket={}", std::mem::size_of::<ebs_solar::OutPacket>());
            eprintln!("IoRequest={}", std::mem::size_of::<ebs_sa::IoRequest>());
        }
        "one" => {
            use ebs_sim::SimTime;
            use ebs_stack::{FioConfig, Testbed, TestbedConfig};
            let variant = match std::env::args().nth(2).as_deref() {
                Some("luna") => Variant::Luna,
                _ => Variant::Solar,
            };
            let mut cfg = TestbedConfig::small(variant, 4, 3);
            cfg.seed = 2 + Scenario::PacketDrop75 as u64;
            let mut tb = Testbed::new(cfg);
            if std::env::args().nth(3).as_deref() == Some("prof") {
                tb.enable_profiling();
            }
            for c in 0..4 {
                tb.attach_fio(
                    SimTime::from_millis(1),
                    c,
                    FioConfig {
                        depth: 2,
                        bytes: 16 * 1024,
                        read_fraction: 0.2,
                    },
                );
            }
            let t0 = std::time::Instant::now();
            tb.run_until(SimTime::from_secs(3));
            let wall = t0.elapsed().as_secs_f64();
            tb.sample_obs();
            let ev = tb.metrics().counter("sim", "events_processed");
            eprintln!(
                "{variant:?} events={ev} wall={wall:.2}s ns/event={:.0}",
                wall * 1e9 / ev as f64
            );
            let (hits, misses) = tb.fabric().route_cache_stats();
            eprintln!(
                "delivered={} drops={} route hits={hits} misses={misses}",
                tb.fabric().delivered(),
                tb.fabric().drops().total(),
            );
            for key in ["pkts_sent", "retransmits", "probes_sent"] {
                eprintln!("solar.{key}={}", tb.metrics().counter("solar", key));
            }
            if let Some(p) = tb.phase_cycles() {
                eprintln!("{p:#?}");
            }
        }
        "cells" => {
            for sc in Scenario::ALL {
                for v in [Variant::Luna, Variant::Solar] {
                    let t0 = std::time::Instant::now();
                    let hung = run_scenario(sc, v, true);
                    eprintln!(
                        "{:?} {:?}: hung={} wall={:.2}s",
                        sc,
                        v,
                        hung,
                        t0.elapsed().as_secs_f64()
                    );
                }
            }
        }
        _ => panic!("unknown"),
    }
    eprintln!("{which}: {:.2}s", t.elapsed().as_secs_f64());
}
