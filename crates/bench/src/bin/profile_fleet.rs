//! Scratch profiler for the fleet speedup cell: run the flat and
//! 4-shard cells at a given scale with phase instrumentation, to see
//! where flat-cell cycles go as the region grows.
//!
//! `cargo run --release -p ebs-bench --bin profile_fleet -- <computes> <storages> [horizon_ms]`

use ebs_sim::{SimDuration, SimTime};
use ebs_stack::{ShardedTestbed, ShardedTestbedConfig, Variant};

fn cell(n_shards: u32, computes: usize, storages: usize, horizon_ms: u64, profile: bool) {
    let mut cfg = ShardedTestbedConfig::new(Variant::Solar, computes, storages, n_shards);
    cfg.base.vds_per_compute = 4;
    cfg.threads = 1;
    let mut fleet = ShardedTestbed::new(cfg);
    for s in 0..fleet.shards() {
        let tb = fleet.shard_mut(s);
        if profile {
            tb.enable_profiling();
        }
        for c in 0..tb.config().n_compute {
            tb.attach_probe(
                SimTime::from_millis(1),
                c,
                SimDuration::from_millis(1),
                4096,
                0.7,
            );
        }
    }
    let t = std::time::Instant::now();
    fleet.run_until(SimTime::from_millis(horizon_ms));
    let wall = t.elapsed().as_secs_f64();
    let events: u64 = (0..fleet.shards())
        .map(|s| fleet.shard(s).events_processed())
        .sum();
    eprintln!(
        "{n_shards} shard(s): wall {wall:.2}s, {events} events, {:.0}ns/event, {} ios",
        wall * 1e9 / events.max(1) as f64,
        fleet.total_progress().0
    );
    if profile {
        let mut tot = ebs_stack::PhaseCycles::default();
        for s in 0..fleet.shards() {
            if let Some(p) = fleet.shard(s).phase_cycles() {
                tot.pop_ns += p.pop_ns;
                tot.net_ns += p.net_ns;
                tot.deliver_ns += p.deliver_ns;
                tot.pump_ns += p.pump_ns;
                tot.host_ns += p.host_ns;
                tot.events += p.events;
            }
        }
        let sum = (tot.pop_ns + tot.net_ns + tot.deliver_ns + tot.pump_ns + tot.host_ns).max(1);
        let share = |ns: u64| ns as f64 / sum as f64 * 100.0;
        eprintln!(
            "  pop {:5.1}%  net {:5.1}%  deliver {:5.1}%  pump {:5.1}%  host {:5.1}%",
            share(tot.pop_ns),
            share(tot.net_ns),
            share(tot.deliver_ns),
            share(tot.pump_ns),
            share(tot.host_ns)
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let computes: usize = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(1024);
    let storages: usize = args.get(2).and_then(|v| v.parse().ok()).unwrap_or(256);
    let horizon: u64 = args.get(3).and_then(|v| v.parse().ok()).unwrap_or(60);
    let profile = args.iter().any(|a| a == "--profile");
    cell(1, computes, storages, horizon, profile);
    cell(4, computes, storages, horizon, profile);
}
