//! The workload-characterization figures: Figs. 3, 4, 5 and the incident
//! scatter of Fig. 8, plus the rollout Fig. 7 (which consumes measured
//! per-stack performance).

use ebs_sa::{split_io, IoKind, IoRequest, SegmentTable, BLOCK_SIZE};
use ebs_stats::{f1, f2, Ecdf, TextTable};
use ebs_workload::{
    evolution, hot_server_iops, incidents, FleetModel, RwMix, SizeMixture, StackPerf, QUARTERS,
};
use rand::Rng;

use crate::output::ExperimentOutput;

/// Fig. 3: hourly EBS vs total traffic and I/O rates over a week.
///
/// Returns the rendered figure plus its headline metrics for
/// `BENCH_RESULTS.json` (so the bench gate guards the numbers, not just
/// the wall time).
pub fn fig3() -> (ExperimentOutput, Vec<(String, f64)>) {
    let model = FleetModel::default();
    let traffic = model.traffic(168, 3);
    let rates = model.io_rates(168, 3);

    let mut t1 = TextTable::new([
        "hour",
        "EBS RX (GB)",
        "EBS TX (GB)",
        "All RX (GB)",
        "All TX (GB)",
    ]);
    for s in traffic.iter().step_by(12) {
        t1.row([
            s.hour.to_string(),
            f2(s.ebs_rx),
            f2(s.ebs_tx),
            f2(s.all_rx),
            f2(s.all_tx),
        ]);
    }
    let (mut ebs, mut all, mut txs) = (0.0, 0.0, 0.0);
    for s in &traffic {
        ebs += s.ebs_rx + s.ebs_tx;
        all += s.all_rx + s.all_tx;
        txs += s.ebs_tx / s.all_tx;
    }
    let mut t2 = TextTable::new(["metric", "measured", "paper"]);
    t2.row([
        "EBS share of TX traffic".to_string(),
        f2(txs / 168.0),
        "0.63".into(),
    ]);
    t2.row([
        "EBS share of all traffic".to_string(),
        f2(ebs / all),
        "0.51".into(),
    ]);

    let mut t3 = TextTable::new(["hour", "read kI/O-req/s", "write kI/O-req/s", "w:r"]);
    for s in rates.iter().step_by(12) {
        t3.row([
            s.hour.to_string(),
            f2(s.read_krps),
            f2(s.write_krps),
            f2(s.write_krps / s.read_krps),
        ]);
    }
    let metrics = vec![
        ("ebs_tx_share".to_string(), txs / 168.0),
        ("ebs_total_share".to_string(), ebs / all),
    ];
    let output = ExperimentOutput {
        id: "fig3",
        title: "Hourly traffic & I/O rate per server over a week".into(),
        tables: vec![
            ("(a) EBS traffic over total traffic (12h samples)".into(), t1),
            ("(a) aggregate shares".into(), t2),
            ("(b) EBS I/O request rate (12h samples)".into(), t3),
        ],
        notes: vec![
            "Generative model calibrated to §2.3: EBS = 63% of TX / 51% of total; writes 3-4x reads.".into(),
        ],
    };
    (output, metrics)
}

/// Fig. 4: per-minute IOPS of a hot server over a day.
///
/// Returns the figure plus its headline metric (peak kIOPS).
pub fn fig4() -> (ExperimentOutput, Vec<(String, f64)>) {
    let series = hot_server_iops(4);
    let mut table = TextTable::new(["hour", "mean kIOPS", "min kIOPS", "max kIOPS"]);
    for h in 0..24 {
        let window: Vec<f64> = series[h * 60..(h + 1) * 60]
            .iter()
            .map(|(_, v)| *v / 1e3)
            .collect();
        let mean = window.iter().sum::<f64>() / 60.0;
        let min = window.iter().cloned().fold(f64::MAX, f64::min);
        let max = window.iter().cloned().fold(0.0, f64::max);
        table.row([h.to_string(), f1(mean), f1(min), f1(max)]);
    }
    let peak = series.iter().map(|(_, v)| *v).fold(0.0, f64::max);
    let metrics = vec![("peak_kiops".to_string(), peak / 1e3)];
    let output = ExperimentOutput {
        id: "fig4",
        title: "Average IOPS per minute over a day, highly-loaded server".into(),
        tables: vec![("hourly summary of per-minute samples".into(), table)],
        notes: vec![format!(
            "peak {:.0}K IOPS vs paper 'up to 200K IOPS (or network flows per second)'",
            peak / 1e3
        )],
    };
    (output, metrics)
}

/// Fig. 5: CDFs of I/O and FN RPC sizes.
pub fn fig5() -> (ExperimentOutput, Vec<(String, f64)>) {
    let mixture = SizeMixture::fig5_io();
    let rw = RwMix::production();
    let mut rng = ebs_sim::rng::stream(5, "fig5");

    // Sample guest I/Os, push each through SA splitting to get RPC sizes.
    let mut seg = SegmentTable::new(ebs_sa::SEGMENT_BLOCKS);
    let vd_blocks = 64 * ebs_sa::SEGMENT_BLOCKS;
    seg.provision(1, vd_blocks, |s| (s % 16) as u32);
    let mut io_cdf = Ecdf::new();
    let mut rpc_cdf = Ecdf::new();
    let (mut reads, mut writes) = (Ecdf::new(), Ecdf::new());
    for _ in 0..50_000 {
        let bytes = mixture.sample(&mut rng);
        let blocks = (bytes / BLOCK_SIZE) as u64;
        let offset = rng.gen_range(0..vd_blocks - blocks) * BLOCK_SIZE as u64;
        let kind = if rw.sample_is_write(&mut rng) {
            IoKind::Write
        } else {
            IoKind::Read
        };
        io_cdf.add(bytes as f64 / 1024.0);
        if kind == IoKind::Write {
            writes.add(bytes as f64 / 1024.0);
        } else {
            reads.add(bytes as f64 / 1024.0);
        }
        let req = IoRequest {
            vd_id: 1,
            kind,
            offset,
            len: bytes,
        };
        for sub in split_io(&seg, &req, BLOCK_SIZE).expect("valid") {
            rpc_cdf.add((sub.blocks.len() * BLOCK_SIZE as usize) as f64 / 1024.0);
        }
    }
    let anchors = [1.0, 4.0, 16.0, 64.0, 128.0, 256.0, 1024.0];
    let mut table = TextTable::new(["size (KB)", "I/O read CDF", "I/O write CDF", "RPC CDF"]);
    for a in anchors {
        table.row([
            format!("{a}"),
            f2(reads.fraction_le(a)),
            f2(writes.fraction_le(a)),
            f2(rpc_cdf.fraction_le(a)),
        ]);
    }
    let metrics = vec![
        ("rpc_le_4k_fraction".to_string(), rpc_cdf.fraction_le(4.0)),
        (
            "rpc_le_128k_fraction".to_string(),
            rpc_cdf.fraction_le(128.0),
        ),
    ];
    let output = ExperimentOutput {
        id: "fig5",
        title: "Distribution of I/O and FN RPC sizes".into(),
        tables: vec![("CDF at the paper's anchor sizes".into(), table)],
        notes: vec![
            format!(
                "~{:.0}% of RPCs ≤ 4KB (paper: about 40%); RPC ≤ 128KB fraction {:.2} (paper: all)",
                rpc_cdf.fraction_le(4.0) * 100.0,
                rpc_cdf.fraction_le(128.0)
            ),
            "RPC sizes derive from I/O sizes via real SA splitting over 2MB segments.".into(),
        ],
    };
    (output, metrics)
}

/// Fig. 7: the three-year latency/IOPS evolution, given measured
/// per-stack performance (from fig6/fig14 runs).
pub fn fig7(kernel: StackPerf, luna: StackPerf, solar: StackPerf) -> ExperimentOutput {
    let points = evolution(kernel, luna, solar);
    let mut table = TextTable::new(["quarter", "latency (norm to 19Q1)", "IOPS (norm to 21Q4)"]);
    for p in &points {
        table.row([
            QUARTERS[p.quarter].to_string(),
            f2(p.latency_norm),
            f2(p.iops_norm),
        ]);
    }
    let reduction = (1.0 - points[11].latency_norm) * 100.0;
    let iops_gain = points[11].iops_norm / points[0].iops_norm;
    ExperimentOutput {
        id: "fig7",
        title: "Evolution of normalized average IOPS and latency per server".into(),
        tables: vec![("quarterly".into(), table)],
        notes: vec![format!(
            "latency reduced {reduction:.0}% (paper: 72%); IOPS x{iops_gain:.1} (paper: ~3x / +220%)"
        )],
    }
}

/// Fig. 8: I/O-hang incidents by failure tier over two years.
pub fn fig8() -> (ExperimentOutput, Vec<(String, f64)>) {
    let events = incidents::generate(100, 8);
    let mut scatter = TextTable::new(["tier", "duration (min)", "VMs with I/O hang"]);
    for e in events.iter().step_by(5) {
        scatter.row([
            e.tier.label().to_string(),
            f1(e.duration_min),
            e.vms_hung.to_string(),
        ]);
    }
    let mut summary = TextTable::new([
        "tier",
        "incidents",
        "median duration (min)",
        "median VMs hung",
    ]);
    let mut metrics = Vec::new();
    for (tier, key) in [
        (ebs_workload::FailureTier::Tor, "tor"),
        (ebs_workload::FailureTier::Spine, "spine"),
        (ebs_workload::FailureTier::Core, "core"),
        (ebs_workload::FailureTier::DcRouter, "dc_router"),
    ] {
        let mut durations: Vec<f64> = events
            .iter()
            .filter(|e| e.tier == tier)
            .map(|e| e.duration_min)
            .collect();
        let mut vms: Vec<u64> = events
            .iter()
            .filter(|e| e.tier == tier)
            .map(|e| e.vms_hung)
            .collect();
        durations.sort_by(|a, b| a.partial_cmp(b).unwrap());
        vms.sort();
        summary.row([
            tier.label().to_string(),
            durations.len().to_string(),
            f1(durations[durations.len() / 2]),
            vms[vms.len() / 2].to_string(),
        ]);
        metrics.push((format!("{key}_median_vms_hung"), vms[vms.len() / 2] as f64));
    }
    let output = ExperimentOutput {
        id: "fig8",
        title: "I/O hangs caused by ~100 network failures over two years (Luna era)".into(),
        tables: vec![
            ("per-tier summary".into(), summary),
            ("scatter sample (every 5th incident)".into(), scatter),
        ],
        notes: vec![
            "Blast radius grows with tier; hang count is duration-insensitive — the §3.3 motivation for sub-second endpoint rerouting.".into(),
        ],
    };
    (output, metrics)
}
