//! Observability artifacts for the harness: a Perfetto-loadable Chrome
//! trace and a flat metrics snapshot from a representative SOLAR run.
//!
//! The exported trace is a *diagnostic* artifact, deliberately separate
//! from `BENCH_RESULTS.json`: the headline metrics there stay
//! byte-identical whether or not observability is compiled in, while
//! these exports are empty shells in the compiled-out configuration.

use ebs_sim::SimTime;
use ebs_stack::{FioConfig, Testbed, TestbedConfig, Variant};

/// Run a small closed-loop SOLAR testbed and export its journal as a
/// Chrome trace plus its sampled registry as a metrics snapshot. Returns
/// `(trace_json, metrics_json, slowest_io_rendering)`.
pub fn export_solar_run(quick: bool) -> (String, String, String) {
    let mut tb = Testbed::new(TestbedConfig::small(Variant::Solar, 2, 3));
    let horizon_ms = if quick { 20 } else { 100 };
    for compute in 0..2 {
        tb.attach_fio(
            SimTime::from_millis(1),
            compute,
            FioConfig {
                depth: 4,
                bytes: 4096,
                read_fraction: 0.5,
            },
        );
    }
    tb.run_until(SimTime::from_millis(horizon_ms));
    tb.sample_obs();
    let trace = ebs_obs::chrome_trace(tb.journal());
    let metrics = ebs_obs::metrics_snapshot(tb.metrics());
    let slowest = tb
        .explain_slowest_io()
        .map(|e| e.render())
        .unwrap_or_default();
    (trace, metrics, slowest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebs_sa::IoKind;

    #[test]
    fn export_is_deterministic() {
        let (t1, m1, s1) = export_solar_run(true);
        let (t2, m2, s2) = export_solar_run(true);
        assert_eq!(t1, t2);
        assert_eq!(m1, m2);
        assert_eq!(s1, s2);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn export_carries_real_content() {
        let (trace, metrics, slowest) = export_solar_run(true);
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("thread_name"));
        assert!(metrics.contains("net/delivered"));
        assert!(slowest.contains("slowest io"));
    }

    #[test]
    fn latency_attribution_survives_export() {
        // Sanity tie-back to Fig. 6: whatever the journal says must agree
        // with the IoTrace records (the always-on metrics path).
        let mut tb = Testbed::new(TestbedConfig::small(Variant::Solar, 1, 3));
        tb.attach_fio(
            SimTime::from_millis(1),
            0,
            FioConfig {
                depth: 2,
                bytes: 4096,
                read_fraction: 1.0,
            },
        );
        tb.run_until(SimTime::from_millis(10));
        let from_traces = ebs_stack::Breakdown::collect(tb.traces(), IoKind::Read, 4096);
        let from_journal = ebs_stack::Breakdown::from_journal(tb.journal(), IoKind::Read, 4096);
        if ebs_obs::ENABLED {
            assert_eq!(from_traces.total.count(), from_journal.total.count());
            assert_eq!(from_traces.at(0.5), from_journal.at(0.5));
        } else {
            assert_eq!(from_journal.total.count(), 0);
            assert!(from_traces.total.count() > 0);
        }
    }
}
