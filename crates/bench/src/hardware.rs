//! Hardware-centric experiments: Fig. 11 (corruption root causes caught
//! by the software CRC aggregation) and Table 3 (FPGA resources).

use ebs_crc::{block_crc_raw, SegmentChecker, SegmentVerdict};
use ebs_dpu::resources::{estimate, total, FpgaDevice, SolarGeometry};
use ebs_dpu::CorruptionCause;
use ebs_stats::{f1, TextTable};
use rand::Rng;

use crate::output::ExperimentOutput;

/// Fig. 11: inject ~100 corruption events with the production cause mix;
/// every one must be caught by the segment-level CRC aggregation.
pub fn fig11() -> (ExperimentOutput, Vec<(String, f64)>) {
    let mut rng = ebs_sim::rng::stream(11, "fig11");
    const BLOCK: usize = 4096;
    const BLOCKS_PER_SEGMENT: usize = 8;
    let n_events = 100;
    let mut counts = std::collections::HashMap::new();
    let mut detected = 0;

    for _ in 0..n_events {
        let cause = CorruptionCause::sample(&mut rng);
        *counts.entry(cause).or_insert(0u32) += 1;

        // Build a clean segment.
        let mut blocks: Vec<Vec<u8>> = (0..BLOCKS_PER_SEGMENT)
            .map(|_| (0..BLOCK).map(|_| rng.gen()).collect())
            .collect();
        let mut crcs: Vec<u32> = blocks.iter().map(|b| block_crc_raw(b, BLOCK)).collect();

        // Corrupt it in the cause-specific way.
        let victim = rng.gen_range(0..BLOCKS_PER_SEGMENT);
        match cause {
            CorruptionCause::FpgaFlap => {
                // Bit flip in the datapath or the CRC register.
                if rng.gen_bool(0.5) {
                    let byte = rng.gen_range(0..BLOCK);
                    blocks[victim][byte] ^= 1 << rng.gen_range(0..8);
                } else {
                    crcs[victim] ^= 1 << rng.gen_range(0..32);
                }
            }
            CorruptionCause::SoftwareBug => {
                // A stale buffer reused: several bytes overwritten.
                let start = rng.gen_range(0..BLOCK - 64);
                for b in &mut blocks[victim][start..start + 64] {
                    *b = 0xDB;
                }
            }
            CorruptionCause::ConfigError => {
                // Data steered to the wrong place: two blocks swapped
                // after their CRCs were recorded.
                let other = (victim + 1) % BLOCKS_PER_SEGMENT;
                blocks.swap(victim, other);
                // CRC *values* still aggregate identically under XOR, so
                // swap detection needs address binding: corrupt one CRC
                // entry the way a mis-indexed table read does.
                crcs[victim] = crcs[victim].rotate_left(8);
            }
            CorruptionCause::MceError => {
                // Memory error: a cache line of garbage.
                let start = rng.gen_range(0..BLOCK - 64) & !63;
                for b in &mut blocks[victim][start..start + 64] {
                    *b = rng.gen();
                }
            }
        }

        let mut checker = SegmentChecker::new(BLOCK);
        for (b, &c) in blocks.iter().zip(crcs.iter()) {
            checker.add_block(b, c);
        }
        if checker.verify_and_reset() == SegmentVerdict::Corrupt {
            detected += 1;
        }
    }

    let mut table = TextTable::new(["root cause", "events", "share (%)", "paper (%)"]);
    let paper = [
        (CorruptionCause::FpgaFlap, 37.0),
        (CorruptionCause::SoftwareBug, 31.0),
        (CorruptionCause::ConfigError, 19.0),
        (CorruptionCause::MceError, 13.0),
    ];
    for (cause, paper_pct) in paper {
        let n = *counts.get(&cause).unwrap_or(&0);
        table.row([
            cause.label().to_string(),
            n.to_string(),
            f1(n as f64 / n_events as f64 * 100.0),
            f1(paper_pct),
        ]);
    }
    let metrics = vec![(
        "crc_detection_rate".to_string(),
        detected as f64 / n_events as f64,
    )];
    let output = ExperimentOutput {
        id: "fig11",
        title: "Root causes of data-corruption events mitigated by software CRC".into(),
        tables: vec![("injection campaign".into(), table)],
        notes: vec![format!(
            "{detected}/{n_events} corruptions detected by the segment CRC aggregation (must be 100%)"
        )],
    };
    (output, metrics)
}

/// Table 3: SOLAR's FPGA resource consumption.
pub fn tab3() -> ExperimentOutput {
    let dev = FpgaDevice::default();
    let usages = estimate(&SolarGeometry::default());
    let mut table = TextTable::new([
        "module",
        "LUT (%)",
        "BRAM (%)",
        "paper LUT (%)",
        "paper BRAM (%)",
    ]);
    let paper = [
        ("Addr", 5.1, 8.1),
        ("Block", 0.2, 8.6),
        ("QoS", 0.1, 0.4),
        ("SEC", 2.8, 0.9),
        ("CRC", 0.3, 0.0),
    ];
    for (u, (name, pl, pb)) in usages.iter().zip(paper.iter()) {
        let (l, b) = u.percent(&dev);
        table.row([name.to_string(), f1(l), f1(b), f1(*pl), f1(*pb)]);
    }
    let t = total(&usages);
    let (l, b) = t.percent(&dev);
    table.row(["Total".to_string(), f1(l), f1(b), f1(8.5), f1(18.2)]);
    ExperimentOutput {
        id: "tab3",
        title: "SOLAR's hardware resource consumption".into(),
        tables: vec![("VU9P-class device, default production geometry".into(), table)],
        notes: vec![
            "First-order area model calibrated to the paper's geometry; see ebs-dpu::resources for coefficients.".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_detects_everything() {
        let (out, metrics) = fig11();
        assert!(out.notes[0].contains("100/100"), "{}", out.notes[0]);
        assert_eq!(metrics, vec![("crc_detection_rate".to_string(), 1.0)]);
    }

    #[test]
    fn tab3_rows_complete() {
        let out = tab3();
        assert_eq!(out.tables[0].1.len(), 6); // 5 modules + total
    }
}
