//! `cargo bench -p ebs-bench --bench chaos` — the chaos soak: sweep
//! seeded fault schedules through both stacks until the wall budget
//! expires, shrinking and reporting any violation (plain binary,
//! harness = false; see EXPERIMENTS.md, "Chaos soak").
//!
//! Flags:
//! * `--replay <seed>` — regenerate and run exactly one seed, print its
//!   schedule and verdicts, exit nonzero on violation;
//! * `--stack luna|solar|both` — which data path(s) to drive (default
//!   both);
//! * `--soak` — use the nightly soak envelope (bigger testbed, longer
//!   faults) instead of the smoke envelope;
//! * `--incast [hpcc|swift|dcqcn|fixed]` — use the incast-soak envelope
//!   instead: SOLAR with ECN on, adversarial incast + microburst
//!   traffic, and the CC oracles (bounded queues, no livelock) armed
//!   for the named congestion controller (default hpcc);
//! * `--schedules <n>` — stop after n seeds per stack instead of on the
//!   wall budget;
//! * `--budget-secs <s>` — wall budget (default 60; 5 with `--quick`);
//! * `--quick` / `--test` — a seconds-long sweep, for `cargo test
//!   --benches`.
//!
//! Any violating seed is shrunk to a minimal repro and written to
//! `target/chaos-repro-<seed>.json` (plus `-trace.json` with obs on).

use std::time::Instant;

use ebs_chaos::{run_schedule, shrink, write_repro, ChaosConfig, Schedule};
use ebs_stack::Variant;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn target_dir() -> std::path::PathBuf {
    std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target")).to_path_buf()
}

/// Run one schedule; on violation, shrink it, write the repro artifacts
/// and return false.
fn certify(schedule: &Schedule, verbose: bool) -> bool {
    let outcome = run_schedule(schedule);
    if verbose {
        println!("schedule: {}", schedule.to_json());
        println!("verdicts: {}", outcome.verdicts_json());
    }
    if outcome.ok() {
        return true;
    }
    let label = schedule.variant.label();
    eprintln!(
        "seed {} violates under {label} ({} violations):",
        schedule.seed,
        outcome.violations.len()
    );
    for v in &outcome.violations {
        eprintln!("  {}", v.describe());
    }
    match shrink(schedule) {
        Some(s) => {
            eprintln!(
                "shrunk to {} fault event(s) in {} candidate runs",
                s.minimal.faults.len(),
                s.candidates_tried
            );
            if let Some(d) = &s.outcome.diagnosis {
                eprintln!("{d}");
            }
            match write_repro(&target_dir(), &s.minimal, &s.outcome) {
                Ok(paths) => {
                    for p in paths {
                        eprintln!("wrote {}", p.display());
                    }
                }
                Err(e) => eprintln!("could not write repro: {e}"),
            }
        }
        None => eprintln!("original run no longer violates during shrink (flaky oracle?)"),
    }
    eprintln!(
        "replay: cargo bench -p ebs-bench --bench chaos -- --replay {} --stack {label}",
        schedule.seed
    );
    false
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "--test");
    let soak = args.iter().any(|a| a == "--soak");
    let incast = args.iter().position(|a| a == "--incast").map(|i| {
        match args
            .get(i + 1)
            .map(|s| s.to_ascii_lowercase())
            .as_deref()
            .unwrap_or("hpcc")
        {
            "swift" => ebs_cc::CcAlgo::Swift,
            "dcqcn" => ebs_cc::CcAlgo::Dcqcn,
            "fixed" => ebs_cc::CcAlgo::Fixed,
            _ => ebs_cc::CcAlgo::Hpcc,
        }
    });
    // The incast envelope is SOLAR-only (the CC trait lives behind the
    // SOLAR per-path state), so it overrides --stack.
    let stacks: Vec<Variant> = if incast.is_some() {
        vec![Variant::Solar]
    } else {
        match flag_value(&args, "--stack")
            .map(|s| s.to_ascii_lowercase())
            .as_deref()
        {
            Some("luna") => vec![Variant::Luna],
            Some("solar") => vec![Variant::Solar],
            _ => vec![Variant::Luna, Variant::Solar],
        }
    };
    let envelope = |v: Variant| {
        if let Some(cc) = incast {
            ChaosConfig::incast_soak(cc)
        } else if soak {
            ChaosConfig::soak(v)
        } else {
            ChaosConfig::smoke(v)
        }
    };

    if let Some(seed) = flag_value(&args, "--replay") {
        let seed: u64 = seed.parse().expect("--replay takes a u64 seed");
        let mut ok = true;
        for v in &stacks {
            println!("== replay seed {seed} under {} ==", v.label());
            ok &= certify(&Schedule::generate(seed, &envelope(*v)), true);
        }
        std::process::exit(if ok { 0 } else { 1 });
    }

    let max_schedules: u64 = flag_value(&args, "--schedules")
        .map(|s| s.parse().expect("--schedules takes a count"))
        .unwrap_or(u64::MAX);
    let budget_secs: u64 = flag_value(&args, "--budget-secs")
        .map(|s| s.parse().expect("--budget-secs takes seconds"))
        .unwrap_or(if quick { 5 } else { 60 });

    let start = Instant::now();
    let mut ran = 0u64;
    let mut failed = 0u64;
    'outer: for seed in 0.. {
        for v in &stacks {
            if ran >= max_schedules * stacks.len() as u64
                || start.elapsed().as_secs() >= budget_secs
            {
                break 'outer;
            }
            if !certify(&Schedule::generate(seed, &envelope(*v)), false) {
                failed += 1;
            }
            ran += 1;
        }
    }
    println!(
        "chaos {}: {ran} schedules over {:?} in {:.1}s, {failed} violating",
        match incast {
            Some(cc) => format!("incast-soak/{}", cc.name()),
            None if soak => "soak".to_string(),
            None => "smoke".to_string(),
        },
        stacks.iter().map(|v| v.label()).collect::<Vec<_>>(),
        start.elapsed().as_secs_f64()
    );
    if failed > 0 {
        std::process::exit(1);
    }
}
