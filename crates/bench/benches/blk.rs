//! `cargo bench -p ebs-bench --bench blk` runs the pushdown placement
//! matrix (see [`ebs_bench::blk`]) and writes `BENCH_BLK.json` at the
//! repository root — same schema as `BENCH_RESULTS.json`, gated by the
//! same `scripts/bench_compare.py` tolerances — plus the rendered table
//! at `target/blk-table.txt` for the CI artifact upload.
//!
//! Flags:
//! * `--quick` (or the harness's `--test` flag) runs the CI-sized cells;
//!   the committed baseline is a quick run, so the blk CI job uses this
//!   mode;
//! * `--replay-check` runs the quick matrix twice and asserts the two
//!   JSON reports are byte-identical (seed-replay determinism across
//!   every placement) before writing anything.

/// Zero out every `"...wall_s": <number>` value: wall-clock legitimately
/// differs between replays; everything else must match byte-for-byte.
fn strip_wall(json: &str) -> String {
    let mut out = String::with_capacity(json.len());
    let mut rest = json;
    while let Some(i) = rest.find("wall_s\": ") {
        let val_start = i + "wall_s\": ".len();
        out.push_str(&rest[..val_start]);
        out.push('0');
        let tail = &rest[val_start..];
        let end = tail
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
            .unwrap_or(tail.len());
        rest = &tail[end..];
    }
    out.push_str(rest);
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "--test");
    let replay_check = args.iter().any(|a| a == "--replay-check");

    if replay_check {
        let a = ebs_bench::blk::run_blk_report(true).to_json();
        let b = ebs_bench::blk::run_blk_report(true).to_json();
        assert_eq!(
            strip_wall(&a),
            strip_wall(&b),
            "blk matrix replay diverged: the same seeds must reproduce identical metrics"
        );
        eprintln!("blk replay check OK");
    }

    let report = ebs_bench::blk::run_blk_report(quick);
    let mut rendered = String::new();
    for exp in &report.experiments {
        let r = exp.output.render();
        println!("{r}");
        rendered.push_str(&r);
    }
    let json = report.to_json();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_BLK.json");
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    let table_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/blk-table.txt");
    let _ = std::fs::create_dir_all(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target"));
    match std::fs::write(table_path, &rendered) {
        Ok(()) => eprintln!("wrote {table_path}"),
        Err(e) => eprintln!("could not write {table_path}: {e}"),
    }
    eprintln!("blk matrix done in {:.1}s", report.total_wall_s);
}
