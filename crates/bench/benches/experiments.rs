//! `cargo bench -p ebs-bench --bench experiments` regenerates EVERY
//! figure and table of the paper's evaluation and prints paper-style
//! rows. This is a plain binary (harness = false): the "benchmark" is the
//! experiment suite itself, not a statistical timing loop — Criterion
//! micro-benchmarks live in `micro.rs`.
//!
//! Flags:
//! * `--quick` (or the bench-harness's `--test` flag that `cargo test
//!   --benches` passes) shrinks run lengths;
//! * `--serial` disables the multi-threaded harness (the printed output
//!   is byte-identical either way; only the wall-clock differs);
//! * `--profile` runs one instrumented Luna and Solar testbed cell
//!   before the suite and prints the per-phase cycle breakdown (event
//!   pop / fabric / delivery / transport pump / host) — where the
//!   suite's cycles actually go, for perf work. Instrumentation roughly
//!   doubles the cell's wall time, so read the *shares*, not the sums;
//!   the suite that follows runs uninstrumented and is unaffected.
//!
//! Each run writes `BENCH_RESULTS.json` at the repository root with
//! per-experiment wall-clock and headline numbers.

/// One instrumented testbed cell per variant; prints the phase shares.
fn profile_cells(quick: bool) {
    use ebs_sim::SimTime;
    use ebs_stack::{FioConfig, Testbed, TestbedConfig, Variant};
    let horizon = SimTime::from_secs(if quick { 1 } else { 3 });
    for variant in [Variant::Luna, Variant::Solar] {
        let mut cfg = TestbedConfig::small(variant, 4, 3);
        cfg.seed = 42;
        let mut tb = Testbed::new(cfg);
        tb.enable_profiling();
        for c in 0..4 {
            tb.attach_fio(
                SimTime::from_millis(1),
                c,
                FioConfig {
                    depth: 2,
                    bytes: 16 * 1024,
                    read_fraction: 0.2,
                },
            );
        }
        tb.run_until(horizon);
        let p = tb.phase_cycles().expect("profiling enabled");
        let total = (p.pop_ns + p.net_ns + p.deliver_ns + p.pump_ns + p.host_ns).max(1);
        let share = |ns: u64| ns as f64 / total as f64 * 100.0;
        eprintln!(
            "profile {variant:?}: {} events, per-event {:.0}ns instrumented",
            p.events,
            total as f64 / p.events.max(1) as f64
        );
        eprintln!(
            "  pop {:5.1}%  net {:5.1}%  deliver {:5.1}%  pump {:5.1}%  host {:5.1}%",
            share(p.pop_ns),
            share(p.net_ns),
            share(p.deliver_ns),
            share(p.pump_ns),
            share(p.host_ns)
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "--test");
    let serial = args.iter().any(|a| a == "--serial");
    if args.iter().any(|a| a == "--profile") {
        profile_cells(quick);
    }
    let report = ebs_bench::run_report(quick, !serial);
    for exp in &report.experiments {
        println!("{}", exp.output.render());
    }
    let json = report.to_json();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_RESULTS.json");
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    eprintln!(
        "all experiments regenerated in {:.1}s ({} harness)",
        report.total_wall_s,
        if report.parallel {
            "parallel"
        } else {
            "serial"
        }
    );
    // Diagnostic artifacts (Perfetto trace + metrics snapshot) from a
    // representative SOLAR run — separate from BENCH_RESULTS.json so the
    // headline metrics stay byte-identical with observability off.
    if ebs_obs::ENABLED {
        let (trace, metrics, slowest) = ebs_bench::obs::export_solar_run(quick);
        let target = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target");
        for (file, body) in [("obs-trace.json", &trace), ("obs-metrics.json", &metrics)] {
            let path = format!("{target}/{file}");
            match std::fs::write(&path, body) {
                Ok(()) => eprintln!("wrote {path}"),
                Err(e) => eprintln!("could not write {path}: {e}"),
            }
        }
        if !slowest.is_empty() {
            eprint!("{slowest}");
        }
    }
}
