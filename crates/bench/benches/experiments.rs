//! `cargo bench -p ebs-bench --bench experiments` regenerates EVERY
//! figure and table of the paper's evaluation and prints paper-style
//! rows. This is a plain binary (harness = false): the "benchmark" is the
//! experiment suite itself, not a statistical timing loop — Criterion
//! micro-benchmarks live in `micro.rs`.
//!
//! Flags:
//! * `--quick` (or the bench-harness's `--test` flag that `cargo test
//!   --benches` passes) shrinks run lengths;
//! * `--serial` disables the multi-threaded harness (the printed output
//!   is byte-identical either way; only the wall-clock differs).
//!
//! Each run writes `BENCH_RESULTS.json` at the repository root with
//! per-experiment wall-clock and headline numbers.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "--test");
    let serial = args.iter().any(|a| a == "--serial");
    let report = ebs_bench::run_report(quick, !serial);
    for exp in &report.experiments {
        println!("{}", exp.output.render());
    }
    let json = report.to_json();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_RESULTS.json");
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    eprintln!(
        "all experiments regenerated in {:.1}s ({} harness)",
        report.total_wall_s,
        if report.parallel {
            "parallel"
        } else {
            "serial"
        }
    );
    // Diagnostic artifacts (Perfetto trace + metrics snapshot) from a
    // representative SOLAR run — separate from BENCH_RESULTS.json so the
    // headline metrics stay byte-identical with observability off.
    if ebs_obs::ENABLED {
        let (trace, metrics, slowest) = ebs_bench::obs::export_solar_run(quick);
        let target = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target");
        for (file, body) in [("obs-trace.json", &trace), ("obs-metrics.json", &metrics)] {
            let path = format!("{target}/{file}");
            match std::fs::write(&path, body) {
                Ok(()) => eprintln!("wrote {path}"),
                Err(e) => eprintln!("could not write {path}: {e}"),
            }
        }
        if !slowest.is_empty() {
            eprint!("{slowest}");
        }
    }
}
