//! `cargo bench -p ebs-bench --bench experiments` regenerates EVERY
//! figure and table of the paper's evaluation and prints paper-style
//! rows. This is a plain binary (harness = false): the "benchmark" is the
//! experiment suite itself, not a statistical timing loop — Criterion
//! micro-benchmarks live in `micro.rs`.

fn main() {
    // `--quick` (or the bench-harness's `--test` flag that `cargo test
    // --benches` passes) shrinks run lengths.
    let quick = std::env::args().any(|a| a == "--quick" || a == "--test");
    let t0 = std::time::Instant::now();
    for exp in ebs_bench::run_all(quick) {
        println!("{}", exp.render());
    }
    eprintln!("all experiments regenerated in {:.1}s", t0.elapsed().as_secs_f64());
}
