//! `cargo bench -p ebs-bench --bench ablations` runs the design-choice
//! ablation studies of DESIGN.md §4.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick" || a == "--test");
    for exp in ebs_bench::ablations::run_all(quick) {
        println!("{}", exp.render());
    }
}
