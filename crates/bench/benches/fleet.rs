//! `cargo bench -p ebs-bench --bench fleet` runs the sharded-engine
//! fleet suite (see [`ebs_bench::fleet`]) and writes `BENCH_FLEET.json`
//! at the repository root — same schema as `BENCH_RESULTS.json`, gated
//! by the same `scripts/bench_compare.py` tolerances.
//!
//! Flags:
//! * `--smoke` (or the harness's `--test` flag) runs only the
//!   `fleet_smoke` cell and writes nothing — the fast local/per-test
//!   loop; the CI job runs the full suite so the 10k-fleet and speedup
//!   cells stay gated;
//! * `--threads N` sets the 10k fleet's worker count (default 1 —
//!   metrics are identical for any value, only wall-clock moves);
//! * `--profile` prints the per-shard occupancy table for the smoke
//!   fleet before the suite (the shard-level analogue of the
//!   experiments bench's phase profile);
//! * `--cell N` (internal) runs one `fleet_speedup` cell with N shards
//!   and prints a parsable result line — `fleet_speedup` re-execs this
//!   binary with it so every cell is measured from a fresh process.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // Child-process mode: measure one speedup cell and exit. Must be
    // handled before anything that prints to stdout — the parent parses
    // this process's stdout.
    if let Some(n_shards) = args
        .iter()
        .position(|a| a == "--cell")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
    {
        ebs_bench::fleet::speedup_cell_main(n_shards);
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke" || a == "--test");
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);

    if args.iter().any(|a| a == "--profile") {
        let fleet = ebs_bench::fleet::profile_smoke_fleet();
        ebs_bench::fleet::profile_shards(&fleet);
    }

    if smoke {
        let report = ebs_bench::fleet::fleet_smoke();
        println!("{}", report.output.render());
        let ok = report
            .metrics
            .iter()
            .any(|(k, v)| k == "determinism_ok" && *v == 1.0);
        assert!(ok, "fleet_smoke: thread-count determinism violated");
        eprintln!("fleet smoke OK in {:.1}s (no JSON written)", report.wall_s);
        return;
    }

    let report = ebs_bench::fleet::run_fleet_report(threads);
    for exp in &report.experiments {
        println!("{}", exp.output.render());
    }
    let json = report.to_json();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_FLEET.json");
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    eprintln!("fleet suite done in {:.1}s", report.total_wall_s);
}
