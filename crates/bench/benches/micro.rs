//! Criterion micro-benchmarks of the hot paths: CRC, cipher, wire codecs,
//! the transport engines and the FPGA pipeline. These justify the
//! calibration constants (e.g. per-block CRC cost) with measured numbers
//! on the host running the reproduction.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ebs_sim::SimTime;

fn bench_crc(c: &mut Criterion) {
    let mut g = c.benchmark_group("crc32");
    let block = vec![0xA5u8; 4096];
    g.throughput(Throughput::Bytes(4096));
    g.bench_function("ieee_4k_block", |b| {
        b.iter(|| ebs_crc::crc32(std::hint::black_box(&block)))
    });
    g.bench_function("raw_4k_block", |b| {
        b.iter(|| ebs_crc::crc32_raw(std::hint::black_box(&block)))
    });
    g.bench_function("segment_aggregate_8_blocks", |b| {
        let crc = ebs_crc::block_crc_raw(&block, 4096);
        b.iter(|| {
            let mut chk = ebs_crc::SegmentChecker::new(4096);
            for _ in 0..8 {
                chk.add_block(&block, crc);
            }
            chk.verify_and_reset()
        })
    });
    g.finish();
}

/// The ISSUE-2 kernel shoot-out: slice-by-8 (the seed's engine), the
/// portable slice-by-16 fallback, and the runtime-dispatched hardware
/// kernels (PCLMULQDQ folding for IEEE, SSE4.2 `crc32` for Castagnoli)
/// — all over the canonical 4 KiB block.
fn bench_crc_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("crc32_4k");
    let block = vec![0xA5u8; 4096];
    g.throughput(Throughput::Bytes(4096));
    let ieee = ebs_crc::Crc32::ieee();
    let ieee_portable = ebs_crc::Crc32::ieee().force_portable();
    g.bench_function("ieee_slice8", |b| {
        b.iter(|| {
            let s = ieee_portable.start();
            let s = ieee_portable.update_slice8(s, std::hint::black_box(&block));
            ieee_portable.finish(s)
        })
    });
    g.bench_function("ieee_slice16", |b| {
        b.iter(|| ieee_portable.checksum(std::hint::black_box(&block)))
    });
    g.bench_function(format!("ieee_dispatch_{}", ieee.kernel_name()), |b| {
        b.iter(|| ieee.checksum(std::hint::black_box(&block)))
    });
    let c32c = ebs_crc::Crc32::castagnoli();
    g.bench_function(format!("crc32c_dispatch_{}", c32c.kernel_name()), |b| {
        b.iter(|| c32c.checksum(std::hint::black_box(&block)))
    });
    g.finish();
}

/// Steady-state packet payload churn: grab a 4 KiB buffer, fill it,
/// freeze it into `Bytes`, drop the handle — the pool recycles the block
/// so the loop is allocation-free, versus the seed's `vec![] → Bytes`
/// which hits the global allocator every iteration.
fn bench_block_pool(c: &mut Criterion) {
    let mut g = c.benchmark_group("block_pool_churn");
    g.throughput(Throughput::Bytes(4096));
    let pool = ebs_wire::BlockPool::new(4096, 64);
    g.bench_function("pooled_take_freeze_drop", |b| {
        b.iter(|| {
            let mut buf = pool.take();
            buf.resize(4096, 0x5A);
            let bytes: Bytes = buf.freeze().into_bytes();
            std::hint::black_box(bytes.len())
        })
    });
    g.bench_function("vec_alloc_freeze_drop", |b| {
        b.iter(|| {
            let bytes = Bytes::from(vec![0x5Au8; 4096]);
            std::hint::black_box(bytes.len())
        })
    });
    g.finish();
}

fn bench_crypto(c: &mut Criterion) {
    let mut g = c.benchmark_group("sec");
    g.throughput(Throughput::Bytes(4096));
    let eng = ebs_crypto::SecEngine::new([7; 32]);
    g.bench_function("chacha20_4k_block", |b| {
        let mut data = vec![0u8; 4096];
        b.iter(|| eng.encrypt_block(1, 2, std::hint::black_box(&mut data)))
    });
    g.finish();
}

fn bench_wire(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire");
    let hdr = ebs_wire::EbsHeader {
        version: 1,
        op: ebs_wire::EbsOp::WriteBlock,
        flags: 0,
        path_id: 1,
        vd_id: 2,
        rpc_id: 3,
        pkt_id: 4,
        total_pkts: 8,
        block_addr: 5,
        len: 4096,
        payload_crc: 6,
        path_seq: 7,
        segment_id: 8,
    };
    g.bench_function("ebs_header_encode_decode", |b| {
        b.iter(|| {
            let mut buf = bytes::BytesMut::with_capacity(64);
            hdr.encode(&mut buf);
            ebs_wire::EbsHeader::decode(&mut buf.freeze()).unwrap()
        })
    });
    g.finish();
}

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("sa_tables");
    let mut seg = ebs_sa::SegmentTable::new(512);
    for vd in 0..64 {
        seg.provision(vd, 64 * 512, |s| (s % 16) as u32);
    }
    g.bench_function("segment_lookup", |b| {
        let mut addr = 0u64;
        b.iter(|| {
            addr = (addr + 4097) % (64 * 512);
            seg.lookup(std::hint::black_box(addr % 64), addr).unwrap()
        })
    });
    let mut qos = ebs_sa::QosTable::new();
    for vd in 0..64 {
        qos.set_spec(vd, ebs_sa::QosSpec::unlimited());
    }
    g.bench_function("qos_admit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            qos.admit(SimTime::from_nanos(i * 100), i % 64, 4096)
        })
    });
    g.finish();
}

fn bench_transports(c: &mut Criterion) {
    let mut g = c.benchmark_group("transport");
    g.bench_function("solar_write_rpc_roundtrip_8_blocks", |b| {
        b.iter(|| {
            let mut client = ebs_solar::SolarClient::new(ebs_solar::SolarConfig::default());
            let mut resp = ebs_solar::SolarResponder::new();
            let blocks = (0..8)
                .map(|i| ebs_solar::WriteBlock {
                    block_addr: i,
                    payload: Bytes::new(),
                    crc: 0,
                })
                .collect();
            client.submit_write(SimTime::ZERO, 1, 1, 1, blocks);
            let now = SimTime::from_micros(10);
            while let Some(out) = client.poll_transmit(SimTime::ZERO) {
                if let ebs_solar::ServerAction::StoreBlock { hdr, int, .. } =
                    resp.on_packet(ebs_solar::InPacket {
                        hdr: out.hdr,
                        payload: out.payload,
                        int: None,
                    })
                {
                    let (ack, _) = resp.write_ack(&hdr, int);
                    client.on_packet(
                        now,
                        ebs_solar::InPacket {
                            hdr: ack.hdr,
                            payload: Bytes::new(),
                            int: None,
                        },
                    );
                }
            }
            client.stats().rpcs_completed
        })
    });
    g.bench_function("tcp_segment_pump_64k", |b| {
        b.iter(|| {
            let mut a = ebs_tcp::TcpEngine::connect(ebs_tcp::TcpConfig::default());
            let mut s = ebs_tcp::TcpEngine::listen(ebs_tcp::TcpConfig::default());
            // Handshake.
            let mut now = SimTime::ZERO;
            for _ in 0..4 {
                while let Some(seg) = a.poll_segment(now) {
                    s.on_segment(now, seg);
                }
                while let Some(seg) = s.poll_segment(now) {
                    a.on_segment(now, seg);
                }
            }
            a.send(Bytes::from(vec![0u8; 65536]));
            for _ in 0..64 {
                now += ebs_sim::SimDuration::from_micros(10);
                while let Some(seg) = a.poll_segment(now) {
                    s.on_segment(now, seg);
                }
                while let Some(seg) = s.poll_segment(now) {
                    a.on_segment(now, seg);
                }
                if a.bytes_in_flight() == 0 && a.pending_bytes() == 0 {
                    break;
                }
            }
            s.stats().bytes_acked
        })
    });
    g.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("fpga_pipeline");
    let mut seg = ebs_sa::SegmentTable::new(512);
    seg.provision(1, 4096, |_| 0);
    let mut qos = ebs_sa::QosTable::new();
    qos.set_spec(1, ebs_sa::QosSpec::unlimited());
    let mut pipeline = ebs_dpu::Pipeline::new(vec![
        Box::new(ebs_dpu::QosStage::new(qos)),
        Box::new(ebs_dpu::BlockStage::new(seg)),
        Box::new(ebs_dpu::CrcStage::new(4096, None)),
        Box::new(ebs_dpu::SecStage::encryptor(ebs_crypto::SecEngine::new(
            [1; 32],
        ))),
    ]);
    let hdr = ebs_wire::EbsHeader {
        version: 1,
        op: ebs_wire::EbsOp::WriteBlock,
        flags: 0,
        path_id: 0,
        vd_id: 1,
        rpc_id: 1,
        pkt_id: 0,
        total_pkts: 1,
        block_addr: 7,
        len: 4096,
        payload_crc: 0,
        path_seq: 0,
        segment_id: 0,
    };
    g.throughput(Throughput::Bytes(4096));
    g.bench_function("write_path_4k_block", |b| {
        b.iter(|| {
            let mut ctx = ebs_dpu::PacketCtx::new(hdr, Bytes::from(vec![0x5Au8; 4096]));
            pipeline.process(SimTime::ZERO, &mut ctx)
        })
    });
    g.finish();
}

fn bench_ecmp(c: &mut Criterion) {
    let mut g = c.benchmark_group("fabric");
    let flow = ebs_net::FlowLabel {
        src: ebs_net::DeviceId(1),
        dst: ebs_net::DeviceId(99),
        src_port: 47001,
        dst_port: 9000,
        proto: 17,
    };
    g.bench_function("ecmp_flow_hash", |b| {
        b.iter(|| std::hint::black_box(flow).hash64())
    });
    for paths in [1usize, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("solar_spray_pick", paths),
            &paths,
            |b, &paths| {
                let mut client = ebs_solar::SolarClient::new(ebs_solar::SolarConfig {
                    n_paths: paths,
                    ..ebs_solar::SolarConfig::default()
                });
                b.iter(|| {
                    client.submit_write(
                        SimTime::ZERO,
                        rand::random::<u64>(),
                        1,
                        1,
                        vec![ebs_solar::WriteBlock {
                            block_addr: 0,
                            payload: Bytes::new(),
                            crc: 0,
                        }],
                    );
                    client.poll_transmit(SimTime::ZERO)
                })
            },
        );
    }
    g.finish();
}

/// The seed's event queue (`BinaryHeap` + `HashSet` tombstones), kept here
/// as the measured baseline for the timer-wheel rework in `ebs-sim`.
mod naive_queue {
    use ebs_sim::SimTime;
    use std::cmp::Ordering;
    use std::collections::{BinaryHeap, HashSet};

    struct Entry<E> {
        at: SimTime,
        seq: u64,
        event: E,
    }
    impl<E> PartialEq for Entry<E> {
        fn eq(&self, o: &Self) -> bool {
            self.at == o.at && self.seq == o.seq
        }
    }
    impl<E> Eq for Entry<E> {}
    impl<E> PartialOrd for Entry<E> {
        fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
            Some(self.cmp(o))
        }
    }
    impl<E> Ord for Entry<E> {
        fn cmp(&self, o: &Self) -> Ordering {
            o.at.cmp(&self.at).then_with(|| o.seq.cmp(&self.seq))
        }
    }

    pub struct NaiveQueue<E> {
        heap: BinaryHeap<Entry<E>>,
        cancelled: HashSet<u64>,
        seq: u64,
        now: SimTime,
    }

    impl<E> NaiveQueue<E> {
        pub fn new() -> Self {
            NaiveQueue {
                heap: BinaryHeap::new(),
                cancelled: HashSet::new(),
                seq: 0,
                now: SimTime::ZERO,
            }
        }
        pub fn now(&self) -> SimTime {
            self.now
        }
        pub fn schedule_at(&mut self, at: SimTime, event: E) -> u64 {
            let seq = self.seq;
            self.seq += 1;
            self.heap.push(Entry { at, seq, event });
            seq
        }
        pub fn cancel(&mut self, id: u64) {
            self.cancelled.insert(id);
        }
        pub fn pop(&mut self) -> Option<(SimTime, E)> {
            while let Some(e) = self.heap.pop() {
                if self.cancelled.remove(&e.seq) {
                    continue;
                }
                self.now = e.at;
                return Some((e.at, e.event));
            }
            None
        }
    }
}

/// Deterministic pseudo-random deltas for the queue workload (no RNG state
/// shared between the two queue variants).
fn lcg(x: &mut u64) -> u64 {
    *x = x
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *x >> 33
}

/// The event-queue hot loop of the simulator: a steady-state population of
/// pending events, each pop scheduling a successor; every 4th event gets
/// cancelled and rescheduled (RTO-timer churn). Deltas span same-bucket
/// (sub-µs), in-window (µs-ms) and overflow (>34 ms) horizons in the mix
/// the testbed produces (mostly near-future TxDone/Arrive, some RTOs).
fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue_schedule_pop");
    const POP: usize = 256; // events handled per iteration
    fn delta_ns(r: u64) -> u64 {
        match r % 8 {
            0..=4 => 100 + r % 30_000,       // TxDone/Arrive: sub-bucket .. tens of µs
            5 | 6 => 50_000 + r % 5_000_000, // host timers: µs .. ms, in-window
            _ => 10_000_000 + r % 30_000_000, // RTO-class: 10-40 ms, often overflow
        }
    }
    g.throughput(Throughput::Elements(POP as u64));
    g.bench_function("timer_wheel", |b| {
        let mut q = ebs_sim::EventQueue::new();
        let mut x = 7u64;
        for i in 0..1024u64 {
            q.schedule_at(SimTime::from_nanos(100 + delta_ns(lcg(&mut x))), i);
        }
        let mut pending_cancel = None;
        b.iter(|| {
            for _ in 0..POP {
                let (t, v) = q.pop().expect("steady state");
                let r = lcg(&mut x);
                let id = q.schedule_at(t + ebs_sim::SimDuration::from_nanos(delta_ns(r)), v);
                if r.is_multiple_of(4) {
                    if let Some(old) = pending_cancel.replace(id) {
                        q.cancel(old);
                        let rr = lcg(&mut x);
                        q.schedule_at(t + ebs_sim::SimDuration::from_nanos(delta_ns(rr)), v);
                        q.pop();
                    }
                }
            }
            q.now()
        })
    });
    g.bench_function("binary_heap_baseline", |b| {
        let mut q = naive_queue::NaiveQueue::new();
        let mut x = 7u64;
        for i in 0..1024u64 {
            q.schedule_at(SimTime::from_nanos(100 + delta_ns(lcg(&mut x))), i);
        }
        let mut pending_cancel = None;
        b.iter(|| {
            for _ in 0..POP {
                let (t, v) = q.pop().expect("steady state");
                let r = lcg(&mut x);
                let id = q.schedule_at(t + ebs_sim::SimDuration::from_nanos(delta_ns(r)), v);
                if r.is_multiple_of(4) {
                    if let Some(old) = pending_cancel.replace(id) {
                        q.cancel(old);
                        let rr = lcg(&mut x);
                        q.schedule_at(t + ebs_sim::SimDuration::from_nanos(delta_ns(rr)), v);
                        q.pop();
                    }
                }
            }
            q.now()
        })
    });
    g.finish();
}

/// The batched drain the testbed main loop actually runs: many events
/// collide on the same timestamp (serialized TxDone bursts, ACK fan-in),
/// and `pop_batch` hands the whole tie group over in one call instead of
/// paying the heap/wheel pop machinery per event. Deltas are quantized so
/// batches are a few events deep, matching the testbed's tie profile.
fn bench_event_queue_pop_batch(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue_pop_batch");
    const POP: usize = 256; // events handled per iteration
    fn delta_ns(r: u64) -> u64 {
        // 24 distinct quantized horizons → heavy timestamp collisions.
        8_192 * (1 + r % 24)
    }
    g.throughput(Throughput::Elements(POP as u64));
    g.bench_function("pop_batch", |b| {
        let mut q = ebs_sim::EventQueue::new();
        let mut x = 7u64;
        for i in 0..1024u64 {
            q.schedule_at(SimTime::from_nanos(delta_ns(lcg(&mut x))), i);
        }
        let mut buf: Vec<(SimTime, u64)> = Vec::with_capacity(64);
        b.iter(|| {
            let mut handled = 0usize;
            while handled < POP {
                let n = q.pop_batch(SimTime::MAX, &mut buf);
                assert!(n > 0, "steady state");
                handled += n;
                for (t, v) in buf.drain(..) {
                    q.schedule_at(
                        t + ebs_sim::SimDuration::from_nanos(delta_ns(lcg(&mut x))),
                        v,
                    );
                }
            }
            q.now()
        })
    });
    // What a per-event driver loop must do: peek (to enforce the stop
    // horizon before committing to the pop), then pop — the pre-batch
    // testbed loop. `pop_batch` fuses the liveness pre-check away.
    g.bench_function("per_event_peek_then_pop", |b| {
        let mut q = ebs_sim::EventQueue::new();
        let mut x = 7u64;
        for i in 0..1024u64 {
            q.schedule_at(SimTime::from_nanos(delta_ns(lcg(&mut x))), i);
        }
        b.iter(|| {
            for _ in 0..POP {
                let t_next = q.peek_time().expect("steady state");
                assert!(t_next <= SimTime::MAX, "horizon check");
                let (t, v) = q.pop().expect("steady state");
                q.schedule_at(
                    t + ebs_sim::SimDuration::from_nanos(delta_ns(lcg(&mut x))),
                    v,
                );
            }
            q.now()
        })
    });
    g.finish();
}

/// The memoized ECMP post-filter sets: a warm cache serves every hop of a
/// cross-pod traversal from a two-word epoch check ("hit"), while an
/// epoch bump — here an exclusion/heal toggle on a server that is on no
/// forwarding path, so the routes themselves never change — forces every
/// hop to re-filter its candidate set ("miss_after_invalidation").
fn bench_ecmp_route_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("ecmp_route_cache");
    let topo = ebs_net::Topology::build(ebs_net::ClosConfig::testbed(2, 2, 2));
    let servers = topo.servers();
    let (src, dst) = (servers[0], servers[5]);
    let spare = servers[1]; // never a next hop for src → dst
    let flow = ebs_net::FlowLabel {
        src,
        dst,
        src_port: 47001,
        dst_port: 9000,
        proto: 17,
    };
    let run = |b: &mut criterion::Bencher, invalidate: bool| {
        let mut f: ebs_net::Fabric<u32> =
            ebs_net::Fabric::new(topo.clone(), ebs_net::FabricConfig::default());
        let mut q = ebs_sim::EventQueue::new();
        let mut sink = ebs_sim::EventQueue::new();
        b.iter(|| {
            if invalidate {
                // Exclude then re-include: two epoch bumps, zero route
                // changes for the measured flow.
                f.inject_failure_with(
                    spare,
                    ebs_net::FailureMode::FailStop,
                    ebs_sim::SimDuration::ZERO,
                    &mut sink,
                );
                let (t, ev) = sink.pop().expect("convergence event");
                f.handle(t, ev, &mut sink);
                f.heal(spare);
            }
            let pkt = ebs_net::FabricPacket::new(flow, 4096, None, 0u32);
            f.send(q.now(), pkt, &mut q);
            let mut delivered = 0u32;
            while let Some((t, ev)) = q.pop() {
                if f.handle(t, ev, &mut q).is_some() {
                    delivered += 1;
                }
            }
            delivered
        })
    };
    g.bench_function("hit", |b| run(b, false));
    g.bench_function("miss_after_invalidation", |b| run(b, true));
    g.finish();
}

/// A full cross-pod packet traversal: server → ToR → spine → core → spine
/// → ToR → server, with INT stamping at every switch egress. Exercises the
/// per-hop ECMP (cached flow hash), the pre-sized port queues and the
/// move-only packet plumbing.
fn bench_fabric_forward(c: &mut Criterion) {
    let mut g = c.benchmark_group("fabric_forward_3tier");
    let topo = ebs_net::Topology::build(ebs_net::ClosConfig::testbed(2, 2, 2));
    let servers = topo.servers();
    let (src, dst) = (servers[0], servers[5]);
    let mut f: ebs_net::Fabric<u32> = ebs_net::Fabric::new(topo, ebs_net::FabricConfig::default());
    let mut q = ebs_sim::EventQueue::new();
    let mut sport = 0u16;
    g.bench_function("cross_pod_packet_with_int", |b| {
        b.iter(|| {
            sport = sport.wrapping_add(1);
            let pkt = ebs_net::FabricPacket::new(
                ebs_net::FlowLabel {
                    src,
                    dst,
                    src_port: sport,
                    dst_port: 9000,
                    proto: 17,
                },
                4096,
                Some(ebs_wire::IntStack::with_path_capacity()),
                sport as u32,
            );
            f.send(q.now(), pkt, &mut q);
            let mut delivered = 0u32;
            while let Some((t, ev)) = q.pop() {
                if f.handle(t, ev, &mut q).is_some() {
                    delivered += 1;
                }
            }
            delivered
        })
    });
    g.finish();
}

/// The sharded engine's fixed overhead: 50 conservative windows of
/// barrier + mailbox exchange with light cross-shard replication, at
/// 2/4/8 shards over the same 16 servers. Per-window cost is the
/// number that bounds how fine the exchange window can be cut.
fn bench_shard_windows(c: &mut Criterion) {
    use ebs_sim::{SimDuration, SimTime};
    use ebs_stack::{ReplicationConfig, ShardedTestbed, ShardedTestbedConfig, Variant};
    let mut g = c.benchmark_group("shard_windows");
    for shards in [2u32, 4, 8] {
        let mut cfg = ShardedTestbedConfig::new(Variant::Solar, 8, 8, shards);
        cfg.replication = Some(ReplicationConfig {
            start: SimTime::ZERO,
            interval: SimDuration::from_micros(100),
            blocks: 1,
        });
        let mut fleet = ShardedTestbed::new(cfg);
        g.bench_with_input(
            BenchmarkId::new("barrier_exchange_50w", shards),
            &shards,
            |b, _| {
                // The fleet persists across iterations: each one advances
                // the same idle-but-replicating fleet 50 more windows, so
                // the sample is pure window + exchange cost, no setup.
                b.iter(|| {
                    let horizon = fleet.now() + fleet.window() * 50;
                    fleet.run_until(horizon);
                    std::hint::black_box(fleet.exchanged())
                })
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(30);
    targets = bench_crc,
        bench_crc_kernels,
        bench_block_pool,
        bench_crypto,
        bench_wire,
        bench_tables,
        bench_transports,
        bench_pipeline,
        bench_ecmp,
        bench_ecmp_route_cache,
        bench_event_queue,
        bench_event_queue_pop_batch,
        bench_fabric_forward,
        bench_shard_windows
}
criterion_main!(benches);
