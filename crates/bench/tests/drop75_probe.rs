//! Regression for the hardest Table 2 row: 75% random loss on a spine.
//! SOLAR must complete every I/O in under a second — no retry budget
//! exhaustion, no transmit-queue starvation, no path-flap livelock.

use ebs_net::{DeviceKind, FailureMode};
use ebs_sim::{SimDuration, SimTime};
use ebs_stack::{FioConfig, Testbed, TestbedConfig, Variant};

#[test]
fn drop75_solar_zero_hangs() {
    let (n_compute, n_storage) = (4, 3);
    let mut cfg = TestbedConfig::small(Variant::Solar, n_compute, n_storage);
    cfg.seed = 2 + 3;
    let mut tb = Testbed::new(cfg);
    for c in 0..n_compute {
        tb.attach_fio(
            SimTime::from_millis(1),
            c,
            FioConfig {
                depth: 2,
                bytes: 16 * 1024,
                read_fraction: 0.2,
            },
        );
    }
    let spine = tb.fabric().topology().devices_of_kind(DeviceKind::Spine)[0];
    tb.schedule_failure(
        SimTime::from_secs(1),
        spine,
        FailureMode::RandomLoss { rate: 0.75 },
    );
    tb.run_until(SimTime::from_secs(3));
    let hung = tb.hung_ios(SimDuration::from_secs(1));
    if hung > 0 {
        for c in 0..n_compute {
            for line in tb.solar_debug(c) {
                eprintln!("c{c} {line}");
            }
        }
    }
    assert_eq!(hung, 0, "solar must ride through 75% loss (paper Table 2)");
    assert!(
        tb.fabric().drops().random_loss > 500,
        "the loss actually happened"
    );
}
