//! Regression: closed-loop background load must stay closed-loop.
//!
//! (Found during reproduction: probe completions once triggered fio
//! resubmissions, so every externally scheduled I/O permanently inflated
//! the background depth and snowballed the testbed into saturation.)

use ebs_sim::{SimDuration, SimTime};
use ebs_stack::{FioConfig, Testbed, TestbedConfig, Variant};
use rand::Rng;

fn probe_median(variant: Variant, bg_depth: usize) -> (f64, usize) {
    let mut cfg = TestbedConfig::small(variant, 2, 4);
    cfg.seed = 31;
    let mut tb = Testbed::new(cfg);
    if bg_depth > 0 {
        for c in 0..2 {
            tb.attach_fio(
                SimTime::from_micros(100),
                c,
                FioConfig {
                    depth: bg_depth,
                    bytes: 16 * 1024,
                    read_fraction: 0.25,
                },
            );
        }
    }
    let mut rng = ebs_sim::rng::stream(31, "probe");
    let mut t = SimTime::from_millis(1);
    for i in 0..200u64 {
        tb.schedule_io(
            t,
            (i % 2) as usize,
            ebs_sa::IoRequest {
                vd_id: i % 2,
                kind: ebs_sa::IoKind::Write,
                offset: rng.gen_range(0..4000u64) * 4096,
                len: 4096,
            },
        );
        t += SimDuration::from_micros(rng.gen_range(120..260));
    }
    tb.run_until(t + SimDuration::from_millis(60));
    let mut lats: Vec<f64> = tb
        .traces()
        .iter()
        .filter(|tr| tr.bytes == 4096)
        .filter_map(|tr| tr.latency())
        .map(|l| l.as_micros_f64())
        .collect();
    lats.sort_by(|a, b| a.partial_cmp(b).unwrap());
    assert_eq!(lats.len(), 200, "all probes complete");
    let bg_ios = tb
        .traces()
        .iter()
        .filter(|t| t.bytes != 4096 && t.completed.is_some())
        .count();
    (lats[lats.len() / 2], bg_ios)
}

#[test]
fn moderate_background_barely_moves_probe_latency() {
    for variant in [Variant::Luna, Variant::Solar] {
        let (idle, _) = probe_median(variant, 0);
        let (loaded, bg) = probe_median(variant, 6);
        assert!(bg > 1000, "{variant:?}: background actually ran: {bg} I/Os");
        assert!(
            loaded < idle * 1.6,
            "{variant:?}: probe median {loaded}us under load vs {idle}us idle"
        );
    }
}

#[test]
fn background_rate_scales_linearly_with_depth() {
    // Closed loop: doubling the depth should roughly double the issue
    // rate while the testbed is unsaturated — not explode it.
    let (_, at2) = probe_median(Variant::Solar, 2);
    let (_, at4) = probe_median(Variant::Solar, 4);
    let ratio = at4 as f64 / at2 as f64;
    assert!((1.5..2.6).contains(&ratio), "depth 2->4 rate ratio {ratio}");
}
