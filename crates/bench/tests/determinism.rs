//! The parallel experiment harness must be a pure wall-clock optimization:
//! same seeds → byte-identical outputs, regardless of thread scheduling.
//! This pins Table 2 (the experiment the parallel harness fans out the
//! widest — scenario × variant) against a hand-rolled serial loop.
//!
//! A two-scenario subset keeps the test affordable; the subset exercises
//! both a healing transient (port flap) and a converging fail-stop.

use ebs_bench::reliability::{run_scenario, tab2_counts, tab2_render, Scenario};
use ebs_stack::Variant;

const SUBSET: [Scenario; 2] = [Scenario::TorPortFailure, Scenario::SpineSwitchFailure];

#[test]
fn tab2_parallel_matches_serial_byte_for_byte() {
    // Parallel harness, twice: identical across invocations.
    let par1 = tab2_counts(&SUBSET, true);
    let par2 = tab2_counts(&SUBSET, true);
    assert_eq!(par1, par2, "parallel tab2 not reproducible");

    // Serial reference: the pre-parallelization loop, inlined.
    let serial: Vec<(Scenario, usize, usize)> = SUBSET
        .iter()
        .map(|&s| {
            (
                s,
                run_scenario(s, Variant::Luna, true),
                run_scenario(s, Variant::Solar, true),
            )
        })
        .collect();
    assert_eq!(par1, serial, "parallel tab2 diverged from serial run");

    // And the rendered table is byte-identical.
    let a = tab2_render(&par1, true).render();
    let b = tab2_render(&serial, true).render();
    assert_eq!(a, b);
    assert!(a.contains("ToR switch port failure"));
}
