//! Diagnostic assertions on testbed health under the experiment
//! workloads: loss-freedom, spurious-retransmission-freedom and the
//! PCIe-ceiling physics that Fig. 14 rests on. These catch
//! miscalibrations that the headline shapes would only show as
//! mysterious slowdowns.

use ebs_sim::{SimDuration, SimTime};
use ebs_stack::{FioConfig, Testbed, TestbedConfig, Variant};

fn fio_tput(variant: Variant, cores: usize, bytes: u32) -> (f64, Testbed) {
    let mut cfg = TestbedConfig::small(variant, 1, 6);
    cfg.compute_cores = cores;
    cfg.seed = 777;
    let mut tb = Testbed::new(cfg);
    tb.attach_fio(
        SimTime::from_millis(1),
        0,
        FioConfig {
            depth: 32,
            bytes,
            read_fraction: 1.0,
        },
    );
    let warm = SimTime::from_millis(15);
    tb.run_until(warm);
    let (_, b0) = tb.compute_progress(0);
    tb.run_until(SimTime::from_millis(45));
    let (_, b1) = tb.compute_progress(0);
    ((b1 - b0) as f64 / 0.030 / 1e6, tb)
}

#[test]
fn solar_fio_read_is_clean_and_fast() {
    let (mbps, tb) = fio_tput(Variant::Solar, 1, 64 * 1024);
    assert_eq!(tb.fabric().drops().total(), 0, "{:?}", tb.fabric().drops());
    assert_eq!(tb.hung_ios(SimDuration::from_millis(500)), 0);
    assert!(mbps > 3000.0, "solar 1-core throughput {mbps:.0} MB/s");
    // Steady state on a healthy fabric: zero retransmissions — neither
    // RTO-spurious (storage-tail RTO floor) nor gap-nack-spurious
    // (receiver-side detection never misfires on reorder-free paths).
    let dbg = tb.solar_debug(0).join("\n");
    assert!(
        dbg.contains("retransmits: 0"),
        "spurious retransmissions under clean load:\n{dbg}"
    );
}

#[test]
fn pcie_ceiling_binds_hairpin_paths_not_solar() {
    // Fig. 14a's physics: at 3 cores Luna is pinned at the internal-PCIe
    // goodput ceiling (~4000 MB/s) while Solar reaches toward line rate.
    let (luna3, _) = fio_tput(Variant::Luna, 3, 64 * 1024);
    let (solar3, _) = fio_tput(Variant::Solar, 3, 64 * 1024);
    assert!(
        (3000.0..4400.0).contains(&luna3),
        "luna 3-core {luna3:.0} MB/s vs ~4000 ceiling"
    );
    assert!(
        solar3 > 5200.0,
        "solar 3-core {solar3:.0} MB/s beats the ceiling"
    );
}

#[test]
fn solar_single_core_throughput_gain_matches_paper() {
    let (luna1, _) = fio_tput(Variant::Luna, 1, 64 * 1024);
    let (solar1, _) = fio_tput(Variant::Solar, 1, 64 * 1024);
    let gain = solar1 / luna1;
    assert!(
        (1.5..2.1).contains(&gain),
        "solar/luna 1-core gain {gain:.2} (paper: 1.78)"
    );
}

#[test]
fn luna_fio_read_is_loss_free() {
    let (_, tb) = fio_tput(Variant::Luna, 3, 64 * 1024);
    assert_eq!(tb.fabric().drops().total(), 0, "{:?}", tb.fabric().drops());
}
