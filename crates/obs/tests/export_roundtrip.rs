//! Round-trips the Chrome trace-event export through a minimal JSON
//! parser: the export must be valid JSON, and `ts` must be monotone
//! non-decreasing within every track (`tid`) — the acceptance contract
//! Perfetto relies on. The workspace vendors no serde, so the validator
//! is a ~100-line recursive-descent parser kept here with the test.

#![cfg(feature = "enabled")]

use ebs_obs::export::{chrome_trace, metrics_snapshot};
use ebs_obs::{Journal, Metrics};
use ebs_sim::SimTime;

// --- a minimal JSON value + parser -----------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(kv) => kv.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            b: s.as_bytes(),
            i: 0,
        }
    }

    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        self.ws();
        if self.i < self.b.len() && self.b[self.i] == c {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at {}", c as char, self.i))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.b.get(self.i).copied()
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or("eof")? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.lit("true", Json::Bool(true)),
            b'f' => self.lit("false", Json::Bool(false)),
            b'n' => self.lit("null", Json::Null),
            _ => self.number(),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i).copied().ok_or("eof in string")? {
                b'"' => {
                    self.i += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.i += 1;
                    let esc = self.b.get(self.i).copied().ok_or("eof in escape")?;
                    out.push(match esc {
                        b'n' => '\n',
                        b't' => '\t',
                        c => c as char,
                    });
                    self.i += 1;
                }
                c => {
                    out.push(c as char);
                    self.i += 1;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek().ok_or("eof in array")? {
                b',' => self.i += 1,
                b']' => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                c => return Err(format!("bad array sep {:?} at {}", c as char, self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut kv = Vec::new();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(kv));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.eat(b':')?;
            kv.push((k, self.value()?));
            match self.peek().ok_or("eof in object")? {
                b',' => self.i += 1,
                b'}' => {
                    self.i += 1;
                    return Ok(Json::Obj(kv));
                }
                c => return Err(format!("bad object sep {:?} at {}", c as char, self.i)),
            }
        }
    }
}

fn parse(s: &str) -> Json {
    let mut p = Parser::new(s);
    let v = p
        .value()
        .unwrap_or_else(|e| panic!("invalid JSON: {e}\n{s}"));
    p.ws();
    assert_eq!(p.i, s.len(), "trailing garbage after JSON document");
    v
}

// --- the round-trip tests ---------------------------------------------------

fn sample_journal() -> Journal {
    let mut j = Journal::new();
    let t = SimTime::from_micros;
    // Deliberately interleave tracks and record one span out of time
    // order on the "fn" track's arrival sequence.
    j.instant(t(1), "io", "io.submit", 0, (4096 << 1) | 1);
    j.span("sa", "sa", 0, t(1), t(11));
    j.span("fn", "fn", 0, t(11), t(31));
    j.counter(t(15), "net", "queued_bytes", 8192);
    j.instant(t(2), "io", "io.submit", 1, 4096 << 1);
    j.span("sa", "sa", 1, t(2), t(9));
    j.span("fn", "fn", 1, t(9), t(40));
    j.counter(t(35), "net", "queued_bytes", 0);
    j
}

#[test]
fn chrome_trace_is_valid_json_with_monotone_ts_per_track() {
    let doc = parse(&chrome_trace(&sample_journal()));
    let events = match doc.get("traceEvents") {
        Some(Json::Arr(a)) => a,
        other => panic!("traceEvents missing: {other:?}"),
    };
    assert!(!events.is_empty());

    let mut last_ts: Vec<(f64, f64)> = Vec::new(); // indexed by tid-1: (tid, last ts)
    let mut named_tracks = 0;
    for e in events {
        let ph = e.get("ph").and_then(Json::as_str).expect("ph present");
        if ph == "M" {
            assert_eq!(
                e.get("name").and_then(Json::as_str),
                Some("thread_name"),
                "only thread_name metadata emitted"
            );
            named_tracks += 1;
            continue;
        }
        let tid = e.get("tid").and_then(Json::as_f64).expect("tid present");
        let ts = e.get("ts").and_then(Json::as_f64).expect("ts present");
        match last_ts.iter_mut().find(|(t, _)| *t == tid) {
            Some((_, last)) => {
                assert!(
                    ts >= *last,
                    "ts must be monotone within track {tid}: {ts} < {last}"
                );
                *last = ts;
            }
            None => last_ts.push((tid, ts)),
        }
        if ph == "X" {
            assert!(
                e.get("dur").and_then(Json::as_f64).is_some(),
                "span has dur"
            );
        }
    }
    assert_eq!(
        named_tracks,
        last_ts.len(),
        "every track carries a thread_name record"
    );
}

#[test]
fn metrics_snapshot_is_valid_flat_json() {
    let mut m = Metrics::new();
    m.counter_add("net", "drops_total", 7);
    m.gauge_set("dpu.cpu", "utilization", 0.5);
    for v in [100u64, 200, 300] {
        m.observe("solar", "srtt_ns", v);
    }
    let doc = parse(&metrics_snapshot(&m));
    assert_eq!(doc.get("net/drops_total").and_then(Json::as_f64), Some(7.0));
    assert_eq!(
        doc.get("dpu.cpu/utilization").and_then(Json::as_f64),
        Some(0.5)
    );
    let h = doc.get("solar/srtt_ns").expect("histogram summary");
    assert_eq!(h.get("count").and_then(Json::as_f64), Some(3.0));
    assert!(h.get("p99").and_then(Json::as_f64).is_some());
}

#[test]
fn empty_exports_parse_too() {
    assert!(matches!(
        parse(&chrome_trace(&Journal::new())).get("traceEvents"),
        Some(Json::Arr(a)) if a.is_empty()
    ));
    assert_eq!(parse(&metrics_snapshot(&Metrics::new())), Json::Obj(vec![]));
}
