//! Exporters: Chrome trace-event JSON and a flat metrics snapshot.
//!
//! [`chrome_trace`] renders a [`Journal`] in the Chrome trace-event JSON
//! format — load the file in [Perfetto](https://ui.perfetto.dev) or
//! `chrome://tracing` to get one named track per component with spans,
//! instant markers and counter series. [`metrics_snapshot`] renders a
//! [`Metrics`] registry as one flat JSON object. Both are hand-rolled
//! (the build is offline and vendors no serde), emit keys in a fixed
//! deterministic order, and produce stable byte-for-byte output for
//! identical inputs.

use std::fmt::Write as _;

use crate::journal::{Event, EventKind, Journal};
use crate::metrics::{MetricValue, Metrics};

/// Nanoseconds → trace-event microseconds with nanosecond precision,
/// rendered as a decimal literal (no float formatting jitter).
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Render `journal` as Chrome trace-event JSON.
///
/// Tracks become "threads" of one process: a `thread_name` metadata record
/// names each, and events are emitted grouped by track in time order, so
/// `ts` is monotone non-decreasing within every track. Spans become `"X"`
/// (complete) events, instants `"i"`, counters `"C"`.
pub fn chrome_trace(journal: &Journal) -> String {
    // Assign tids by order of first appearance, then emit sorted by
    // (tid, ts). The sort is stable, so same-timestamp events keep their
    // journal order.
    let mut tids: Vec<&'static str> = Vec::new();
    let mut indexed: Vec<(usize, &Event)> = Vec::new();
    for e in journal.events() {
        let tid = match tids.iter().position(|&t| t == e.track) {
            Some(i) => i,
            None => {
                tids.push(e.track);
                tids.len() - 1
            }
        };
        indexed.push((tid, e));
    }
    indexed.sort_by_key(|&(tid, e)| (tid, e.at));

    let mut s = String::with_capacity(64 + indexed.len() * 96);
    s.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    let mut emit = |s: &mut String| {
        if first {
            first = false;
        } else {
            s.push(',');
        }
        s.push_str("\n  ");
    };
    for (tid, name) in tids.iter().enumerate() {
        emit(&mut s);
        let _ = write!(
            s,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            tid + 1,
            name
        );
    }
    for (tid, e) in &indexed {
        emit(&mut s);
        let ts = us(e.at.as_nanos());
        let tid = tid + 1;
        match e.kind {
            EventKind::Span { name, id, dur } => {
                let _ = write!(
                    s,
                    "{{\"name\":\"{}\",\"cat\":\"obs\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\"id\":{}}}}}",
                    name,
                    ts,
                    us(dur.as_nanos()),
                    tid,
                    id
                );
            }
            EventKind::Instant { name, id, arg } => {
                let _ = write!(
                    s,
                    "{{\"name\":\"{}\",\"cat\":\"obs\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":1,\"tid\":{},\"args\":{{\"id\":{},\"arg\":{}}}}}",
                    name, ts, tid, id, arg
                );
            }
            EventKind::Counter { name, value } => {
                let _ = write!(
                    s,
                    "{{\"name\":\"{}\",\"cat\":\"obs\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\"tid\":{},\"args\":{{\"value\":{}}}}}",
                    name, ts, tid, value
                );
            }
        }
    }
    s.push_str("\n]}\n");
    s
}

/// Finite-float rendering for the snapshot (JSON has no NaN/Inf).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

/// Render `metrics` as one flat JSON object: `"component/name"` keys in
/// deterministic order; counters as integers, gauges as floats, histograms
/// as `{count, mean, min, p50, p95, p99, max}` summaries.
pub fn metrics_snapshot(metrics: &Metrics) -> String {
    let mut s = String::from("{");
    let mut first = true;
    for (component, name, value) in metrics.iter() {
        if first {
            first = false;
        } else {
            s.push(',');
        }
        let _ = write!(s, "\n  \"{component}/{name}\": ");
        match value {
            MetricValue::Counter(v) => {
                let _ = write!(s, "{v}");
            }
            MetricValue::Gauge(v) => s.push_str(&num(*v)),
            MetricValue::Histogram(h) => {
                let _ = write!(
                    s,
                    "{{\"count\": {}, \"mean\": {}, \"min\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}",
                    h.count(),
                    num(h.mean()),
                    h.min(),
                    h.median(),
                    h.p95(),
                    h.p99(),
                    h.max()
                );
            }
        }
    }
    s.push_str("\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exports_are_callable_in_both_configurations() {
        let j = Journal::new();
        let m = Metrics::new();
        assert!(chrome_trace(&j).contains("traceEvents"));
        assert!(metrics_snapshot(&m).starts_with('{'));
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn us_rendering_is_exact() {
        assert_eq!(us(0), "0.000");
        assert_eq!(us(999), "0.999");
        assert_eq!(us(1_000), "1.000");
        assert_eq!(us(1_234_567), "1234.567");
    }

    /// Minimal JSON syntax checker (the build vendors no serde): returns
    /// the byte offset of the first malformed character.
    fn check_json(src: &str) -> Result<(), usize> {
        fn ws(b: &[u8], mut i: usize) -> usize {
            while i < b.len() && matches!(b[i], b' ' | b'\t' | b'\n' | b'\r') {
                i += 1;
            }
            i
        }
        fn string(b: &[u8], i: usize) -> Result<usize, usize> {
            if b.get(i) != Some(&b'"') {
                return Err(i);
            }
            let mut i = i + 1;
            while i < b.len() {
                match b[i] {
                    b'"' => return Ok(i + 1),
                    b'\\' => i += 2,
                    _ => i += 1,
                }
            }
            Err(i)
        }
        fn value(b: &[u8], i: usize) -> Result<usize, usize> {
            match b.get(i) {
                Some(b'{') => {
                    let mut i = ws(b, i + 1);
                    if b.get(i) == Some(&b'}') {
                        return Ok(i + 1);
                    }
                    loop {
                        i = string(b, i)?;
                        i = ws(b, i);
                        if b.get(i) != Some(&b':') {
                            return Err(i);
                        }
                        i = value(b, ws(b, i + 1))?;
                        i = ws(b, i);
                        match b.get(i) {
                            Some(b',') => i = ws(b, i + 1),
                            Some(b'}') => return Ok(i + 1),
                            _ => return Err(i),
                        }
                    }
                }
                Some(b'[') => {
                    let mut i = ws(b, i + 1);
                    if b.get(i) == Some(&b']') {
                        return Ok(i + 1);
                    }
                    loop {
                        i = value(b, i)?;
                        i = ws(b, i);
                        match b.get(i) {
                            Some(b',') => i = ws(b, i + 1),
                            Some(b']') => return Ok(i + 1),
                            _ => return Err(i),
                        }
                    }
                }
                Some(b'"') => string(b, i),
                Some(c) if c.is_ascii_digit() || *c == b'-' => {
                    let mut i = i + 1;
                    while i < b.len()
                        && matches!(b[i], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
                    {
                        i += 1;
                    }
                    Ok(i)
                }
                _ => [&b"true"[..], b"false", b"null"]
                    .iter()
                    .find(|lit| b[i..].starts_with(lit))
                    .map(|lit| i + lit.len())
                    .ok_or(i),
            }
        }
        let b = src.as_bytes();
        let i = value(b, ws(b, 0))?;
        if ws(b, i) == b.len() {
            Ok(())
        } else {
            Err(i)
        }
    }

    /// Pull the numeric value following `key` out of one rendered event.
    #[cfg(feature = "enabled")]
    fn field(line: &str, key: &str) -> f64 {
        let rest = &line[line.find(key).expect(key) + key.len()..];
        let end = rest.find([',', '}']).expect("terminated");
        rest[..end].parse().expect("numeric field")
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn chrome_trace_round_trips_valid_json_with_monotone_ts() {
        use ebs_sim::SimTime;
        let t = SimTime::from_micros;
        let mut j = Journal::new();
        // Two overlapping I/Os completing in reverse start order — the
        // realistic case where journal order is NOT start order — plus an
        // instant and a counter on other tracks.
        j.instant(t(10), "io", "submit", 0, (8192 << 1) | 1);
        j.instant(t(12), "io", "submit", 1, (8192 << 1) | 1);
        j.span("sa", "sa", 1, t(12), t(20));
        j.span("io", "write", 1, t(12), t(20));
        j.span("sa", "sa", 0, t(10), t(25));
        j.span("io", "write", 0, t(10), t(25));
        j.counter(t(30), "net", "q", 7);

        let trace = chrome_trace(&j);
        assert_eq!(check_json(&trace), Ok(()), "{trace}");

        // Every track ("thread") must replay in non-decreasing ts order,
        // or Perfetto renders interleaved lanes.
        let mut last: std::collections::BTreeMap<u64, f64> = Default::default();
        let mut events = 0;
        for line in trace.lines().filter(|l| l.contains("\"ts\":")) {
            let tid = field(line, "\"tid\":") as u64;
            let ts = field(line, "\"ts\":");
            if let Some(&prev) = last.get(&tid) {
                assert!(prev <= ts, "track {tid} went backwards: {prev} > {ts}");
            }
            last.insert(tid, ts);
            events += 1;
        }
        assert_eq!(events, 7, "{trace}");
        assert_eq!(last.len(), 3, "one lane per track");

        // The metrics snapshot is JSON too.
        let mut m = Metrics::new();
        m.counter_add("net", "drops", 3);
        m.gauge_set("dpu.cpu", "utilization", 0.25);
        m.observe("sa", "ns", 1234);
        assert_eq!(check_json(&metrics_snapshot(&m)), Ok(()));
    }

    #[test]
    fn check_json_rejects_malformed() {
        assert!(check_json("{\"a\": 1,}").is_err());
        assert!(check_json("[1, 2").is_err());
        assert!(check_json("{\"a\" 1}").is_err());
        assert!(check_json("{\"a\": 1} trailing").is_err());
        assert!(check_json("{\"a\": [1, {\"b\": null}], \"c\": -2.5e3}").is_ok());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn identical_inputs_export_identically() {
        use ebs_sim::SimTime;
        let build = || {
            let mut j = Journal::new();
            j.span(
                "sa",
                "sa",
                1,
                SimTime::from_micros(5),
                SimTime::from_micros(9),
            );
            j.counter(SimTime::from_micros(6), "net", "q", 42);
            let mut m = Metrics::new();
            m.counter_add("net", "drops", 3);
            m.observe("sa", "ns", 1234);
            (chrome_trace(&j), metrics_snapshot(&m))
        };
        assert_eq!(build(), build());
    }
}
