//! # ebs-obs — deterministic sans-io observability
//!
//! The uniform telemetry substrate of the workspace (DESIGN.md §9). The
//! paper's whole evaluation methodology is telemetry: Fig. 6's SA/FN/BN/SSD
//! attribution comes from distributed trace, §4.5's sub-second failover
//! claims come from per-path health signals, and HPCC's INT is carried in
//! the wire format itself. This crate gives every layer one way to report:
//!
//! * [`Journal`] — a bounded ring buffer of typed [`Event`]s stamped with
//!   the *injected* [`SimTime`] (never a wall clock): spans, instants and
//!   counter samples, one Perfetto track per component;
//! * [`Metrics`] — a registry of counters, gauges and `ebs-stats`-backed
//!   histograms keyed by static `(component, name)` pairs;
//! * [`export`] — Chrome trace-event JSON (loadable in Perfetto /
//!   `chrome://tracing`) and a flat metrics-snapshot JSON;
//! * [`Sample`] — the trait protocol crates implement so a host can scrape
//!   their state into a registry without the engines owning any telemetry
//!   state themselves.
//!
//! ## Determinism contract
//!
//! Everything here is pure state: no clocks, no threads, no ambient RNG, no
//! randomly-seeded hash collections. Two identical simulation runs produce
//! byte-identical journals, registries and exports. `ebs-lint` enforces the
//! sans-io and determinism tiers on this crate like on the protocol crates.
//!
//! ## Zero-cost disable
//!
//! Hosts own the journal and registry (sans-io discipline: engines are
//! *sampled*, they never write ambient state). Building this crate without
//! the `enabled` feature (on by default) turns every recording method into
//! an inlined empty body behind [`ENABLED`]; none of the call sites in the
//! hosts or the `Sample` impls need cfg-gating, and the simulation output
//! is identical either way — observation never perturbs behaviour.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod export;
mod journal;
mod metrics;

pub use export::{chrome_trace, metrics_snapshot};
pub use journal::{Event, EventKind, Journal, DEFAULT_CAPACITY};
pub use metrics::{MetricValue, Metrics};

use ebs_sim::SimTime;

/// True when the `enabled` feature compiled the instrumentation in. When
/// false every recording entry point is an inlined no-op and exports are
/// empty; hosts may branch on this to skip sampling loops entirely.
pub const ENABLED: bool = cfg!(feature = "enabled");

/// Implemented by components whose state a host scrapes into a [`Metrics`]
/// registry. The component never holds a registry itself — the host owns
/// it and decides when to sample (typically at end of run, or periodically
/// for counter tracks in the journal).
///
/// Convention: a fresh sample pass starts from [`Metrics::clear`] (or a new
/// registry), so impls may use [`Metrics::counter_add`] freely to aggregate
/// across sibling components (e.g. all SOLAR clients of a testbed).
pub trait Sample {
    /// Write this component's current state into `m` as of `now`.
    fn sample_into(&self, now: SimTime, m: &mut Metrics);
}
