//! The structured event journal.
//!
//! A bounded ring buffer of typed events stamped with injected
//! [`SimTime`]. When full, the oldest events are overwritten (and counted
//! in [`Journal::dropped`]) so steady-state recording cost and memory stay
//! constant no matter how long a simulation runs — the journal always
//! holds the most recent window, which is the one diagnostics ("explain
//! the slowest I/O", failover timelines) care about.

use std::collections::VecDeque;

use ebs_sim::{SimDuration, SimTime};

/// Default ring capacity (events). At ~48 bytes per event this is ~3 MiB —
/// roomy enough for hundreds of thousands of I/O timelines.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// What happened. `track` lives on the enclosing [`Event`]; the variants
/// carry the rest. All names are `&'static str` so recording never
/// allocates or hashes strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A completed span of known duration (Chrome trace `"X"`); `id`
    /// correlates spans of one logical operation (e.g. one I/O) across
    /// tracks.
    Span {
        /// Span name within the track.
        name: &'static str,
        /// Correlation id (e.g. trace index of the I/O).
        id: u64,
        /// Span length; the event's `at` is the span start.
        dur: SimDuration,
    },
    /// An instantaneous marker (Chrome trace `"i"`), e.g. a submission,
    /// a path-down detection, a blackhole suspicion.
    Instant {
        /// Marker name within the track.
        name: &'static str,
        /// Correlation id.
        id: u64,
        /// One free argument; the host defines the encoding (e.g. the
        /// stack packs I/O kind + size for journal-side Fig. 6 filters).
        arg: u64,
    },
    /// A counter sample (Chrome trace `"C"`): the value of a series at
    /// `at`, rendered by Perfetto as a stepped area chart.
    Counter {
        /// Series name within the track.
        name: &'static str,
        /// Sampled value.
        value: i64,
    },
}

/// One journal entry: a timestamped [`EventKind`] on a component track.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Simulated time of the event (span start for spans).
    pub at: SimTime,
    /// Component track (one Perfetto track per distinct value).
    pub track: &'static str,
    /// The event payload.
    pub kind: EventKind,
}

/// The bounded, deterministic event journal. See module docs.
#[derive(Debug)]
pub struct Journal {
    buf: VecDeque<Event>,
    cap: usize,
    dropped: u64,
}

impl Default for Journal {
    fn default() -> Self {
        Self::new()
    }
}

impl Journal {
    /// A journal with [`DEFAULT_CAPACITY`].
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// A journal holding at most `cap` events (≥ 1). No memory is
    /// reserved up front; the ring grows on first use, never past `cap`.
    pub fn with_capacity(cap: usize) -> Self {
        Journal {
            buf: VecDeque::new(),
            cap: cap.max(1),
            dropped: 0,
        }
    }

    /// Append an event, evicting the oldest when full. No-op (and fully
    /// optimized out) when the crate is built without `enabled`.
    #[inline]
    pub fn record(&mut self, at: SimTime, track: &'static str, kind: EventKind) {
        if !crate::ENABLED {
            return;
        }
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(Event { at, track, kind });
    }

    /// Record a completed span `[start, end)`; `end < start` clamps to an
    /// empty span at `start`.
    #[inline]
    pub fn span(
        &mut self,
        track: &'static str,
        name: &'static str,
        id: u64,
        start: SimTime,
        end: SimTime,
    ) {
        self.record(
            start,
            track,
            EventKind::Span {
                name,
                id,
                dur: end.saturating_since(start),
            },
        );
    }

    /// Record an instantaneous marker.
    #[inline]
    pub fn instant(
        &mut self,
        at: SimTime,
        track: &'static str,
        name: &'static str,
        id: u64,
        arg: u64,
    ) {
        self.record(at, track, EventKind::Instant { name, id, arg });
    }

    /// Record a counter sample.
    #[inline]
    pub fn counter(&mut self, at: SimTime, track: &'static str, name: &'static str, value: i64) {
        self.record(at, track, EventKind::Counter { name, value });
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.buf.iter()
    }

    /// Retained event count.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Forget everything (capacity and drop count are kept).
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn api_is_callable_in_both_configurations() {
        let mut j = Journal::with_capacity(4);
        j.span("sa", "sa", 1, t(10), t(12));
        j.instant(t(10), "io", "io.submit", 1, 0);
        j.counter(t(11), "net", "queued_bytes", 4096);
        assert_eq!(j.len() == 3, crate::ENABLED);
        assert_eq!(j.capacity(), 4);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut j = Journal::with_capacity(2);
        for i in 0..5u64 {
            j.instant(t(i), "x", "m", i, 0);
        }
        assert_eq!(j.len(), 2);
        assert_eq!(j.dropped(), 3);
        let ids: Vec<u64> = j
            .events()
            .map(|e| match e.kind {
                EventKind::Instant { id, .. } => id,
                _ => u64::MAX,
            })
            .collect();
        assert_eq!(ids, vec![3, 4], "oldest evicted first");
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn span_clamps_negative_durations() {
        let mut j = Journal::new();
        j.span("sa", "sa", 7, t(10), t(5));
        let e = j.events().next().copied();
        match e {
            Some(Event {
                at,
                kind: EventKind::Span { dur, .. },
                ..
            }) => {
                assert_eq!(at, t(10));
                assert_eq!(dur, SimDuration::ZERO);
            }
            other => panic!("expected span, got {other:?}"),
        }
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn clear_keeps_capacity() {
        let mut j = Journal::with_capacity(8);
        j.counter(t(1), "a", "b", 1);
        j.clear();
        assert!(j.is_empty());
        assert_eq!(j.capacity(), 8);
    }
}
