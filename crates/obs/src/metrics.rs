//! The metrics registry.
//!
//! Counters, gauges and log-bucketed histograms keyed by static
//! `(component, name)` pairs. Backed by a `BTreeMap` so iteration (and
//! therefore every export) is deterministic; keys are `&'static str` so
//! registration never allocates strings.

use std::collections::BTreeMap;

use ebs_stats::Histogram;

/// One registered metric.
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// Monotone (within one sample pass) accumulator.
    Counter(u64),
    /// Last-write-wins instantaneous value.
    Gauge(f64),
    /// Distribution of `u64` observations (we use nanoseconds or bytes).
    Histogram(Histogram),
}

type Key = (&'static str, &'static str);

/// Registry of counters, gauges and histograms. Hosts own one (or more)
/// and pass it to [`Sample`](crate::Sample) impls; see the sampling
/// convention there. All recording is a no-op without the `enabled`
/// feature.
#[derive(Debug, Default)]
pub struct Metrics {
    map: BTreeMap<Key, MetricValue>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Add `delta` to counter `component/name`, registering at 0 first. A
    /// key previously holding another metric type is replaced.
    #[inline]
    pub fn counter_add(&mut self, component: &'static str, name: &'static str, delta: u64) {
        if !crate::ENABLED {
            return;
        }
        match self
            .map
            .entry((component, name))
            .or_insert(MetricValue::Counter(0))
        {
            MetricValue::Counter(v) => *v += delta,
            slot => *slot = MetricValue::Counter(delta),
        }
    }

    /// Set gauge `component/name` to `value` (last write wins).
    #[inline]
    pub fn gauge_set(&mut self, component: &'static str, name: &'static str, value: f64) {
        if !crate::ENABLED {
            return;
        }
        self.map
            .insert((component, name), MetricValue::Gauge(value));
    }

    /// Record one observation into histogram `component/name`.
    #[inline]
    pub fn observe(&mut self, component: &'static str, name: &'static str, value: u64) {
        if !crate::ENABLED {
            return;
        }
        match self
            .map
            .entry((component, name))
            .or_insert_with(|| MetricValue::Histogram(Histogram::new()))
        {
            MetricValue::Histogram(h) => h.record(value),
            slot => {
                let mut h = Histogram::new();
                h.record(value);
                *slot = MetricValue::Histogram(h);
            }
        }
    }

    /// Current counter value (0 when absent or of another type).
    pub fn counter(&self, component: &'static str, name: &'static str) -> u64 {
        match self.map.get(&(component, name)) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Current gauge value.
    pub fn gauge(&self, component: &'static str, name: &'static str) -> Option<f64> {
        match self.map.get(&(component, name)) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Registered histogram.
    pub fn histogram(&self, component: &'static str, name: &'static str) -> Option<&Histogram> {
        match self.map.get(&(component, name)) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// All metrics in deterministic (component, name) order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &'static str, &MetricValue)> {
        self.map.iter().map(|(&(c, n), v)| (c, n, v))
    }

    /// Registered metric count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drop every registration — the start of a fresh sample pass.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn api_is_callable_in_both_configurations() {
        let mut m = Metrics::new();
        m.counter_add("net", "drops", 3);
        m.gauge_set("sim", "queue_len", 7.0);
        m.observe("solar", "srtt_ns", 45_000);
        assert_eq!(m.is_empty(), !crate::ENABLED);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn counters_accumulate_and_read_back() {
        let mut m = Metrics::new();
        m.counter_add("net", "drops", 2);
        m.counter_add("net", "drops", 3);
        assert_eq!(m.counter("net", "drops"), 5);
        assert_eq!(m.counter("net", "absent"), 0);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn gauges_last_write_wins() {
        let mut m = Metrics::new();
        m.gauge_set("dpu.cpu", "utilization", 0.25);
        m.gauge_set("dpu.cpu", "utilization", 0.75);
        assert_eq!(m.gauge("dpu.cpu", "utilization"), Some(0.75));
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn histograms_record_observations() {
        let mut m = Metrics::new();
        for v in [10u64, 20, 30] {
            m.observe("sa.qos", "delay_ns", v);
        }
        let h = m.histogram("sa.qos", "delay_ns").expect("registered");
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 30);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn iteration_order_is_deterministic() {
        let mut m = Metrics::new();
        m.counter_add("z", "b", 1);
        m.counter_add("a", "y", 1);
        m.counter_add("a", "x", 1);
        let keys: Vec<(&str, &str)> = m.iter().map(|(c, n, _)| (c, n)).collect();
        assert_eq!(keys, vec![("a", "x"), ("a", "y"), ("z", "b")]);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn type_mismatch_replaces_without_panicking() {
        let mut m = Metrics::new();
        m.gauge_set("x", "v", 1.0);
        m.counter_add("x", "v", 4);
        assert_eq!(m.counter("x", "v"), 4);
        m.observe("x", "v", 9);
        assert_eq!(m.histogram("x", "v").map(|h| h.count()), Some(1));
    }
}
