//! Clos fabric topology and structural up/down routing.
//!
//! The frontend network (FN) spans a region: servers attach to ToR
//! switches, ToRs to pod spines, spines to per-datacenter cores, and cores
//! to region-level DC routers (§2.1, Fig. 8's four failure tiers). Routing
//! is computed structurally from device coordinates — standard Clos
//! up/down forwarding with ECMP fan-out at each upward stage — so no
//! routing tables need to be stored or converged in the common case.

use ebs_sim::{Bandwidth, SimDuration};

/// Index of a device (server or switch) within a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub u32);

/// What a device is; determines its routing behaviour and its tier in the
/// failure experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// A compute or storage server (fabric endpoint).
    Server,
    /// Top-of-rack switch. The paper notes each server attaches to a
    /// *pair* of ToRs; we model the pair as one logical ToR whose
    /// fail-stop is survivable via ECMP re-hash only when multiple ToR
    /// uplinks exist, matching the observed behaviour that ToR failures
    /// still caused Luna I/O hangs (Table 2).
    Tor,
    /// Pod spine (aggregation) switch.
    Spine,
    /// Per-datacenter core switch.
    Core,
    /// Region-level DC router.
    DcRouter,
}

/// Structural position of a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Coord {
    /// Device kind.
    pub kind: DeviceKind,
    /// Datacenter index within the region.
    pub dc: u32,
    /// Pod index within the datacenter (servers/ToRs/spines only).
    pub pod: u32,
    /// Index within the (kind, dc, pod) group. For servers this encodes
    /// `tor_index * servers_per_tor + slot`.
    pub index: u32,
}

/// Per-tier link parameters.
#[derive(Debug, Clone, Copy)]
pub struct LinkSpec {
    /// Line rate.
    pub rate: Bandwidth,
    /// Propagation + switching delay, one way.
    pub delay: SimDuration,
    /// Egress queue capacity in bytes (shallow-buffer switches, §3.1).
    pub queue_bytes: usize,
}

/// Geometry + link parameters of a region fabric.
#[derive(Debug, Clone)]
pub struct ClosConfig {
    /// Number of datacenters in the region.
    pub dcs: u32,
    /// Pods per datacenter.
    pub pods_per_dc: u32,
    /// ToR switches per pod.
    pub tors_per_pod: u32,
    /// Spine switches per pod.
    pub spines_per_pod: u32,
    /// Core switches per datacenter.
    pub cores_per_dc: u32,
    /// Region-level DC routers.
    pub dc_routers: u32,
    /// Servers attached to each ToR.
    pub servers_per_tor: u32,
    /// Dual-home every server to its rack's ToR *pair* (the paper: "even
    /// with the ToR switch, we connect each server to a pair of it",
    /// §3.3). Pairs are ToR indices (2k, 2k+1) within a pod.
    pub dual_homed: bool,
    /// Server↔ToR links (the NIC rate: 2×25GE ≈ 50G aggregate).
    pub server_link: LinkSpec,
    /// ToR↔Spine links.
    pub tor_spine: LinkSpec,
    /// Spine↔Core links.
    pub spine_core: LinkSpec,
    /// Core↔DC-router links (longer haul).
    pub core_router: LinkSpec,
}

impl ClosConfig {
    /// A small single-DC testbed fabric: 1 DC, `pods` pods, with 25G
    /// server links — the shape used by most experiments.
    pub fn testbed(pods: u32, tors_per_pod: u32, servers_per_tor: u32) -> Self {
        let shallow = 512 * 1024; // 512 KiB shallow buffers
        ClosConfig {
            dcs: 1,
            pods_per_dc: pods,
            tors_per_pod,
            spines_per_pod: 2,
            cores_per_dc: 4,
            dc_routers: 2,
            servers_per_tor,
            dual_homed: false,
            server_link: LinkSpec {
                rate: Bandwidth::from_gbps(50),
                delay: SimDuration::from_micros(1),
                queue_bytes: shallow,
            },
            tor_spine: LinkSpec {
                rate: Bandwidth::from_gbps(100),
                delay: SimDuration::from_micros(1),
                queue_bytes: shallow,
            },
            spine_core: LinkSpec {
                rate: Bandwidth::from_gbps(100),
                delay: SimDuration::from_micros(2),
                queue_bytes: shallow,
            },
            core_router: LinkSpec {
                rate: Bandwidth::from_gbps(400),
                delay: SimDuration::from_micros(20),
                queue_bytes: 4 * shallow,
            },
        }
    }
}

/// A directed link (one egress port of a device).
#[derive(Debug, Clone)]
pub struct PortSpec {
    /// Neighbor this port transmits toward.
    pub to: DeviceId,
    /// Link parameters.
    pub link: LinkSpec,
}

/// A device plus its egress ports.
#[derive(Debug, Clone)]
pub struct DeviceSpec {
    /// Structural position.
    pub coord: Coord,
    /// Egress ports, in neighbor order.
    pub ports: Vec<PortSpec>,
}

/// A fully built fabric topology with structural routing.
#[derive(Debug, Clone)]
pub struct Topology {
    cfg: ClosConfig,
    devices: Vec<DeviceSpec>,
    servers: Vec<DeviceId>,
}

impl Topology {
    /// Build the region fabric described by `cfg`.
    ///
    /// # Panics
    /// Panics if any dimension of `cfg` is zero.
    pub fn build(cfg: ClosConfig) -> Self {
        assert!(
            cfg.dcs > 0
                && cfg.pods_per_dc > 0
                && cfg.tors_per_pod > 0
                && cfg.spines_per_pod > 0
                && cfg.cores_per_dc > 0
                && cfg.dc_routers > 0
                && cfg.servers_per_tor > 0,
            "all topology dimensions must be positive"
        );
        let mut devices: Vec<DeviceSpec> = Vec::new();
        let mut servers = Vec::new();

        let push = |coord: Coord, devices: &mut Vec<DeviceSpec>| -> DeviceId {
            let id = DeviceId(devices.len() as u32);
            devices.push(DeviceSpec {
                coord,
                ports: Vec::new(),
            });
            id
        };

        // Allocate ids tier by tier, remembering each group's ids.
        let mut tor_ids = vec![];
        let mut spine_ids = vec![];
        let mut core_ids = vec![];
        let mut router_ids = vec![];

        for dc in 0..cfg.dcs {
            for pod in 0..cfg.pods_per_dc {
                for t in 0..cfg.tors_per_pod {
                    let tor = push(
                        Coord {
                            kind: DeviceKind::Tor,
                            dc,
                            pod,
                            index: t,
                        },
                        &mut devices,
                    );
                    tor_ids.push(tor);
                    for s in 0..cfg.servers_per_tor {
                        let srv = push(
                            Coord {
                                kind: DeviceKind::Server,
                                dc,
                                pod,
                                index: t * cfg.servers_per_tor + s,
                            },
                            &mut devices,
                        );
                        servers.push(srv);
                    }
                }
                for s in 0..cfg.spines_per_pod {
                    let spine = push(
                        Coord {
                            kind: DeviceKind::Spine,
                            dc,
                            pod,
                            index: s,
                        },
                        &mut devices,
                    );
                    spine_ids.push(spine);
                }
            }
            for c in 0..cfg.cores_per_dc {
                let core = push(
                    Coord {
                        kind: DeviceKind::Core,
                        dc,
                        pod: 0,
                        index: c,
                    },
                    &mut devices,
                );
                core_ids.push(core);
            }
        }
        for r in 0..cfg.dc_routers {
            let router = push(
                Coord {
                    kind: DeviceKind::DcRouter,
                    dc: 0,
                    pod: 0,
                    index: r,
                },
                &mut devices,
            );
            router_ids.push(router);
        }

        // Wire links (both directions).
        let connect = |a: DeviceId, b: DeviceId, link: LinkSpec, devices: &mut Vec<DeviceSpec>| {
            devices[a.0 as usize].ports.push(PortSpec { to: b, link });
            devices[b.0 as usize].ports.push(PortSpec { to: a, link });
        };

        // Server <-> home ToR(s).
        for &srv in &servers {
            let c = devices[srv.0 as usize].coord;
            let primary = c.index / cfg.servers_per_tor;
            let mut homes = vec![primary];
            if cfg.dual_homed {
                let pair = primary ^ 1;
                if pair < cfg.tors_per_pod {
                    homes.push(pair);
                }
            }
            for home in homes {
                let tor = *tor_ids
                    .iter()
                    .find(|&&t| {
                        let tc = devices[t.0 as usize].coord;
                        tc.dc == c.dc && tc.pod == c.pod && tc.index == home
                    })
                    .expect("tor exists"); // lint: allow(panic_discipline) — construction-time lookup; the loop above created a ToR for every (pod, index) pair searched here
                connect(srv, tor, cfg.server_link, &mut devices);
            }
        }
        // ToR <-> every spine in its pod.
        for &tor in &tor_ids {
            let tc = devices[tor.0 as usize].coord;
            for &spine in &spine_ids {
                let sc = devices[spine.0 as usize].coord;
                if sc.dc == tc.dc && sc.pod == tc.pod {
                    connect(tor, spine, cfg.tor_spine, &mut devices);
                }
            }
        }
        // Spine <-> every core in its DC.
        for &spine in &spine_ids {
            let sc = devices[spine.0 as usize].coord;
            for &core in &core_ids {
                let cc = devices[core.0 as usize].coord;
                if cc.dc == sc.dc {
                    connect(spine, core, cfg.spine_core, &mut devices);
                }
            }
        }
        // Core <-> every DC router.
        for &core in &core_ids {
            for &router in &router_ids {
                connect(core, router, cfg.core_router, &mut devices);
            }
        }

        Topology {
            cfg,
            devices,
            servers,
        }
    }

    /// The configuration the fabric was built from.
    pub fn config(&self) -> &ClosConfig {
        &self.cfg
    }

    /// All devices.
    pub fn devices(&self) -> &[DeviceSpec] {
        &self.devices
    }

    /// All server endpoints, in construction order.
    pub fn servers(&self) -> &[DeviceId] {
        &self.servers
    }

    /// A device's coordinates.
    pub fn coord(&self, id: DeviceId) -> Coord {
        self.devices[id.0 as usize].coord
    }

    /// Devices of a given kind (useful for failure injection).
    pub fn devices_of_kind(&self, kind: DeviceKind) -> Vec<DeviceId> {
        (0..self.devices.len() as u32)
            .map(DeviceId)
            .filter(|&d| self.coord(d).kind == kind)
            .collect()
    }

    /// ToR indices (within the server's pod) the server is homed to.
    fn home_tor_indices(&self, server: Coord) -> [Option<u32>; 2] {
        let t = server.index / self.cfg.servers_per_tor;
        if self.cfg.dual_homed {
            let pair = t ^ 1;
            if pair < self.cfg.tors_per_pod {
                return [Some(t), Some(pair)];
            }
        }
        [Some(t), None]
    }

    /// The candidate egress ports (indices into the device's port list)
    /// toward `dst`, per Clos up/down routing. Multiple entries mean ECMP.
    ///
    /// Returns an empty list only if `dst` is unreachable from `at` (which
    /// cannot happen in a healthy fabric).
    pub fn next_hop_ports(&self, at: DeviceId, dst: DeviceId) -> Vec<usize> {
        let mut out = Vec::new();
        self.next_hop_ports_into(at, dst, &mut out);
        out
    }

    /// Allocation-free variant of [`Topology::next_hop_ports`]: clears
    /// `out` and fills it with the candidate port indices. The fabric's
    /// per-packet forwarding path reuses one scratch buffer through this.
    pub fn next_hop_ports_into(&self, at: DeviceId, dst: DeviceId, out: &mut Vec<usize>) {
        out.clear();
        let here = self.coord(at);
        let to = self.coord(dst);
        debug_assert_eq!(to.kind, DeviceKind::Server, "destinations are servers");
        let dev = &self.devices[at.0 as usize];
        let homes = self.home_tor_indices(to);
        let is_home = |idx: u32| homes.iter().flatten().any(|&h| h == idx);

        let mut port_filter = |f: &dyn Fn(Coord, DeviceId) -> bool| {
            out.extend(
                dev.ports
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| f(self.coord(p.to), p.to))
                    .map(|(i, _)| i),
            );
        };

        match here.kind {
            DeviceKind::Server => port_filter(&|c, _| c.kind == DeviceKind::Tor),
            DeviceKind::Tor => {
                if here.dc == to.dc && here.pod == to.pod && is_home(here.index) {
                    // Down to the destination server.
                    port_filter(&|c, id| c.kind == DeviceKind::Server && id == dst)
                } else {
                    // Up to all pod spines.
                    port_filter(&|c, _| c.kind == DeviceKind::Spine)
                }
            }
            DeviceKind::Spine => {
                if here.dc == to.dc && here.pod == to.pod {
                    // Down to the destination's home ToR(s).
                    port_filter(&|c, _| {
                        c.kind == DeviceKind::Tor && c.pod == to.pod && is_home(c.index)
                    })
                } else {
                    // Up to all cores in this DC.
                    port_filter(&|c, _| c.kind == DeviceKind::Core)
                }
            }
            DeviceKind::Core => {
                if here.dc == to.dc {
                    // Down to the destination pod's spines.
                    port_filter(&|c, _| {
                        c.kind == DeviceKind::Spine && c.dc == to.dc && c.pod == to.pod
                    })
                } else {
                    // Up to the DC routers.
                    port_filter(&|c, _| c.kind == DeviceKind::DcRouter)
                }
            }
            DeviceKind::DcRouter => {
                // Down to the destination DC's cores.
                port_filter(&|c, _| c.kind == DeviceKind::Core && c.dc == to.dc)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Topology {
        Topology::build(ClosConfig::testbed(2, 2, 2))
    }

    #[test]
    fn device_counts() {
        let t = small();
        // 1 dc * 2 pods * (2 tors * (1 + 2 servers) + 2 spines) + 4 cores + 2 routers
        let expect = 2 * (2 * 3 + 2) + 4 + 2;
        assert_eq!(t.devices().len(), expect);
        assert_eq!(t.servers().len(), 8);
    }

    #[test]
    fn servers_reach_all_servers() {
        let t = small();
        for &a in t.servers() {
            for &b in t.servers() {
                if a == b {
                    continue;
                }
                // Walk greedily: at every device there must be ≥1 next hop,
                // and the walk must terminate at b within 10 hops.
                let mut at = a;
                for hop in 0..10 {
                    if at == b {
                        break;
                    }
                    let ports = t.next_hop_ports(at, b);
                    assert!(!ports.is_empty(), "stuck at {:?} toward {:?}", at, b);
                    at = t.devices()[at.0 as usize].ports[ports[0]].to;
                    assert!(hop < 9, "no loop-free route {a:?}->{b:?}");
                }
                assert_eq!(at, b);
            }
        }
    }

    #[test]
    fn intra_pod_routes_stay_in_pod() {
        let t = small();
        // Servers 0 and 2 share a pod (pod 0, tors 0 and 1).
        let a = t.servers()[0];
        let b = t.servers()[2];
        assert_eq!(t.coord(a).pod, t.coord(b).pod);
        // Route from a's tor goes to spines, and spine goes directly down.
        let tor = t.devices()[a.0 as usize].ports[0].to;
        let ups = t.next_hop_ports(tor, b);
        assert_eq!(ups.len(), 2, "ECMP across both pod spines");
        for p in ups {
            let spine = t.devices()[tor.0 as usize].ports[p].to;
            assert_eq!(t.coord(spine).kind, DeviceKind::Spine);
            let downs = t.next_hop_ports(spine, b);
            assert_eq!(downs.len(), 1, "single ToR below spine");
        }
    }

    #[test]
    fn cross_pod_routes_climb_to_core() {
        let t = small();
        let a = t.servers()[0]; // pod 0
        let b = t.servers()[4]; // pod 1
        assert_ne!(t.coord(a).pod, t.coord(b).pod);
        let tor = t.devices()[a.0 as usize].ports[0].to;
        let spine = {
            let ups = t.next_hop_ports(tor, b);
            t.devices()[tor.0 as usize].ports[ups[0]].to
        };
        let cores = t.next_hop_ports(spine, b);
        assert_eq!(cores.len(), 4, "ECMP across all DC cores");
    }

    #[test]
    fn cross_dc_routes_use_routers() {
        let cfg = ClosConfig {
            dcs: 2,
            ..ClosConfig::testbed(1, 1, 1)
        };
        let t = Topology::build(cfg);
        let a = t.servers()[0];
        let b = t.servers()[1];
        assert_ne!(t.coord(a).dc, t.coord(b).dc);
        // Find a core in dc 0 and check it routes up to DC routers.
        let core = t.devices_of_kind(DeviceKind::Core)[0];
        assert_eq!(t.coord(core).dc, 0);
        let ups = t.next_hop_ports(core, b);
        assert_eq!(ups.len(), 2, "ECMP across both DC routers");
        for p in ups {
            let r = t.devices()[core.0 as usize].ports[p].to;
            assert_eq!(t.coord(r).kind, DeviceKind::DcRouter);
        }
    }

    #[test]
    fn dual_homed_servers_have_two_uplinks() {
        let cfg = ClosConfig {
            dual_homed: true,
            ..ClosConfig::testbed(1, 2, 2)
        };
        let t = Topology::build(cfg);
        for &srv in t.servers() {
            let ups = t.next_hop_ports(srv, t.servers()[0]);
            // Routing from a server always offers both ToR uplinks (for
            // any non-self destination).
            if srv != t.servers()[0] {
                assert_eq!(ups.len(), 2, "server {srv:?}");
            }
            assert_eq!(t.devices()[srv.0 as usize].ports.len(), 2);
        }
        // And spines route down to both home ToRs.
        let dst = t.servers()[0];
        let spine = t.devices_of_kind(DeviceKind::Spine)[0];
        assert_eq!(t.next_hop_ports(spine, dst).len(), 2);
        // Full reachability with dual homing.
        for &a in t.servers() {
            for &b in t.servers() {
                if a == b {
                    continue;
                }
                let mut at = a;
                for _ in 0..10 {
                    if at == b {
                        break;
                    }
                    let ports = t.next_hop_ports(at, b);
                    assert!(!ports.is_empty());
                    at = t.devices()[at.0 as usize].ports[ports[0]].to;
                }
                assert_eq!(at, b);
            }
        }
    }

    #[test]
    fn kinds_enumerate() {
        let t = small();
        assert_eq!(t.devices_of_kind(DeviceKind::Tor).len(), 4);
        assert_eq!(t.devices_of_kind(DeviceKind::Spine).len(), 4);
        assert_eq!(t.devices_of_kind(DeviceKind::Core).len(), 4);
        assert_eq!(t.devices_of_kind(DeviceKind::DcRouter).len(), 2);
        assert_eq!(t.devices_of_kind(DeviceKind::Server).len(), 8);
    }
}
