//! Packet-level fabric simulation: queues, ECMP, INT, failures.
//!
//! The fabric is generic over the payload type `P` so the composed world
//! can route its own message structs through it. It emits and consumes
//! [`NetEvent`]s on any [`Scheduler`] — typically a
//! [`MapScheduler`](ebs_sim::MapScheduler) wrapping the world's queue.
//!
//! Packets are parked in an internal generational arena
//! ([`Slab`](ebs_wire::Slab)) while they travel: every hop's event carries
//! a [`PacketHandle`] instead of the packet struct, so scheduling and
//! popping a hop is a constant 16-byte copy regardless of the payload
//! type, and the event enum of any world composed on top stays small.

use std::collections::VecDeque;

use ebs_sim::{rng, Scheduler, SimDuration, SimTime};
use ebs_wire::{IntHop, IntStack, Slab};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::topology::{DeviceId, DeviceKind, Topology};

/// Opaque reference to a packet parked in a fabric's internal arena while
/// it travels hop to hop. Only meaningful to the [`Fabric`] that issued it;
/// a stale or foreign handle is detected by its generation and ignored.
pub type PacketHandle = ebs_wire::Handle;

/// The 5-tuple-equivalent label ECMP hashes on. SOLAR varies `src_port`
/// per path so that each path id pins a distinct fabric route.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowLabel {
    /// Source server.
    pub src: DeviceId,
    /// Destination server.
    pub dst: DeviceId,
    /// Transport source port (SOLAR path id lives here).
    pub src_port: u16,
    /// Transport destination port.
    pub dst_port: u16,
    /// IP protocol number.
    pub proto: u8,
}

impl FlowLabel {
    /// Stable 64-bit flow hash (FNV-1a over the tuple).
    pub fn hash64(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        mix(self.src.0 as u64);
        mix(self.dst.0 as u64);
        mix(self.src_port as u64);
        mix(self.dst_port as u64);
        mix(self.proto as u64);
        h
    }
}

/// A packet travelling through the fabric.
///
/// Deliberately *not* `Clone`: a packet is moved into the fabric's arena
/// at [`Fabric::send`] and stays there until delivery or drop, so the type
/// system guarantees no hop accidentally deep-copies the payload or INT
/// stack. The flow hash is computed once at construction and carried
/// along, so per-hop ECMP and blackhole checks don't re-run FNV over the
/// 5-tuple.
#[derive(Debug)]
pub struct FabricPacket<P> {
    /// Flow label (includes src/dst endpoints).
    pub flow: FlowLabel,
    /// Bytes on the wire (headers + payload).
    pub size: usize,
    /// INT stack; `Some` enables per-hop stamping.
    pub int: Option<IntStack>,
    /// ECN congestion-experienced mark: set by RED marking at a switch
    /// egress queue ([`EcnConfig`]), read by the receiving endpoint and
    /// echoed to the sender in its transport's ACK.
    pub ecn: bool,
    /// Opaque payload delivered to the destination endpoint.
    pub payload: P,
    /// `flow.hash64()`, cached at construction.
    flow_hash: u64,
}

impl<P> FabricPacket<P> {
    /// Build a packet, hashing the flow label once.
    pub fn new(flow: FlowLabel, size: usize, int: Option<IntStack>, payload: P) -> Self {
        FabricPacket {
            flow_hash: flow.hash64(),
            flow,
            size,
            int,
            ecn: false,
            payload,
        }
    }

    /// The cached flow hash.
    pub fn flow_hash(&self) -> u64 {
        self.flow_hash
    }
}

/// Fabric events; wrap them into the world's event enum via
/// [`MapScheduler`](ebs_sim::MapScheduler).
///
/// Deliberately small (16 bytes): packets stay parked in the fabric's
/// arena and only a [`PacketHandle`] rides through the event queue, so the
/// per-hop schedule/pop memcpy is constant-size no matter what payload
/// type the fabric carries.
#[derive(Debug, Clone, Copy)]
pub enum NetEvent {
    /// A packet arrives at a device (after a link's delay).
    Arrive {
        /// Receiving device.
        device: DeviceId,
        /// The packet, parked in the fabric's arena.
        pkt: PacketHandle,
    },
    /// A port finished serializing the packet at the head of its queue.
    TxDone {
        /// Transmitting device.
        device: DeviceId,
        /// Port index on that device.
        port: u32,
    },
    /// Routing has converged around a fail-stopped device: ECMP stops
    /// hashing onto it.
    RoutingConverged {
        /// The failed device now excluded from ECMP sets.
        device: DeviceId,
    },
}

/// Failure injected on a device (§3.3 / §4.7 failure scenarios).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FailureMode {
    /// Fail-stop: the device drops everything. Detectable — routing
    /// converges after the configured delay and ECMP routes around it.
    FailStop,
    /// Silent blackhole: drops the subset of flows whose hash lands in
    /// `fraction` (e.g. one broken ECMP bucket / line card). **Not**
    /// detected by routing — the deadly case for single-path Luna.
    Blackhole {
        /// Fraction of flows affected (0..1].
        fraction: f64,
        /// Salt mixing which flows are hit.
        salt: u64,
    },
    /// Uniform random packet loss at the given rate (lossy line card).
    RandomLoss {
        /// Loss probability per packet.
        rate: f64,
    },
}

/// Why packets were dropped, for assertions and diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DropStats {
    /// Dropped by fail-stopped devices.
    pub fail_stop: u64,
    /// Dropped silently by blackholes.
    pub blackhole: u64,
    /// Dropped by random loss.
    pub random_loss: u64,
    /// Tail-dropped on a full egress queue.
    pub queue_overflow: u64,
    /// No usable next hop (all excluded/down).
    pub no_route: u64,
}

impl DropStats {
    /// Total drops of all causes.
    pub fn total(&self) -> u64 {
        self.fail_stop + self.blackhole + self.random_loss + self.queue_overflow + self.no_route
    }
}

/// An egress port. The queue holds `(handle, size)` pairs — the size is
/// denormalized out of the arena so serialization scheduling in
/// [`Fabric::tx_done`] never touches packet memory.
#[derive(Debug)]
struct PortState {
    to: DeviceId,
    rate: ebs_sim::Bandwidth,
    delay: SimDuration,
    cap_bytes: usize,
    queue: VecDeque<(PacketHandle, u32)>,
    queued_bytes: usize,
    in_flight: bool,
    tx_bytes: u64,
    max_queue_bytes: usize,
}

#[derive(Debug)]
struct DeviceState {
    failure: Option<FailureMode>,
    /// True once routing has converged around this (fail-stopped) device.
    excluded: bool,
    ports: Vec<PortState>,
}

/// Memoized ECMP candidate sets, keyed densely by `(device, dst)`.
///
/// Each entry caches the *post-exclusion-filter* port list for one
/// (forwarding device, destination server) pair as an `(offset, len)`
/// window into one shared flat arena of port indices, so the forward hot
/// path is a pair of index walks (entry lookup, arena slice) with no
/// per-entry heap pointer to chase. Validity is tracked by an epoch
/// stamp: any event that changes the exclusion set — a
/// `RoutingConverged` that excludes a fail-stopped device, or a
/// [`Fabric::heal`] that re-includes one — bumps the cache epoch, which
/// invalidates every entry in O(1) without walking them, and resets the
/// arena. Entries refill lazily on first use after an invalidation.
///
/// Failure *injection* deliberately does not invalidate: only `excluded`
/// feeds the route filter (a failed-but-unconverged device still attracts
/// traffic and drops it at arrival, as in the pre-cache code).
#[derive(Debug)]
struct RouteCache {
    epoch: u32,
    n_dev: usize,
    entries: Vec<RouteEntry>,
    /// All cached port lists, back to back, in fill order.
    arena: Vec<u16>,
}

/// 12 bytes per (device, dst) pair — the dense table for a 4K-device
/// fleet shard fits in ~190 MB where the old `Vec<u16>`-per-entry layout
/// needed ~512 MB plus an allocation per filled entry.
#[derive(Debug, Clone, Copy)]
struct RouteEntry {
    epoch: u32,
    off: u32,
    len: u16,
}

impl RouteCache {
    fn new(n_dev: usize) -> Self {
        RouteCache {
            // Entries start at epoch 0, the cache at 1: everything begins
            // invalid.
            epoch: 1,
            n_dev,
            entries: vec![
                RouteEntry {
                    epoch: 0,
                    off: 0,
                    len: 0,
                };
                n_dev * n_dev
            ],
            arena: Vec::new(),
        }
    }

    fn invalidate_all(&mut self) {
        if self.epoch == u32::MAX {
            // Epoch wrap would alias stale entries; walk once and restart.
            for e in &mut self.entries {
                e.epoch = 0;
            }
            self.epoch = 0;
        }
        self.epoch += 1;
        self.arena.clear();
    }
}

/// RED-style ECN marking at switch egress queues (the congestion signal
/// DCQCN-class controllers consume). Disabled by default: marking draws
/// from its own RNG stream (`"fabric-ecn"`), so enabling it never shifts
/// the loss stream and existing seeds replay unchanged.
#[derive(Debug, Clone, Copy)]
pub struct EcnConfig {
    /// Master switch; when false no packet is ever marked and the ECN
    /// RNG stream is never drawn from.
    pub enabled: bool,
    /// Queue depth (bytes) below which nothing is marked.
    pub kmin_bytes: usize,
    /// Queue depth (bytes) at and above which everything is marked.
    pub kmax_bytes: usize,
    /// Marking probability as the queue reaches `kmax_bytes` (the RED
    /// ramp is linear between the thresholds).
    pub pmax: f64,
}

impl Default for EcnConfig {
    fn default() -> Self {
        EcnConfig {
            enabled: false,
            // DCQCN-style thresholds scaled to the testbed's ~256 KiB
            // switch buffers: start marking at 1/16 occupancy, mark
            // everything past 1/4.
            kmin_bytes: 16 * 1024,
            kmax_bytes: 64 * 1024,
            pmax: 0.2,
        }
    }
}

/// Fabric-wide tunables.
#[derive(Debug, Clone, Copy)]
pub struct FabricConfig {
    /// Delay between a fail-stop and ECMP exclusion (network operations /
    /// routing protocol convergence). The paper's incidents took minutes;
    /// the testbed scenarios of Table 2 use seconds.
    pub routing_convergence: SimDuration,
    /// Seed for the loss RNG.
    pub seed: u64,
    /// RED/ECN marking at switch egress queues.
    pub ecn: EcnConfig,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            routing_convergence: SimDuration::from_secs(30),
            seed: 1,
            ecn: EcnConfig::default(),
        }
    }
}

/// The packet-level fabric simulator.
#[derive(Debug)]
pub struct Fabric<P> {
    topo: Topology,
    devices: Vec<DeviceState>,
    cfg: FabricConfig,
    loss_rng: SmallRng,
    /// Dedicated RED-marking stream: only drawn from when ECN is
    /// enabled, so turning marking on/off never perturbs `loss_rng`.
    ecn_rng: SmallRng,
    /// Packets ECN-marked so far (diagnostics / oracles).
    ecn_marked: u64,
    drops: DropStats,
    delivered: u64,
    /// In-flight packets, parked between hops; events carry handles.
    packets: Slab<FabricPacket<P>>,
    /// Memoized post-filter ECMP sets (see [`RouteCache`]).
    routes: RouteCache,
    /// Scratch for `Topology::next_hop_ports_into` on cache misses.
    route_scratch: Vec<usize>,
    /// Route lookups served from the cache (diagnostics / benches).
    route_hits: u64,
    /// Route lookups that had to recompute (diagnostics / benches).
    route_misses: u64,
}

impl<P> Fabric<P> {
    /// Build a fabric over `topo`.
    pub fn new(topo: Topology, cfg: FabricConfig) -> Self {
        let devices: Vec<DeviceState> = topo
            .devices()
            .iter()
            .map(|d| DeviceState {
                failure: None,
                excluded: false,
                ports: d
                    .ports
                    .iter()
                    .map(|p| PortState {
                        to: p.to,
                        rate: p.link.rate,
                        delay: p.link.delay,
                        cap_bytes: p.link.queue_bytes,
                        // Pre-size for the full-MTU packet count the
                        // buffer can hold; avoids growth reallocations on
                        // the enqueue hot path (tiny-packet bursts may
                        // still grow it once, amortized).
                        queue: VecDeque::with_capacity((p.link.queue_bytes / 4096).clamp(16, 512)),
                        queued_bytes: 0,
                        in_flight: false,
                        tx_bytes: 0,
                        max_queue_bytes: 0,
                    })
                    .collect(),
            })
            .collect();
        let loss_rng = rng::stream(cfg.seed, "fabric-loss");
        let ecn_rng = rng::stream(cfg.seed, "fabric-ecn");
        let n_dev = devices.len();
        Fabric {
            topo,
            devices,
            cfg,
            loss_rng,
            ecn_rng,
            ecn_marked: 0,
            drops: DropStats::default(),
            delivered: 0,
            packets: Slab::with_capacity(256),
            routes: RouteCache::new(n_dev),
            route_scratch: Vec::with_capacity(8),
            route_hits: 0,
            route_misses: 0,
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Packets delivered to destination servers so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Drop accounting.
    pub fn drops(&self) -> DropStats {
        self.drops
    }

    /// Packets ECN-marked by RED so far (0 unless marking is enabled).
    pub fn ecn_marked(&self) -> u64 {
        self.ecn_marked
    }

    /// Packets currently parked in the arena (in a queue or on a wire).
    pub fn packets_in_flight(&self) -> usize {
        self.packets.len()
    }

    /// Route lookups served from the memo cache vs. recomputed.
    pub fn route_cache_stats(&self) -> (u64, u64) {
        (self.route_hits, self.route_misses)
    }

    /// Largest egress queue (bytes) observed anywhere, a congestion probe.
    pub fn max_queue_bytes(&self) -> usize {
        self.devices
            .iter()
            .flat_map(|d| d.ports.iter().map(|p| p.max_queue_bytes))
            .max()
            .unwrap_or(0)
    }

    /// Inject a failure on `device`. Fail-stop schedules ECMP exclusion
    /// after the configured convergence delay; silent failures never
    /// converge.
    pub fn inject_failure(
        &mut self,
        device: DeviceId,
        mode: FailureMode,
        sched: &mut impl Scheduler<NetEvent>,
    ) {
        let convergence = self.cfg.routing_convergence;
        self.inject_failure_with(device, mode, convergence, sched);
    }

    /// Like [`Fabric::inject_failure`] but with an explicit convergence
    /// delay: fail-stops *inside* the fabric (spine/core link-down) are
    /// detected and routed around in well under a second, while a dead
    /// server-facing ToR relies on slow host-side bonding failover — the
    /// asymmetry behind Table 2's spine-vs-ToR rows.
    pub fn inject_failure_with(
        &mut self,
        device: DeviceId,
        mode: FailureMode,
        convergence: SimDuration,
        sched: &mut impl Scheduler<NetEvent>,
    ) {
        self.devices[device.0 as usize].failure = Some(mode);
        if mode == FailureMode::FailStop {
            sched.after(convergence, NetEvent::RoutingConverged { device });
        }
    }

    /// Clear a failure (repair / reboot completed) and re-include the
    /// device in ECMP.
    pub fn heal(&mut self, device: DeviceId) {
        let d = &mut self.devices[device.0 as usize];
        d.failure = None;
        if d.excluded {
            d.excluded = false;
            // Re-inclusion changes ECMP sets fabric-wide.
            self.routes.invalidate_all();
        }
    }

    /// Send a packet from its source server. Processes the first hop
    /// immediately; returns the packet if src == dst (local delivery).
    pub fn send(
        &mut self,
        now: SimTime,
        pkt: FabricPacket<P>,
        sched: &mut impl Scheduler<NetEvent>,
    ) -> Option<FabricPacket<P>> {
        debug_assert_eq!(
            self.topo.coord(pkt.flow.src).kind,
            DeviceKind::Server,
            "packets originate at servers"
        );
        let src = pkt.flow.src;
        let h = self.packets.insert(pkt);
        self.arrive(now, src, h, sched)
    }

    /// Park `pkt` in the arena and return the [`NetEvent::Arrive`] that
    /// injects it at `device`. For external drivers (tests, benches) that
    /// schedule arrivals directly instead of going through
    /// [`Fabric::send`].
    pub fn arrive_event(&mut self, device: DeviceId, pkt: FabricPacket<P>) -> NetEvent {
        NetEvent::Arrive {
            device,
            pkt: self.packets.insert(pkt),
        }
    }

    /// Process one fabric event. Returns a packet when it reaches its
    /// destination server.
    pub fn handle(
        &mut self,
        now: SimTime,
        ev: NetEvent,
        sched: &mut impl Scheduler<NetEvent>,
    ) -> Option<FabricPacket<P>> {
        match ev {
            NetEvent::Arrive { device, pkt } => self.arrive(now, device, pkt, sched),
            NetEvent::TxDone { device, port } => {
                self.tx_done(now, device, port as usize, sched);
                None
            }
            NetEvent::RoutingConverged { device } => {
                // Only exclude if still failed (it may have healed).
                let d = &mut self.devices[device.0 as usize];
                if d.failure == Some(FailureMode::FailStop) {
                    d.excluded = true;
                    // Exclusion changes ECMP sets fabric-wide.
                    self.routes.invalidate_all();
                }
                None
            }
        }
    }

    fn arrive(
        &mut self,
        now: SimTime,
        device: DeviceId,
        h: PacketHandle,
        sched: &mut impl Scheduler<NetEvent>,
    ) -> Option<FabricPacket<P>> {
        // One arena read covers the failure checks, the delivery test and
        // the forwarding decision.
        let (flow_hash, dst) = match self.packets.get(h) {
            Some(p) => (p.flow_hash, p.flow.dst),
            // Stale or foreign handle: nothing to do.
            None => return None,
        };

        // Failure processing at the receiving device.
        if let Some(mode) = self.devices[device.0 as usize].failure {
            match mode {
                FailureMode::FailStop => {
                    self.drops.fail_stop += 1;
                    self.packets.take(h);
                    return None;
                }
                FailureMode::Blackhole { fraction, salt } => {
                    let hh = flow_hash ^ salt.wrapping_mul(0x9E3779B97F4A7C15);
                    // Map hash to [0,1) and compare.
                    if ((hh >> 11) as f64 / (1u64 << 53) as f64) < fraction {
                        self.drops.blackhole += 1;
                        self.packets.take(h);
                        return None;
                    }
                }
                FailureMode::RandomLoss { rate } => {
                    if self.loss_rng.gen::<f64>() < rate {
                        self.drops.random_loss += 1;
                        self.packets.take(h);
                        return None;
                    }
                }
            }
        }

        if device == dst {
            let pkt = self.packets.take(h)?;
            self.delivered += 1;
            return Some(pkt);
        }

        // Forwarding decision, memoized per (device, dst) until the
        // exclusion set changes. The hot case is two loads: the 12-byte
        // entry, then its arena window.
        let Fabric {
            topo,
            devices,
            routes,
            route_scratch,
            route_hits,
            route_misses,
            ..
        } = self;
        let epoch = routes.epoch;
        let idx = device.0 as usize * routes.n_dev + dst.0 as usize;
        let mut entry = routes.entries[idx];
        if entry.epoch != epoch {
            topo.next_hop_ports_into(device, dst, route_scratch);
            let off = routes.arena.len();
            for &p in route_scratch.iter() {
                let to = devices[device.0 as usize].ports[p].to;
                if !devices[to.0 as usize].excluded {
                    routes.arena.push(p as u16);
                }
            }
            entry = RouteEntry {
                epoch,
                off: off as u32,
                len: (routes.arena.len() - off) as u16,
            };
            routes.entries[idx] = entry;
            *route_misses += 1;
        } else {
            *route_hits += 1;
        }
        if entry.len == 0 {
            self.drops.no_route += 1;
            self.packets.take(h);
            return None;
        }
        let ports = &routes.arena[entry.off as usize..entry.off as usize + entry.len as usize];
        // ECMP: consistent hash of flow ⊕ device salt, re-mixed per hop.
        // The finalizer matters: `(hash ^ salt) % 2` consumes only the low
        // bit, and since an odd salt multiplier preserves device-id
        // parity, successive 2-way fan-outs (server→ToR-pair, ToR→spines)
        // become perfectly correlated — e.g. every flow of an even-id
        // server crosses spine[0] *regardless of its ports*, so no amount
        // of source-port remapping can steer around a bad spine. Mixing
        // through a splitmix64 finalizer decorrelates the per-hop choices
        // while staying deterministic per (flow, device).
        let salt = (device.0 as u64).wrapping_mul(0xA24BAED4963EE407);
        let mut x = flow_hash ^ salt;
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58476D1CE4E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D049BB133111EB);
        x ^= x >> 31;
        let choice = ports[(x % ports.len() as u64) as usize] as usize;
        self.enqueue(now, device, choice, h, sched);
        None
    }

    fn enqueue(
        &mut self,
        now: SimTime,
        device: DeviceId,
        port_idx: usize,
        h: PacketHandle,
        sched: &mut impl Scheduler<NetEvent>,
    ) {
        let is_switch = self.topo.coord(device).kind != DeviceKind::Server;
        let Fabric {
            devices,
            packets,
            drops,
            cfg,
            ecn_rng,
            ecn_marked,
            ..
        } = self;
        let port = &mut devices[device.0 as usize].ports[port_idx];
        let Some(pkt) = packets.get_mut(h) else {
            return;
        };
        let size = pkt.size;
        if port.queued_bytes + size > port.cap_bytes {
            drops.queue_overflow += 1;
            packets.take(h);
            return;
        }
        if is_switch {
            // RED/ECN marking on switch egress: linear ramp between kmin
            // and kmax, certain past kmax. The guard keeps the dedicated
            // ECN stream undrawn while marking is off, so existing seeds
            // replay byte-identically with the feature disabled.
            if cfg.ecn.enabled && !pkt.ecn {
                let qlen = port.queued_bytes + size;
                let marked = if qlen >= cfg.ecn.kmax_bytes {
                    true
                } else if qlen > cfg.ecn.kmin_bytes {
                    let ramp = (qlen - cfg.ecn.kmin_bytes) as f64
                        / (cfg.ecn.kmax_bytes - cfg.ecn.kmin_bytes).max(1) as f64;
                    ecn_rng.gen::<f64>() < cfg.ecn.pmax * ramp
                } else {
                    false
                };
                if marked {
                    pkt.ecn = true;
                    *ecn_marked += 1;
                }
            }
            // INT stamping on switch egress.
            if let Some(int) = pkt.int.as_mut() {
                int.push(IntHop {
                    device_id: device.0,
                    queue_bytes: (port.queued_bytes + size) as u32,
                    tx_bytes: port.tx_bytes,
                    ts_ns: now.as_nanos(),
                    link_mbps: (port.rate.as_bps() / 1_000_000) as u32,
                });
            }
        }
        port.queued_bytes += size;
        port.max_queue_bytes = port.max_queue_bytes.max(port.queued_bytes);
        port.queue.push_back((h, size as u32));
        if !port.in_flight {
            // The queue was empty, so the packet just pushed is the head.
            port.in_flight = true;
            let ser = port.rate.transmit_time(size);
            sched.at(
                now + ser,
                NetEvent::TxDone {
                    device,
                    port: port_idx as u32,
                },
            );
        }
    }

    fn tx_done(
        &mut self,
        now: SimTime,
        device: DeviceId,
        port_idx: usize,
        sched: &mut impl Scheduler<NetEvent>,
    ) {
        let port = &mut self.devices[device.0 as usize].ports[port_idx];
        // lint: allow(panic_discipline) — a TxDone is only scheduled while a packet serializes on this port; an empty queue here is a scheduler bug worth crashing on, and the proptests drive this path
        let (h, size) = port.queue.pop_front().expect("tx_done with empty queue");
        port.queued_bytes -= size as usize;
        port.tx_bytes += size as u64;
        let to = port.to;
        let delay = port.delay;
        // Start serializing the next packet, if any.
        if let Some(&(_, next_size)) = port.queue.front() {
            let ser = port.rate.transmit_time(next_size as usize);
            sched.at(
                now + ser,
                NetEvent::TxDone {
                    device,
                    port: port_idx as u32,
                },
            );
        } else {
            port.in_flight = false;
        }
        // Propagate to the neighbor.
        sched.at(now + delay, NetEvent::Arrive { device: to, pkt: h });
    }
}

impl<P> ebs_obs::Sample for Fabric<P> {
    /// Component `net`: delivery/drop counters plus per-link occupancy
    /// histograms. Each egress port contributes one observation to the
    /// `link_queue_bytes` / `link_tx_bytes` histograms, so ECMP imbalance
    /// shows up as spread (p99 ≫ p50) rather than needing per-link keys.
    fn sample_into(&self, _now: SimTime, m: &mut ebs_obs::Metrics) {
        m.counter_add("net", "delivered", self.delivered);
        m.counter_add("net", "drop_fail_stop", self.drops.fail_stop);
        m.counter_add("net", "drop_blackhole", self.drops.blackhole);
        m.counter_add("net", "drop_random_loss", self.drops.random_loss);
        m.counter_add("net", "drop_queue_overflow", self.drops.queue_overflow);
        m.counter_add("net", "drop_no_route", self.drops.no_route);
        m.counter_add("net", "ecn_marked", self.ecn_marked);
        m.counter_add("net", "route_cache_hits", self.route_hits);
        m.counter_add("net", "route_cache_misses", self.route_misses);
        m.gauge_set("net", "max_queue_bytes", self.max_queue_bytes() as f64);
        for dev in &self.devices {
            for port in &dev.ports {
                m.observe("net", "link_queue_bytes", port.queued_bytes as u64);
                m.observe("net", "link_tx_bytes", port.tx_bytes);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::ClosConfig;
    use ebs_sim::EventQueue;

    fn fabric() -> (Fabric<u32>, EventQueue<NetEvent>) {
        let topo = Topology::build(ClosConfig::testbed(2, 2, 2));
        (
            Fabric::new(topo, FabricConfig::default()),
            EventQueue::new(),
        )
    }

    fn run_to_end(
        f: &mut Fabric<u32>,
        q: &mut EventQueue<NetEvent>,
    ) -> Vec<(SimTime, FabricPacket<u32>)> {
        let mut out = Vec::new();
        while let Some((t, ev)) = q.pop() {
            if let Some(pkt) = f.handle(t, ev, q) {
                out.push((t, pkt));
            }
        }
        out
    }

    fn pkt(f: &Fabric<u32>, s: usize, d: usize, sport: u16, tag: u32) -> FabricPacket<u32> {
        FabricPacket::new(
            FlowLabel {
                src: f.topology().servers()[s],
                dst: f.topology().servers()[d],
                src_port: sport,
                dst_port: 9000,
                proto: 17,
            },
            4096,
            None,
            tag,
        )
    }

    #[test]
    fn delivers_across_pods() {
        let (mut f, mut q) = fabric();
        let p = pkt(&f, 0, 5, 1000, 7);
        assert!(f.send(SimTime::ZERO, p, &mut q).is_none());
        let got = run_to_end(&mut f, &mut q);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1.payload, 7);
        // Path: srv->tor->spine->core->spine->tor->srv = 6 links.
        // Serialization + propagation must be sane: > 6 * 0.65us.
        assert!(got[0].0 > SimTime::from_micros(6));
        assert!(got[0].0 < SimTime::from_micros(60));
        // Nothing left parked once the wire drains.
        assert_eq!(f.packets_in_flight(), 0);
    }

    #[test]
    fn local_delivery_same_server() {
        let (mut f, mut q) = fabric();
        let p = pkt(&f, 0, 0, 1, 1);
        let got = f.send(SimTime::ZERO, p, &mut q);
        assert!(got.is_some());
        assert_eq!(f.packets_in_flight(), 0);
    }

    #[test]
    fn different_src_ports_can_take_different_paths() {
        // With 2 spines and 4 cores, many src ports must diverge: count
        // distinct total-latency values as a proxy for distinct paths.
        let (mut f, mut q) = fabric();
        for sport in 0..32 {
            let p = pkt(&f, 0, 5, sport, sport as u32);
            f.send(SimTime::from_micros(sport as u64 * 100), p, &mut q);
        }
        let got = run_to_end(&mut f, &mut q);
        assert_eq!(got.len(), 32);
        // ECMP is deterministic per flow: resending the same port takes
        // the same path.
        let (mut f2, mut q2) = fabric();
        for sport in 0..32 {
            let p = pkt(&f2, 0, 5, sport, sport as u32);
            f2.send(SimTime::from_micros(sport as u64 * 100), p, &mut q2);
        }
        let got2 = run_to_end(&mut f2, &mut q2);
        for (a, b) in got.iter().zip(got2.iter()) {
            assert_eq!(a.0, b.0, "ECMP must be deterministic");
        }
    }

    #[test]
    fn route_cache_hits_dominate_on_repeated_flows() {
        let (mut f, mut q) = fabric();
        for sport in 0..64 {
            let p = pkt(&f, 0, 5, sport, sport as u32);
            f.send(SimTime::from_micros(sport as u64 * 100), p, &mut q);
        }
        run_to_end(&mut f, &mut q);
        let (hits, misses) = f.route_cache_stats();
        // Each (forwarding device, dst) pair misses exactly once and hits
        // thereafter; the ECMP fan means a dozen-odd pairs, while 64 flows
        // crossing ~6 forwarding hops produce hundreds of lookups.
        assert!(misses <= 16, "one miss per (device,dst): got {misses}");
        assert!(hits > 5 * misses, "hits={hits} misses={misses}");
    }

    #[test]
    fn fail_stop_drops_then_routing_converges() {
        let (mut f, mut q) = fabric();
        // Fail one of the two pod-0 spines.
        let spine = f.topology().devices_of_kind(DeviceKind::Spine)[0];
        f.inject_failure(spine, FailureMode::FailStop, &mut q);
        // Send 64 flows through before convergence: roughly half die.
        for sport in 0..64 {
            let p = pkt(&f, 0, 2, sport, sport as u32);
            f.send(SimTime::ZERO, p, &mut q);
        }
        // Drain only events before convergence... simpler: run everything;
        // convergence is at 30s, all sends happen at t=0.
        let got = run_to_end(&mut f, &mut q);
        assert!(f.drops().fail_stop > 10, "some flows hit the dead spine");
        assert!(got.len() > 10, "other flows survive");
        assert!(got.len() < 64);

        // After convergence (applied in the previous drain), the same
        // flows all deliver.
        let mut q2 = EventQueue::new();
        for sport in 0..64 {
            let p = pkt(&f, 0, 2, sport, sport as u32);
            f.send(SimTime::from_secs(60), p, &mut q2);
        }
        // Remove the dummy before draining: pop it first.
        let before = f.delivered();
        let _ = run_to_end(&mut f, &mut q2);
        assert_eq!(f.delivered() - before, 64, "all flows avoid excluded spine");
    }

    #[test]
    fn blackhole_kills_only_matching_flows_forever() {
        let (mut f, mut q) = fabric();
        let spine = f.topology().devices_of_kind(DeviceKind::Spine)[0];
        f.inject_failure(
            spine,
            FailureMode::Blackhole {
                fraction: 1.0,
                salt: 3,
            },
            &mut q,
        );
        for sport in 0..64 {
            let p = pkt(&f, 0, 2, sport, sport as u32);
            f.send(SimTime::ZERO, p, &mut q);
        }
        let got = run_to_end(&mut f, &mut q);
        let killed: u64 = f.drops().blackhole;
        assert!(killed > 10);
        assert_eq!(got.len() as u64 + killed, 64);
        // No convergence ever happens for blackholes: resending the same
        // flows much later still loses the same ones.
        for sport in 0..64 {
            let p = pkt(&f, 0, 2, sport, sport as u32);
            f.send(SimTime::from_secs(100), p, &mut q);
        }
        let got2 = run_to_end(&mut f, &mut q);
        assert_eq!(got.len(), got2.len(), "blackhole is silent and persistent");
    }

    #[test]
    fn random_loss_drops_proportionally() {
        let (mut f, mut q) = fabric();
        let tor = f.topology().devices_of_kind(DeviceKind::Tor)[0];
        f.inject_failure(tor, FailureMode::RandomLoss { rate: 0.5 }, &mut q);
        for i in 0..200 {
            let p = pkt(&f, 0, 1, i, i as u32); // same tor pair
            f.send(SimTime::from_micros(i as u64 * 50), p, &mut q);
        }
        run_to_end(&mut f, &mut q);
        let lost = f.drops().random_loss as f64 / 200.0;
        assert!((0.3..0.7).contains(&lost), "loss rate ~0.5, got {lost}");
    }

    #[test]
    fn heal_restores_traffic() {
        let (mut f, mut q) = fabric();
        let tor = f.topology().devices_of_kind(DeviceKind::Tor)[0];
        f.inject_failure(tor, FailureMode::FailStop, &mut q);
        let p = pkt(&f, 0, 1, 1, 1);
        f.send(SimTime::ZERO, p, &mut q);
        let got = run_to_end(&mut f, &mut q);
        assert!(got.is_empty());
        f.heal(tor);
        let p = pkt(&f, 0, 1, 1, 2);
        f.send(SimTime::from_secs(100), p, &mut q);
        let got = run_to_end(&mut f, &mut q);
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn heal_after_exclusion_invalidates_cached_routes() {
        let (mut f, mut q) = fabric();
        let spine = f.topology().devices_of_kind(DeviceKind::Spine)[0];
        f.inject_failure(spine, FailureMode::FailStop, &mut q);
        // Drain: applies RoutingConverged at 30s, excluding the spine, and
        // populates route caches without it.
        for sport in 0..64 {
            let p = pkt(&f, 0, 2, sport, sport as u32);
            f.send(SimTime::ZERO, p, &mut q);
        }
        run_to_end(&mut f, &mut q);
        // Post-exclusion: all 64 flows use the surviving spine.
        let before = f.delivered();
        for sport in 0..64 {
            let p = pkt(&f, 0, 2, sport, sport as u32);
            f.send(SimTime::from_secs(60), p, &mut q);
        }
        run_to_end(&mut f, &mut q);
        assert_eq!(f.delivered() - before, 64);

        // Heal. Cached entries must refill to include the revived spine —
        // the flows spread over both spines again, which shows up as
        // distinct per-flow latencies diverging from the single-spine run.
        f.heal(spine);
        let before = f.delivered();
        for sport in 0..64 {
            let p = pkt(&f, 0, 2, sport, sport as u32);
            f.send(SimTime::from_secs(120), p, &mut q);
        }
        run_to_end(&mut f, &mut q);
        assert_eq!(f.delivered() - before, 64);
        // Fresh fabric with no failure history must agree exactly with the
        // healed fabric (cache cannot pin stale single-spine routes).
        let (mut f2, mut q2) = fabric();
        for sport in 0..64 {
            let p = pkt(&f2, 0, 2, sport, sport as u32);
            f2.send(SimTime::from_secs(120), p, &mut q2);
        }
        run_to_end(&mut f2, &mut q2);
        let fresh: Vec<usize> = f2
            .devices
            .iter()
            .flat_map(|d| d.ports.iter().map(|p| p.tx_bytes as usize))
            .collect();
        // tx_bytes per port of the healed fabric, counting only the final
        // batch (subtract the two earlier 64-packet batches is fiddly; the
        // spread test below is the meaningful assertion).
        let spine_ports: usize = f
            .devices
            .iter()
            .enumerate()
            .filter(|(i, _)| *i == spine.0 as usize)
            .map(|(_, d)| d.ports.iter().filter(|p| p.tx_bytes > 0).count())
            .sum();
        assert!(
            spine_ports > 0,
            "healed spine carries traffic again (stale cache would starve it)"
        );
        assert!(fresh.iter().any(|&b| b > 0));
    }

    #[test]
    fn int_stack_collects_switch_hops() {
        let (mut f, mut q) = fabric();
        let mut p = pkt(&f, 0, 5, 1, 1);
        p.int = Some(IntStack::with_path_capacity());
        f.send(SimTime::ZERO, p, &mut q);
        let got = run_to_end(&mut f, &mut q);
        let int = got[0].1.int.as_ref().unwrap();
        // Cross-pod: tor, spine, core, spine, tor = 5 switch hops.
        assert_eq!(int.hops.len(), 5);
        assert!(int.hops.iter().all(|h| h.link_mbps >= 50_000));
    }

    #[test]
    fn queue_overflow_tail_drops() {
        let (mut f, mut q) = fabric();
        // Slam 1000 jumbo packets into one 50G server uplink at t=0:
        // 512KiB of queue / 4KiB = ~128 fit.
        for i in 0..1000 {
            let p = pkt(&f, 0, 5, 1, i); // same flow -> same path
            f.send(SimTime::ZERO, p, &mut q);
        }
        let got = run_to_end(&mut f, &mut q);
        assert!(
            f.drops().queue_overflow > 0,
            "shallow buffer must tail-drop"
        );
        assert!(got.len() < 1000);
        assert!(got.len() > 50);
        // Dropped packets are freed, not leaked in the arena.
        assert_eq!(f.packets_in_flight(), 0);
    }

    #[test]
    fn arena_slots_bounded_by_peak_occupancy() {
        let (mut f, mut q) = fabric();
        // Send-and-drain in lockstep so only one packet is ever on the
        // wire: arena slots track the peak occupancy, not the 500 sends.
        for i in 0..500u16 {
            let p = pkt(&f, 0, 5, i, i as u32);
            f.send(SimTime::from_micros(i as u64 * 200), p, &mut q);
            run_to_end(&mut f, &mut q);
        }
        assert_eq!(f.packets_in_flight(), 0);
        assert!(
            f.packets.slots() < 8,
            "slots ({}) must reflect peak in-flight, not 500 sends",
            f.packets.slots()
        );
    }

    #[test]
    fn ecn_disabled_never_marks() {
        let (mut f, mut q) = fabric();
        for i in 0..500 {
            let p = pkt(&f, 0, 5, 1, i); // same flow -> same congested path
            f.send(SimTime::ZERO, p, &mut q);
        }
        let got = run_to_end(&mut f, &mut q);
        assert_eq!(f.ecn_marked(), 0);
        assert!(got.iter().all(|(_, p)| !p.ecn));
    }

    #[test]
    fn ecn_marks_under_congestion() {
        let topo = Topology::build(ClosConfig::testbed(2, 2, 2));
        let mut f: Fabric<u32> = Fabric::new(
            topo,
            FabricConfig {
                ecn: EcnConfig {
                    enabled: true,
                    ..EcnConfig::default()
                },
                ..FabricConfig::default()
            },
        );
        let mut q = EventQueue::new();
        // N:1 incast: four senders converge on server 5, so the queue
        // builds at its ToR's server-facing egress — a *switch* queue,
        // where RED marking runs.
        for i in 0..500 {
            let p = pkt(&f, (i % 4) as usize, 5, 1, i);
            f.send(SimTime::ZERO, p, &mut q);
        }
        let got = run_to_end(&mut f, &mut q);
        assert!(f.ecn_marked() > 0, "a 2 MiB incast must cross kmin");
        assert!(
            got.iter().any(|(_, p)| p.ecn),
            "marked packets must reach the destination with the bit set"
        );
        // Early packets see a near-empty queue and pass unmarked.
        assert!(got.iter().any(|(_, p)| !p.ecn));
    }

    #[test]
    fn ecn_marking_does_not_shift_the_loss_stream() {
        // The RED draw uses its own RNG stream: the set of packets the
        // RandomLoss failure eats must be identical whether or not ECN
        // marking is enabled.
        let delivered_tags = |ecn_on: bool| -> Vec<u32> {
            let topo = Topology::build(ClosConfig::testbed(2, 2, 2));
            let mut f: Fabric<u32> = Fabric::new(
                topo,
                FabricConfig {
                    ecn: EcnConfig {
                        enabled: ecn_on,
                        ..EcnConfig::default()
                    },
                    ..FabricConfig::default()
                },
            );
            let mut q = EventQueue::new();
            let spine = f
                .topology()
                .devices()
                .iter()
                .position(|d| d.coord.kind == DeviceKind::Spine)
                .map(|i| DeviceId(i as u32))
                .unwrap();
            f.inject_failure(spine, FailureMode::RandomLoss { rate: 0.3 }, &mut q);
            for i in 0..300 {
                let p = pkt(&f, 0, 5, (i % 7) as u16, i);
                f.send(SimTime::from_micros(i as u64), p, &mut q);
            }
            let mut tags: Vec<u32> = run_to_end(&mut f, &mut q)
                .into_iter()
                .map(|(_, p)| p.payload)
                .collect();
            tags.sort_unstable();
            tags
        };
        assert_eq!(delivered_tags(false), delivered_tags(true));
    }
}
