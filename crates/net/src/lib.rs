//! # ebs-net — the frontend-network fabric simulator
//!
//! A packet-level model of the region network between compute and storage
//! clusters (§2.1): a multi-DC Clos topology ([`Topology`]) with
//! finite shallow egress queues, store-and-forward serialization,
//! consistent-hash ECMP, per-hop INT stamping for HPCC, and the failure
//! modes that drive the paper's reliability story ([`FailureMode`]:
//! fail-stop with slow routing convergence, *silent blackholes* that
//! routing never detects, and random loss).
//!
//! The fabric is payload-generic and sans-io: it consumes and emits
//! [`NetEvent`]s on any [`Scheduler`](ebs_sim::Scheduler), so the composed
//! world in `ebs-stack` embeds it with a
//! [`MapScheduler`](ebs_sim::MapScheduler).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fabric;
mod shard;
mod topology;

pub use fabric::{
    DropStats, EcnConfig, Fabric, FabricConfig, FabricPacket, FailureMode, FlowLabel, NetEvent,
    PacketHandle,
};
pub use shard::{ShardPlan, ShardSlice};
pub use topology::{
    ClosConfig, Coord, DeviceId, DeviceKind, DeviceSpec, LinkSpec, PortSpec, Topology,
};
