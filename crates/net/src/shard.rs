//! Topology partitioner for the sharded fleet engine.
//!
//! A fleet run splits a region into **shards**: pod-groups that each own a
//! private Clos slice (their ToRs, spines and a share of the DC
//! core/router tiers) and exchange traffic only through the inter-DC
//! router tier. The partitioner does not build one giant [`Topology`] and
//! cut it — each shard builds its own [`ClosConfig`] — but it fixes the
//! two facts the sharded executor needs to stay conservative:
//!
//! * how many compute/storage servers land in each shard (remainders go
//!   to the front shards, so shard populations differ by at most one),
//! * the **boundary latency**: the minimum one-way latency any packet
//!   needs to cross from one shard to another. A message leaving shard A
//!   during window `[W, W+w)` arrives at `B` no earlier than
//!   `W + boundary_latency`, so any window `w ≤ boundary_latency` makes
//!   an end-of-window mailbox exchange safe (no message can arrive
//!   inside the window it departed in).
//!
//! [`Topology`]: crate::Topology

use ebs_sim::SimDuration;

use crate::topology::ClosConfig;

/// One shard's share of the fleet: how many servers of each role it hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSlice {
    /// Compute servers in this shard.
    pub computes: u32,
    /// Storage servers in this shard.
    pub storages: u32,
}

/// A fleet partitioning: per-shard server counts plus the conservative
/// window bound. See the module docs.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Per-shard slices, in shard order.
    pub shards: Vec<ShardSlice>,
    /// Minimum one-way cross-shard latency; the widest safe exchange
    /// window for the time-window barrier.
    pub boundary_latency: SimDuration,
}

impl ShardPlan {
    /// Split `computes` + `storages` servers across `n_shards` pod-group
    /// shards over fabrics built from `link`'s link specs. `n_shards` is
    /// clamped to at least 1; empty shards are legal (they idle).
    pub fn partition(link: &ClosConfig, computes: u32, storages: u32, n_shards: u32) -> ShardPlan {
        let n = n_shards.max(1);
        let shards = (0..n)
            .map(|s| ShardSlice {
                computes: computes / n + u32::from(s < computes % n),
                storages: storages / n + u32::from(s < storages % n),
            })
            .collect();
        ShardPlan {
            shards,
            boundary_latency: Self::boundary_latency_of(link),
        }
    }

    /// The minimum one-way latency between servers in different shards:
    /// the path must ascend to this shard's core tier, transit the DC
    /// router, and descend the destination shard's core tier — two
    /// spine↔core hops and two core↔router hops beyond what any
    /// intra-shard path pays. Propagation only: queueing and
    /// serialization can only make the crossing later, which keeps the
    /// bound conservative.
    pub fn boundary_latency_of(link: &ClosConfig) -> SimDuration {
        (link.spine_core.delay + link.core_router.delay) * 2
    }

    /// Total computes across all shards.
    pub fn total_computes(&self) -> u32 {
        self.shards.iter().map(|s| s.computes).sum()
    }

    /// Total storages across all shards.
    pub fn total_storages(&self) -> u32 {
        self.shards.iter().map(|s| s.storages).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_conserves_totals_and_balances() {
        let link = ClosConfig::testbed(2, 2, 4);
        let plan = ShardPlan::partition(&link, 103, 31, 8);
        assert_eq!(plan.shards.len(), 8);
        assert_eq!(plan.total_computes(), 103);
        assert_eq!(plan.total_storages(), 31);
        let cmax = plan.shards.iter().map(|s| s.computes).max().unwrap();
        let cmin = plan.shards.iter().map(|s| s.computes).min().unwrap();
        assert!(cmax - cmin <= 1, "front-loaded remainder only");
    }

    #[test]
    fn boundary_latency_is_the_double_core_crossing() {
        let link = ClosConfig::testbed(2, 2, 4);
        // testbed(): spine_core 2µs, core_router 20µs → 2*(2+20) = 44µs.
        assert_eq!(
            ShardPlan::boundary_latency_of(&link),
            SimDuration::from_micros(44)
        );
        assert_eq!(
            ShardPlan::partition(&link, 8, 4, 2).boundary_latency,
            SimDuration::from_micros(44)
        );
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let link = ClosConfig::testbed(2, 2, 4);
        let plan = ShardPlan::partition(&link, 5, 3, 0);
        assert_eq!(plan.shards.len(), 1);
        assert_eq!(
            plan.shards[0],
            ShardSlice {
                computes: 5,
                storages: 3
            }
        );
    }
}
