//! Property tests for the fabric: ECMP determinism and balance, loss-free
//! delivery on healthy fabrics, and conservation (every packet is either
//! delivered or accounted as a drop).

use ebs_net::{ClosConfig, Fabric, FabricConfig, FabricPacket, FlowLabel, NetEvent, Topology};
use ebs_sim::{EventQueue, SimTime};
use proptest::prelude::*;

fn fabric(dual: bool) -> Fabric<u32> {
    let cfg = ClosConfig {
        dual_homed: dual,
        ..ClosConfig::testbed(2, 2, 2)
    };
    Fabric::new(Topology::build(cfg), FabricConfig::default())
}

fn drain(f: &mut Fabric<u32>, q: &mut EventQueue<NetEvent>) -> Vec<u32> {
    let mut out = Vec::new();
    while let Some((t, ev)) = q.pop() {
        if let Some(pkt) = f.handle(t, ev, q) {
            out.push(pkt.payload);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// On a healthy fabric every packet is delivered exactly once,
    /// regardless of endpoints, ports and sizes.
    #[test]
    fn healthy_fabric_delivers_everything(
        dual in any::<bool>(),
        flows in proptest::collection::vec(
            (0usize..8, 0usize..8, any::<u16>(), 64usize..9000), 1..40),
    ) {
        let mut f = fabric(dual);
        let mut q = EventQueue::new();
        let mut sent = 0u32;
        for (i, (src, dst, sport, size)) in flows.into_iter().enumerate() {
            if src == dst {
                continue;
            }
            let pkt = FabricPacket::new(
                FlowLabel {
                    src: f.topology().servers()[src],
                    dst: f.topology().servers()[dst],
                    src_port: sport,
                    dst_port: 9000,
                    proto: 17,
                },
                size,
                None,
                i as u32,
            );
            // Space arrivals to avoid tail-drop from a synthetic burst.
            let at = SimTime::from_micros(i as u64 * 40);
            let src = pkt.flow.src;
            let ev = f.arrive_event(src, pkt);
            q.schedule_at(at, ev);
            sent += 1;
        }
        let got = drain(&mut f, &mut q);
        prop_assert_eq!(got.len() as u32, sent);
        prop_assert_eq!(f.drops().total(), 0);
        // Exactly-once: payload tags are unique.
        let mut tags = got.clone();
        tags.sort();
        tags.dedup();
        prop_assert_eq!(tags.len(), got.len());
    }

    /// ECMP is deterministic: the same flow always takes the same path
    /// (identical delivery timestamps across runs).
    #[test]
    fn ecmp_is_deterministic(sport in any::<u16>(), src in 0usize..4, dst in 4usize..8) {
        let run = || {
            let mut f = fabric(true);
            let mut q = EventQueue::new();
            let pkt = FabricPacket::new(
                FlowLabel {
                    src: f.topology().servers()[src],
                    dst: f.topology().servers()[dst],
                    src_port: sport,
                    dst_port: 9000,
                    proto: 17,
                },
                4096,
                None,
                1u32,
            );
            let src = pkt.flow.src;
            let ev = f.arrive_event(src, pkt);
            q.schedule_at(SimTime::ZERO, ev);
            let mut at = None;
            while let Some((t, ev)) = q.pop() {
                if f.handle(t, ev, &mut q).is_some() {
                    at = Some(t);
                }
            }
            at.expect("delivered")
        };
        prop_assert_eq!(run(), run());
    }
}

/// Distinct source ports spread across next hops: over many ports, both
/// spines of a pod carry traffic (this is what SOLAR's path ids rely on).
#[test]
fn ecmp_balances_over_source_ports() {
    let mut f = fabric(false);
    let mut q: EventQueue<NetEvent> = EventQueue::new();
    // Cross-pod traffic from server 0 to server 5 over 256 source ports.
    for sport in 0..256u16 {
        let pkt = FabricPacket::new(
            FlowLabel {
                src: f.topology().servers()[0],
                dst: f.topology().servers()[5],
                src_port: sport,
                dst_port: 9000,
                proto: 17,
            },
            512,
            Some(ebs_wire::IntStack::with_path_capacity()),
            sport as u32,
        );
        let src = pkt.flow.src;
        let ev = f.arrive_event(src, pkt);
        q.schedule_at(SimTime::from_micros(sport as u64 * 20), ev);
    }
    // Count distinct first-hop spine devices via the INT stacks.
    let mut spine_seen = std::collections::HashSet::new();
    while let Some((t, ev)) = q.pop() {
        if let Some(pkt) = f.handle(t, ev, &mut q) {
            let int = pkt.int.expect("stamped");
            // hop 0 = src ToR, hop 1 = spine.
            spine_seen.insert(int.hops[1].device_id);
        }
    }
    assert!(
        spine_seen.len() >= 2,
        "256 ports must spread over both spines: {spine_seen:?}"
    );
}
