//! # ebs-rdma — an RC-verb RDMA model (BN substrate and FN baseline)
//!
//! The paper deploys RDMA in the storage clusters' *backend* network and
//! evaluates it as a *frontend* baseline (Figs. 10b, 14, 15). What matters
//! for those roles is captured here:
//!
//! * [`RdmaQp`] — a reliable-connection queue pair: messages are segmented
//!   into MTU packets with packet sequence numbers (PSNs), the responder
//!   accepts only in-order PSNs and NAKs the first gap, and the requester
//!   recovers with **Go-Back-N** (the recovery mode of the era's RNICs
//!   that §3.1 contrasts with Selective Repeat) or Selective Repeat;
//! * [`RnicModel`] — the connection-scalability cliff: RNIC caches QP
//!   state on-chip; beyond the cache capacity, per-op latency inflates as
//!   state thrashes to host memory (§3.1: throughput collapsed beyond
//!   ~5,000 connections);
//! * transport offload semantics for the host models: an RDMA FN spends
//!   no per-packet CPU, but the storage agent still runs in software and
//!   the data still crosses the DPU's internal PCIe twice (Fig. 10b) —
//!   those costs are charged in `ebs-stack`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, VecDeque};

use bytes::Bytes;
use ebs_cc::{Dcqcn, DcqcnConfig};
use ebs_sim::{SimDuration, SimTime};

/// Loss-recovery mode of the RNIC generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recovery {
    /// Retransmit everything from the NAKed PSN (older RNICs).
    GoBackN,
    /// Retransmit only the missing packet (newer RNICs; the paper notes
    /// the two generations cannot interoperate).
    SelectiveRepeat,
}

/// Queue-pair configuration.
#[derive(Debug, Clone)]
pub struct QpConfig {
    /// Path MTU (payload bytes per packet).
    pub mtu: usize,
    /// Fixed send window in packets (hardware credit).
    pub window_pkts: usize,
    /// Retransmission timeout.
    pub rto: SimDuration,
    /// Loss recovery mode.
    pub recovery: Recovery,
    /// Optional DCQCN-style ECN congestion control: when set, the QP
    /// runs a rate controller over the hardware credit window — the
    /// effective window is `min(window_pkts, dcqcn_window / mtu)`.
    /// `None` keeps the fixed credit window (the era's default RNIC).
    pub dcqcn: Option<DcqcnConfig>,
}

impl Default for QpConfig {
    fn default() -> Self {
        QpConfig {
            mtu: 4096,
            window_pkts: 64,
            rto: SimDuration::from_millis(1),
            recovery: Recovery::GoBackN,
            dcqcn: None,
        }
    }
}

/// A packet on the wire between two QPs.
#[derive(Debug, Clone)]
pub struct QpPacket {
    /// Packet sequence number.
    pub psn: u64,
    /// Packet kind.
    pub kind: PacketKind,
    /// Payload (data packets only).
    pub payload: Bytes,
    /// ECN congestion-experienced mark. Set by the fabric on data
    /// packets under RED marking; echoed by the responder on ACKs
    /// (the CNP role, condensed into the ack stream).
    pub ecn: bool,
}

/// RC packet kinds (condensed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// Middle/only data packet of a message.
    Data {
        /// True for the last packet of a message.
        last: bool,
    },
    /// Cumulative acknowledgment up to (excluding) `psn`.
    Ack,
    /// Negative ack: responder expected `psn`.
    Nak,
}

impl QpPacket {
    /// Wire size including RoCEv2 headers (≈ 58 bytes of overhead).
    pub fn wire_size(&self) -> usize {
        58 + self.payload.len()
    }
}

/// Counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct QpStats {
    /// Data packets sent, including retransmits.
    pub pkts_sent: u64,
    /// Retransmitted data packets.
    pub retransmits: u64,
    /// RTO expirations.
    pub timeouts: u64,
    /// Messages fully delivered to the peer application.
    pub msgs_delivered: u64,
    /// ACKs received carrying an echoed ECN mark.
    pub ecn_marked_acks: u64,
}

/// One side of a reliable-connection queue pair (sans-io).
#[derive(Debug)]
pub struct RdmaQp {
    cfg: QpConfig,
    // Send side.
    next_psn: u64,
    snd_una: u64,
    tx_msgs: VecDeque<Bytes>,
    inflight: BTreeMap<u64, (Bytes, bool)>,
    rtx: VecDeque<u64>,
    rto_deadline: Option<SimTime>,
    // Receive side.
    rcv_expected: u64,
    rx_partial: Vec<u8>,
    rx_msgs: VecDeque<Bytes>,
    nak_pending: Option<u64>,
    ack_pending: bool,
    ecn_echo: bool,
    dcqcn: Option<Dcqcn>,
    stats: QpStats,
}

impl RdmaQp {
    /// A fresh QP.
    pub fn new(cfg: QpConfig) -> Self {
        let dcqcn = cfg.dcqcn.map(Dcqcn::new);
        RdmaQp {
            cfg,
            dcqcn,
            next_psn: 0,
            snd_una: 0,
            tx_msgs: VecDeque::new(),
            inflight: BTreeMap::new(),
            rtx: VecDeque::new(),
            rto_deadline: None,
            rcv_expected: 0,
            rx_partial: Vec::new(),
            rx_msgs: VecDeque::new(),
            nak_pending: None,
            ack_pending: false,
            ecn_echo: false,
            stats: QpStats::default(),
        }
    }

    /// The window the sender may fill right now, in packets: the hardware
    /// credit window, further throttled by DCQCN when it is enabled.
    pub fn effective_window_pkts(&self) -> usize {
        match &self.dcqcn {
            Some(cc) => {
                let pkts = (cc.window() / self.cfg.mtu as f64).floor() as usize;
                pkts.clamp(1, self.cfg.window_pkts)
            }
            None => self.cfg.window_pkts,
        }
    }

    /// Counters.
    pub fn stats(&self) -> QpStats {
        self.stats
    }

    /// Post a message send (one work request).
    pub fn post_send(&mut self, msg: Bytes) {
        self.tx_msgs.push_back(msg);
    }

    /// Drain a fully received message.
    pub fn poll_recv(&mut self) -> Option<Bytes> {
        self.rx_msgs.pop_front()
    }

    /// Unacked packets in flight.
    pub fn inflight_pkts(&self) -> usize {
        self.inflight.len()
    }

    /// Next deadline for [`RdmaQp::on_timer`].
    pub fn poll_timer(&self) -> Option<SimTime> {
        self.rto_deadline
    }

    /// Fire the retransmission timer.
    pub fn on_timer(&mut self, now: SimTime) {
        let Some(d) = self.rto_deadline else { return };
        if now < d || self.inflight.is_empty() {
            return;
        }
        self.stats.timeouts += 1;
        self.queue_recovery(self.snd_una);
        self.rto_deadline = Some(now + self.cfg.rto);
    }

    fn queue_recovery(&mut self, from_psn: u64) {
        self.rtx.clear();
        match self.cfg.recovery {
            Recovery::GoBackN => {
                // Everything from the gap onward goes again.
                for (&psn, _) in self.inflight.range(from_psn..) {
                    self.rtx.push_back(psn);
                }
            }
            Recovery::SelectiveRepeat => {
                self.rtx.push_back(from_psn);
            }
        }
    }

    /// Produce the next outgoing packet.
    pub fn poll_transmit(&mut self, now: SimTime) -> Option<QpPacket> {
        // NAK / ACK responses first.
        if let Some(psn) = self.nak_pending.take() {
            return Some(QpPacket {
                psn,
                kind: PacketKind::Nak,
                payload: Bytes::new(),
                ecn: false,
            });
        }
        if self.ack_pending {
            self.ack_pending = false;
            // Echo any congestion mark seen since the last ack.
            let ecn = std::mem::take(&mut self.ecn_echo);
            return Some(QpPacket {
                psn: self.rcv_expected,
                kind: PacketKind::Ack,
                payload: Bytes::new(),
                ecn,
            });
        }
        // Retransmissions.
        while let Some(psn) = self.rtx.pop_front() {
            if let Some((payload, last)) = self.inflight.get(&psn) {
                self.stats.pkts_sent += 1;
                self.stats.retransmits += 1;
                return Some(QpPacket {
                    psn,
                    kind: PacketKind::Data { last: *last },
                    payload: payload.clone(),
                    ecn: false,
                });
            }
        }
        // New data within the window.
        if self.inflight.len() < self.effective_window_pkts() {
            if let Some(msg) = self.tx_msgs.front_mut() {
                let take = msg.len().min(self.cfg.mtu);
                let payload = msg.split_to(take);
                let last = msg.is_empty();
                if last {
                    self.tx_msgs.pop_front();
                }
                let psn = self.next_psn;
                self.next_psn += 1;
                self.inflight.insert(psn, (payload.clone(), last));
                if self.rto_deadline.is_none() {
                    self.rto_deadline = Some(now + self.cfg.rto);
                }
                self.stats.pkts_sent += 1;
                return Some(QpPacket {
                    psn,
                    kind: PacketKind::Data { last },
                    payload,
                    ecn: false,
                });
            }
        }
        None
    }

    /// Process an incoming packet.
    pub fn on_packet(&mut self, now: SimTime, pkt: QpPacket) {
        match pkt.kind {
            PacketKind::Data { last } => {
                if pkt.ecn {
                    self.ecn_echo = true;
                }
                if pkt.psn == self.rcv_expected {
                    self.rcv_expected += 1;
                    self.rx_partial.extend_from_slice(&pkt.payload);
                    if last {
                        self.rx_msgs
                            .push_back(Bytes::from(std::mem::take(&mut self.rx_partial)));
                        self.stats.msgs_delivered += 1;
                    }
                    self.ack_pending = true;
                } else if pkt.psn > self.rcv_expected {
                    // In-order-only receive: drop and NAK the gap. This is
                    // the brittleness to reordering that makes multi-path
                    // impractical for RC RDMA (§4.4).
                    self.nak_pending = Some(self.rcv_expected);
                } else {
                    // Duplicate of already-received data: re-ack.
                    self.ack_pending = true;
                }
            }
            PacketKind::Ack => {
                if pkt.ecn {
                    self.stats.ecn_marked_acks += 1;
                }
                if let Some(cc) = self.dcqcn.as_mut() {
                    cc.on_ecn_ack(now, pkt.ecn);
                }
                let acked: Vec<u64> = self.inflight.range(..pkt.psn).map(|(&p, _)| p).collect();
                for p in acked {
                    self.inflight.remove(&p);
                }
                self.snd_una = self.snd_una.max(pkt.psn);
                self.rto_deadline = if self.inflight.is_empty() {
                    None
                } else {
                    Some(now + self.cfg.rto)
                };
            }
            PacketKind::Nak => {
                self.queue_recovery(pkt.psn);
            }
        }
    }
}

/// RNIC connection-cache model: the per-op latency multiplier as a
/// function of active QPs (§3.1's scalability cliff).
#[derive(Debug, Clone)]
pub struct RnicModel {
    /// QPs whose state fits on-chip.
    pub qp_cache_capacity: usize,
    /// Latency multiplier per doubling beyond capacity.
    pub thrash_factor: f64,
}

impl Default for RnicModel {
    fn default() -> Self {
        RnicModel {
            qp_cache_capacity: 5000,
            thrash_factor: 2.0,
        }
    }
}

impl RnicModel {
    /// The latency multiplier at `active_qps` connections: 1.0 within the
    /// cache, then growing by `thrash_factor` per doubling (cache misses
    /// on every op force host-memory fetches of QP state).
    pub fn latency_multiplier(&self, active_qps: usize) -> f64 {
        if active_qps <= self.qp_cache_capacity {
            1.0
        } else {
            let ratio = active_qps as f64 / self.qp_cache_capacity as f64;
            self.thrash_factor.powf(ratio.log2()).max(1.0)
        }
    }

    /// Effective per-QP throughput share relative to the in-cache case.
    pub fn throughput_factor(&self, active_qps: usize) -> f64 {
        1.0 / self.latency_multiplier(active_qps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(
        a: &mut RdmaQp,
        b: &mut RdmaQp,
        mut now: SimTime,
        drop_psn: &[u64],
        max_steps: usize,
    ) -> SimTime {
        let step = SimDuration::from_micros(2);
        for _ in 0..max_steps {
            let mut progressed = false;
            while let Some(p) = a.poll_transmit(now) {
                now += step;
                progressed = true;
                if matches!(p.kind, PacketKind::Data { .. }) && drop_psn.contains(&p.psn) {
                    // Drop only the FIRST transmission of that PSN.
                    if a.stats().retransmits == 0 {
                        continue;
                    }
                }
                b.on_packet(now, p);
            }
            while let Some(p) = b.poll_transmit(now) {
                now += step;
                progressed = true;
                a.on_packet(now, p);
            }
            for qp in [&mut *a, &mut *b] {
                if let Some(t) = qp.poll_timer() {
                    if t <= now {
                        qp.on_timer(now);
                        progressed = true;
                    }
                }
            }
            if !progressed {
                // Idle: jump to the earliest timer deadline, if any.
                let next = [a.poll_timer(), b.poll_timer()].into_iter().flatten().min();
                match next {
                    Some(t) => {
                        now = t;
                        a.on_timer(now);
                        b.on_timer(now);
                    }
                    None => break,
                }
            }
        }
        now
    }

    #[test]
    fn delivers_multi_packet_message() {
        let mut a = RdmaQp::new(QpConfig::default());
        let mut b = RdmaQp::new(QpConfig::default());
        let msg = Bytes::from(vec![7u8; 20_000]); // 5 packets at 4K MTU
        a.post_send(msg.clone());
        drive(&mut a, &mut b, SimTime::ZERO, &[], 100);
        assert_eq!(b.poll_recv().unwrap(), msg);
        assert_eq!(a.stats().retransmits, 0);
        assert_eq!(a.inflight_pkts(), 0);
    }

    #[test]
    fn message_boundaries_preserved() {
        let mut a = RdmaQp::new(QpConfig::default());
        let mut b = RdmaQp::new(QpConfig::default());
        a.post_send(Bytes::from(vec![1u8; 5000]));
        a.post_send(Bytes::from(vec![2u8; 100]));
        drive(&mut a, &mut b, SimTime::ZERO, &[], 100);
        assert_eq!(b.poll_recv().unwrap().len(), 5000);
        assert_eq!(b.poll_recv().unwrap().len(), 100);
        assert!(b.poll_recv().is_none());
    }

    #[test]
    fn go_back_n_retransmits_the_tail() {
        let mut a = RdmaQp::new(QpConfig::default());
        let mut b = RdmaQp::new(QpConfig::default());
        a.post_send(Bytes::from(vec![9u8; 20_000])); // PSNs 0..4
        drive(&mut a, &mut b, SimTime::ZERO, &[1], 200);
        assert_eq!(b.poll_recv().unwrap().len(), 20_000);
        // GBN resends PSN 1 *and everything after it* even though only one
        // packet was lost.
        assert!(
            a.stats().retransmits >= 3,
            "GBN must resend the tail, got {}",
            a.stats().retransmits
        );
    }

    #[test]
    fn selective_repeat_resends_one() {
        let cfg = QpConfig {
            recovery: Recovery::SelectiveRepeat,
            ..QpConfig::default()
        };
        let mut a = RdmaQp::new(cfg.clone());
        let mut b = RdmaQp::new(cfg);
        a.post_send(Bytes::from(vec![9u8; 20_000]));
        drive(&mut a, &mut b, SimTime::ZERO, &[1], 400);
        assert_eq!(b.poll_recv().unwrap().len(), 20_000);
        // SR may need a couple of rounds (later packets get NAKed again
        // while the hole fills) but stays well below GBN's full tail.
        assert!(a.stats().retransmits <= 6, "{}", a.stats().retransmits);
    }

    #[test]
    fn timeout_recovers_lost_last_packet() {
        let mut a = RdmaQp::new(QpConfig::default());
        let mut b = RdmaQp::new(QpConfig::default());
        a.post_send(Bytes::from(vec![3u8; 4096])); // single packet, PSN 0
        drive(&mut a, &mut b, SimTime::ZERO, &[0], 200);
        assert_eq!(b.poll_recv().unwrap().len(), 4096);
        assert!(a.stats().timeouts >= 1);
    }

    #[test]
    fn window_caps_inflight() {
        let cfg = QpConfig {
            window_pkts: 4,
            ..QpConfig::default()
        };
        let mut a = RdmaQp::new(cfg);
        a.post_send(Bytes::from(vec![0u8; 100_000]));
        let now = SimTime::ZERO;
        let mut sent = 0;
        while a.poll_transmit(now).is_some() {
            sent += 1;
        }
        assert_eq!(sent, 4);
    }

    /// Like `drive`, but every data packet crossing a→b gets an ECN mark,
    /// as a saturated fabric queue would apply.
    fn drive_all_marked(a: &mut RdmaQp, b: &mut RdmaQp, max_steps: usize) {
        let step = SimDuration::from_micros(2);
        let mut now = SimTime::ZERO;
        for _ in 0..max_steps {
            let mut progressed = false;
            while let Some(mut p) = a.poll_transmit(now) {
                now += step;
                progressed = true;
                if matches!(p.kind, PacketKind::Data { .. }) {
                    p.ecn = true;
                }
                b.on_packet(now, p);
            }
            while let Some(p) = b.poll_transmit(now) {
                now += step;
                progressed = true;
                a.on_packet(now, p);
            }
            if !progressed {
                break;
            }
        }
    }

    #[test]
    fn ecn_echo_rides_the_next_ack() {
        let mut b = RdmaQp::new(QpConfig::default());
        let now = SimTime::ZERO;
        b.on_packet(
            now,
            QpPacket {
                psn: 0,
                kind: PacketKind::Data { last: true },
                payload: Bytes::from(vec![1u8; 64]),
                ecn: true,
            },
        );
        let ack = b.poll_transmit(now).unwrap();
        assert_eq!(ack.kind, PacketKind::Ack);
        assert!(ack.ecn, "the mark must be echoed on the ack");
        // A later unmarked delivery acks clean.
        b.on_packet(
            now,
            QpPacket {
                psn: 1,
                kind: PacketKind::Data { last: true },
                payload: Bytes::from(vec![2u8; 64]),
                ecn: false,
            },
        );
        let ack2 = b.poll_transmit(now).unwrap();
        assert_eq!(ack2.kind, PacketKind::Ack);
        assert!(!ack2.ecn, "echo state must reset after being sent");
    }

    #[test]
    fn dcqcn_shrinks_window_under_marks() {
        let cfg = QpConfig {
            dcqcn: Some(DcqcnConfig::default()),
            ..QpConfig::default()
        };
        let mut a = RdmaQp::new(cfg.clone());
        let mut b = RdmaQp::new(QpConfig::default());
        assert!(
            a.effective_window_pkts() <= cfg.window_pkts,
            "dcqcn window starts within the credit window"
        );
        let before = a.effective_window_pkts();
        a.post_send(Bytes::from(vec![5u8; 400_000]));
        drive_all_marked(&mut a, &mut b, 5_000);
        assert_eq!(b.poll_recv().unwrap().len(), 400_000);
        assert!(
            a.stats().ecn_marked_acks > 0,
            "marked acks must reach the requester"
        );
        assert!(
            a.effective_window_pkts() < before,
            "persistent marking must shrink the effective window: {} -> {}",
            before,
            a.effective_window_pkts()
        );
        // The floor is one packet — the QP never deadlocks.
        assert!(a.effective_window_pkts() >= 1);
    }

    #[test]
    fn dcqcn_disabled_keeps_fixed_window() {
        let mut a = RdmaQp::new(QpConfig::default());
        let mut b = RdmaQp::new(QpConfig::default());
        a.post_send(Bytes::from(vec![5u8; 100_000]));
        drive_all_marked(&mut a, &mut b, 2_000);
        assert_eq!(b.poll_recv().unwrap().len(), 100_000);
        // Marks are echoed but ignored: the window never moves.
        assert!(a.stats().ecn_marked_acks > 0);
        assert_eq!(a.effective_window_pkts(), QpConfig::default().window_pkts);
    }

    #[test]
    fn rnic_cliff_shape() {
        let m = RnicModel::default();
        assert_eq!(m.latency_multiplier(100), 1.0);
        assert_eq!(m.latency_multiplier(5000), 1.0);
        let at10k = m.latency_multiplier(10_000);
        let at20k = m.latency_multiplier(20_000);
        assert!(at10k > 1.9 && at10k < 2.1, "{at10k}");
        assert!(at20k > 3.9 && at20k < 4.1, "{at20k}");
        assert!(m.throughput_factor(20_000) < 0.3);
    }
}
