//! Model-based property test for the event queue: random interleavings of
//! schedule / cancel / pop must match a naive sorted-vec reference model
//! event for event — same values, same timestamps, same tie order. This
//! pins the determinism contract of the timer-wheel implementation (FIFO
//! at equal timestamps, exact-once delivery, cancellation semantics
//! including cancel-after-fire) against an implementation simple enough
//! to be obviously correct.

use ebs_sim::{EventQueue, SimTime};
use proptest::prelude::*;

/// One scripted operation, pre-resolved from the raw random tuple.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Schedule at `now + delta_ns`.
    Schedule { delta_ns: u64 },
    /// Cancel the id returned by the `k`-th schedule so far (mod count);
    /// may target an event that already fired — must be a no-op.
    Cancel { k: usize },
    /// Pop the next event.
    Pop,
}

/// Naive reference: a vec of (at, seq, value, live) scanned linearly.
#[derive(Default)]
struct Model {
    entries: Vec<(u64, u64, u32, bool)>,
    now_ns: u64,
    next_seq: u64,
}

impl Model {
    fn schedule(&mut self, at_ns: u64, value: u32) -> usize {
        let idx = self.entries.len();
        self.entries.push((at_ns, self.next_seq, value, true));
        self.next_seq += 1;
        idx
    }

    fn cancel(&mut self, idx: usize) {
        self.entries[idx].3 = false;
    }

    fn pop(&mut self) -> Option<(u64, u32)> {
        let best = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.3)
            .min_by_key(|(_, e)| (e.0, e.1))?;
        let (idx, &(at, _, value, _)) = best;
        self.entries[idx].3 = false;
        self.now_ns = at;
        Some((at, value))
    }

    fn live(&self) -> usize {
        self.entries.iter().filter(|e| e.3).count()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Impl and model agree on every popped (time, value) pair across a
    /// random op sequence, and drain identically at the end.
    #[test]
    fn matches_naive_model(
        ops in proptest::collection::vec(
            // (kind, delta_ns, pick): kind 0-3 schedule (biased), 4 cancel, 5 pop.
            // Deltas span same-bucket, in-window and far-overflow distances.
            (0u8..6, 0u64..60_000_000, any::<proptest::sample::Index>()),
            1..400,
        ),
    ) {
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut model = Model::default();
        let mut ids = Vec::new();
        let mut next_value = 0u32;

        let script: Vec<Op> = ops
            .iter()
            .map(|&(kind, delta_ns, pick)| match kind {
                0..=3 => Op::Schedule { delta_ns },
                4 => Op::Cancel { k: pick.index(4096) },
                _ => Op::Pop,
            })
            .collect();

        for op in script {
            match op {
                Op::Schedule { delta_ns } => {
                    let at_ns = model.now_ns + delta_ns;
                    let id = q.schedule_at(SimTime::from_nanos(at_ns), next_value);
                    let midx = model.schedule(at_ns, next_value);
                    ids.push((id, midx));
                    next_value += 1;
                }
                Op::Cancel { k } => {
                    if !ids.is_empty() {
                        let (id, midx) = ids[k % ids.len()];
                        q.cancel(id);
                        model.cancel(midx);
                    }
                }
                Op::Pop => {
                    let got = q.pop().map(|(t, v)| (t.as_nanos(), v));
                    let want = model.pop();
                    assert_eq!(got, want, "pop diverged from model");
                }
            }
        }

        // Drain both to the end: identical order, then both empty.
        loop {
            let got = q.pop().map(|(t, v)| (t.as_nanos(), v));
            let want = model.pop();
            assert_eq!(got, want, "drain diverged from model");
            if want.is_none() {
                break;
            }
        }
        assert!(q.is_empty());
        assert_eq!(model.live(), 0);
        assert_eq!(q.tombstone_count(), 0, "all stale keys reclaimed");
    }
}
