//! Simulated time.
//!
//! All simulator components share a single virtual clock expressed in
//! nanoseconds since the start of the simulation. Nanosecond resolution is
//! enough to model sub-microsecond hardware pipeline stages (the SOLAR FPGA
//! path) while a `u64` still covers ~584 years of simulated time.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" timer.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time since start, as (possibly fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Time since start, as (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "negative duration");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Construct from fractional microseconds, rounding to the nearest
    /// nanosecond.
    pub fn from_micros_f64(us: f64) -> Self {
        debug_assert!(us >= 0.0, "negative duration");
        SimDuration((us * 1e3).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiply by an integer factor.
    pub const fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Scale by a float factor (used by RTO backoff and CC pacing).
    pub fn mul_f64(self, k: f64) -> SimDuration {
        debug_assert!(k >= 0.0, "negative scale");
        SimDuration((self.0 as f64 * k).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "time went backwards");
        SimDuration(self.0 - rhs.0)
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "negative duration");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        debug_assert!(self.0 >= rhs.0, "negative duration");
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimTime::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimTime::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
        assert_eq!(SimDuration::from_micros_f64(1.5).as_nanos(), 1_500);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(10);
        let d = SimDuration::from_micros(3);
        assert_eq!((t + d).as_nanos(), 13_000);
        assert_eq!(((t + d) - t).as_nanos(), 3_000);
        assert_eq!((d * 4).as_nanos(), 12_000);
        assert_eq!((d / 3).as_nanos(), 1_000);
        assert_eq!(d.mul_f64(2.5).as_nanos(), 7_500);
    }

    #[test]
    fn saturating_ops() {
        let early = SimTime::from_micros(1);
        let late = SimTime::from_micros(9);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_micros(8));
        assert_eq!(
            SimDuration::from_micros(1).saturating_sub(SimDuration::from_micros(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }
}
