//! Deterministic random-number streams.
//!
//! Every stochastic component (workload generators, SSD service times,
//! failure injectors, ...) derives its own independent stream from the run
//! seed and a label, so adding a new component never perturbs the draws of
//! existing ones — runs stay reproducible as the simulator grows.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Derive an independent RNG stream from `(seed, label)`.
///
/// The label is folded with FNV-1a and mixed with SplitMix64 so that
/// similar labels ("server-1", "server-2") still yield uncorrelated
/// streams.
pub fn stream(seed: u64, label: &str) -> SmallRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in label.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    SmallRng::seed_from_u64(splitmix64(seed ^ h))
}

/// Derive an independent RNG stream from `(seed, label, index)`; handy for
/// per-server or per-flow streams.
pub fn stream_indexed(seed: u64, label: &str, index: u64) -> SmallRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in label.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    SmallRng::seed_from_u64(splitmix64(seed ^ h ^ splitmix64(index.wrapping_add(1))))
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Draw from an exponential distribution with the given mean (used for
/// Poisson arrival processes).
pub fn exponential(rng: &mut impl Rng, mean: f64) -> f64 {
    debug_assert!(mean > 0.0);
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

/// Draw from a log-normal distribution parameterised by the *median* and a
/// shape sigma (latency tails in the SSD / BN models).
pub fn lognormal(rng: &mut impl Rng, median: f64, sigma: f64) -> f64 {
    let mu = median.ln();
    // Box-Muller transform.
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (mu + sigma * z).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a1 = stream(7, "alpha");
        let mut a2 = stream(7, "alpha");
        let draws1: Vec<u64> = (0..10).map(|_| a1.gen()).collect();
        let draws2: Vec<u64> = (0..10).map(|_| a2.gen()).collect();
        assert_eq!(draws1, draws2);
    }

    #[test]
    fn different_labels_differ() {
        let mut a = stream(7, "alpha");
        let mut b = stream(7, "beta");
        let da: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let db: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(da, db);
    }

    #[test]
    fn indexed_streams_differ() {
        let mut a = stream_indexed(7, "server", 1);
        let mut b = stream_indexed(7, "server", 2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = stream(1, "exp");
        let n = 50_000;
        let total: f64 = (0..n).map(|_| exponential(&mut rng, 4.0)).sum();
        let mean = total / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn lognormal_median_is_close() {
        let mut rng = stream(1, "logn");
        let mut draws: Vec<f64> = (0..20_001)
            .map(|_| lognormal(&mut rng, 10.0, 0.5))
            .collect();
        draws.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = draws[draws.len() / 2];
        assert!((median - 10.0).abs() < 0.5, "median {median}");
    }
}
