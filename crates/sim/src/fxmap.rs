//! Deterministic, fast hashing for hot point-lookup maps.
//!
//! `std::collections::HashMap`'s default `RandomState` buys DoS resistance
//! the simulator does not need (all keys are internal ids) and pays for it
//! twice: SipHash is slow on the small integer keys the hot paths use, and
//! the per-process random seed makes iteration order differ between runs —
//! a determinism hazard lying in wait for anyone who iterates.
//!
//! [`FxHasher`] is the FNV-successor multiply-rotate hash used by rustc
//! (reimplemented here; no external dependency): a handful of cycles per
//! word, fixed seed, identical across runs and platforms. Use
//! [`FxHashMap`]/[`FxHashSet`] for maps that are only ever point-looked-up;
//! maps whose iteration order feeds simulation behavior should stay
//! `BTreeMap`, whose order is semantic.

// lint: allow(determinism) — this module IS the fixed-seed hasher the rule asks for; the std types are re-exported with FxHasher plugged in
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` with the deterministic [`FxHasher`].
// lint: allow(determinism) — fixed-seed FxHasher, not RandomState
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// A `HashSet` with the deterministic [`FxHasher`].
// lint: allow(determinism) — fixed-seed FxHasher, not RandomState
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// rustc's Fx hash: `hash = (hash rotl 5 ⊕ word) × SEED` per 8-byte word.
/// Not DoS-resistant, not for untrusted keys — simulator-internal ids only.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            // lint: allow(panic_discipline) — chunks_exact(8) yields exactly 8 bytes
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&(7u32, 9u64)), hash_of(&(7u32, 9u64)));
        assert_eq!(hash_of(&"flow"), hash_of(&"flow"));
    }

    #[test]
    fn small_keys_spread() {
        // Sequential ids must not collapse into few buckets.
        let hashes: FxHashSet<u64> = (0..10_000u64).map(|i| hash_of(&i)).collect();
        assert_eq!(hashes.len(), 10_000);
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "a");
        m.insert(u64::MAX, "b");
        assert_eq!(m.get(&1), Some(&"a"));
        assert_eq!(m.get(&u64::MAX), Some(&"b"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn unaligned_byte_tails_differ() {
        assert_ne!(hash_of(&[1u8, 2, 3]), hash_of(&[1u8, 2, 4]));
        assert_ne!(hash_of(&"abc"), hash_of(&"abd"));
    }
}
