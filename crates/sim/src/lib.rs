//! # ebs-sim — deterministic discrete-event simulation kernel
//!
//! The domain-free substrate every other crate in this workspace runs on:
//!
//! * [`SimTime`] / [`SimDuration`] — a nanosecond virtual clock;
//! * [`EventQueue`] — a deterministic timestamped event heap with stable
//!   tie-breaking and cancellation, plus the [`Scheduler`] trait and
//!   [`MapScheduler`] adapter that let subsystems schedule their own event
//!   types inside a composed world;
//! * [`Bandwidth`] — exact byte↔wire-time conversion for links, PCIe and
//!   pacing;
//! * [`FifoResource`] / [`Channel`] — analytic multi-server FIFO queues used
//!   to model CPU cores, DMA engines and PCIe channels without per-operation
//!   events;
//! * [`rng`] — labelled deterministic random streams so every stochastic
//!   component draws from its own reproducible sequence;
//! * [`fxmap`] — deterministic fast hashing ([`FxHashMap`]) for hot
//!   point-lookup maps, replacing SipHash + random seeding.
//!
//! Design follows the sans-io idiom of the session guides: protocol and
//! hardware models in the sibling crates are pure state machines; only the
//! composed world (in `ebs-stack`) owns an event loop, and it is a plain
//! `while let Some((t, ev)) = queue.pop()` over this crate's queue.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fxmap;
mod queue;
mod rate;
mod resource;
pub mod rng;
mod time;

pub use fxmap::{FxHashMap, FxHashSet, FxHasher};
pub use queue::{EventId, EventQueue, MapScheduler, Scheduler};
pub use rate::Bandwidth;
pub use resource::{Channel, FifoResource};
pub use time::{SimDuration, SimTime};
