//! Analytic FIFO service resources.
//!
//! CPU cores, DMA engines and PCIe channels are all "c servers draining a
//! FIFO of jobs". Instead of simulating each job's enqueue/dequeue as
//! events, [`FifoResource`] computes each job's completion time analytically
//! at admission: for a non-preemptive FIFO multi-server queue, a job
//! admitted at `now` with service time `s` completes at
//! `max(now, earliest_free_server) + s`. The caller schedules that
//! completion as a single event. This is exact and keeps the event count
//! proportional to jobs, not to queue operations.

use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// A multi-server FIFO queueing resource with analytic completion times.
#[derive(Debug)]
pub struct FifoResource {
    /// Min-heap (via Reverse ordering on nanos) of each server's
    /// next-free time.
    free_at: BinaryHeap<std::cmp::Reverse<u64>>,
    servers: usize,
    busy_ns: u64,
    jobs: u64,
    last_reset: SimTime,
}

impl FifoResource {
    /// A resource with `servers` parallel servers (e.g. CPU cores).
    ///
    /// # Panics
    /// Panics if `servers == 0`.
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0, "resource needs at least one server");
        let mut free_at = BinaryHeap::with_capacity(servers);
        for _ in 0..servers {
            free_at.push(std::cmp::Reverse(0));
        }
        FifoResource {
            free_at,
            servers,
            busy_ns: 0,
            jobs: 0,
            last_reset: SimTime::ZERO,
        }
    }

    /// Number of parallel servers.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Admit a job at `now` requiring `service` of work on one server.
    /// Returns the completion time; the job occupies the earliest-free
    /// server from `max(now, free)` to the returned instant.
    pub fn admit(&mut self, now: SimTime, service: SimDuration) -> SimTime {
        // lint: allow(panic_discipline) — free_at always holds exactly `servers` (≥ 1) entries: the constructor fills it and every pop below is paired with a push
        let std::cmp::Reverse(free) = self.free_at.pop().expect("non-empty");
        let start = now.as_nanos().max(free);
        let done = start + service.as_nanos();
        self.free_at.push(std::cmp::Reverse(done));
        self.busy_ns += service.as_nanos();
        self.jobs += 1;
        SimTime::from_nanos(done)
    }

    /// Queueing delay a job admitted at `now` would experience before
    /// starting service (without admitting it).
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        // lint: allow(panic_discipline) — same `servers`-entries invariant as admit() above
        let std::cmp::Reverse(free) = *self.free_at.peek().expect("non-empty");
        SimDuration::from_nanos(free.saturating_sub(now.as_nanos()))
    }

    /// Total service time accumulated since the last [`reset_stats`].
    ///
    /// [`reset_stats`]: FifoResource::reset_stats
    pub fn busy_time(&self) -> SimDuration {
        SimDuration::from_nanos(self.busy_ns)
    }

    /// Jobs admitted since the last reset.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Mean utilization of the servers over `[last_reset, now]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let elapsed = now.saturating_since(self.last_reset).as_nanos();
        if elapsed == 0 {
            return 0.0;
        }
        self.busy_ns as f64 / (elapsed as f64 * self.servers as f64)
    }

    /// Equivalent number of fully-busy servers over `[last_reset, now]` —
    /// this is the "consumed cores" metric of the paper's Table 1.
    pub fn consumed_servers(&self, now: SimTime) -> f64 {
        self.utilization(now) * self.servers as f64
    }

    /// Reset utilization accounting (e.g. after warm-up).
    pub fn reset_stats(&mut self, now: SimTime) {
        self.busy_ns = 0;
        self.jobs = 0;
        self.last_reset = now;
    }
}

/// A serial bandwidth channel (PCIe lane group, DMA engine): jobs are byte
/// transfers serialized at a fixed rate, FIFO order.
#[derive(Debug)]
pub struct Channel {
    resource: FifoResource,
    rate: crate::rate::Bandwidth,
    /// Fixed per-transfer latency added after serialization (e.g. PCIe
    /// round-trip / doorbell cost).
    per_transfer: SimDuration,
    bytes: u64,
}

impl Channel {
    /// A channel of the given rate with a fixed per-transfer overhead.
    pub fn new(rate: crate::rate::Bandwidth, per_transfer: SimDuration) -> Self {
        Channel {
            resource: FifoResource::new(1),
            rate,
            per_transfer,
            bytes: 0,
        }
    }

    /// The configured line rate.
    pub fn rate(&self) -> crate::rate::Bandwidth {
        self.rate
    }

    /// Admit a transfer of `bytes` at `now`; returns its completion time.
    pub fn transfer(&mut self, now: SimTime, bytes: usize) -> SimTime {
        self.bytes += bytes as u64;
        let ser = self.rate.transmit_time(bytes);
        self.resource.admit(now, ser) + self.per_transfer
    }

    /// Total bytes moved since construction or stats reset.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes
    }

    /// Mean utilization over `[reset, now]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.resource.utilization(now)
    }

    /// Reset accounting.
    pub fn reset_stats(&mut self, now: SimTime) {
        self.resource.reset_stats(now);
        self.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate::Bandwidth;

    #[test]
    fn single_server_serializes() {
        let mut r = FifoResource::new(1);
        let t0 = SimTime::from_micros(0);
        let d = SimDuration::from_micros(10);
        assert_eq!(r.admit(t0, d), SimTime::from_micros(10));
        assert_eq!(r.admit(t0, d), SimTime::from_micros(20));
        assert_eq!(
            r.admit(SimTime::from_micros(50), d),
            SimTime::from_micros(60)
        );
    }

    #[test]
    fn multi_server_runs_parallel() {
        let mut r = FifoResource::new(2);
        let t0 = SimTime::ZERO;
        let d = SimDuration::from_micros(10);
        assert_eq!(r.admit(t0, d), SimTime::from_micros(10));
        assert_eq!(r.admit(t0, d), SimTime::from_micros(10));
        assert_eq!(r.admit(t0, d), SimTime::from_micros(20));
    }

    #[test]
    fn backlog_reports_wait() {
        let mut r = FifoResource::new(1);
        r.admit(SimTime::ZERO, SimDuration::from_micros(10));
        assert_eq!(r.backlog(SimTime::ZERO), SimDuration::from_micros(10));
        assert_eq!(
            r.backlog(SimTime::from_micros(4)),
            SimDuration::from_micros(6)
        );
        assert_eq!(r.backlog(SimTime::from_micros(30)), SimDuration::ZERO);
    }

    #[test]
    fn utilization_counts_busy_fraction() {
        let mut r = FifoResource::new(2);
        r.admit(SimTime::ZERO, SimDuration::from_micros(10));
        // 10us busy of 2 servers * 10us elapsed = 0.5 util.
        assert!((r.utilization(SimTime::from_micros(10)) - 0.5).abs() < 1e-9);
        assert!((r.consumed_servers(SimTime::from_micros(10)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn channel_serializes_bytes() {
        // 1 Gbps, no fixed overhead: 1024B = 8.192us each.
        let mut ch = Channel::new(Bandwidth::from_gbps(1), SimDuration::ZERO);
        assert_eq!(ch.transfer(SimTime::ZERO, 1024), SimTime::from_nanos(8192));
        assert_eq!(ch.transfer(SimTime::ZERO, 1024), SimTime::from_nanos(16384));
        assert_eq!(ch.bytes_moved(), 2048);
    }

    #[test]
    fn channel_adds_fixed_latency() {
        let mut ch = Channel::new(Bandwidth::from_gbps(1), SimDuration::from_micros(1));
        assert_eq!(
            ch.transfer(SimTime::ZERO, 1024),
            SimTime::from_nanos(8192 + 1000)
        );
    }
}
