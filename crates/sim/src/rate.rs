//! Bandwidth / rate arithmetic.
//!
//! Link speeds, PCIe channel capacities and pacing rates all share this
//! type, which converts between bytes and wire time exactly.

use core::fmt;

use crate::time::SimDuration;

/// A data rate in bits per second.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bandwidth(u64);

impl Bandwidth {
    /// Zero rate (used for administratively-down links).
    pub const ZERO: Bandwidth = Bandwidth(0);

    /// From raw bits per second.
    pub const fn from_bps(bps: u64) -> Self {
        Bandwidth(bps)
    }

    /// From gigabits per second.
    pub const fn from_gbps(gbps: u64) -> Self {
        Bandwidth(gbps * 1_000_000_000)
    }

    /// From megabits per second.
    pub const fn from_mbps(mbps: u64) -> Self {
        Bandwidth(mbps * 1_000_000)
    }

    /// Raw bits per second.
    pub const fn as_bps(self) -> u64 {
        self.0
    }

    /// As fractional gigabits per second.
    pub fn as_gbps_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Bytes per second.
    pub fn bytes_per_sec(self) -> f64 {
        self.0 as f64 / 8.0
    }

    /// Time to serialize `bytes` onto a link of this rate.
    ///
    /// # Panics
    /// Panics if the rate is zero (a down link must be handled by the
    /// caller, not by dividing by zero).
    pub fn transmit_time(self, bytes: usize) -> SimDuration {
        assert!(self.0 > 0, "transmit on zero-rate link");
        // bits * 1e9 / bps, in nanoseconds, rounded up so back-to-back
        // packets never overlap.
        let bits = bytes as u128 * 8;
        let ns = (bits * 1_000_000_000).div_ceil(self.0 as u128);
        SimDuration::from_nanos(ns as u64)
    }

    /// Scale the rate by a float factor (pacing adjustments).
    pub fn mul_f64(self, k: f64) -> Bandwidth {
        debug_assert!(k >= 0.0);
        Bandwidth((self.0 as f64 * k) as u64)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.1}Gbps", self.as_gbps_f64())
        } else {
            write!(f, "{:.1}Mbps", self.0 as f64 / 1e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transmit_time_exact() {
        // 1KB at 1 Gbps = 8192 bits / 1e9 bps = 8.192 us.
        let bw = Bandwidth::from_gbps(1);
        assert_eq!(bw.transmit_time(1024), SimDuration::from_nanos(8192));
        // 4KB block at 25 Gbps = 32768 bits / 25e9 = 1310.72 -> 1311 ns.
        let bw = Bandwidth::from_gbps(25);
        assert_eq!(bw.transmit_time(4096), SimDuration::from_nanos(1311));
    }

    #[test]
    fn transmit_time_rounds_up() {
        let bw = Bandwidth::from_bps(3);
        // 1 byte = 8 bits at 3 bps = 2.66.. s -> ceil.
        assert_eq!(
            bw.transmit_time(1),
            SimDuration::from_nanos(8_000_000_000u64.div_ceil(3))
        );
    }

    #[test]
    #[should_panic(expected = "zero-rate")]
    fn zero_rate_panics() {
        Bandwidth::ZERO.transmit_time(1);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Bandwidth::from_gbps(25)), "25.0Gbps");
        assert_eq!(format!("{}", Bandwidth::from_mbps(100)), "100.0Mbps");
    }
}
