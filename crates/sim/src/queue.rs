//! The event queue at the heart of the discrete-event simulator.
//!
//! The queue is deliberately decoupled from any "world" state: callers pop
//! `(time, event)` pairs and dispatch them against their own state, then
//! schedule follow-up events. This sidesteps borrow-checker fights between
//! the event loop and component state, and keeps this crate free of domain
//! knowledge.
//!
//! Determinism: ties in time are broken by a monotonically increasing
//! sequence number, so two runs with the same inputs pop events in exactly
//! the same order.
//!
//! # Structure
//!
//! Events live in a generation-indexed slab; the ordering structures hold
//! lightweight keys `(at, seq, slot, generation)`:
//!
//! * a **timer wheel** of [`WHEEL_SLOTS`] buckets, each covering
//!   2^[`SLOT_NS_SHIFT`] ns (≈33 µs; the wheel spans ≈34 ms — beyond the
//!   longest transport RTO), holding near-future events unsorted;
//! * an **active heap** with the events of the bucket currently being
//!   drained (plus anything scheduled directly into the already-activated
//!   past of the window), ordered by `(at, seq)`;
//! * an **overflow heap** for events beyond the wheel horizon, re-anchored
//!   into the wheel when the near future empties out.
//!
//! This makes `schedule_*` amortized O(1) for near-future events (a `Vec`
//! push) and `pop` a small-heap operation, instead of O(log n) on one big
//! heap for both. Cancellation frees the slab slot immediately and bumps
//! its generation — the queued key becomes *stale* and is skipped when its
//! time comes. Cancelling an event that already fired is a pure no-op
//! (the generation no longer matches), so no tombstone state can ever
//! accumulate across fire/cancel races.
//!
//! The wheel window slides only after a bucket is drained and spans
//! exactly [`WHEEL_SLOTS`] buckets, so two distinct in-window bucket
//! numbers can never share a ring index: buckets never mix "rounds" and
//! activation is a straight drain, no per-key round filtering.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// Buckets in the timer wheel (power of two). Sized with
/// [`SLOT_NS_SHIFT`] so the window spans ≈33 ms — beyond the longest
/// transport RTO, keeping timer churn out of the overflow heap.
const WHEEL_SLOTS: usize = 1024;
/// log2 of the nanoseconds each bucket covers (2^15 ≈ 33 µs). Measured
/// tradeoff: finer buckets (e.g. 2^12) shrink the active heap but add a
/// bucket-activation step per 4 µs of simulated time, and on the
/// experiment workloads the extra `advance()` churn costs more than the
/// smaller heap saves (~208 vs ~183 ns/event on the Table 2 Solar cell).
const SLOT_NS_SHIFT: u32 = 15;
/// Words in the bucket-occupancy bitset.
const WHEEL_WORDS: usize = WHEEL_SLOTS / 64;

/// Identifies a scheduled event, for cancellation. Encodes a slab slot and
/// the slot's generation at scheduling time, so a stale id (event fired or
/// already cancelled) can never alias a newer event reusing the slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

impl EventId {
    fn new(slot: u32, generation: u32) -> Self {
        EventId(((generation as u64) << 32) | slot as u64)
    }
    fn slot(self) -> u32 {
        self.0 as u32
    }
    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// Ordering key for a scheduled event; the payload stays in the slab.
#[derive(Debug, Clone, Copy)]
struct Key {
    at: SimTime,
    seq: u64,
    slot: u32,
    generation: u32,
}

impl Key {
    /// Absolute wheel-bucket number of this key's timestamp.
    fn bucket(&self) -> u64 {
        self.at.as_nanos() >> SLOT_NS_SHIFT
    }
}

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Key {}
impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Key {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct SlabSlot<E> {
    generation: u32,
    event: Option<E>,
}

/// A deterministic priority queue of timestamped events.
pub struct EventQueue<E> {
    /// Event storage; `Key`s and `EventId`s index into it by (slot, gen).
    slab: Vec<SlabSlot<E>>,
    free: Vec<u32>,
    /// Near-future buckets (unsorted). Bucket `b` maps to ring index
    /// `b % WHEEL_SLOTS`; drained buckets keep their capacity, so steady
    /// state scheduling is allocation-free.
    wheel: Vec<Vec<Key>>,
    /// One bit per non-empty ring slot, for O(1)-ish bucket scans.
    occupied: [u64; WHEEL_WORDS],
    /// Keys in buckets (live + stale), to skip scans when the wheel is dry.
    wheel_keys: usize,
    /// Events of already-activated buckets, ordered by `(at, seq)`.
    active: BinaryHeap<Key>,
    /// Events beyond the wheel horizon.
    overflow: BinaryHeap<Key>,
    /// Every bucket `< activated` has been drained into `active`; the
    /// wheel window is `[activated, activated + WHEEL_SLOTS)`.
    activated: u64,
    seq: u64,
    now: SimTime,
    popped: u64,
    /// Keys in any ordering structure (live + stale).
    queued: usize,
    /// High-water mark of `queued` (occupancy telemetry).
    max_queued: usize,
    /// Stale keys (cancelled while queued) awaiting skip.
    tombstones: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            slab: Vec::new(),
            free: Vec::new(),
            wheel: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; WHEEL_WORDS],
            wheel_keys: 0,
            active: BinaryHeap::new(),
            overflow: BinaryHeap::new(),
            activated: 0,
            seq: 0,
            now: SimTime::ZERO,
            popped: 0,
            queued: 0,
            max_queued: 0,
            tombstones: 0,
        }
    }

    /// Current simulated time: the timestamp of the most recently popped
    /// event (or zero before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far (for run-length diagnostics).
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Number of events still queued (including cancelled entries whose
    /// keys have not been skipped yet).
    pub fn len(&self) -> usize {
        self.queued
    }

    /// True if no events remain.
    pub fn is_empty(&self) -> bool {
        self.queued == 0
    }

    /// Number of events ever scheduled (for run-length diagnostics).
    pub fn events_scheduled(&self) -> u64 {
        self.seq
    }

    /// Largest simultaneous occupancy seen (including stale keys) — the
    /// queue-depth telemetry the observability layer samples.
    pub fn max_queued(&self) -> usize {
        self.max_queued
    }

    /// Cancelled-but-still-queued keys. Each is a fixed-size key (not a
    /// retained event payload — that is dropped at cancellation) and is
    /// reclaimed no later than when its timestamp is reached. Cancelling
    /// an already-fired event contributes nothing here.
    pub fn tombstone_count(&self) -> usize {
        self.tombstones
    }

    /// Slab slots ever allocated (diagnostics: bounded by the peak number
    /// of simultaneously scheduled events, not by throughput).
    pub fn arena_slots(&self) -> usize {
        self.slab.len()
    }

    fn alloc(&mut self, event: E) -> (u32, u32) {
        if let Some(slot) = self.free.pop() {
            let s = &mut self.slab[slot as usize];
            debug_assert!(s.event.is_none());
            s.event = Some(event);
            (slot, s.generation)
        } else {
            // lint: allow(panic_discipline) — hard capacity ceiling: 2^32 simultaneously scheduled events exceeds any simulated workload by orders of magnitude, and there is no sane degraded mode
            let slot = u32::try_from(self.slab.len()).expect("slab overflow");
            self.slab.push(SlabSlot {
                generation: 0,
                event: Some(event),
            });
            (slot, 0)
        }
    }

    /// Take the event out of (slot, generation) if still live, freeing the
    /// slot. Returns `None` for stale keys/ids.
    fn take(&mut self, slot: u32, generation: u32) -> Option<E> {
        let s = &mut self.slab[slot as usize];
        if s.generation != generation {
            return None;
        }
        let ev = s.event.take()?;
        s.generation = s.generation.wrapping_add(1);
        self.free.push(slot);
        Some(ev)
    }

    fn place(&mut self, key: Key) {
        let b = key.bucket();
        if b < self.activated {
            self.active.push(key);
        } else if b < self.activated + WHEEL_SLOTS as u64 {
            let idx = b as usize & (WHEEL_SLOTS - 1);
            self.wheel[idx].push(key);
            self.occupied[idx / 64] |= 1 << (idx % 64);
            self.wheel_keys += 1;
        } else {
            self.overflow.push(key);
        }
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics in debug builds if `at` is in the past: the simulator never
    /// rewinds its clock.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        debug_assert!(at >= self.now, "scheduling into the past");
        let seq = self.seq;
        self.seq += 1;
        let (slot, generation) = self.alloc(event);
        self.queued += 1;
        self.max_queued = self.max_queued.max(self.queued);
        self.place(Key {
            at,
            seq,
            slot,
            generation,
        });
        EventId::new(slot, generation)
    }

    /// Schedule `event` to fire `after` from the current time.
    pub fn schedule_after(&mut self, after: SimDuration, event: E) -> EventId {
        self.schedule_at(self.now + after, event)
    }

    /// Cancel a previously scheduled event. O(1): the slab slot is freed
    /// (dropping the event payload) and its generation bumped, turning the
    /// queued key stale. Cancelling an event that has already fired (or
    /// was already cancelled) is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        if self.take(id.slot(), id.generation()).is_some() {
            self.tombstones += 1;
        }
    }

    /// First occupied bucket in the window, if any. Word-wise bitset scan;
    /// only set bits of in-window buckets exist (see module docs).
    fn next_occupied_bucket(&self) -> Option<u64> {
        let start = self.activated;
        let end = start + WHEEL_SLOTS as u64;
        let mut b = start;
        while b < end {
            let idx = b as usize & (WHEEL_SLOTS - 1);
            let bit = idx % 64;
            let word = self.occupied[idx / 64] >> bit;
            if word != 0 {
                let cand = b + word.trailing_zeros() as u64;
                if cand < end {
                    return Some(cand);
                }
            }
            b += (64 - bit) as u64;
        }
        None
    }

    /// Feed the active heap from the wheel or the overflow heap. Returns
    /// `false` when no events remain anywhere.
    fn advance(&mut self) -> bool {
        if self.wheel_keys == 0 {
            match self.overflow.peek() {
                // Wheel dry: jump the window straight to the earliest far
                // event (its bucket is ≥ `activated` by the overflow
                // invariant, but be defensive about it).
                Some(top) => self.activated = self.activated.max(top.bucket()),
                None => return false,
            }
        }
        // Cascade: as the window slides forward, far-future events whose
        // buckets it now covers must migrate into the wheel before a
        // bucket is chosen, or a later wheel event could overtake them.
        // Each overflow event migrates at most once (the horizon is
        // monotone between re-anchors), so this is amortized O(log n)
        // per event.
        let horizon = self.activated + WHEEL_SLOTS as u64;
        while self.overflow.peek().is_some_and(|k| k.bucket() < horizon) {
            let Some(k) = self.overflow.pop() else { break };
            self.place(k);
        }
        let b = self
            .next_occupied_bucket()
            // lint: allow(panic_discipline) — wheel invariant (wheel_keys > 0 ⇒ an occupied bucket within the window), model-checked by tests/queue_model.rs; losing events silently would corrupt every downstream result
            .expect("advance with keys but no occupied bucket");
        let idx = b as usize & (WHEEL_SLOTS - 1);
        self.wheel_keys -= self.wheel[idx].len();
        // drain(..) keeps the bucket's capacity for reuse.
        let bucket = &mut self.wheel[idx];
        for key in bucket.drain(..) {
            self.active.push(key);
        }
        self.occupied[idx / 64] &= !(1 << (idx % 64));
        self.activated = b + 1;
        true
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            if let Some(key) = self.active.pop() {
                self.queued -= 1;
                match self.take(key.slot, key.generation) {
                    Some(event) => {
                        debug_assert!(key.at >= self.now, "time went backwards");
                        self.now = key.at;
                        self.popped += 1;
                        return Some((key.at, event));
                    }
                    None => {
                        self.tombstones -= 1;
                        continue;
                    }
                }
            }
            if !self.advance() {
                return None;
            }
        }
    }

    /// Pop every event sharing the earliest pending timestamp `t`, if
    /// `t <= horizon`, into `out` (cleared first). Returns the batch size;
    /// `0` means nothing is pending at or before the horizon.
    ///
    /// Equivalent to — and ordered identically to — calling
    /// [`EventQueue::peek_time`] + [`EventQueue::pop`] in a loop while the
    /// next timestamp equals `t`, but does the window bookkeeping once per
    /// *batch* instead of once per *event*: one fused heap-pop + slab-take
    /// per event, no separate liveness pre-check per event. Events
    /// scheduled at `t` **while the caller processes the batch** are not
    /// lost: equal timestamps always compare after already-popped
    /// sequence numbers, so they form the next batch (still at `t`), in
    /// exactly the order sequential `pop` would have produced.
    ///
    /// Caveat (checked nowhere, by design): if the caller cancels a
    /// *later* event of the same batch while processing an earlier one,
    /// the cancel is a no-op — the event was already popped. Sequential
    /// `pop` would have suppressed it. No simulation in this workspace
    /// cancels same-timestamp events; anything that starts to must run
    /// the sequential loop instead.
    pub fn pop_batch(&mut self, horizon: SimTime, out: &mut Vec<(SimTime, E)>) -> usize {
        out.clear();
        // Find the first live event at or before the horizon. `active`'s
        // top is the global minimum whenever it is non-empty (active keys
        // live in buckets strictly before `activated`; wheel and overflow
        // keys at or after it), so a top beyond the horizon means nothing
        // qualifies anywhere.
        let t = loop {
            match self.active.peek() {
                Some(key) if key.at <= horizon => {
                    let key = *key;
                    self.active.pop();
                    self.queued -= 1;
                    match self.take(key.slot, key.generation) {
                        Some(event) => {
                            debug_assert!(key.at >= self.now, "time went backwards");
                            self.now = key.at;
                            self.popped += 1;
                            out.push((key.at, event));
                            break key.at;
                        }
                        None => {
                            self.tombstones -= 1;
                            continue;
                        }
                    }
                }
                Some(_) => return 0,
                None => {
                    if !self.advance() {
                        return 0;
                    }
                }
            }
        };
        // Drain the rest of the timestamp. No `advance()` here: equal
        // timestamps share a wheel bucket and buckets activate wholly, so
        // once one key at `t` surfaced in `active`, all of them are there.
        while let Some(key) = self.active.peek() {
            if key.at != t {
                break;
            }
            let key = *key;
            self.active.pop();
            self.queued -= 1;
            match self.take(key.slot, key.generation) {
                Some(event) => {
                    self.popped += 1;
                    out.push((t, event));
                }
                None => self.tombstones -= 1,
            }
        }
        out.len()
    }

    /// Advance the clock to `t` without popping anything — the windowed
    /// counterpart of [`EventQueue::pop_batch`], for executors that run a
    /// queue in fixed time windows (the sharded fleet engine): after
    /// draining a window the shard's clock moves to the window edge even
    /// when the shard went idle before it, so every shard observes the
    /// same `now` at a barrier and cross-shard injections
    /// (`schedule_at(edge + latency, ..)`) are trivially in the future.
    ///
    /// Earlier `t` values are ignored (the clock never moves backwards);
    /// skipping over a still-pending event is a caller bug, caught in
    /// debug builds.
    pub fn advance_to(&mut self, t: SimTime) {
        if t <= self.now {
            return;
        }
        debug_assert!(
            self.peek_time().is_none_or(|next| next >= t),
            "advance_to({t:?}) would skip a pending event"
        );
        self.now = t;
    }

    /// Timestamp of the next pending (non-cancelled) event without popping.
    ///
    /// This needs to skip stale keys, so it may discard cancelled entries
    /// internally.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            while let Some(key) = self.active.peek() {
                let live = {
                    let s = &self.slab[key.slot as usize];
                    s.generation == key.generation && s.event.is_some()
                };
                if live {
                    return Some(key.at);
                }
                self.active.pop();
                self.queued -= 1;
                self.tombstones -= 1;
            }
            if !self.advance() {
                return None;
            }
        }
    }
}

/// Anything events can be scheduled onto. Implemented by [`EventQueue`]
/// itself and by adapters that wrap a queue of a larger event enum, so that
/// a subsystem (e.g. the network fabric) can schedule its own event type
/// while the composed world uses one enum for everything.
pub trait Scheduler<E> {
    /// Current simulated time.
    fn now(&self) -> SimTime;
    /// Schedule `event` at absolute time `at`, returning a cancellation id.
    fn at(&mut self, at: SimTime, event: E) -> EventId;
    /// Schedule `event` after a relative delay.
    fn after(&mut self, d: SimDuration, event: E) -> EventId {
        let at = self.now() + d;
        self.at(at, event)
    }
    /// Cancel a previously scheduled event.
    fn cancel(&mut self, id: EventId);
}

impl<E> Scheduler<E> for EventQueue<E> {
    fn now(&self) -> SimTime {
        EventQueue::now(self)
    }
    fn at(&mut self, at: SimTime, event: E) -> EventId {
        self.schedule_at(at, event)
    }
    fn cancel(&mut self, id: EventId) {
        EventQueue::cancel(self, id)
    }
}

/// Adapter that lets a component scheduling events of type `Small` run on a
/// queue whose event type is a larger enum `Big`.
pub struct MapScheduler<'a, Big, Small, F>
where
    F: FnMut(Small) -> Big,
{
    inner: &'a mut EventQueue<Big>,
    map: F,
    _marker: core::marker::PhantomData<Small>,
}

impl<'a, Big, Small, F> MapScheduler<'a, Big, Small, F>
where
    F: FnMut(Small) -> Big,
{
    /// Wrap `queue` so that `Small` events are converted with `map`.
    pub fn new(queue: &'a mut EventQueue<Big>, map: F) -> Self {
        MapScheduler {
            inner: queue,
            map,
            _marker: core::marker::PhantomData,
        }
    }
}

impl<'a, Big, Small, F> Scheduler<Small> for MapScheduler<'a, Big, Small, F>
where
    F: FnMut(Small) -> Big,
{
    fn now(&self) -> SimTime {
        self.inner.now()
    }
    fn at(&mut self, at: SimTime, event: Small) -> EventId {
        self.inner.schedule_at(at, (self.map)(event))
    }
    fn cancel(&mut self, id: EventId) {
        self.inner.cancel(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_micros(5), "c");
        q.schedule_at(SimTime::from_micros(1), "a");
        q.schedule_at(SimTime::from_micros(3), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), SimTime::from_micros(5));
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(1);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_micros(1), "a");
        q.schedule_at(SimTime::from_micros(2), "b");
        q.cancel(a);
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_micros(1), "a");
        q.schedule_at(SimTime::from_micros(7), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
    }

    #[test]
    fn relative_scheduling_uses_clock() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_micros(10), 0u32);
        q.pop();
        q.schedule_after(SimDuration::from_micros(5), 1u32);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_micros(15));
    }

    #[test]
    fn map_scheduler_wraps_events() {
        #[derive(Debug, PartialEq)]
        enum Big {
            Net(u8),
        }
        let mut q: EventQueue<Big> = EventQueue::new();
        {
            let mut m = MapScheduler::new(&mut q, Big::Net);
            m.at(SimTime::from_micros(1), 42u8);
        }
        assert_eq!(q.pop().map(|(_, e)| e), Some(Big::Net(42)));
    }

    #[test]
    fn far_future_events_cross_the_wheel_horizon() {
        let mut q = EventQueue::new();
        // Mix of near (same bucket), mid (in-window) and far (overflow,
        // several horizons out) events, interleaved with pops.
        q.schedule_at(SimTime::from_secs(10), "far");
        q.schedule_at(SimTime::from_nanos(10), "near");
        q.schedule_at(SimTime::from_millis(20), "rto");
        q.schedule_at(SimTime::from_millis(500), "mid-far");
        assert_eq!(q.pop().map(|(_, e)| e), Some("near"));
        q.schedule_at(SimTime::from_millis(1), "mid");
        let rest: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(rest, vec!["mid", "rto", "mid-far", "far"]);
        assert_eq!(q.now(), SimTime::from_secs(10));
    }

    #[test]
    fn ties_across_horizon_still_fifo() {
        // Same timestamp scheduled while it was beyond the horizon and
        // again after re-anchoring must still pop in insertion order.
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        q.schedule_at(t, 0u32); // goes to overflow
        q.schedule_at(SimTime::from_micros(1), 99);
        q.pop(); // activates near bucket
        q.schedule_at(t, 1u32); // still overflow
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![0, 1]);
    }

    #[test]
    fn cancel_after_fire_does_not_leak() {
        // Regression: the pre-slab implementation kept a tombstone per
        // cancel-after-fire forever. Now a stale id is a no-op.
        let mut q = EventQueue::new();
        let mut ids = Vec::with_capacity(100_000);
        for i in 0..100_000u64 {
            ids.push(q.schedule_at(SimTime::from_nanos(i * 100), i));
            q.pop().expect("just scheduled");
        }
        for id in ids {
            q.cancel(id);
        }
        assert_eq!(q.tombstone_count(), 0, "cancel after fire left tombstones");
        assert!(q.is_empty());
        assert_eq!(
            q.arena_slots(),
            1,
            "slab bounded by peak outstanding events, not throughput"
        );
    }

    #[test]
    fn tombstones_are_reclaimed_by_time() {
        let mut q = EventQueue::new();
        let mut ids = Vec::new();
        for i in 0..1000u64 {
            ids.push(q.schedule_at(SimTime::from_micros(i), i));
        }
        for id in &ids[..500] {
            q.cancel(*id);
        }
        assert_eq!(q.tombstone_count(), 500);
        let survivors: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(survivors, (500..1000).collect::<Vec<_>>());
        assert_eq!(q.tombstone_count(), 0, "stale keys reclaimed on pop");
        assert!(q.is_empty());
    }

    #[test]
    fn event_ids_do_not_alias_across_slot_reuse() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_micros(1), "a");
        q.pop();
        // The slot is reused with a bumped generation; the old id must
        // not cancel the new event.
        let _b = q.schedule_at(SimTime::from_micros(2), "b");
        q.cancel(a);
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
    }

    #[test]
    fn pop_batch_matches_sequential_pop() {
        // Identical schedules into two queues: batch-draining one must
        // reproduce the exact (time, event) sequence of popping the other,
        // ties and cancellations included.
        let schedule = |q: &mut EventQueue<u32>| {
            let mut ids = Vec::new();
            for i in 0..500u32 {
                // Lots of collisions: timestamps cycle over 17 values.
                let t = SimTime::from_micros((i % 17) as u64 * 3);
                ids.push(q.schedule_at(t, i));
            }
            for id in ids.iter().step_by(7) {
                q.cancel(*id);
            }
        };
        let mut seq_q = EventQueue::new();
        let mut batch_q = EventQueue::new();
        schedule(&mut seq_q);
        schedule(&mut batch_q);
        let sequential: Vec<_> = std::iter::from_fn(|| seq_q.pop()).collect();
        let mut batched = Vec::new();
        let mut buf = Vec::new();
        while batch_q.pop_batch(SimTime::MAX, &mut buf) > 0 {
            // Within a batch all timestamps agree.
            assert!(buf.windows(2).all(|w| w[0].0 == w[1].0));
            batched.append(&mut buf);
        }
        assert_eq!(sequential, batched);
        assert_eq!(seq_q.events_processed(), batch_q.events_processed());
        assert!(batch_q.is_empty());
    }

    #[test]
    fn pop_batch_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_micros(1), "a");
        q.schedule_at(SimTime::from_micros(1), "b");
        q.schedule_at(SimTime::from_micros(9), "late");
        let mut buf = Vec::new();
        assert_eq!(q.pop_batch(SimTime::from_micros(5), &mut buf), 2);
        assert_eq!(
            buf,
            vec![
                (SimTime::from_micros(1), "a"),
                (SimTime::from_micros(1), "b")
            ]
        );
        assert_eq!(q.pop_batch(SimTime::from_micros(5), &mut buf), 0);
        assert!(buf.is_empty(), "empty result clears the buffer");
        assert_eq!(q.len(), 1, "late event untouched");
        assert_eq!(q.pop_batch(SimTime::MAX, &mut buf), 1);
        assert_eq!(q.now(), SimTime::from_micros(9));
    }

    #[test]
    fn advance_to_moves_the_clock_over_idle_windows() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_micros(100), "late");
        let mut buf = Vec::new();
        assert_eq!(q.pop_batch(SimTime::from_micros(40), &mut buf), 0);
        assert_eq!(q.now(), SimTime::ZERO, "an empty window leaves now put");
        q.advance_to(SimTime::from_micros(40));
        assert_eq!(q.now(), SimTime::from_micros(40));
        // Never backwards, even when asked.
        q.advance_to(SimTime::from_micros(10));
        assert_eq!(q.now(), SimTime::from_micros(40));
        // Scheduling relative to the advanced clock works as usual.
        q.schedule_at(SimTime::from_micros(60), "mid");
        assert_eq!(q.pop_batch(SimTime::MAX, &mut buf), 1);
        assert_eq!(buf, vec![(SimTime::from_micros(60), "mid")]);
        assert_eq!(q.pop_batch(SimTime::MAX, &mut buf), 1);
        assert_eq!(buf, vec![(SimTime::from_micros(100), "late")]);
    }

    #[test]
    fn windowed_runs_pop_identically_to_one_shot() {
        // run_until(h1); advance_to(h1); run_until(h2) must pop the same
        // sequence as run_until(h2) — the property the sharded engine's
        // legacy-equality guarantee rests on.
        let mut one = EventQueue::new();
        let mut win = EventQueue::new();
        for q in [&mut one, &mut win] {
            for i in 0..50u64 {
                q.schedule_at(SimTime::from_micros(i * 7 % 40), i);
            }
        }
        let mut a = Vec::new();
        let mut got_one = Vec::new();
        while one.pop_batch(SimTime::from_micros(50), &mut a) > 0 {
            got_one.extend(a.iter().copied());
        }
        let mut got_win = Vec::new();
        for edge in (10..=50).step_by(10) {
            let edge = SimTime::from_micros(edge);
            while win.pop_batch(edge, &mut a) > 0 {
                got_win.extend(a.iter().copied());
            }
            win.advance_to(edge);
        }
        assert_eq!(got_one, got_win);
    }

    #[test]
    fn events_scheduled_mid_batch_form_the_next_batch() {
        // An event scheduled at the batch's own timestamp (as a dispatch
        // handler would do between pop_batch calls) must surface in the
        // *next* batch, still at that timestamp, after everything already
        // popped — exactly where sequential pop would have put it.
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(4);
        q.schedule_at(t, "a");
        q.schedule_at(t, "b");
        let mut buf = Vec::new();
        assert_eq!(q.pop_batch(SimTime::MAX, &mut buf), 2);
        q.schedule_at(t, "spawned-by-a");
        assert_eq!(q.pop_batch(SimTime::MAX, &mut buf), 1);
        assert_eq!(buf, vec![(t, "spawned-by-a")]);
    }

    #[test]
    fn len_counts_live_and_stale_keys() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_micros(1), 1);
        q.schedule_at(SimTime::from_micros(2), 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 2, "stale key still queued");
        q.pop();
        assert_eq!(q.len(), 0, "pop skimmed the stale key too");
    }
}
