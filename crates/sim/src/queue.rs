//! The event queue at the heart of the discrete-event simulator.
//!
//! The queue is deliberately decoupled from any "world" state: callers pop
//! `(time, event)` pairs and dispatch them against their own state, then
//! schedule follow-up events. This sidesteps borrow-checker fights between
//! the event loop and component state, and keeps this crate free of domain
//! knowledge.
//!
//! Determinism: ties in time are broken by a monotonically increasing
//! sequence number, so two runs with the same inputs pop events in exactly
//! the same order.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::time::{SimDuration, SimTime};

/// Identifies a scheduled event, for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic priority queue of timestamped events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    cancelled: HashSet<u64>,
    seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// Current simulated time: the timestamp of the most recently popped
    /// event (or zero before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far (for run-length diagnostics).
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Number of events still pending (including cancelled tombstones).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics in debug builds if `at` is in the past: the simulator never
    /// rewinds its clock.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        debug_assert!(at >= self.now, "scheduling into the past");
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
        EventId(seq)
    }

    /// Schedule `event` to fire `after` from the current time.
    pub fn schedule_after(&mut self, after: SimDuration, event: E) -> EventId {
        self.schedule_at(self.now + after, event)
    }

    /// Cancel a previously scheduled event. Cancelling an event that has
    /// already fired (or was already cancelled) is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id.0);
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            debug_assert!(entry.at >= self.now, "time went backwards");
            self.now = entry.at;
            self.popped += 1;
            return Some((entry.at, entry.event));
        }
        None
    }

    /// Timestamp of the next pending (non-cancelled) event without popping.
    ///
    /// This needs to skip tombstones, so it may pop-and-discard cancelled
    /// entries internally.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let e = self.heap.pop().unwrap();
                self.cancelled.remove(&e.seq);
                continue;
            }
            return Some(entry.at);
        }
        None
    }
}

/// Anything events can be scheduled onto. Implemented by [`EventQueue`]
/// itself and by adapters that wrap a queue of a larger event enum, so that
/// a subsystem (e.g. the network fabric) can schedule its own event type
/// while the composed world uses one enum for everything.
pub trait Scheduler<E> {
    /// Current simulated time.
    fn now(&self) -> SimTime;
    /// Schedule `event` at absolute time `at`, returning a cancellation id.
    fn at(&mut self, at: SimTime, event: E) -> EventId;
    /// Schedule `event` after a relative delay.
    fn after(&mut self, d: SimDuration, event: E) -> EventId {
        let at = self.now() + d;
        self.at(at, event)
    }
    /// Cancel a previously scheduled event.
    fn cancel(&mut self, id: EventId);
}

impl<E> Scheduler<E> for EventQueue<E> {
    fn now(&self) -> SimTime {
        EventQueue::now(self)
    }
    fn at(&mut self, at: SimTime, event: E) -> EventId {
        self.schedule_at(at, event)
    }
    fn cancel(&mut self, id: EventId) {
        EventQueue::cancel(self, id)
    }
}

/// Adapter that lets a component scheduling events of type `Small` run on a
/// queue whose event type is a larger enum `Big`.
pub struct MapScheduler<'a, Big, Small, F>
where
    F: FnMut(Small) -> Big,
{
    inner: &'a mut EventQueue<Big>,
    map: F,
    _marker: core::marker::PhantomData<Small>,
}

impl<'a, Big, Small, F> MapScheduler<'a, Big, Small, F>
where
    F: FnMut(Small) -> Big,
{
    /// Wrap `queue` so that `Small` events are converted with `map`.
    pub fn new(queue: &'a mut EventQueue<Big>, map: F) -> Self {
        MapScheduler {
            inner: queue,
            map,
            _marker: core::marker::PhantomData,
        }
    }
}

impl<'a, Big, Small, F> Scheduler<Small> for MapScheduler<'a, Big, Small, F>
where
    F: FnMut(Small) -> Big,
{
    fn now(&self) -> SimTime {
        self.inner.now()
    }
    fn at(&mut self, at: SimTime, event: Small) -> EventId {
        self.inner.schedule_at(at, (self.map)(event))
    }
    fn cancel(&mut self, id: EventId) {
        self.inner.cancel(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_micros(5), "c");
        q.schedule_at(SimTime::from_micros(1), "a");
        q.schedule_at(SimTime::from_micros(3), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), SimTime::from_micros(5));
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(1);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_micros(1), "a");
        q.schedule_at(SimTime::from_micros(2), "b");
        q.cancel(a);
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_micros(1), "a");
        q.schedule_at(SimTime::from_micros(7), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
    }

    #[test]
    fn relative_scheduling_uses_clock() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_micros(10), 0u32);
        q.pop();
        q.schedule_after(SimDuration::from_micros(5), 1u32);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_micros(15));
    }

    #[test]
    fn map_scheduler_wraps_events() {
        #[derive(Debug, PartialEq)]
        enum Big {
            Net(u8),
        }
        let mut q: EventQueue<Big> = EventQueue::new();
        {
            let mut m = MapScheduler::new(&mut q, Big::Net);
            m.at(SimTime::from_micros(1), 42u8);
        }
        assert_eq!(q.pop().map(|(_, e)| e), Some(Big::Net(42)));
    }
}
