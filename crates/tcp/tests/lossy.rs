//! Property tests: the TCP engine delivers exactly the sent byte stream
//! under arbitrary loss, reordering and duplication.
//!
//! The harness is a tiny event-driven "chaos link": every segment gets a
//! random extra delay (reordering), a drop coin-flip, and a duplication
//! coin-flip. Timers fire through the same virtual clock, so RTO-driven
//! recovery is exercised for real.

use bytes::Bytes;
use ebs_sim::{EventQueue, SimDuration, SimTime};
use ebs_tcp::{Segment, TcpConfig, TcpEngine};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

enum Ev {
    DeliverToServer(Segment),
    DeliverToClient(Segment),
    Tick,
}

struct Chaos {
    rng: SmallRng,
    loss: f64,
    dup: f64,
    max_jitter_us: u64,
}

impl Chaos {
    fn plan(&mut self) -> (bool, bool, SimDuration) {
        let drop = self.rng.gen::<f64>() < self.loss;
        let dup = self.rng.gen::<f64>() < self.dup;
        let jitter = SimDuration::from_micros(self.rng.gen_range(0..=self.max_jitter_us));
        (drop, dup, jitter)
    }
}

/// Run a one-direction bulk transfer through the chaos link; returns the
/// bytes the server delivered to its application.
fn chaos_transfer(data: &[u8], seed: u64, loss: f64, dup: f64) -> Vec<u8> {
    let cfg = TcpConfig {
        rto_initial: SimDuration::from_millis(10),
        rto_min: SimDuration::from_millis(2),
        ..TcpConfig::default()
    };
    let mut client = TcpEngine::connect(TcpConfig {
        iss: 77,
        ..cfg.clone()
    });
    let mut server = TcpEngine::listen(TcpConfig { iss: 909, ..cfg });
    let mut chaos = Chaos {
        rng: SmallRng::seed_from_u64(seed),
        loss,
        dup,
        max_jitter_us: 200,
    };
    let base_delay = SimDuration::from_micros(20);
    let mut q: EventQueue<Ev> = EventQueue::new();
    client.send(Bytes::copy_from_slice(data));
    q.schedule_at(SimTime::ZERO, Ev::Tick);
    let mut received = Vec::new();

    // Safety valve: the transfer must finish well within this horizon.
    let horizon = SimTime::from_secs(120);
    while let Some((now, ev)) = q.pop() {
        if now > horizon {
            break;
        }
        match ev {
            Ev::DeliverToServer(seg) => server.on_segment(now, seg),
            Ev::DeliverToClient(seg) => client.on_segment(now, seg),
            Ev::Tick => {}
        }
        // Drain both engines through the chaos link.
        while let Some(seg) = client.poll_segment(now) {
            let (drop, dup, jitter) = chaos.plan();
            if !drop {
                q.schedule_at(now + base_delay + jitter, Ev::DeliverToServer(seg.clone()));
            }
            if dup {
                q.schedule_at(
                    now + base_delay + jitter + SimDuration::from_micros(3),
                    Ev::DeliverToServer(seg),
                );
            }
        }
        while let Some(seg) = server.poll_segment(now) {
            let (drop, dup, jitter) = chaos.plan();
            if !drop {
                q.schedule_at(now + base_delay + jitter, Ev::DeliverToClient(seg.clone()));
            }
            if dup {
                q.schedule_at(
                    now + base_delay + jitter + SimDuration::from_micros(3),
                    Ev::DeliverToClient(seg),
                );
            }
        }
        while let Some(b) = server.recv() {
            received.extend_from_slice(&b);
        }
        // Keep timers alive: schedule the earliest engine deadline as a Tick.
        let fire = |deadline: Option<SimTime>, q: &mut EventQueue<Ev>| {
            if let Some(t) = deadline {
                if t > now {
                    q.schedule_at(t, Ev::Tick);
                }
            }
        };
        if let Some(t) = client.poll_timer() {
            if t <= now {
                client.on_timer(now);
                while let Some(seg) = client.poll_segment(now) {
                    let (drop, dup, jitter) = chaos.plan();
                    if !drop {
                        q.schedule_at(now + base_delay + jitter, Ev::DeliverToServer(seg.clone()));
                    }
                    if dup {
                        q.schedule_at(now + base_delay + jitter, Ev::DeliverToServer(seg));
                    }
                }
                fire(client.poll_timer(), &mut q);
            } else {
                q.schedule_at(t, Ev::Tick);
            }
        }
        if let Some(t) = server.poll_timer() {
            if t <= now {
                server.on_timer(now);
            } else {
                q.schedule_at(t, Ev::Tick);
            }
        }
        if received.len() == data.len() && client.bytes_in_flight() == 0 {
            break;
        }
    }
    received
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exactly-once, in-order delivery of the full stream under 10% loss,
    /// 10% duplication and heavy reordering.
    #[test]
    fn stream_survives_chaos(
        seed in any::<u64>(),
        len in 1usize..40_000,
    ) {
        let data: Vec<u8> = (0..len).map(|i| (i * 31 + seed as usize) as u8).collect();
        let got = chaos_transfer(&data, seed, 0.10, 0.10);
        prop_assert_eq!(got, data);
    }

    /// Heavier loss (30%) still converges — it just takes more
    /// retransmissions.
    #[test]
    fn stream_survives_heavy_loss(
        seed in any::<u64>(),
        len in 1usize..8_000,
    ) {
        let data: Vec<u8> = (0..len).map(|i| (i * 7 + 1) as u8).collect();
        let got = chaos_transfer(&data, seed, 0.30, 0.05);
        prop_assert_eq!(got, data);
    }

    /// A perfect link never retransmits (sanity check on the harness).
    #[test]
    fn clean_link_is_clean(seed in any::<u64>(), len in 1usize..20_000) {
        let data: Vec<u8> = vec![0xAB; len];
        let got = chaos_transfer(&data, seed, 0.0, 0.0);
        prop_assert_eq!(got, data);
    }
}
