//! End-to-end tests for the TCP engine with the Swift delay-based
//! congestion controller swapped in for Reno.
//!
//! The harness is a clean (or lossy) virtual link; the assertions are
//! about correctness (exactly-once delivery must not depend on the CC
//! algorithm) and about the Swift invariant that the window stays inside
//! `[min_window, 4 * BDP]` whatever the link does.

use bytes::Bytes;
use ebs_cc::SwiftConfig;
use ebs_sim::{EventQueue, SimDuration, SimTime};
use ebs_tcp::{Segment, TcpConfig, TcpEngine};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

enum Ev {
    DeliverToServer(Segment),
    DeliverToClient(Segment),
    Tick,
}

/// One-direction bulk transfer over a link with fixed base delay and a
/// drop coin-flip; returns the delivered bytes and the max cwnd observed.
fn swift_transfer(data: &[u8], seed: u64, loss: f64) -> (Vec<u8>, f64) {
    let swift = SwiftConfig::default();
    let cfg = TcpConfig {
        rto_initial: SimDuration::from_millis(10),
        rto_min: SimDuration::from_millis(2),
        swift: Some(swift),
        ..TcpConfig::default()
    };
    let mut client = TcpEngine::connect(TcpConfig {
        iss: 77,
        ..cfg.clone()
    });
    let mut server = TcpEngine::listen(TcpConfig { iss: 909, ..cfg });
    let mut rng = SmallRng::seed_from_u64(seed);
    let base_delay = SimDuration::from_micros(20);
    let mut q: EventQueue<Ev> = EventQueue::new();
    client.send(Bytes::copy_from_slice(data));
    q.schedule_at(SimTime::ZERO, Ev::Tick);
    let mut received = Vec::new();
    let mut max_cwnd = 0.0f64;

    let horizon = SimTime::from_secs(120);
    while let Some((now, ev)) = q.pop() {
        if now > horizon {
            break;
        }
        match ev {
            Ev::DeliverToServer(seg) => server.on_segment(now, seg),
            Ev::DeliverToClient(seg) => client.on_segment(now, seg),
            Ev::Tick => {}
        }
        while let Some(seg) = client.poll_segment(now) {
            if rng.gen::<f64>() >= loss {
                q.schedule_at(now + base_delay, Ev::DeliverToServer(seg));
            }
        }
        while let Some(seg) = server.poll_segment(now) {
            q.schedule_at(now + base_delay, Ev::DeliverToClient(seg));
        }
        while let Some(b) = server.recv() {
            received.extend_from_slice(&b);
        }
        max_cwnd = max_cwnd.max(client.cwnd() as f64);
        if let Some(t) = client.poll_timer() {
            if t <= now {
                client.on_timer(now);
                while let Some(seg) = client.poll_segment(now) {
                    if rng.gen::<f64>() >= loss {
                        q.schedule_at(now + base_delay, Ev::DeliverToServer(seg));
                    }
                }
                if let Some(t2) = client.poll_timer() {
                    q.schedule_at(t2.max(now), Ev::Tick);
                }
            } else {
                q.schedule_at(t, Ev::Tick);
            }
        }
        if let Some(t) = server.poll_timer() {
            if t <= now {
                server.on_timer(now);
            } else {
                q.schedule_at(t, Ev::Tick);
            }
        }
        if received.len() == data.len() && client.bytes_in_flight() == 0 {
            break;
        }
    }
    (received, max_cwnd)
}

#[test]
fn swift_delivers_the_stream_on_a_clean_link() {
    let data: Vec<u8> = (0..30_000).map(|i| (i * 13) as u8).collect();
    let (got, max_cwnd) = swift_transfer(&data, 42, 0.0);
    assert_eq!(got, data);
    let cap = 4.0 * SwiftConfig::default().bdp_bytes();
    assert!(
        max_cwnd <= cap + 1e-9,
        "swift cwnd {max_cwnd} exceeded the 4*BDP cap {cap}"
    );
    assert!(
        max_cwnd >= SwiftConfig::default().min_window,
        "swift cwnd never reached the floor: {max_cwnd}"
    );
}

#[test]
fn swift_survives_loss() {
    let data: Vec<u8> = (0..12_000).map(|i| (i * 7 + 3) as u8).collect();
    for seed in [1u64, 2, 3] {
        let (got, max_cwnd) = swift_transfer(&data, seed, 0.10);
        assert_eq!(got, data, "seed {seed}");
        let cap = 4.0 * SwiftConfig::default().bdp_bytes();
        assert!(max_cwnd <= cap + 1e-9, "seed {seed}: cwnd {max_cwnd}");
    }
}
