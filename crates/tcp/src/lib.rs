//! # ebs-tcp — the sans-io TCP engine under kernel TCP and LUNA
//!
//! The byte-stream transport both FN software stacks run (§3): kernel TCP
//! and LUNA differ in *host overhead* (syscalls, copies, run-to-complete
//! threading), not in protocol, so they share this engine. See
//! [`TcpEngine`] for the event-driven API and `ebs-luna` for the hosts.
//!
//! The engine deliberately keeps all the machinery that the paper calls
//! out as the cost of generality — connection state machines, in-order
//! receive buffering, reordering reassembly — because measuring that cost
//! against SOLAR's stateless one-block-one-packet design is the point of
//! the reproduction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod seq;

pub use engine::{Segment, TcpConfig, TcpEngine, TcpState, TcpStats};
pub use seq::{seq_le, seq_lt, unwrap_seq, wrap_seq};

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use ebs_sim::{SimDuration, SimTime};

    /// Drive two engines over a perfect, zero-loss link with fixed one-way
    /// delay until quiescent. Returns total simulated steps.
    fn run_lossless(
        a: &mut TcpEngine,
        b: &mut TcpEngine,
        mut now: SimTime,
        one_way: SimDuration,
        max_steps: usize,
    ) -> SimTime {
        for _ in 0..max_steps {
            let mut progressed = false;
            // Deliver everything a has to say, then everything b says.
            while let Some(seg) = a.poll_segment(now) {
                now += one_way;
                b.on_segment(now, seg);
                progressed = true;
            }
            while let Some(seg) = b.poll_segment(now) {
                now += one_way;
                a.on_segment(now, seg);
                progressed = true;
            }
            // Fire due timers.
            for e in [&mut *a, &mut *b] {
                if let Some(t) = e.poll_timer() {
                    if t <= now {
                        e.on_timer(now);
                        progressed = true;
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        now
    }

    fn pair() -> (TcpEngine, TcpEngine) {
        let client = TcpEngine::connect(TcpConfig {
            iss: 100,
            ..TcpConfig::default()
        });
        let server = TcpEngine::listen(TcpConfig {
            iss: 5000,
            ..TcpConfig::default()
        });
        (client, server)
    }

    fn drain(e: &mut TcpEngine) -> Vec<u8> {
        let mut out = Vec::new();
        while let Some(b) = e.recv() {
            out.extend_from_slice(&b);
        }
        out
    }

    #[test]
    fn handshake_establishes_both_ends() {
        let (mut c, mut s) = pair();
        run_lossless(
            &mut c,
            &mut s,
            SimTime::ZERO,
            SimDuration::from_micros(5),
            50,
        );
        assert!(c.is_established());
        assert!(s.is_established());
    }

    #[test]
    fn transfers_a_byte_stream() {
        let (mut c, mut s) = pair();
        let data: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
        c.send(Bytes::from(data.clone()));
        run_lossless(
            &mut c,
            &mut s,
            SimTime::ZERO,
            SimDuration::from_micros(5),
            500,
        );
        assert_eq!(drain(&mut s), data);
        assert_eq!(c.bytes_in_flight(), 0);
        assert_eq!(c.stats().retransmits, 0);
    }

    #[test]
    fn bidirectional_transfer() {
        let (mut c, mut s) = pair();
        let up: Vec<u8> = vec![1; 5000];
        let down: Vec<u8> = vec![2; 7000];
        c.send(Bytes::from(up.clone()));
        s.send(Bytes::from(down.clone()));
        run_lossless(
            &mut c,
            &mut s,
            SimTime::ZERO,
            SimDuration::from_micros(5),
            500,
        );
        assert_eq!(drain(&mut s), up);
        assert_eq!(drain(&mut c), down);
    }

    #[test]
    fn segments_respect_mss() {
        let (mut c, mut s) = pair();
        run_lossless(
            &mut c,
            &mut s,
            SimTime::ZERO,
            SimDuration::from_micros(5),
            50,
        );
        c.send(Bytes::from(vec![0u8; 10_000]));
        let now = SimTime::from_millis(1);
        let mut n = 0;
        while let Some(seg) = c.poll_segment(now) {
            assert!(seg.payload.len() <= 1460);
            s.on_segment(now, seg);
            n += 1;
        }
        assert!(n >= 7, "10000/1460 segments expected, got {n}");
    }

    #[test]
    fn lost_segment_recovers_via_fast_retransmit() {
        let (mut c, mut s) = pair();
        run_lossless(
            &mut c,
            &mut s,
            SimTime::ZERO,
            SimDuration::from_micros(5),
            50,
        );
        let data: Vec<u8> = (0..8000u32).map(|i| i as u8).collect();
        c.send(Bytes::from(data.clone()));
        let mut now = SimTime::from_millis(1);
        // Drop the first data segment, deliver the rest; the receiver acks
        // each arrival (dupacks), which we batch back to the sender.
        let mut first = true;
        let mut acks = Vec::new();
        while let Some(seg) = c.poll_segment(now) {
            if first {
                first = false;
                continue;
            }
            s.on_segment(now, seg);
            while let Some(a) = s.poll_segment(now) {
                acks.push(a);
            }
        }
        for a in acks {
            c.on_segment(now, a);
        }
        // Let the exchange continue: c fast-retransmits.
        now += SimDuration::from_micros(50);
        let end = run_lossless(&mut c, &mut s, now, SimDuration::from_micros(5), 500);
        assert_eq!(drain(&mut s), data);
        assert!(c.stats().retransmits >= 1);
        // Fast retransmit should beat the 50ms initial RTO.
        assert!(end < SimTime::from_millis(40), "recovered at {end}");
    }

    #[test]
    fn lone_lost_segment_recovers_via_rto() {
        let (mut c, mut s) = pair();
        run_lossless(
            &mut c,
            &mut s,
            SimTime::ZERO,
            SimDuration::from_micros(5),
            50,
        );
        c.send(Bytes::from(vec![7u8; 100])); // single small segment
        let mut now = SimTime::from_millis(1);
        // Drop it.
        while c.poll_segment(now).is_some() {}
        // No dupacks possible; only the RTO can save us.
        let deadline = c.poll_timer().expect("rto armed");
        now = deadline;
        c.on_timer(now);
        let _end = run_lossless(&mut c, &mut s, now, SimDuration::from_micros(5), 100);
        assert_eq!(drain(&mut s), vec![7u8; 100]);
        assert_eq!(c.stats().timeouts, 1);
    }

    #[test]
    fn reordered_segments_reassemble() {
        let (mut c, mut s) = pair();
        run_lossless(
            &mut c,
            &mut s,
            SimTime::ZERO,
            SimDuration::from_micros(5),
            50,
        );
        let data: Vec<u8> = (0..4000u32).map(|i| i as u8).collect();
        c.send(Bytes::from(data.clone()));
        let now = SimTime::from_millis(1);
        let mut segs = Vec::new();
        while let Some(seg) = c.poll_segment(now) {
            segs.push(seg);
        }
        segs.reverse(); // worst-case reordering
        for seg in segs {
            s.on_segment(now, seg);
        }
        assert_eq!(drain(&mut s), data);
    }

    #[test]
    fn duplicate_segments_are_idempotent() {
        let (mut c, mut s) = pair();
        run_lossless(
            &mut c,
            &mut s,
            SimTime::ZERO,
            SimDuration::from_micros(5),
            50,
        );
        let data: Vec<u8> = (0..3000u32).map(|i| i as u8).collect();
        c.send(Bytes::from(data.clone()));
        let now = SimTime::from_millis(1);
        let mut segs = Vec::new();
        while let Some(seg) = c.poll_segment(now) {
            segs.push(seg);
        }
        for seg in &segs {
            s.on_segment(now, seg.clone());
            s.on_segment(now, seg.clone()); // duplicate every segment
        }
        assert_eq!(drain(&mut s), data);
    }

    #[test]
    fn cwnd_grows_in_slow_start() {
        let (mut c, mut s) = pair();
        run_lossless(
            &mut c,
            &mut s,
            SimTime::ZERO,
            SimDuration::from_micros(5),
            50,
        );
        let before = c.cwnd();
        c.send(Bytes::from(vec![0u8; 100_000]));
        run_lossless(
            &mut c,
            &mut s,
            SimTime::from_millis(1),
            SimDuration::from_micros(5),
            2000,
        );
        assert!(
            c.cwnd() > before,
            "cwnd should grow: {} -> {}",
            before,
            c.cwnd()
        );
        assert_eq!(drain(&mut s).len(), 100_000);
    }

    #[test]
    fn timeout_collapses_cwnd() {
        let (mut c, mut s) = pair();
        run_lossless(
            &mut c,
            &mut s,
            SimTime::ZERO,
            SimDuration::from_micros(5),
            50,
        );
        c.send(Bytes::from(vec![0u8; 50_000]));
        let now = SimTime::from_millis(1);
        while c.poll_segment(now).is_some() {} // drop everything
        let grown = c.cwnd();
        let deadline = c.poll_timer().unwrap();
        c.on_timer(deadline);
        assert!(c.cwnd() < grown);
        assert_eq!(c.cwnd(), 1460);
    }

    #[test]
    fn connection_dies_after_max_retries() {
        let mut c = TcpEngine::connect(TcpConfig {
            max_retries: 3,
            ..TcpConfig::default()
        });
        let mut now = SimTime::ZERO;
        // SYN goes nowhere, ever.
        for _ in 0..10 {
            while c.poll_segment(now).is_some() {}
            match c.poll_timer() {
                Some(t) => {
                    now = t;
                    c.on_timer(now);
                }
                None => break,
            }
        }
        assert_eq!(c.state(), TcpState::Closed);
    }

    #[test]
    fn rtt_estimate_tracks_link() {
        let (mut c, mut s) = pair();
        let one_way = SimDuration::from_micros(50);
        run_lossless(&mut c, &mut s, SimTime::ZERO, one_way, 50);
        c.send(Bytes::from(vec![0u8; 20_000]));
        run_lossless(&mut c, &mut s, SimTime::from_millis(1), one_way, 1000);
        let srtt = c.srtt().expect("sampled");
        // One-way 50us → RTT 100us; allow generous tolerance for ack
        // clocking artifacts of the lockstep harness.
        assert!(
            srtt >= SimDuration::from_micros(90) && srtt <= SimDuration::from_micros(400),
            "srtt {srtt}"
        );
    }
}
