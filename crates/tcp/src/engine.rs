//! The sans-io TCP engine.
//!
//! One [`TcpEngine`] is one end of one connection. It never touches
//! sockets or clocks: the host feeds it segments ([`TcpEngine::on_segment`])
//! and timer expirations ([`TcpEngine::on_timer`]), and drains outgoing
//! segments ([`TcpEngine::poll_segment`]) and delivered stream bytes
//! ([`TcpEngine::recv`]). Both the kernel-TCP baseline and LUNA wrap this
//! same engine — per §3, their difference is the host overhead around the
//! stack, not the protocol.
//!
//! Implemented: three-way handshake, MSS segmentation, cumulative ACKs,
//! out-of-order reassembly (the receive buffering SOLAR later eliminates),
//! RTO with exponential backoff and Karn's rule, fast retransmit on three
//! duplicate ACKs, Reno congestion control (slow start / congestion
//! avoidance / fast recovery), receive-window flow control.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use bytes::{Bytes, BytesMut};
use ebs_sim::{SimDuration, SimTime};
use ebs_wire::TcpFlags;

use crate::seq::unwrap_seq;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Maximum segment payload (1460 for standard frames; LUNA can use
    /// larger with TSO/GSO-style offload).
    pub mss: usize,
    /// Initial sequence number.
    pub iss: u32,
    /// Initial congestion window, in segments (RFC 6928 default 10).
    pub initial_cwnd_segs: u32,
    /// Initial retransmission timeout before any RTT sample.
    pub rto_initial: SimDuration,
    /// RTO floor.
    pub rto_min: SimDuration,
    /// RTO ceiling.
    pub rto_max: SimDuration,
    /// Advertised receive buffer in bytes.
    pub recv_window: usize,
    /// Cap on buffered out-of-order bytes.
    pub max_ooo_bytes: usize,
    /// Consecutive RTOs before the connection is declared dead.
    pub max_retries: u32,
    /// Replace inline Reno with a Swift-style delay-based controller
    /// (`None`, the default, keeps Reno). Loss events — fast retransmit
    /// and RTO — feed the controller as multiplicative-decrease signals;
    /// RTT samples drive its target-delay AIMD.
    pub swift: Option<ebs_cc::SwiftConfig>,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1460,
            iss: 1,
            initial_cwnd_segs: 10,
            rto_initial: SimDuration::from_millis(50),
            rto_min: SimDuration::from_millis(5),
            rto_max: SimDuration::from_secs(4),
            recv_window: 1 << 20,
            max_ooo_bytes: 1 << 20,
            max_retries: 10,
            swift: None,
        }
    }
}

/// A TCP segment as exchanged between engines (structured form; see
/// `ebs-wire` for the byte encoding).
#[derive(Debug, Clone)]
pub struct Segment {
    /// Wire sequence number of the first payload byte (or of SYN).
    pub seq: u32,
    /// Cumulative acknowledgment (valid when ACK flag set).
    pub ack: u32,
    /// Flags.
    pub flags: TcpFlags,
    /// Advertised receive window.
    pub window: u32,
    /// Payload.
    pub payload: Bytes,
}

impl Segment {
    /// Wire size: TCP/IP headers + payload (used by hosts to cost CPU and
    /// fabric bytes).
    pub fn wire_size(&self) -> usize {
        54 + self.payload.len() // eth 14 + ip 20 + tcp 20
    }
}

/// Connection state (condensed: no TIME_WAIT machinery — EBS connections
/// are long-lived and torn down administratively).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    /// Passive open, waiting for SYN.
    Listen,
    /// Active open, SYN sent.
    SynSent,
    /// SYN received, SYN+ACK sent.
    SynReceived,
    /// Data may flow.
    Established,
    /// Dead (reset or too many retries).
    Closed,
}

/// Hot per-flow scalars, packed into a single 64-byte cache line.
///
/// Every ACK touches all of these and (in the common no-loss case)
/// nothing else of the engine beyond the in-flight columns, so keeping
/// them adjacent — and `repr(C)` so the compiler cannot scatter them —
/// makes the per-event touch one line instead of a walk over the whole
/// struct.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
struct FlowHot {
    snd_una: u64,
    snd_nxt: u64,
    peer_window: u64,
    recover: u64,
    cwnd: f64,
    ssthresh: f64,
    /// Smoothed RTT in ns; NAN = no sample yet.
    srtt_ns: f64,
    rttvar_ns: f64,
}

/// Send-side in-flight segments in struct-of-arrays form.
///
/// Offsets only ever grow (new data is carved at `snd_nxt`) and leave
/// from the front on cumulative ACKs, so parallel `VecDeque` columns
/// replace the old `BTreeMap<u64, SentSeg>`: the ACK scan walks the
/// offset/len/meta columns without pulling payload pointers into cache,
/// and retransmit lookup is a binary search instead of a tree descent.
#[derive(Debug, Default)]
struct Inflight {
    off: VecDeque<u64>,
    len: VecDeque<u32>,
    sent_at: VecDeque<SimTime>,
    retransmitted: VecDeque<bool>,
    payload: VecDeque<Bytes>,
}

impl Inflight {
    fn is_empty(&self) -> bool {
        self.off.is_empty()
    }

    fn front_off(&self) -> Option<u64> {
        self.off.front().copied()
    }

    fn push(&mut self, off: u64, payload: Bytes, now: SimTime) {
        debug_assert!(self.off.back().is_none_or(|&b| b < off));
        self.off.push_back(off);
        self.len.push_back(payload.len() as u32);
        self.sent_at.push_back(now);
        self.retransmitted.push_back(false);
        self.payload.push_back(payload);
    }

    /// Mark the segment at stream offset `off` retransmitted and return
    /// a clone of its payload; `None` if it has since been acked away.
    fn mark_retransmit(&mut self, off: u64, now: SimTime) -> Option<Bytes> {
        let i = self.off.partition_point(|&o| o < off);
        if self.off.get(i) != Some(&off) {
            return None;
        }
        self.retransmitted[i] = true;
        self.sent_at[i] = now;
        Some(self.payload[i].clone())
    }

    /// Drop every segment starting below `ack_off` (cumulative ACK).
    /// Returns the RTT-sample candidate per Karn's rule: the send time of
    /// the newest dropped segment that was never retransmitted and is
    /// fully covered by the ACK.
    fn ack_below(&mut self, ack_off: u64, rtx_queue: &mut BTreeSet<u64>) -> Option<SimTime> {
        let mut sample = None;
        while let Some(&off) = self.off.front() {
            if off >= ack_off {
                break;
            }
            self.off.pop_front();
            // lint: allow(panic_discipline) — all five columns push/pop together; a length mismatch is a corrupted engine, not a recoverable protocol state
            let len = self.len.pop_front().expect("columns in sync");
            // lint: allow(panic_discipline) — columns push/pop together (see above)
            let sent_at = self.sent_at.pop_front().expect("columns in sync");
            // lint: allow(panic_discipline) — columns push/pop together (see above)
            let retransmitted = self.retransmitted.pop_front().expect("columns in sync");
            self.payload.pop_front();
            if !retransmitted && off + len as u64 <= ack_off {
                sample = Some(sent_at);
            }
            if !rtx_queue.is_empty() {
                rtx_queue.remove(&off);
            }
        }
        sample
    }
}

/// Counters for the experiments.
#[derive(Debug, Clone, Copy, Default)]
pub struct TcpStats {
    /// Data segments transmitted (including retransmits).
    pub segs_sent: u64,
    /// Pure ACKs transmitted.
    pub acks_sent: u64,
    /// Retransmitted segments (fast + timeout).
    pub retransmits: u64,
    /// RTO expirations.
    pub timeouts: u64,
    /// Application bytes acknowledged end-to-end.
    pub bytes_acked: u64,
}

/// One end of a TCP connection (see module docs).
#[derive(Debug)]
pub struct TcpEngine {
    cfg: TcpConfig,
    state: TcpState,
    /// Peer's initial sequence number (valid post-handshake).
    irs: u32,

    // --- send side (u64 unwrapped stream offsets) ---
    hot: FlowHot,
    pending: VecDeque<Bytes>,
    pending_bytes: usize,
    inflight: Inflight,
    rtx_queue: BTreeSet<u64>,
    dupacks: u32,
    in_recovery: bool,
    /// Swift-style delay-based controller when `cfg.swift` selects it;
    /// `None` runs the inline Reno machinery.
    swift: Option<ebs_cc::Swift>,

    // --- receive side ---
    rcv_nxt: u64,
    ooo: BTreeMap<u64, Bytes>,
    ooo_bytes: usize,
    rx_ready: VecDeque<Bytes>,
    rx_ready_bytes: usize,

    // --- timers / RTT ---
    rto: SimDuration,
    rto_deadline: Option<SimTime>,
    retries: u32,

    // --- output flags ---
    ack_pending: bool,
    syn_pending: bool,

    stats: TcpStats,
}

impl TcpEngine {
    fn new(cfg: TcpConfig, state: TcpState) -> Self {
        let swift = cfg.swift.map(ebs_cc::Swift::new);
        // Swift owns the window from the first ACK on; starting cwnd at
        // its BDP-based window (not Reno's IW10) keeps the two regimes
        // from mixing.
        let cwnd = swift.as_ref().map_or(
            (cfg.initial_cwnd_segs as usize * cfg.mss) as f64,
            ebs_cc::Swift::window,
        );
        let rto = cfg.rto_initial;
        TcpEngine {
            state,
            irs: 0,
            hot: FlowHot {
                snd_una: 0,
                snd_nxt: 0,
                peer_window: cfg.recv_window as u64,
                recover: 0,
                cwnd,
                ssthresh: f64::INFINITY,
                srtt_ns: f64::NAN,
                rttvar_ns: 0.0,
            },
            pending: VecDeque::new(),
            pending_bytes: 0,
            inflight: Inflight::default(),
            rtx_queue: BTreeSet::new(),
            dupacks: 0,
            in_recovery: false,
            swift,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            ooo_bytes: 0,
            rx_ready: VecDeque::new(),
            rx_ready_bytes: 0,
            rto,
            rto_deadline: None,
            retries: 0,
            ack_pending: false,
            syn_pending: false,
            stats: TcpStats::default(),
            cfg,
        }
    }

    /// Active open: the engine will emit a SYN on the next poll.
    pub fn connect(cfg: TcpConfig) -> Self {
        let mut e = Self::new(cfg, TcpState::SynSent);
        e.syn_pending = true;
        e
    }

    /// Passive open: waits for a SYN.
    pub fn listen(cfg: TcpConfig) -> Self {
        Self::new(cfg, TcpState::Listen)
    }

    /// Current state.
    pub fn state(&self) -> TcpState {
        self.state
    }

    /// True once the handshake completed.
    pub fn is_established(&self) -> bool {
        self.state == TcpState::Established
    }

    /// Counters.
    pub fn stats(&self) -> TcpStats {
        self.stats
    }

    /// Unacknowledged bytes in flight.
    pub fn bytes_in_flight(&self) -> u64 {
        self.hot.snd_nxt - self.hot.snd_una
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> u64 {
        self.hot.cwnd as u64
    }

    /// Current retransmission timeout.
    pub fn rto(&self) -> SimDuration {
        self.rto
    }

    /// Smoothed RTT, if sampled.
    pub fn srtt(&self) -> Option<SimDuration> {
        if self.hot.srtt_ns.is_nan() {
            None
        } else {
            Some(SimDuration::from_nanos(self.hot.srtt_ns as u64))
        }
    }

    /// Bytes accepted from the app but not yet transmitted.
    pub fn pending_bytes(&self) -> usize {
        self.pending_bytes
    }

    /// Queue application data for transmission.
    pub fn send(&mut self, data: Bytes) {
        if data.is_empty() {
            return;
        }
        self.pending_bytes += data.len();
        self.pending.push_back(data);
    }

    /// Drain the next chunk of in-order received stream bytes.
    pub fn recv(&mut self) -> Option<Bytes> {
        let b = self.rx_ready.pop_front()?;
        self.rx_ready_bytes -= b.len();
        Some(b)
    }

    fn advertised_window(&self) -> u32 {
        self.cfg
            .recv_window
            .saturating_sub(self.rx_ready_bytes + self.ooo_bytes) as u32
    }

    fn data_seq(&self, offset: u64) -> u32 {
        // SYN consumes one sequence number; data starts at iss+1.
        self.cfg.iss.wrapping_add(1).wrapping_add(offset as u32)
    }

    fn ack_seq(&self) -> u32 {
        self.irs.wrapping_add(1).wrapping_add(self.rcv_nxt as u32)
    }

    fn arm_rto(&mut self, now: SimTime) {
        self.rto_deadline = Some(now + self.rto);
    }

    /// Next timer deadline the host must call [`TcpEngine::on_timer`] at.
    pub fn poll_timer(&self) -> Option<SimTime> {
        self.rto_deadline
    }

    /// Fire the retransmission timer if due.
    pub fn on_timer(&mut self, now: SimTime) {
        let Some(deadline) = self.rto_deadline else {
            return;
        };
        if now < deadline {
            return;
        }
        if self.state == TcpState::SynSent {
            // Re-send SYN.
            self.syn_pending = true;
            self.retries += 1;
            self.rto = self.rto.mul_f64(2.0).min(self.cfg.rto_max);
            self.arm_rto(now);
            if self.retries > self.cfg.max_retries {
                self.state = TcpState::Closed;
                self.rto_deadline = None;
            }
            return;
        }
        let Some(first) = self.inflight.front_off() else {
            self.rto_deadline = None;
            return;
        };
        // Timeout: retransmit the earliest unacked segment, collapse cwnd.
        self.stats.timeouts += 1;
        self.retries += 1;
        if self.retries > self.cfg.max_retries {
            self.state = TcpState::Closed;
            self.rto_deadline = None;
            return;
        }
        self.rtx_queue.insert(first);
        if let Some(sw) = self.swift.as_mut() {
            sw.on_timeout();
            self.hot.cwnd = sw.window();
        } else {
            let flight = self.bytes_in_flight() as f64;
            self.hot.ssthresh = (flight / 2.0).max(2.0 * self.cfg.mss as f64);
            self.hot.cwnd = self.cfg.mss as f64;
        }
        self.in_recovery = false;
        self.dupacks = 0;
        self.rto = self.rto.mul_f64(2.0).min(self.cfg.rto_max);
        self.arm_rto(now);
    }

    /// Produce the next outgoing segment, if any. Call repeatedly until
    /// `None` after every `on_segment` / `on_timer` / `send`.
    pub fn poll_segment(&mut self, now: SimTime) -> Option<Segment> {
        match self.state {
            TcpState::Closed | TcpState::Listen => return None,
            TcpState::SynSent => {
                if self.syn_pending {
                    self.syn_pending = false;
                    if self.rto_deadline.is_none() {
                        self.arm_rto(now);
                    }
                    return Some(Segment {
                        seq: self.cfg.iss,
                        ack: 0,
                        flags: TcpFlags::SYN,
                        window: self.advertised_window(),
                        payload: Bytes::new(),
                    });
                }
                return None;
            }
            TcpState::SynReceived => {
                if self.syn_pending {
                    self.syn_pending = false;
                    return Some(Segment {
                        seq: self.cfg.iss,
                        ack: self.irs.wrapping_add(1),
                        flags: TcpFlags::SYN | TcpFlags::ACK,
                        window: self.advertised_window(),
                        payload: Bytes::new(),
                    });
                }
                return None;
            }
            TcpState::Established => {}
        }

        // 1. Retransmissions take priority.
        while let Some(&off) = self.rtx_queue.iter().next() {
            self.rtx_queue.remove(&off);
            if let Some(payload) = self.inflight.mark_retransmit(off, now) {
                self.stats.segs_sent += 1;
                self.stats.retransmits += 1;
                self.ack_pending = false;
                if self.rto_deadline.is_none() {
                    self.arm_rto(now);
                }
                return Some(Segment {
                    seq: self.data_seq(off),
                    ack: self.ack_seq(),
                    flags: TcpFlags::ACK | TcpFlags::PSH,
                    window: self.advertised_window(),
                    payload,
                });
            }
            // Already acked — skip.
        }

        // 2. New data, within cwnd and the peer's window.
        let window = (self.hot.cwnd as u64).min(self.hot.peer_window);
        if !self.pending.is_empty() && self.bytes_in_flight() < window {
            let budget = (window - self.bytes_in_flight()) as usize;
            let take = budget.min(self.cfg.mss);
            let payload = self.carve(take);
            if !payload.is_empty() {
                let off = self.hot.snd_nxt;
                self.hot.snd_nxt += payload.len() as u64;
                self.inflight.push(off, payload.clone(), now);
                self.stats.segs_sent += 1;
                self.ack_pending = false;
                if self.rto_deadline.is_none() {
                    self.arm_rto(now);
                }
                return Some(Segment {
                    seq: self.data_seq(off),
                    ack: self.ack_seq(),
                    flags: TcpFlags::ACK | TcpFlags::PSH,
                    window: self.advertised_window(),
                    payload,
                });
            }
        }

        // 3. Pure ACK.
        if self.ack_pending {
            self.ack_pending = false;
            self.stats.acks_sent += 1;
            return Some(Segment {
                seq: self.data_seq(self.hot.snd_nxt),
                ack: self.ack_seq(),
                flags: TcpFlags::ACK,
                window: self.advertised_window(),
                payload: Bytes::new(),
            });
        }
        None
    }

    /// Pull up to `max` bytes off the pending queue as one payload.
    fn carve(&mut self, max: usize) -> Bytes {
        let mut out = BytesMut::with_capacity(max.min(self.pending_bytes));
        while out.len() < max {
            let Some(mut chunk) = self.pending.pop_front() else {
                break;
            };
            let room = max - out.len();
            if chunk.len() <= room {
                self.pending_bytes -= chunk.len();
                out.extend_from_slice(&chunk);
            } else {
                let head = chunk.split_to(room);
                self.pending_bytes -= head.len();
                out.extend_from_slice(&head);
                self.pending.push_front(chunk);
            }
        }
        out.freeze()
    }

    /// Process an incoming segment.
    pub fn on_segment(&mut self, now: SimTime, seg: Segment) {
        if seg.flags.contains(TcpFlags::RST) {
            self.state = TcpState::Closed;
            self.rto_deadline = None;
            return;
        }
        match self.state {
            TcpState::Closed => {}
            TcpState::Listen => {
                if seg.flags.contains(TcpFlags::SYN) {
                    self.irs = seg.seq;
                    self.hot.peer_window = seg.window as u64;
                    self.state = TcpState::SynReceived;
                    self.syn_pending = true;
                }
            }
            TcpState::SynSent => {
                if seg.flags.contains(TcpFlags::SYN) && seg.flags.contains(TcpFlags::ACK) {
                    self.irs = seg.seq;
                    self.hot.peer_window = seg.window as u64;
                    self.state = TcpState::Established;
                    self.rto_deadline = None;
                    self.retries = 0;
                    self.rto = self.cfg.rto_initial;
                    self.ack_pending = true;
                }
            }
            TcpState::SynReceived => {
                if seg.flags.contains(TcpFlags::SYN) && !seg.flags.contains(TcpFlags::ACK) {
                    // Our SYN+ACK was lost and the client re-SYNed: resend.
                    self.syn_pending = true;
                } else if seg.flags.contains(TcpFlags::ACK) {
                    self.state = TcpState::Established;
                    self.hot.peer_window = seg.window as u64;
                    // Fall through to normal processing for piggybacked data.
                    self.established_segment(now, seg);
                }
            }
            TcpState::Established => self.established_segment(now, seg),
        }
    }

    fn established_segment(&mut self, now: SimTime, seg: Segment) {
        self.hot.peer_window = seg.window as u64;

        // A retransmitted SYN+ACK means our final handshake ACK was lost:
        // re-ack so the peer can leave SYN_RECEIVED.
        if seg.flags.contains(TcpFlags::SYN) {
            self.ack_pending = true;
            return;
        }

        // --- ACK processing ---
        if seg.flags.contains(TcpFlags::ACK) {
            let ack_off = unwrap_seq(
                seg.ack.wrapping_sub(self.cfg.iss).wrapping_sub(1),
                self.hot.snd_una,
            );
            if ack_off > self.hot.snd_una as i64 && ack_off <= self.hot.snd_nxt as i64 {
                let ack_off = ack_off as u64;
                self.retries = 0;
                // RTT sample from the newest fully-acked, never
                // retransmitted segment (Karn's rule).
                let sample = self
                    .inflight
                    .ack_below(ack_off, &mut self.rtx_queue)
                    .map(|sent_at| now.saturating_since(sent_at));
                let newly = ack_off - self.hot.snd_una;
                self.stats.bytes_acked += newly;
                self.hot.snd_una = ack_off;
                self.dupacks = 0;
                if let Some(rtt) = sample {
                    self.update_rtt(rtt);
                    if let Some(sw) = self.swift.as_mut() {
                        sw.on_delay_sample(now, rtt);
                    }
                }
                // Congestion control.
                if let Some(sw) = self.swift.as_ref() {
                    // Delay-based: the controller owns the window.
                    self.hot.cwnd = sw.window();
                    if self.in_recovery && ack_off >= self.hot.recover {
                        self.in_recovery = false;
                    }
                } else if self.in_recovery {
                    if ack_off >= self.hot.recover {
                        self.in_recovery = false;
                        self.hot.cwnd = self.hot.ssthresh;
                    }
                } else if self.hot.cwnd < self.hot.ssthresh {
                    self.hot.cwnd += newly as f64; // slow start
                } else {
                    self.hot.cwnd += (self.cfg.mss as f64 * self.cfg.mss as f64) / self.hot.cwnd;
                    // CA
                }
                // Timer: restart if data remains, else disarm.
                if self.inflight.is_empty() {
                    self.rto_deadline = None;
                } else {
                    self.arm_rto(now);
                }
            } else if ack_off == self.hot.snd_una as i64
                && !self.inflight.is_empty()
                && seg.payload.is_empty()
            {
                self.dupacks += 1;
                if self.dupacks == 3 && !self.in_recovery {
                    // Fast retransmit + fast recovery (simplified Reno).
                    if let Some(sw) = self.swift.as_mut() {
                        // Loss is a multiplicative-decrease signal for
                        // the delay-based controller too.
                        sw.on_timeout();
                        self.hot.cwnd = sw.window();
                    } else {
                        let flight = self.bytes_in_flight() as f64;
                        self.hot.ssthresh = (flight / 2.0).max(2.0 * self.cfg.mss as f64);
                        self.hot.cwnd = self.hot.ssthresh;
                    }
                    self.in_recovery = true;
                    self.hot.recover = self.hot.snd_nxt;
                    if let Some(first) = self.inflight.front_off() {
                        self.rtx_queue.insert(first);
                    }
                }
            }
        }

        // --- data processing ---
        if !seg.payload.is_empty() {
            let off = unwrap_seq(seg.seq.wrapping_sub(self.irs).wrapping_sub(1), self.rcv_nxt);
            self.ack_pending = true;
            let len = seg.payload.len() as i64;
            if off == self.rcv_nxt as i64 {
                self.deliver(seg.payload);
                self.drain_ooo();
            } else if off > self.rcv_nxt as i64 {
                // Out of order: buffer if capacity allows (this buffer is
                // exactly the state SOLAR removes from hardware).
                if self.ooo_bytes + seg.payload.len() <= self.cfg.max_ooo_bytes {
                    let off = off as u64;
                    if let std::collections::btree_map::Entry::Vacant(e) = self.ooo.entry(off) {
                        self.ooo_bytes += seg.payload.len();
                        e.insert(seg.payload);
                    }
                }
            } else if off + len > self.rcv_nxt as i64 {
                // Partial overlap: deliver the new tail.
                let skip = (self.rcv_nxt as i64 - off) as usize;
                self.deliver(seg.payload.slice(skip..));
                self.drain_ooo();
            }
            // else: pure duplicate — just ack.
        }
    }

    fn deliver(&mut self, data: Bytes) {
        self.rcv_nxt += data.len() as u64;
        self.rx_ready_bytes += data.len();
        self.rx_ready.push_back(data);
    }

    fn drain_ooo(&mut self) {
        while let Some(entry) = self.ooo.first_entry() {
            if *entry.key() > self.rcv_nxt {
                break;
            }
            let (off, data) = entry.remove_entry();
            self.ooo_bytes -= data.len();
            if off + data.len() as u64 <= self.rcv_nxt {
                continue; // fully duplicate
            }
            let skip = (self.rcv_nxt - off) as usize;
            self.deliver(data.slice(skip..));
        }
    }

    fn update_rtt(&mut self, rtt: SimDuration) {
        let r = rtt.as_nanos() as f64;
        let srtt = if self.hot.srtt_ns.is_nan() {
            self.hot.rttvar_ns = r / 2.0;
            r
        } else {
            let srtt = self.hot.srtt_ns;
            self.hot.rttvar_ns = 0.75 * self.hot.rttvar_ns + 0.25 * (srtt - r).abs();
            0.875 * srtt + 0.125 * r
        };
        self.hot.srtt_ns = srtt;
        let rto_ns = srtt + 4.0 * self.hot.rttvar_ns;
        self.rto = SimDuration::from_nanos(rto_ns as u64)
            .max(self.cfg.rto_min)
            .min(self.cfg.rto_max);
    }
}

impl ebs_obs::Sample for TcpEngine {
    /// Component `tcp`: shared engine counters plus the congestion state
    /// (cwnd / inflight / srtt) the LUNA comparison plots read.
    fn sample_into(&self, _now: SimTime, m: &mut ebs_obs::Metrics) {
        let s = self.stats();
        m.counter_add("tcp", "segs_sent", s.segs_sent);
        m.counter_add("tcp", "acks_sent", s.acks_sent);
        m.counter_add("tcp", "retransmits", s.retransmits);
        m.counter_add("tcp", "timeouts", s.timeouts);
        m.counter_add("tcp", "bytes_acked", s.bytes_acked);
        m.gauge_set("tcp", "cwnd_bytes", self.cwnd() as f64);
        m.gauge_set("tcp", "bytes_in_flight", self.bytes_in_flight() as f64);
        m.gauge_set("tcp", "pending_bytes", self.pending_bytes() as f64);
        if let Some(srtt) = self.srtt() {
            m.observe("tcp", "srtt_ns", srtt.as_nanos());
        }
    }
}
