//! 32-bit sequence-number arithmetic.
//!
//! Wire sequence numbers wrap; internally the engine keeps unwrapped
//! 64-bit stream offsets and converts at the edge.

/// Serial-number "less than" for wrapping u32 sequence numbers.
pub fn seq_lt(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) < 0
}

/// Serial-number "less than or equal".
pub fn seq_le(a: u32, b: u32) -> bool {
    a == b || seq_lt(a, b)
}

/// Unwrap a wire sequence number `seq` to a 64-bit stream offset near the
/// `reference` offset (the receiver's or sender's current edge). Handles
/// wraparound in both directions; offsets before stream start clamp via
/// i64 math (callers treat negative results as "old data").
pub fn unwrap_seq(seq: u32, reference: u64) -> i64 {
    let ref_wire = reference as u32;
    let delta = seq.wrapping_sub(ref_wire) as i32 as i64;
    reference as i64 + delta
}

/// Wrap a 64-bit stream offset (plus initial sequence number) to the wire.
pub fn wrap_seq(offset: u64, iss: u32) -> u32 {
    iss.wrapping_add(offset as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_basic() {
        assert!(seq_lt(1, 2));
        assert!(!seq_lt(2, 1));
        assert!(!seq_lt(5, 5));
        assert!(seq_le(5, 5));
    }

    #[test]
    fn ordering_across_wrap() {
        assert!(seq_lt(0xFFFF_FFF0, 0x10));
        assert!(!seq_lt(0x10, 0xFFFF_FFF0));
    }

    #[test]
    fn unwrap_near_reference() {
        assert_eq!(unwrap_seq(105, 100), 105);
        assert_eq!(unwrap_seq(95, 100), 95);
    }

    #[test]
    fn unwrap_across_wrap() {
        // Reference offset just before 2^32; incoming small seq means the
        // stream wrapped.
        let reference = 0xFFFF_FFF0u64;
        assert_eq!(unwrap_seq(0x10, reference), 0x1_0000_0010);
        // And a seq slightly behind the reference stays behind.
        assert_eq!(unwrap_seq(0xFFFF_FFE0, reference), 0xFFFF_FFE0);
    }

    #[test]
    fn unwrap_far_stream() {
        // 10 GB into the stream.
        let reference = 10_000_000_000u64;
        let wire = wrap_seq(reference, 0);
        assert_eq!(unwrap_seq(wire, reference), reference as i64);
        assert_eq!(
            unwrap_seq(wire.wrapping_add(1460), reference),
            reference as i64 + 1460
        );
    }

    #[test]
    fn wrap_roundtrip_with_iss() {
        let iss = 0xDEAD_BEEF;
        let offset = 5_000_000_123u64;
        let wire = wrap_seq(offset, iss);
        // Unwrap relative to the same offset recovers it (mod iss shift).
        assert_eq!(unwrap_seq(wire.wrapping_sub(iss), offset), offset as i64);
    }
}
