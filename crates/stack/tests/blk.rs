//! End-to-end tests of the block frontend mounted on the testbed: ring
//! flow over the SA data path, the pushdown placement matrix and its
//! bytes-moved claim, CRC rejection, and feature gating.

use ebs_sim::SimTime;
use ebs_stack::blk::{BlkReq, Predicate, PushdownPlacement, StorageFn};
use ebs_stack::{BlkMountConfig, Testbed, TestbedConfig, Variant};
use ebs_wire::{
    BLK_F_DISCARD, BLK_F_MQ, BLK_F_PUSHDOWN, BLK_F_SEG_MAX, BLK_S_BADCRC, BLK_S_OK, BLK_S_UNSUPP,
};

fn testbed() -> Testbed {
    Testbed::new(TestbedConfig::small(Variant::Solar, 2, 3))
}

/// A ~1/16-selective predicate over byte 0 of each block.
fn selective() -> Predicate {
    Predicate {
        offset: 0,
        mask: 0x0F,
        value: 0x07,
    }
}

fn run(tb: &mut Testbed) {
    tb.run_until(SimTime::from_secs(2));
}

#[test]
fn ring_requests_ride_the_sa_path_end_to_end() {
    let mut tb = testbed();
    tb.blk_mount(0, BlkMountConfig::with_placement(PushdownPlacement::Client))
        .expect("negotiation");
    let t0 = SimTime::from_millis(1);
    tb.schedule_blk(t0, 0, 0, BlkReq::read(0, 0, 8));
    tb.schedule_blk(t0, 0, 1, BlkReq::write(0, 64, 8));
    tb.schedule_blk(t0, 0, 0, BlkReq::flush(0));
    tb.schedule_blk(t0, 0, 1, BlkReq::discard(0, 128, 16));
    run(&mut tb);

    let c = tb.blk_counters();
    assert_eq!(c.accepted, 4);
    assert_eq!(c.completed, 4);
    assert_eq!(c.rejected, 0);
    assert_eq!(c.unsupported, 0);
    let traces = tb.blk_traces();
    assert_eq!(traces.len(), 4);
    for t in traces {
        assert_eq!(t.status, BLK_S_OK, "{}", t.label);
        assert!(t.completed.expect("completed") > t.submitted, "{}", t.label);
    }
    // The read and write went through the normal guest-I/O machinery:
    // they appear in the IoTrace stream too (flush/discard do not).
    assert_eq!(tb.traces().len(), 2);
    assert!(tb.traces().iter().all(|t| t.completed.is_some()));
    // Ring slots conserved, nothing held by the device at quiesce.
    assert!(tb.blk_ring_errors().is_empty());
    let (free, cap, held) = tb.blk_ring_slots();
    assert_eq!(held, 0);
    assert_eq!(free, cap);
}

#[test]
fn ring_full_rejects_and_conserves() {
    let mut tb = testbed();
    tb.blk_mount(
        0,
        BlkMountConfig {
            num_queues: 1,
            queue_depth: 4,
            features: ebs_wire::BLK_KNOWN_FEATURES,
            placement: PushdownPlacement::Client,
        },
    )
    .expect("negotiation");
    // 6 submissions into a depth-4 queue at the same instant: two bounce.
    let t0 = SimTime::from_millis(1);
    for i in 0..6 {
        tb.schedule_blk(t0, 0, 0, BlkReq::read(0, i * 8, 4));
    }
    run(&mut tb);
    let c = tb.blk_counters();
    assert_eq!(c.accepted, 4);
    assert_eq!(c.rejected, 2);
    assert_eq!(c.completed, 4);
    assert!(tb.blk_ring_errors().is_empty());
}

/// The tentpole claim: a filtered range scan executed at the storage node
/// or on its DPU moves measurably fewer bytes across the fabric than the
/// client-side baseline, and all three placements agree on the result.
#[test]
fn pushdown_placements_agree_and_save_bytes() {
    let scan = StorageFn::scan(selective());
    let mut results = Vec::new();
    for placement in [
        PushdownPlacement::Client,
        PushdownPlacement::StorageNode,
        PushdownPlacement::Dpu,
    ] {
        let mut tb = testbed();
        tb.blk_mount(0, BlkMountConfig::with_placement(placement))
            .expect("negotiation");
        tb.schedule_blk(
            SimTime::from_millis(1),
            0,
            0,
            BlkReq::pushdown(0, 0, 256, scan),
        );
        run(&mut tb);
        let c = tb.blk_counters();
        assert_eq!(c.accepted, 1, "{placement:?}");
        assert_eq!(c.completed, 1, "{placement:?}");
        assert_eq!(c.crc_failures, 0, "{placement:?}");
        assert!(tb.fabric_bytes() > 0, "{placement:?}");
        let t = tb.blk_traces()[0];
        assert_eq!(t.status, BLK_S_OK, "{placement:?}");
        assert!(t.completed.is_some(), "{placement:?}");
        results.push((placement, t.blocks_out, c.data_bytes));
        if placement == PushdownPlacement::Dpu {
            let (reqs, cycles, saved) = tb.blk_dpu_stats();
            assert_eq!(reqs, 1);
            assert!(cycles > 0);
            assert!(saved > 0, "filtered scan must save PCIe/fabric bytes");
        }
    }
    let out: Vec<u32> = results.iter().map(|r| r.1).collect();
    assert_eq!(out[0], out[1], "placements must agree on the result");
    assert_eq!(out[1], out[2], "placements must agree on the result");
    assert!(
        out[0] > 0 && out[0] < 256,
        "predicate should be selective but non-empty: {} of 256",
        out[0]
    );
    let client = results[0].2;
    let storage = results[1].2;
    let dpu = results[2].2;
    // The baseline hauls all 256 blocks; pushdown hauls the matched
    // blocks only.
    assert_eq!(client, 256 * 4096, "baseline hauls the whole range");
    assert_eq!(storage, u64::from(out[1]) * 4096);
    assert!(
        storage * 2 < client,
        "storage placement must move <half the bytes: {storage} vs {client}"
    );
    assert!(
        dpu * 2 < client,
        "dpu placement must move <half the bytes: {dpu} vs {client}"
    );
}

#[test]
fn pushdown_splits_across_block_servers_and_reassembles() {
    let mut tb = testbed();
    tb.blk_mount(
        0,
        BlkMountConfig::with_placement(PushdownPlacement::StorageNode),
    )
    .expect("negotiation");
    // A range straddling a segment boundary fans out to two block
    // servers; the XOR-aggregated part CRCs must still verify.
    let seg = ebs_sa::SEGMENT_BLOCKS;
    tb.schedule_blk(
        SimTime::from_millis(1),
        0,
        0,
        BlkReq::pushdown(0, seg - 32, 64, StorageFn::scan(selective())),
    );
    run(&mut tb);
    let c = tb.blk_counters();
    assert_eq!(c.parts_sent, 2, "range straddles one segment boundary");
    assert_eq!(c.completed, 1);
    assert_eq!(c.crc_failures, 0);
    assert_eq!(tb.blk_traces()[0].status, BLK_S_OK);
}

#[test]
fn merge_and_verify_functions_complete_at_every_placement() {
    for placement in [
        PushdownPlacement::Client,
        PushdownPlacement::StorageNode,
        PushdownPlacement::Dpu,
    ] {
        for func in [StorageFn::checksum_verify(), StorageFn::merge(8)] {
            let mut tb = testbed();
            tb.blk_mount(0, BlkMountConfig::with_placement(placement))
                .expect("negotiation");
            tb.schedule_blk(
                SimTime::from_millis(1),
                0,
                0,
                BlkReq::pushdown(0, 0, 64, func),
            );
            run(&mut tb);
            let t = tb.blk_traces()[0];
            assert_eq!(t.status, BLK_S_OK, "{placement:?} {:?}", func.op);
            assert!(t.completed.is_some(), "{placement:?} {:?}", func.op);
        }
    }
}

/// The integrity argument, negative direction: a planted bit-flip in a
/// pushdown response's aggregate CRC must be rejected, never silently
/// accepted (Fig. 11's lesson applied to transformed data).
#[test]
fn corrupted_pushdown_response_fails_crc() {
    let mut tb = testbed();
    tb.blk_mount(
        0,
        BlkMountConfig::with_placement(PushdownPlacement::StorageNode),
    )
    .expect("negotiation");
    tb.blk_corrupt_next_response();
    tb.schedule_blk(
        SimTime::from_millis(1),
        0,
        0,
        BlkReq::pushdown(0, 0, 32, StorageFn::scan(selective())),
    );
    run(&mut tb);
    let c = tb.blk_counters();
    assert_eq!(c.crc_failures, 1);
    assert_eq!(c.completed, 1, "rejected requests still complete");
    let t = tb.blk_traces()[0];
    assert_eq!(t.status, BLK_S_BADCRC);
    assert_eq!(t.blocks_out, 0, "no result delivered on CRC failure");
}

#[test]
fn unnegotiated_features_complete_unsupported() {
    let mut tb = testbed();
    // Driver acks neither FLUSH, DISCARD, nor PUSHDOWN.
    tb.blk_mount(
        0,
        BlkMountConfig {
            num_queues: 2,
            queue_depth: 16,
            features: BLK_F_MQ | BLK_F_SEG_MAX,
            placement: PushdownPlacement::StorageNode,
        },
    )
    .expect("negotiation");
    let t0 = SimTime::from_millis(1);
    tb.schedule_blk(t0, 0, 0, BlkReq::flush(0));
    tb.schedule_blk(t0, 0, 0, BlkReq::discard(0, 0, 8));
    tb.schedule_blk(
        t0,
        0,
        0,
        BlkReq::pushdown(0, 0, 8, StorageFn::checksum_verify()),
    );
    tb.schedule_blk(t0, 0, 0, BlkReq::read(0, 0, 4));
    run(&mut tb);
    let c = tb.blk_counters();
    assert_eq!(c.unsupported, 3);
    assert_eq!(c.completed, 4, "reads still work");
    let statuses: Vec<u8> = tb.blk_traces().iter().map(|t| t.status).collect();
    assert_eq!(statuses.iter().filter(|&&s| s == BLK_S_UNSUPP).count(), 3);
    assert_eq!(statuses.iter().filter(|&&s| s == BLK_S_OK).count(), 1);
    // And zero pushdown frames ever hit the fabric.
    assert_eq!(c.parts_sent, 0);
}

#[test]
fn dpu_placement_requires_its_feature_bit() {
    let mut tb = testbed();
    tb.blk_mount(
        0,
        BlkMountConfig {
            num_queues: 1,
            queue_depth: 16,
            // PUSHDOWN negotiated, but not PUSHDOWN_DPU.
            features: BLK_F_MQ | BLK_F_FLUSHLESS_SET | BLK_F_PUSHDOWN,
            placement: PushdownPlacement::Dpu,
        },
    )
    .expect("negotiation");
    tb.schedule_blk(
        SimTime::from_millis(1),
        0,
        0,
        BlkReq::pushdown(0, 0, 8, StorageFn::checksum_verify()),
    );
    run(&mut tb);
    assert_eq!(tb.blk_counters().unsupported, 1);
    assert_eq!(tb.blk_traces()[0].status, BLK_S_UNSUPP);
}

/// A convenience alias used above: the non-pushdown optional bits.
const BLK_F_FLUSHLESS_SET: u64 = BLK_F_SEG_MAX | BLK_F_DISCARD;

#[test]
fn digest_gains_a_blk_section_only_when_mounted() {
    let mut tb = testbed();
    tb.schedule_io(
        SimTime::from_millis(1),
        0,
        ebs_sa::IoRequest {
            vd_id: 0,
            kind: ebs_sa::IoKind::Read,
            offset: 0,
            len: 4096,
        },
    );
    run(&mut tb);
    let plain = tb.metrics_digest(SimTime::from_secs(2));
    assert!(
        !plain.contains(" blk="),
        "unmounted runs keep legacy digests: {plain}"
    );

    let mut tb = testbed();
    tb.blk_mount(0, BlkMountConfig::with_placement(PushdownPlacement::Client))
        .expect("negotiation");
    tb.schedule_blk(SimTime::from_millis(1), 0, 0, BlkReq::read(0, 0, 4));
    run(&mut tb);
    let with_blk = tb.metrics_digest(SimTime::from_secs(2));
    assert!(with_blk.contains(" blk=1/1/0/0"), "{with_blk}");
    assert!(with_blk.contains("fabric_bytes="), "{with_blk}");
}

#[test]
fn pushdown_runs_are_deterministic() {
    let digest = || {
        let mut tb = testbed();
        tb.blk_mount(0, BlkMountConfig::with_placement(PushdownPlacement::Dpu))
            .expect("negotiation");
        for i in 0..4 {
            tb.schedule_blk(
                SimTime::from_millis(1 + i),
                0,
                i as usize % 2,
                BlkReq::pushdown(0, i * 128, 64, StorageFn::scan(selective())),
            );
        }
        run(&mut tb);
        tb.metrics_digest(SimTime::from_secs(2))
    };
    assert_eq!(digest(), digest());
}
