//! Journal-driven diagnostics: hop-by-hop I/O timeline reconstruction.
//!
//! The testbed emits one span per latency component per completed I/O
//! into the observability journal (tracks `io`, `sa.qos`, `sa`, `fn`,
//! `bn`, `ssd`, all keyed by the trace index). This module is the
//! journal's consumer side: it re-derives the Fig. 6 breakdown without
//! touching [`IoTrace`](crate::IoTrace), and answers the on-call
//! question "why was the slowest I/O slow?" with a tiled timeline.
//!
//! The component spans *tile* the I/O's interval in attribution order
//! (QoS → SA → FN → BN → SSD → completion-side SA), not wire order —
//! the same convention the paper's stacked bars use — so their durations
//! sum exactly to the end-to-end latency.

use ebs_obs::{EventKind, Journal};
use ebs_sa::IoKind;
use ebs_sim::{SimDuration, SimTime};

/// Track carrying the whole-I/O span and the `submit` instant.
pub const IO_TRACK: &str = "io";

/// One component's slice of a reconstructed I/O timeline.
#[derive(Debug, Clone, Copy)]
pub struct HopSpan {
    /// Component track (`sa.qos`, `sa`, `fn`, `bn`, `ssd`).
    pub component: &'static str,
    /// Slice start.
    pub start: SimTime,
    /// Slice length.
    pub dur: SimDuration,
}

/// The slowest I/O, explained hop by hop.
#[derive(Debug, Clone)]
pub struct IoExplanation {
    /// Trace index of the I/O (the span id in the journal).
    pub io_id: u64,
    /// Read or write.
    pub kind: IoKind,
    /// I/O size in bytes (0 when the submit instant was evicted).
    pub bytes: u64,
    /// End-to-end latency excluding QoS policy delay.
    pub total: SimDuration,
    /// Component slices, in timeline order.
    pub hops: Vec<HopSpan>,
}

impl IoExplanation {
    /// The slice the I/O spent the longest in.
    pub fn dominant(&self) -> Option<&HopSpan> {
        self.hops.iter().max_by_key(|h| h.dur)
    }

    /// Human-readable multi-line rendering.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let kind = match self.kind {
            IoKind::Read => "read",
            IoKind::Write => "write",
        };
        let _ = writeln!(
            out,
            "slowest io #{}: {} {} B in {}",
            self.io_id, kind, self.bytes, self.total
        );
        let total_ns = self.total.as_nanos().max(1);
        for h in &self.hops {
            let pct = h.dur.as_nanos() as f64 * 100.0 / total_ns as f64;
            let _ = writeln!(
                out,
                "  {:>6}  @{}  {}  ({pct:.1}%)",
                h.component, h.start, h.dur
            );
        }
        if let Some(d) = self.dominant() {
            let _ = writeln!(out, "  dominated by {}", d.component);
        }
        out
    }
}

/// Reconstruct the timeline of the slowest completed I/O recorded in
/// `journal`. Returns `None` when the journal holds no completed I/O
/// (including the compiled-out configuration, where it is always empty).
pub fn explain_slowest(journal: &Journal) -> Option<IoExplanation> {
    // The slowest completed I/O = the `io`-track span with the largest
    // duration (ties: the earliest recorded wins, keeping this stable).
    let mut slowest: Option<(u64, &'static str, SimDuration)> = None;
    for ev in journal.events() {
        if ev.track != IO_TRACK {
            continue;
        }
        if let EventKind::Span { name, id, dur } = ev.kind {
            if slowest.is_none_or(|(_, _, best)| dur > best) {
                slowest = Some((id, name, dur));
            }
        }
    }
    let (io_id, name, total) = slowest?;
    let kind = if name == "read" {
        IoKind::Read
    } else {
        IoKind::Write
    };

    let mut bytes = 0u64;
    let mut hops = Vec::new();
    for ev in journal.events() {
        match ev.kind {
            EventKind::Instant {
                name: "submit",
                id,
                arg,
            } if ev.track == IO_TRACK && id == io_id => bytes = arg >> 1,
            EventKind::Span { id, dur, .. } if id == io_id && ev.track != IO_TRACK => {
                hops.push(HopSpan {
                    component: ev.track,
                    start: ev.at,
                    dur,
                });
            }
            _ => {}
        }
    }
    hops.sort_by_key(|h| (h.start, h.start + h.dur));
    Some(IoExplanation {
        io_id,
        kind,
        bytes,
        total,
        hops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_journal_has_no_explanation() {
        let j = Journal::new();
        assert!(explain_slowest(&j).is_none());
    }

    #[cfg(feature = "obs")]
    #[test]
    fn picks_the_slowest_and_orders_hops() {
        let mut j = Journal::new();
        let t = SimTime::from_micros;
        // io 1: 10us; io 2: 30us (slowest).
        j.instant(t(0), IO_TRACK, "submit", 1, (4096 << 1) | 1);
        j.span(IO_TRACK, "write", 1, t(0), t(10));
        j.instant(t(5), IO_TRACK, "submit", 2, 8192 << 1);
        j.span("sa", "read", 2, t(5), t(9));
        j.span("fn", "read", 2, t(9), t(20));
        j.span("ssd", "read", 2, t(25), t(35));
        j.span("bn", "read", 2, t(20), t(25));
        j.span(IO_TRACK, "read", 2, t(5), t(35));
        let e = explain_slowest(&j).expect("has completed io");
        assert_eq!(e.io_id, 2);
        assert_eq!(e.kind, IoKind::Read);
        assert_eq!(e.bytes, 8192);
        assert_eq!(e.total, SimDuration::from_micros(30));
        let order: Vec<&str> = e.hops.iter().map(|h| h.component).collect();
        assert_eq!(order, ["sa", "fn", "bn", "ssd"]);
        assert_eq!(e.dominant().expect("hops").component, "fn");
        let summed: SimDuration = e.hops.iter().fold(SimDuration::ZERO, |acc, h| acc + h.dur);
        assert_eq!(summed, e.total, "hops tile the io span");
        assert!(e.render().contains("dominated by fn"));
    }
}
