//! The deterministic sharded fleet engine.
//!
//! A [`ShardedTestbed`] runs N independent [`Testbed`] shards — pod-group
//! slices of a region, each with its own event queue, fabric and servers —
//! under a **conservative time-window barrier**. The run is chopped into
//! windows no wider than the *boundary latency* `Lb` (the minimum one-way
//! latency of any cross-shard path, see
//! [`ShardPlan::boundary_latency_of`]). Within a window every shard
//! advances alone; cross-shard traffic parks at the shard's gateway and is
//! exchanged only at window edges.
//!
//! **Why the window bound makes the exchange safe:** a message that
//! reaches its gateway at local time `t ∈ [W, W + w)` lands in the
//! destination shard at `t + Lb ≥ W + Lb ≥ W + w` whenever `w ≤ Lb` — that
//! is, never inside the window it departed in. So running every shard to
//! the edge *before* exchanging cannot miss a causal dependency, and the
//! exchanged messages always inject into the destination's future.
//!
//! **Why N threads and 1 thread are byte-identical:** shards share no
//! mutable state; the only inter-shard channel is the mailbox exchange,
//! and every inbox is sorted by `(sending shard, outbox seq)` — a total
//! order fixed by the simulation itself, not by thread interleaving —
//! before injection. Injection order determines event-queue tie-breaking,
//! so each shard's next window is a pure function of simulation state.
//! Wall-clock time is measured only for the occupancy/stall statistics and
//! never branches the simulation.
//!
//! [`ShardPlan::boundary_latency_of`]: ebs_net::ShardPlan::boundary_latency_of

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

use ebs_net::ShardPlan;
use ebs_obs::Journal;
use ebs_sim::{SimDuration, SimTime};

use crate::testbed::{RemoteMsg, Testbed, TestbedConfig};

/// Cross-shard replication traffic knobs (the storage clusters' BN
/// replication between pods; §2.1's background east-west traffic).
#[derive(Debug, Clone, Copy)]
pub struct ReplicationConfig {
    /// First tick (jittered per storage server from there).
    pub start: SimTime,
    /// Mean interval between replication RPCs per storage server.
    pub interval: SimDuration,
    /// Blocks per replication RPC.
    pub blocks: u32,
}

/// Fleet configuration: a per-shard [`TestbedConfig`] template plus the
/// sharding/execution knobs.
#[derive(Debug, Clone)]
pub struct ShardedTestbedConfig {
    /// Template carrying the fleet-wide totals (`n_compute`, `n_storage`)
    /// and every model knob. Each shard rebuilds its own right-sized
    /// fabric with [`TestbedConfig::small`]; the template's `fabric` and
    /// `gateway` fields are ignored.
    pub base: TestbedConfig,
    /// Number of shards to split the fleet into.
    pub n_shards: u32,
    /// Worker threads (1 = serial in-place execution, same results).
    pub threads: usize,
    /// Cross-shard replication traffic, if any (needs `n_shards > 1`).
    pub replication: Option<ReplicationConfig>,
    /// Exchange-window override; clamped to the boundary latency (wider
    /// would break conservativeness). `None` = the boundary latency.
    pub window: Option<SimDuration>,
}

impl ShardedTestbedConfig {
    /// A fleet of `computes` + `storages` servers split into `n_shards`,
    /// with the [`TestbedConfig::small`] model defaults.
    pub fn new(
        variant: crate::Variant,
        computes: usize,
        storages: usize,
        n_shards: u32,
    ) -> ShardedTestbedConfig {
        ShardedTestbedConfig {
            base: TestbedConfig::small(variant, computes, storages),
            n_shards,
            threads: 1,
            replication: None,
            window: None,
        }
    }
}

/// Per-shard execution statistics (deterministic counters plus wall-clock
/// occupancy; the latter never feeds back into the simulation).
#[derive(Debug, Default, Clone, Copy)]
pub struct ShardStats {
    /// Wall nanoseconds spent running this shard's windows.
    pub busy_ns: u64,
    /// Messages this shard sent across the boundary.
    pub sent: u64,
    /// Messages injected into this shard.
    pub received: u64,
}

/// Per-worker execution statistics (one entry per thread; serial runs
/// have exactly one).
#[derive(Debug, Default, Clone, Copy)]
pub struct WorkerStats {
    /// Wall nanoseconds spent running shards.
    pub busy_ns: u64,
    /// Wall nanoseconds spent waiting at window barriers.
    pub stall_ns: u64,
    /// Windows executed.
    pub windows: u64,
}

/// A fleet of single-pod-group [`Testbed`]s under the window barrier.
/// See the module docs.
pub struct ShardedTestbed {
    shards: Vec<Testbed>,
    stats: Vec<ShardStats>,
    workers: Vec<WorkerStats>,
    threads: usize,
    window: SimDuration,
    boundary_latency: SimDuration,
    /// Last committed window edge: every shard has run exactly to here.
    now: SimTime,
    windows: u64,
    exchanged: u64,
}

// The parallel executor moves whole shards across threads.
const fn assert_send<T: Send>() {}
const _: () = assert_send::<Testbed>();

/// Which shard a message is heading *to* on its current leg (responses
/// travel back to their issuer).
fn leg_dst(m: &RemoteMsg) -> usize {
    (if m.is_resp { m.src_shard } else { m.dst_shard }) as usize
}

/// Which shard a message is coming *from* on its current leg — the shard
/// whose gateway stamped `seq`, which makes `(leg_src, seq)` the total
/// order for mailbox drains.
fn leg_src(m: &RemoteMsg) -> u32 {
    if m.is_resp {
        m.dst_shard
    } else {
        m.src_shard
    }
}

impl ShardedTestbed {
    /// Build the fleet: partition the servers (see [`ShardPlan`]), build
    /// one right-sized [`Testbed`] per shard, and wire up replication.
    pub fn new(cfg: ShardedTestbedConfig) -> ShardedTestbed {
        let plan = ShardPlan::partition(
            &cfg.base.fabric,
            cfg.base.n_compute as u32,
            cfg.base.n_storage as u32,
            cfg.n_shards,
        );
        let n = plan.shards.len();
        let replicate = cfg.replication.filter(|_| n > 1);
        let min_peer_storages = plan.shards.iter().map(|s| s.storages).min().unwrap_or(0);

        let mut shards = Vec::with_capacity(n);
        let mut boundary_latency = SimDuration::ZERO;
        for (i, slice) in plan.shards.iter().enumerate() {
            let mut c = TestbedConfig::small(
                cfg.base.variant,
                slice.computes as usize,
                slice.storages as usize,
            );
            // Carry every model knob from the template; only the fabric
            // geometry is per-shard.
            c.compute_cores = cfg.base.compute_cores;
            c.routing_convergence = cfg.base.routing_convergence;
            c.vd_segments = cfg.base.vd_segments;
            c.qos = cfg.base.qos;
            c.ssd = cfg.base.ssd;
            c.bn = cfg.base.bn;
            c.solar = cfg.base.solar.clone();
            c.pcie = cfg.base.pcie;
            c.sa_enabled = cfg.base.sa_enabled;
            c.vds_per_compute = cfg.base.vds_per_compute;
            // Distinct workloads per shard; shard 0 keeps the template
            // seed so a 1-shard fleet replays the legacy testbed exactly.
            c.seed = cfg.base.seed.wrapping_add(i as u64);
            if replicate.is_some() {
                c.gateway = true;
                // The gateway needs a spare server slot.
                while fabric_slots(&c) <= c.n_compute + c.n_storage {
                    c.fabric.pods_per_dc += 1;
                }
            }
            boundary_latency = ShardPlan::boundary_latency_of(&c.fabric);
            let mut tb = Testbed::new(c);
            if let Some(r) = replicate {
                tb.enable_remote_replication(
                    r.start,
                    i as u32,
                    n as u32,
                    min_peer_storages,
                    r.interval,
                    r.blocks,
                );
            }
            shards.push(tb);
        }

        let window = cfg.window.unwrap_or(boundary_latency).min(boundary_latency);
        assert!(window > SimDuration::ZERO, "empty exchange window");
        let threads = cfg.threads.max(1);
        ShardedTestbed {
            stats: vec![ShardStats::default(); n],
            workers: vec![WorkerStats::default(); threads.min(n.max(1))],
            shards,
            threads,
            window,
            boundary_latency,
            now: SimTime::ZERO,
            windows: 0,
            exchanged: 0,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// One shard's testbed (workload attachment, incident scheduling,
    /// per-shard metrics).
    pub fn shard(&self, i: usize) -> &Testbed {
        &self.shards[i]
    }

    /// Mutable access to one shard's testbed.
    pub fn shard_mut(&mut self, i: usize) -> &mut Testbed {
        &mut self.shards[i]
    }

    /// Last committed window edge (every shard has run exactly to here).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The exchange window in use.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// The conservative window bound derived from the shard fabrics.
    pub fn boundary_latency(&self) -> SimDuration {
        self.boundary_latency
    }

    /// Per-shard execution statistics.
    pub fn shard_stats(&self) -> &[ShardStats] {
        &self.stats
    }

    /// Per-worker execution statistics (length = effective thread count).
    pub fn worker_stats(&self) -> &[WorkerStats] {
        &self.workers
    }

    /// Total cross-shard messages exchanged so far.
    pub fn exchanged(&self) -> u64 {
        self.exchanged
    }

    /// Windows executed so far.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Run every shard to `horizon` in lock-stepped exchange windows.
    pub fn run_until(&mut self, horizon: SimTime) {
        if self.threads <= 1 || self.shards.len() <= 1 {
            self.run_serial(horizon);
        } else {
            self.run_parallel(horizon);
        }
    }

    /// Total `(completed I/Os, completed bytes)` across the fleet.
    pub fn total_progress(&self) -> (u64, u64) {
        let mut ios = 0;
        let mut bytes = 0;
        for tb in &self.shards {
            for c in 0..tb.config().n_compute {
                let (i, b) = tb.compute_progress(c);
                ios += i;
                bytes += b;
            }
        }
        (ios, bytes)
    }

    /// Fleet-wide hung-VM count as of the committed edge (Fig. 8 metric).
    pub fn hung_vms(&self, threshold: SimDuration) -> usize {
        self.shards
            .iter()
            .map(|tb| tb.hung_vms_at(self.now, threshold))
            .sum()
    }

    /// Fleet-wide replication counters:
    /// `(issued, served, completed, rtt_ns_sum)`.
    pub fn replication_totals(&self) -> (u64, u64, u64, u64) {
        let mut t = (0, 0, 0, 0);
        for tb in &self.shards {
            let (i, s, c, r) = tb.replication_stats();
            t.0 += i;
            t.1 += s;
            t.2 += c;
            t.3 += r;
        }
        t
    }

    /// The fleet determinism digest: every shard's
    /// [`Testbed::metrics_digest`] (evaluated at the committed edge, so
    /// engines agree on the asof) plus the exchange totals. Byte-equal
    /// digests ⇔ byte-equal simulations; this is the N-thread ==
    /// 1-thread acceptance bar.
    pub fn metrics_digest(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for (i, tb) in self.shards.iter().enumerate() {
            let _ = writeln!(s, "[shard {i}] {}", tb.metrics_digest(self.now));
        }
        let _ = write!(
            s,
            "[fleet] windows={} exchanged={}",
            self.windows, self.exchanged
        );
        s
    }

    /// Merge every shard's journal into one, in shard order (shard 0's
    /// events first). Within a shard the order is the shard's own
    /// deterministic recording order, so the merge is reproducible.
    pub fn merged_journal(&self) -> Journal {
        let total: usize = self.shards.iter().map(|tb| tb.journal().len()).sum();
        let mut merged = Journal::with_capacity(total.max(1));
        for tb in &self.shards {
            for e in tb.journal().events() {
                merged.record(e.at, e.track, e.kind);
            }
        }
        merged
    }

    /// Serial reference executor: identical window/exchange sequence to
    /// the parallel path, one shard at a time in shard order.
    fn run_serial(&mut self, horizon: SimTime) {
        let n = self.shards.len();
        let mut staged: Vec<Vec<RemoteMsg>> = vec![Vec::new(); n];
        let t_worker = crate::wallclock::now();
        while self.now < horizon {
            let edge = (self.now + self.window).min(horizon);
            for (i, tb) in self.shards.iter_mut().enumerate() {
                let t0 = crate::wallclock::now();
                tb.run_until(edge);
                tb.advance_clock_to(edge);
                for m in tb.take_remote_outbox() {
                    self.stats[i].sent += 1;
                    staged[leg_dst(&m)].push(m);
                }
                self.stats[i].busy_ns += t0.elapsed().as_nanos() as u64;
            }
            for (i, inbox) in staged.iter_mut().enumerate() {
                inbox.sort_by_key(|m| (leg_src(m), m.seq));
                for m in inbox.drain(..) {
                    self.stats[i].received += 1;
                    self.exchanged += 1;
                    self.shards[i].inject_remote(m.depart + self.boundary_latency, m);
                }
            }
            self.now = edge;
            self.windows += 1;
            self.workers[0].windows += 1;
        }
        self.workers[0].busy_ns = self.stats.iter().map(|s| s.busy_ns).sum();
        self.workers[0].stall_ns =
            (t_worker.elapsed().as_nanos() as u64).saturating_sub(self.workers[0].busy_ns);
    }

    /// Parallel executor: persistent scoped workers, two barrier waits
    /// per window (window start / outboxes staged). Workers own disjoint
    /// shard sets; the staging mailboxes are the only shared state and
    /// every inbox is sorted before injection, so results are
    /// byte-identical to [`ShardedTestbed::run_serial`].
    fn run_parallel(&mut self, horizon: SimTime) {
        let n = self.shards.len();
        let k = self.threads.min(n);
        let lb = self.boundary_latency;
        let window = self.window;
        let start = self.now;

        let staging: Vec<Mutex<Vec<RemoteMsg>>> = (0..n).map(|_| Mutex::new(Vec::new())).collect();
        let barrier = Barrier::new(k + 1);
        // Next window edge in raw nanoseconds; u64::MAX = stop.
        let edge = AtomicU64::new(0);

        // Deal shards round-robin so a straggler pod doesn't serialize
        // one worker.
        let mut owned: Vec<Vec<(usize, Testbed, ShardStats)>> =
            (0..k).map(|_| Vec::new()).collect();
        for (i, tb) in self.shards.drain(..).enumerate() {
            owned[i % k].push((i, tb, self.stats[i]));
        }

        let mut finished: Vec<Vec<(usize, Testbed, ShardStats)>> = Vec::with_capacity(k);
        let mut worker_stats: Vec<(usize, WorkerStats)> = Vec::with_capacity(k);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(k);
            for (w, mut set) in owned.into_iter().enumerate() {
                let staging = &staging;
                let barrier = &barrier;
                let edge = &edge;
                handles.push(scope.spawn(move || {
                    let mut ws = WorkerStats::default();
                    loop {
                        let b0 = crate::wallclock::now();
                        barrier.wait(); // window start (edge published)
                        ws.stall_ns += b0.elapsed().as_nanos() as u64;
                        let e = edge.load(Ordering::Acquire);
                        if e == u64::MAX {
                            break;
                        }
                        let e = SimTime::from_nanos(e);
                        for (i, tb, st) in set.iter_mut() {
                            let t0 = crate::wallclock::now();
                            tb.run_until(e);
                            tb.advance_clock_to(e);
                            for m in tb.take_remote_outbox() {
                                st.sent += 1;
                                staging[leg_dst(&m)]
                                    .lock()
                                    .expect("staging mailbox poisoned")
                                    .push(m);
                            }
                            let d = t0.elapsed().as_nanos() as u64;
                            st.busy_ns += d;
                            ws.busy_ns += d;
                            let _ = i;
                        }
                        let b1 = crate::wallclock::now();
                        barrier.wait(); // all outboxes staged
                        ws.stall_ns += b1.elapsed().as_nanos() as u64;
                        for (i, tb, st) in set.iter_mut() {
                            let mut inbox = std::mem::take(
                                &mut *staging[*i].lock().expect("staging mailbox poisoned"),
                            );
                            // Simulation-defined total order: thread
                            // interleaving decided only the staging
                            // order, which dies here.
                            inbox.sort_by_key(|m| (leg_src(m), m.seq));
                            for m in inbox {
                                st.received += 1;
                                tb.inject_remote(m.depart + lb, m);
                            }
                        }
                        ws.windows += 1;
                    }
                    (w, set, ws)
                }));
            }

            let mut now = start;
            while now < horizon {
                let e = (now + window).min(horizon);
                edge.store(e.as_nanos(), Ordering::Release);
                barrier.wait(); // release workers into the window
                barrier.wait(); // staging complete; workers go on to inject
                now = e;
                self.windows += 1;
            }
            edge.store(u64::MAX, Ordering::Release);
            barrier.wait();
            self.now = now;
            for h in handles {
                let (w, set, ws) = h.join().expect("worker panicked");
                worker_stats.push((w, ws));
                finished.push(set);
            }
        });

        // Reassemble the fleet in shard order.
        let mut slots: Vec<Option<Testbed>> = (0..n).map(|_| None).collect();
        for set in finished {
            for (i, tb, st) in set {
                self.stats[i] = st;
                slots[i] = Some(tb);
            }
        }
        self.shards = slots
            .into_iter()
            .map(|s| s.expect("every shard returned"))
            .collect();
        self.workers = vec![WorkerStats::default(); k];
        for (w, ws) in worker_stats {
            self.workers[w] = ws;
        }
        // `received` accumulates across run_until calls, so this stays
        // consistent with the serial path's per-message increments.
        self.exchanged = self.stats.iter().map(|s| s.received).sum();
    }
}

/// Server slots a [`ClosConfig`](ebs_net::ClosConfig) provides.
fn fabric_slots(c: &TestbedConfig) -> usize {
    (c.fabric.dcs * c.fabric.pods_per_dc * c.fabric.tors_per_pod * c.fabric.servers_per_tor)
        as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FioConfig, Variant};
    use ebs_net::{DeviceKind, FailureMode};

    /// The 4-pod determinism fixture: fio load on every compute, one
    /// ToR blackhole incident per engine.
    fn load(tb: &mut Testbed) {
        for c in 0..tb.config().n_compute {
            tb.attach_fio(
                SimTime::from_millis(1),
                c,
                FioConfig {
                    depth: 2,
                    bytes: 4096,
                    read_fraction: 0.5,
                },
            );
        }
        let tor = tb.fabric().topology().devices_of_kind(DeviceKind::Tor)[0];
        tb.schedule_failure(
            SimTime::from_millis(5),
            tor,
            FailureMode::Blackhole {
                fraction: 0.5,
                salt: 7,
            },
        );
    }

    #[test]
    fn one_shard_fleet_replays_the_legacy_testbed_byte_for_byte() {
        let horizon = SimTime::from_millis(20);

        let mut legacy = Testbed::new(TestbedConfig::small(Variant::Solar, 8, 8));
        load(&mut legacy);
        legacy.run_until(horizon);

        let mut fleet = ShardedTestbed::new(ShardedTestbedConfig::new(Variant::Solar, 8, 8, 1));
        load(fleet.shard_mut(0));
        fleet.run_until(horizon);

        assert_eq!(
            legacy.metrics_digest(horizon),
            fleet.shard(0).metrics_digest(horizon),
            "windowed single-shard run must equal the one-shot legacy run"
        );
    }

    fn four_pod_fleet(threads: usize) -> ShardedTestbed {
        let mut cfg = ShardedTestbedConfig::new(Variant::Solar, 8, 8, 4);
        cfg.threads = threads;
        cfg.replication = Some(ReplicationConfig {
            start: SimTime::from_millis(1),
            interval: SimDuration::from_micros(200),
            blocks: 4,
        });
        let mut fleet = ShardedTestbed::new(cfg);
        for s in 0..fleet.shards() {
            load(fleet.shard_mut(s));
        }
        fleet.run_until(SimTime::from_millis(20));
        fleet
    }

    #[test]
    fn thread_counts_are_byte_identical() {
        let one = four_pod_fleet(1);
        assert!(
            one.exchanged() > 0,
            "fixture must exercise cross-shard traffic"
        );
        let (issued, served, completed, _) = one.replication_totals();
        assert!(
            issued > 0 && served > 0 && completed > 0,
            "full round trips"
        );
        let d1 = one.metrics_digest();
        for threads in [2, 4] {
            let dn = four_pod_fleet(threads).metrics_digest();
            assert_eq!(d1, dn, "{threads}-thread run diverged from serial");
        }
    }

    #[test]
    fn window_clamps_to_the_boundary_latency() {
        let mut cfg = ShardedTestbedConfig::new(Variant::Solar, 8, 8, 2);
        cfg.window = Some(SimDuration::from_secs(1)); // too wide: clamped
        let fleet = ShardedTestbed::new(cfg);
        assert_eq!(fleet.window(), fleet.boundary_latency());

        let mut cfg = ShardedTestbedConfig::new(Variant::Solar, 8, 8, 2);
        cfg.window = Some(SimDuration::from_micros(10)); // narrower is fine
        let fleet = ShardedTestbed::new(cfg);
        assert_eq!(fleet.window(), SimDuration::from_micros(10));
    }

    #[test]
    fn merged_journal_is_deterministic_across_thread_counts() {
        let a = four_pod_fleet(1);
        let b = four_pod_fleet(4);
        let ja: Vec<_> = a.merged_journal().events().copied().collect();
        let jb: Vec<_> = b.merged_journal().events().copied().collect();
        assert_eq!(ja, jb);
    }
}
