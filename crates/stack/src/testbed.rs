//! The composed end-to-end testbed.
//!
//! One [`Testbed`] is a simulated deployment: N compute servers and M
//! storage servers on a Clos fabric, running one of the five data-path
//! variants (kernel TCP, LUNA, RDMA, SOLAR*, SOLAR). Guest I/Os traverse
//! QoS → SA → PCIe → transport → fabric → block server → (BN + SSD) →
//! response → completion, with every stage charged against the calibrated
//! models and recorded in a distributed trace (Fig. 6 methodology).

use std::collections::BTreeMap;

use bytes::Bytes;
use ebs_luna::{RpcClient, RpcServer, StackCosts};
use ebs_net::{
    ClosConfig, DeviceId, Fabric, FabricConfig, FabricPacket, FailureMode, FlowLabel, NetEvent,
    Topology,
};
use ebs_rdma::{QpConfig, QpPacket, RdmaQp};
use ebs_sa::{split_io, IoKind, IoRequest, QosSpec, QosTable, SegmentTable, SubIo, BLOCK_SIZE};
use ebs_sim::{rng, EventQueue, FxHashMap, MapScheduler, SimDuration, SimTime};
use ebs_solar::{
    InPacket, OutPacket, ReadBlock, ServerAction, SolarClient, SolarConfig, SolarEvent,
    SolarResponder, WriteBlock,
};
use ebs_storage::{BnConfig, SsdConfig, StorageBreakdown, StorageServer};
use ebs_tcp::{Segment, TcpConfig};
use ebs_wire::{EbsHeader, IntStack, RpcFrame, RpcMethod};
use rand::rngs::SmallRng;
use rand::Rng;

use ebs_obs::{Journal, Metrics, Sample};

use crate::calibrate::{RdmaCosts, SaCosts, SolarCosts};
use crate::diag::IoExplanation;
use crate::trace::IoTrace;

pub mod blk;

/// The five FN data-path variants of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Kernel TCP + software SA.
    Kernel,
    /// LUNA user-space TCP + software SA.
    Luna,
    /// RDMA transport + software SA (Fig. 10b).
    Rdma,
    /// SOLAR protocol with data-plane offload disabled (§4.7's SOLAR*).
    SolarStar,
    /// Full SOLAR: one-block-one-packet, FPGA data path (Fig. 10c).
    Solar,
}

impl Variant {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Variant::Kernel => "Kernel",
            Variant::Luna => "Luna",
            Variant::Rdma => "RDMA",
            Variant::SolarStar => "Solar*",
            Variant::Solar => "Solar",
        }
    }

    /// PCIe traversal profile (Fig. 10).
    fn pcie_path(&self) -> ebs_dpu::DataPath {
        match self {
            Variant::Kernel | Variant::Luna => ebs_dpu::DataPath::Luna,
            Variant::Rdma => ebs_dpu::DataPath::Rdma,
            Variant::SolarStar => ebs_dpu::DataPath::SolarStar,
            Variant::Solar => ebs_dpu::DataPath::Solar,
        }
    }
}

/// Messages the fabric carries.
#[derive(Debug)]
pub enum Msg {
    /// TCP segment of a (compute, storage) connection.
    Tcp {
        /// Compute endpoint index.
        compute: u32,
        /// Storage endpoint index.
        storage: u32,
        /// The segment.
        seg: Segment,
    },
    /// RDMA RC packet of a (compute, storage) QP.
    Rdma {
        /// Compute endpoint index.
        compute: u32,
        /// Storage endpoint index.
        storage: u32,
        /// The packet.
        pkt: QpPacket,
    },
    /// SOLAR packet (either direction; header op disambiguates).
    Solar {
        /// Compute endpoint index.
        compute: u32,
        /// Storage endpoint index.
        storage: u32,
        /// The EBS header.
        hdr: EbsHeader,
        /// INT stack echoed in an ACK (as opposed to collected en route).
        echo_int: Option<IntStack>,
    },
    /// Cross-shard replication RPC (or its response): BN chunk
    /// replication between storage clusters in different shards. Within
    /// a shard it rides the local fabric between a storage server and
    /// the shard gateway; between shards the sharded executor carries it
    /// through deterministic mailboxes.
    Remote(RemoteMsg),
    /// Storage-function pushdown frame (request or response; a header
    /// flag disambiguates) between a block-frontend mount and a block
    /// server.
    Pushdown(blk::PushdownMsg),
}

/// A cross-shard storage-to-storage replication RPC. Plain data (`Copy`,
/// no payload handle) so it can cross thread boundaries in the sharded
/// executor's mailboxes.
#[derive(Debug, Clone, Copy)]
pub struct RemoteMsg {
    /// Shard that issued the RPC.
    pub src_shard: u32,
    /// Shard that serves it.
    pub dst_shard: u32,
    /// Issuing storage index within `src_shard`.
    pub src_storage: u32,
    /// Serving storage index within `dst_shard`.
    pub dst_storage: u32,
    /// Correlation id, unique within `src_shard`.
    pub rpc_id: u64,
    /// Blocks replicated (request payload size).
    pub blocks: u32,
    /// True for the response leg.
    pub is_resp: bool,
    /// Issue time at the source storage (for end-to-end RTT accounting;
    /// all shards share one simulated timebase).
    pub issued: SimTime,
    /// Time this leg reached its sending shard's gateway; the message
    /// lands in the destination shard at `depart + boundary_latency`.
    pub depart: SimTime,
    /// Outbox sequence within the source shard: with the shard id it
    /// totally orders every exchanged message, which fixes the mailbox
    /// drain order — and therefore event-queue tie-breaking — across
    /// any thread schedule.
    pub seq: u64,
}

/// Closed-loop fio-style driver configuration (Fig. 14/15, Table 2).
#[derive(Debug, Clone, Copy)]
pub struct FioConfig {
    /// Outstanding I/Os kept in flight.
    pub depth: usize,
    /// I/O size in bytes (4 KiB aligned).
    pub bytes: u32,
    /// Fraction of reads (1.0 = pure read).
    pub read_fraction: f64,
}

#[derive(Debug)]
struct FioState {
    cfg: FioConfig,
    rng: SmallRng,
    issued: u64,
}

/// Open-loop probe driver: a fixed-rate trickle of I/Os per compute
/// server (fleet runs model thousands of lightly-loaded VMs; a
/// closed-loop fio driver per VM would saturate every server).
#[derive(Debug)]
struct ProbeState {
    interval: SimDuration,
    bytes: u32,
    read_fraction: f64,
    rng: SmallRng,
}

/// Cross-shard replication engine state
/// (see [`Testbed::enable_remote_replication`]).
struct RemoteState {
    shard: u32,
    n_shards: u32,
    /// Storage servers per peer shard (uniform fleets only).
    peer_storages: u32,
    blocks: u32,
    interval: SimDuration,
    rng: SmallRng,
    next_rpc_id: u64,
    /// Outbox sequence counter; see [`RemoteMsg::seq`].
    next_seq: u64,
    /// Messages that reached the gateway this window, awaiting pickup by
    /// the sharded executor ([`Testbed::take_remote_outbox`]).
    outbox: Vec<RemoteMsg>,
    issued: u64,
    served: u64,
    completed: u64,
    rtt_ns_sum: u64,
}

/// Testbed configuration.
#[derive(Debug, Clone)]
pub struct TestbedConfig {
    /// Data-path variant under test.
    pub variant: Variant,
    /// Compute servers.
    pub n_compute: usize,
    /// Storage servers.
    pub n_storage: usize,
    /// DPU CPU cores available to the FN stack + SA on each compute
    /// server (Fig. 14 sweeps 1-3).
    pub compute_cores: usize,
    /// Fabric geometry.
    pub fabric: ClosConfig,
    /// Routing convergence delay after fail-stop.
    pub routing_convergence: SimDuration,
    /// RED/ECN marking at switch egress queues (off by default; the
    /// DCQCN arm of the CC matrix and the RDMA baseline turn it on).
    pub ecn: ebs_net::EcnConfig,
    /// Segments per virtual disk.
    pub vd_segments: u64,
    /// QoS spec per disk (use [`QosSpec::unlimited`] unless testing QoS).
    pub qos: QosSpec,
    /// SSD model.
    pub ssd: SsdConfig,
    /// Backend network model.
    pub bn: BnConfig,
    /// SOLAR transport parameters (including the congestion-control
    /// algorithm selection in [`SolarConfig::cc`]).
    pub solar: SolarConfig,
    /// RDMA queue-pair parameters for the RDMA baseline, including the
    /// optional DCQCN controller.
    pub rdma: QpConfig,
    /// Swap the LUNA TCP engine's Reno controller for Swift when set.
    pub tcp_swift: Option<ebs_cc::SwiftConfig>,
    /// DPU PCIe channel parameters (Fig. 10's internal bottleneck).
    pub pcie: ebs_dpu::PcieConfig,
    /// Run the storage-agent data plane (tables, CRC) on each I/O. The
    /// Table 1 methodology benchmarks the bare RPC path, so it disables
    /// this.
    pub sa_enabled: bool,
    /// Virtual disks provisioned per compute server (fleet runs model
    /// many VMs per server). Disk ids are `compute * vds_per_compute ..`;
    /// with the default of 1, vd id == compute index as before.
    pub vds_per_compute: u64,
    /// Reserve one spare server slot as the shard *gateway*: the
    /// boundary device cross-shard replication traffic enters and leaves
    /// through. Required by [`Testbed::enable_remote_replication`].
    pub gateway: bool,
    /// RNG seed.
    pub seed: u64,
}

impl TestbedConfig {
    /// A small default testbed for `variant`: fabric sized to fit the
    /// servers, generous VDs, no QoS throttling.
    pub fn small(variant: Variant, n_compute: usize, n_storage: usize) -> Self {
        let total = n_compute + n_storage;
        let servers_per_tor = 4;
        // Compute and storage clusters live in separate pods (Fig. 1), so
        // FN traffic genuinely crosses the spine/core tiers.
        let compute_tors = n_compute.div_ceil(servers_per_tor).max(2) as u32;
        let storage_tors = n_storage.div_ceil(servers_per_tor).max(2) as u32;
        let tors = compute_tors + storage_tors;
        let _ = total;
        let pods = tors.div_ceil(2).max(2);
        let mut fabric = ClosConfig::testbed(pods, 2, servers_per_tor as u32);
        // Production servers attach to a ToR *pair* (§3.3); SOLAR's
        // multipath needs that diversity to survive ToR-level failures.
        fabric.dual_homed = true;
        TestbedConfig {
            variant,
            n_compute,
            n_storage,
            compute_cores: 6,
            fabric,
            routing_convergence: SimDuration::from_secs(30),
            ecn: ebs_net::EcnConfig::default(),
            vd_segments: 16,
            qos: QosSpec::unlimited(),
            ssd: SsdConfig::default(),
            bn: BnConfig::default(),
            solar: SolarConfig::default(),
            rdma: QpConfig::default(),
            tcp_swift: None,
            pcie: ebs_dpu::PcieConfig::default(),
            sa_enabled: true,
            vds_per_compute: 1,
            gateway: false,
            seed: 1,
        }
    }
}

#[derive(Debug)]
enum ComputeTransport {
    // BTreeMaps: host pumps iterate the connections, and iteration order
    // must be deterministic for bit-identical replays.
    Tcp {
        costs: StackCosts,
        conns: BTreeMap<u32, RpcClient>,
    },
    Rdma {
        costs: RdmaCosts,
        conns: BTreeMap<u32, RdmaQp>,
    },
    Solar {
        clients: BTreeMap<u32, SolarClient>,
    },
}

#[derive(Debug)]
struct PendingIo {
    trace_idx: usize,
    subs_total: usize,
    subs_done: usize,
    sa_ready: SimTime,
    max_storage: StorageBreakdown,
    done_at: SimTime,
    /// Completion-side SA work (SOLAR's doorbell path), attributed to the
    /// SA component per §4.7.
    completion_sa: SimDuration,
    /// Whether this I/O came from the fio driver (closed-loop resubmit).
    from_fio: bool,
    subs: Vec<SubIo>,
}

struct ComputeNode {
    device: DeviceId,
    cpu: ebs_dpu::DpuCpu,
    pcie: ebs_dpu::DpuPcie,
    seg_table: SegmentTable,
    qos: QosTable,
    transport: ComputeTransport,
    pending: FxHashMap<u64, PendingIo>,
    rpc_to_io: FxHashMap<u64, (u64, u32)>,
    next_io_id: u64,
    next_rpc_id: u64,
    fio: Option<FioState>,
    probe: Option<ProbeState>,
    timer_at: Option<SimTime>,
    completed_ios: u64,
    completed_bytes: u64,
}

struct StorageNode {
    device: DeviceId,
    backend: StorageServer,
    tcp: BTreeMap<u32, RpcServer>,
    rdma: BTreeMap<u32, RdmaQp>,
    solar: BTreeMap<u32, SolarResponder>,
    timer_at: Option<SimTime>,
}

/// A reply the storage backend finished preparing.
#[derive(Debug)]
pub enum Reply {
    /// TCP response frame on a connection.
    Tcp {
        /// Compute peer.
        compute: u32,
        /// Response frame.
        frame: RpcFrame,
    },
    /// RDMA response message.
    Rdma {
        /// Compute peer.
        compute: u32,
        /// Encoded response frame.
        frame: RpcFrame,
    },
    /// SOLAR response packet.
    Solar {
        /// Compute peer.
        compute: u32,
        /// The packet to emit.
        out: OutPacket,
        /// INT echoed from the request.
        echo_int: Option<IntStack>,
        /// The request's UDP source port: replies return to it, so the
        /// reverse flow re-hashes whenever the client remaps a path.
        reply_port: u16,
    },
    /// Cross-shard replication response, ready to head back to the
    /// issuing shard through the gateway.
    Remote(RemoteMsg),
    /// Pushdown response, ready to head back to the issuing compute
    /// server with its result blocks.
    Pushdown(blk::PushdownMsg),
}

/// World events.
#[derive(Debug)]
pub enum Event {
    /// Fabric internals. Non-generic and 16 bytes: packets live in the
    /// fabric's arena and only a handle rides the queue.
    Net(NetEvent),
    /// A guest submits an I/O.
    Guest {
        /// Compute server index.
        compute: usize,
        /// The request.
        io: IoRequest,
        /// True when issued by the closed-loop fio driver (only such I/Os
        /// trigger a resubmission on completion).
        from_fio: bool,
    },
    /// SA processing (CPU + PCIe) finished; hand the I/O to the transport.
    SaDone {
        /// Compute server index.
        compute: usize,
        /// I/O id.
        io_id: u64,
    },
    /// Storage backend finished; emit the response.
    StorageDone {
        /// Storage server index.
        storage: usize,
        /// The prepared reply. Boxed deliberately: replies are orders of
        /// magnitude rarer than per-hop [`Event::Net`] events, and keeping
        /// the widest variant out of line keeps the whole `Event` enum —
        /// and thus every queue slab slot — small.
        reply: Box<Reply>,
    },
    /// Compute-side transport timer.
    ComputeTimer {
        /// Compute server index.
        compute: usize,
    },
    /// Storage-side transport timer.
    StorageTimer {
        /// Storage server index.
        storage: usize,
    },
    /// Inject a fabric failure.
    InjectFailure {
        /// Device to fail.
        device: DeviceId,
        /// Mode.
        mode: FailureMode,
        /// Routing-convergence override (None = fabric default).
        convergence: Option<SimDuration>,
    },
    /// Heal a fabric failure.
    Heal {
        /// Device to heal.
        device: DeviceId,
    },
    /// Replace a compute server's QoS spec for its own virtual disk
    /// (throttle injection; restore with [`QosSpec::unlimited`]).
    SetQos {
        /// Compute server index.
        compute: usize,
        /// New spec for vd `compute`.
        spec: QosSpec,
    },
    /// Degrade (or with factor 1.0, heal) a storage server's service time.
    DegradeStorage {
        /// Storage server index.
        storage: usize,
        /// Service-time multiplier (1.0 = healthy).
        factor: f64,
    },
    /// Stall (or with `SimDuration::ZERO`, heal) a compute server's DPU
    /// PCIe channels: every transfer pays the extra latency.
    StallPcie {
        /// Compute server index.
        compute: usize,
        /// Extra latency per transfer.
        extra: SimDuration,
    },
    /// Detach the closed-loop fio driver from a compute server: completed
    /// I/Os stop resubmitting, letting the testbed drain to quiescence.
    StopFio {
        /// Compute server index.
        compute: usize,
    },
    /// Open-loop probe driver tick: issue one I/O and rearm.
    ProbeTick {
        /// Compute server index.
        compute: usize,
    },
    /// Cross-shard replication tick on a storage server: issue one
    /// replication RPC toward a peer shard and rearm.
    ReplTick {
        /// Storage server index.
        storage: usize,
    },
    /// A guest submits a request on a block-frontend ring.
    BlkGuest {
        /// Compute server index.
        compute: usize,
        /// Queue index within the mount.
        queue: usize,
        /// The ring request.
        req: blk::BlkReq,
    },
    /// A locally-served block-frontend request (flush/discard) finished.
    BlkLocalDone {
        /// Compute server index.
        compute: usize,
        /// Queue index within the mount.
        queue: usize,
        /// Ring descriptor to complete.
        desc: u16,
        /// Completion status.
        status: u8,
        /// Completion byte count.
        len: u32,
        /// Index into the blk trace stream.
        trace_idx: usize,
    },
    /// Pushdown retransmit timer for one in-flight request id.
    BlkRetx {
        /// Issuing compute server index.
        compute: usize,
        /// Pushdown request id.
        req_id: u64,
    },
}

/// Wall-clock nanoseconds spent per simulation phase, collected when
/// [`Testbed::enable_profiling`] was called before the run. Accumulators
/// overlap deliberately: `deliver_ns` includes the pump work it triggers,
/// and `pump_ns` separately totals all pumping wherever it ran — the
/// breakdown is for *attribution*, not for summing to 100%.
#[derive(Debug, Default, Clone, Copy)]
pub struct PhaseCycles {
    /// Event-queue pop (incl. horizon peeking).
    pub pop_ns: u64,
    /// Fabric event handling: routing, queueing, serialization.
    pub net_ns: u64,
    /// Endpoint delivery: transport rx, request serving, completions.
    pub deliver_ns: u64,
    /// Transport pumping (poll_transmit / poll_timer scans), wherever
    /// it was triggered from.
    pub pump_ns: u64,
    /// Host-side events: guest submission, SA completion, storage done,
    /// transport timers.
    pub host_ns: u64,
    /// Events dispatched while profiling.
    pub events: u64,
}

/// What lives at a fabric device, if anything (switches carry no node).
#[derive(Clone, Copy)]
enum NodeSlot {
    None,
    Compute(u32),
    Storage(u32),
    /// The shard boundary: packets delivered here leave the shard.
    Gateway,
}

/// The composed world (see module docs).
pub struct Testbed {
    cfg: TestbedConfig,
    q: EventQueue<Event>,
    fabric: Fabric<Msg>,
    computes: Vec<ComputeNode>,
    storages: Vec<StorageNode>,
    /// Dense device → node map indexed by `DeviceId.0`; resolves each
    /// delivered packet's destination in one array load instead of two
    /// hash probes on the hottest testbed path.
    node_of_device: Vec<NodeSlot>,
    traces: Vec<IoTrace>,
    breakdowns: FxHashMap<(u32, u64), StorageBreakdown>,
    /// The shard boundary device, when `cfg.gateway` reserved one.
    gateway: Option<DeviceId>,
    /// Cross-shard replication engine, when enabled.
    remote: Option<Box<RemoteState>>,
    sa_costs: SaCosts,
    solar_costs: SolarCosts,
    /// Storage-side stack latency per served request (rx + tx crossings
    /// of whatever stack the storage servers run for this variant).
    server_stack_latency: SimDuration,
    /// Structured event journal: per-I/O component spans + transport
    /// instants. Empty (and free) when `ebs-obs/enabled` is off.
    journal: Journal,
    /// Metrics registry refreshed by [`Testbed::sample_obs`].
    metrics: Metrics,
    /// Phase-cycle accounting; `None` (the default) costs one branch per
    /// event.
    prof: Option<Box<PhaseCycles>>,
    /// Scratch for [`EventQueue::pop_batch`] in the run loop; reused so
    /// steady-state batching never allocates.
    batch: Vec<(SimTime, Event)>,
    /// Scratch buffers for the pump/drain hot paths, taken with
    /// `mem::take` and restored after use so per-event pumping never
    /// allocates. A re-entrant call just sees an empty fresh vec.
    out_compute: Vec<(FlowLabel, usize, Option<IntStack>, Msg)>,
    out_storage: Vec<(FlowLabel, usize, Msg)>,
    done_rpcs: Vec<(u64, SimTime)>,
    /// Block-frontend state, boxed and absent until the first
    /// [`Testbed::blk_mount`]; runs that never mount keep digests
    /// byte-identical with historical baselines.
    blk: Option<Box<blk::BlkState>>,
    /// Total bytes handed to the fabric (every transport, both
    /// directions) — the bytes-moved metric the pushdown placement
    /// bench compares.
    fabric_bytes: u64,
}

impl Testbed {
    /// Build a testbed.
    ///
    /// # Panics
    /// Panics if the fabric has fewer server slots than
    /// `n_compute + n_storage`.
    pub fn new(cfg: TestbedConfig) -> Self {
        let topo = Topology::build(cfg.fabric.clone());
        assert!(
            topo.servers().len() >= cfg.n_compute + cfg.n_storage,
            "fabric too small: {} slots for {} servers",
            topo.servers().len(),
            cfg.n_compute + cfg.n_storage
        );
        let fabric = Fabric::new(
            topo,
            FabricConfig {
                routing_convergence: cfg.routing_convergence,
                seed: cfg.seed,
                ecn: cfg.ecn,
            },
        );

        let mut node_of_device = vec![NodeSlot::None; fabric.topology().devices().len()];
        let mut computes = Vec::with_capacity(cfg.n_compute);
        for i in 0..cfg.n_compute {
            let device = fabric.topology().servers()[i];
            node_of_device[device.0 as usize] = NodeSlot::Compute(i as u32);
            let mut seg_table = SegmentTable::new(ebs_sa::SEGMENT_BLOCKS);
            let n_storage = cfg.n_storage as u64;
            let mut qos = QosTable::new();
            let vds = cfg.vds_per_compute.max(1);
            for v in 0..vds {
                let vd = i as u64 * vds + v;
                seg_table.provision(vd, cfg.vd_segments * ebs_sa::SEGMENT_BLOCKS, |seg| {
                    ((seg + i as u64 + v) % n_storage) as u32
                });
                qos.set_spec(vd, cfg.qos);
            }
            let transport = match cfg.variant {
                Variant::Kernel => ComputeTransport::Tcp {
                    costs: StackCosts::kernel(),
                    conns: BTreeMap::new(),
                },
                Variant::Luna => ComputeTransport::Tcp {
                    costs: StackCosts::luna(),
                    conns: BTreeMap::new(),
                },
                Variant::Rdma => ComputeTransport::Rdma {
                    costs: RdmaCosts::default_costs(),
                    conns: BTreeMap::new(),
                },
                // SOLAR* shares the transport; its extra per-block CPU and
                // PCIe crossings are charged by variant in `guest_io`.
                Variant::SolarStar | Variant::Solar => ComputeTransport::Solar {
                    clients: BTreeMap::new(),
                },
            };
            computes.push(ComputeNode {
                device,
                cpu: ebs_dpu::DpuCpu::new(cfg.compute_cores),
                pcie: ebs_dpu::DpuPcie::new(cfg.pcie),
                seg_table,
                qos,
                transport,
                pending: FxHashMap::default(),
                rpc_to_io: FxHashMap::default(),
                next_io_id: 1,
                next_rpc_id: 1,
                fio: None,
                probe: None,
                timer_at: None,
                completed_ios: 0,
                completed_bytes: 0,
            });
        }
        let n_slots = fabric.topology().servers().len();
        let gateway = if cfg.gateway {
            // The gateway takes the first spare slot after the compute
            // cluster; storage counts down from the end, so the slot is
            // free whenever the fabric has slack.
            assert!(
                n_slots > cfg.n_compute + cfg.n_storage,
                "no spare server slot for the shard gateway"
            );
            let device = fabric.topology().servers()[cfg.n_compute];
            node_of_device[device.0 as usize] = NodeSlot::Gateway;
            Some(device)
        } else {
            None
        };
        let mut storages = Vec::with_capacity(cfg.n_storage);
        for j in 0..cfg.n_storage {
            // Storage takes slots from the end of the fabric: with the
            // `small()` geometry that lands in different pods from the
            // compute servers.
            let device = fabric.topology().servers()[n_slots - cfg.n_storage + j];
            node_of_device[device.0 as usize] = NodeSlot::Storage(j as u32);
            storages.push(StorageNode {
                device,
                backend: StorageServer::new(j, cfg.ssd, cfg.bn, cfg.seed),
                tcp: BTreeMap::new(),
                rdma: BTreeMap::new(),
                solar: BTreeMap::new(),
                timer_at: None,
            });
        }
        let server_stack_latency = match cfg.variant {
            Variant::Kernel => StackCosts::kernel().crossing_latency * 2,
            Variant::Luna => StackCosts::luna().crossing_latency * 2,
            Variant::Rdma => RdmaCosts::default_costs().crossing_latency * 2,
            // Storage-side SOLAR is a thin user-space UDP responder.
            Variant::SolarStar | Variant::Solar => SimDuration::from_micros(1),
        };
        Testbed {
            sa_costs: SaCosts::software(),
            solar_costs: SolarCosts::offloaded(),
            server_stack_latency,
            cfg,
            q: EventQueue::new(),
            fabric,
            computes,
            storages,
            node_of_device,
            traces: Vec::new(),
            breakdowns: FxHashMap::default(),
            gateway,
            remote: None,
            journal: Journal::new(),
            metrics: Metrics::new(),
            prof: None,
            batch: Vec::with_capacity(64),
            out_compute: Vec::with_capacity(16),
            out_storage: Vec::with_capacity(16),
            done_rpcs: Vec::with_capacity(16),
            blk: None,
            fabric_bytes: 0,
        }
    }

    /// Turn on per-phase wall-clock accounting for subsequent
    /// [`Testbed::run_until`] calls (the experiments bench `--profile`
    /// flag). Adds measurement overhead; leave off for timed runs.
    pub fn enable_profiling(&mut self) {
        self.prof = Some(Box::default());
    }

    /// The phase breakdown collected so far (None unless
    /// [`Testbed::enable_profiling`] was called).
    pub fn phase_cycles(&self) -> Option<PhaseCycles> {
        self.prof.as_deref().copied()
    }

    /// The configuration.
    pub fn config(&self) -> &TestbedConfig {
        &self.cfg
    }

    /// The fabric (topology queries, drop stats).
    pub fn fabric(&self) -> &Fabric<Msg> {
        &self.fabric
    }

    /// All I/O traces so far.
    pub fn traces(&self) -> &[IoTrace] {
        &self.traces
    }

    /// The observability journal (empty when compiled out).
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// The metrics registry as of the last [`Testbed::sample_obs`].
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Refresh the metrics registry from every instrumented component.
    /// The registry is cleared first, so gauges/histograms reflect *now*
    /// and counters are totals-since-construction (the [`Sample`]
    /// convention); a no-op when observability is compiled out.
    pub fn sample_obs(&mut self) {
        if !ebs_obs::ENABLED {
            return;
        }
        let now = self.q.now();
        self.metrics.clear();
        self.fabric.sample_into(now, &mut self.metrics);
        for c in &self.computes {
            c.cpu.sample_into(now, &mut self.metrics);
            c.pcie.sample_into(now, &mut self.metrics);
            c.qos.sample_into(now, &mut self.metrics);
            match &c.transport {
                ComputeTransport::Tcp { conns, .. } => {
                    for conn in conns.values() {
                        conn.sample_into(now, &mut self.metrics);
                    }
                }
                ComputeTransport::Rdma { .. } => {}
                ComputeTransport::Solar { clients } => {
                    for client in clients.values() {
                        client.sample_into(now, &mut self.metrics);
                    }
                }
            }
        }
        for s in &self.storages {
            s.backend.sample_into(now, &mut self.metrics);
            for srv in s.tcp.values() {
                srv.sample_into(now, &mut self.metrics);
            }
        }
        self.metrics
            .counter_add("sim", "events_scheduled", self.q.events_scheduled());
        self.metrics
            .counter_add("sim", "events_processed", self.q.events_processed());
        self.metrics
            .gauge_set("sim", "queue_len", self.q.len() as f64);
        self.metrics
            .gauge_set("sim", "max_queued", self.q.max_queued() as f64);
        self.metrics
            .counter_add("obs", "journal_events", self.journal.len() as u64);
        self.metrics
            .counter_add("obs", "journal_dropped", self.journal.dropped());
        if let Some(p) = self.prof.as_deref() {
            self.metrics.counter_add("prof", "pop_ns", p.pop_ns);
            self.metrics.counter_add("prof", "net_ns", p.net_ns);
            self.metrics.counter_add("prof", "deliver_ns", p.deliver_ns);
            self.metrics.counter_add("prof", "pump_ns", p.pump_ns);
            self.metrics.counter_add("prof", "host_ns", p.host_ns);
            self.metrics.counter_add("prof", "events", p.events);
        }
    }

    /// Explain the slowest completed I/O recorded in the journal: its
    /// hop-by-hop component timeline (None when observability is off or
    /// nothing completed yet).
    pub fn explain_slowest_io(&self) -> Option<IoExplanation> {
        crate::diag::explain_slowest(&self.journal)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.q.now()
    }

    /// Completed I/Os and bytes on one compute server.
    pub fn compute_progress(&self, compute: usize) -> (u64, u64) {
        let c = &self.computes[compute];
        (c.completed_ios, c.completed_bytes)
    }

    /// (admitted, throttled) I/O counts of one compute server's QoS table
    /// (admission-conservation checks: every submitted I/O is admitted
    /// exactly once).
    pub fn qos_stats(&self, compute: usize) -> (u64, u64) {
        let c = &self.computes[compute];
        (c.qos.admitted_ios(), c.qos.throttled_ios())
    }

    /// Consumed DPU-CPU cores on one compute server (Table 1 metric).
    pub fn consumed_cores(&self, compute: usize) -> f64 {
        self.computes[compute].cpu.consumed_cores(self.q.now())
    }

    /// (jobs, busy time) of one compute server's CPU (diagnostics).
    pub fn cpu_stats(&self, compute: usize) -> (u64, SimDuration) {
        let c = &self.computes[compute];
        (c.cpu.jobs(), c.cpu.busy_time())
    }

    /// Total SOLAR retransmissions across this compute server's clients.
    pub fn solar_retransmits(&self, compute: usize) -> u64 {
        if let ComputeTransport::Solar { clients } = &self.computes[compute].transport {
            clients.values().map(|c| c.stats().retransmits).sum()
        } else {
            0
        }
    }

    /// Per-(peer, path) SOLAR diagnostics: (storage, path id, window,
    /// inflight, last utilization, srtt µs) plus client stats.
    pub fn solar_debug(&self, compute: usize) -> Vec<String> {
        let mut out = Vec::new();
        if let ComputeTransport::Solar { clients } = &self.computes[compute].transport {
            for (storage, client) in clients {
                out.push(format!(
                    "peer {} stats {:?} txq={} outstanding={}",
                    storage,
                    client.stats(),
                    client.debug_txq_len(),
                    client.outstanding_packets()
                ));
                for line in client.debug_outstanding() {
                    out.push(format!("  OUT {line}"));
                }
                for p in client.paths() {
                    out.push(format!(
                        "  peer {} path {} window={} inflight={} u={:.2} srtt={:?} up={} next_probe={:?} rto={}",
                        storage,
                        p.id(),
                        p.window(),
                        p.inflight_bytes(),
                        p.last_utilization(),
                        p.srtt(),
                        p.is_up(),
                        p.next_probe(),
                        p.rto(),
                    ));
                }
            }
        }
        out
    }

    /// Reset CPU/PCIe accounting on all compute servers (post-warm-up).
    pub fn reset_compute_stats(&mut self) {
        let now = self.q.now();
        for c in &mut self.computes {
            c.cpu.reset_stats(now);
            c.pcie.reset_stats(now);
        }
    }

    /// Schedule a guest I/O.
    pub fn schedule_io(&mut self, at: SimTime, compute: usize, io: IoRequest) {
        self.q.schedule_at(
            at,
            Event::Guest {
                compute,
                io,
                from_fio: false,
            },
        );
    }

    /// Attach a closed-loop fio driver to a compute server, starting at
    /// `start`.
    pub fn attach_fio(&mut self, start: SimTime, compute: usize, fio: FioConfig) {
        let mut state = FioState {
            cfg: fio,
            rng: rng::stream_indexed(self.cfg.seed, "fio", compute as u64),
            issued: 0,
        };
        let ios: Vec<IoRequest> = (0..fio.depth)
            .map(|_| next_fio_io(&mut state, compute, &self.cfg))
            .collect();
        self.computes[compute].fio = Some(state);
        for (k, io) in ios.into_iter().enumerate() {
            // Ramp the initial window over ~20us per I/O: real fio opens
            // its queue depth over many submission syscalls, not in one
            // zero-width burst.
            self.q.schedule_at(
                at_plus(start, k as u64 * 20_000),
                Event::Guest {
                    compute,
                    io,
                    from_fio: true,
                },
            );
        }
    }

    /// Attach an open-loop probe driver to a compute server: one I/O per
    /// `interval` (jittered ±50% from the probe's own RNG stream),
    /// spread across the server's virtual disks. Unlike fio, the rate is
    /// load-independent — the fleet-scale stand-in for thousands of
    /// lightly-loaded VMs whose hung-I/O detectors fire on a schedule.
    pub fn attach_probe(
        &mut self,
        start: SimTime,
        compute: usize,
        interval: SimDuration,
        bytes: u32,
        read_fraction: f64,
    ) {
        let mut rng = rng::stream_indexed(self.cfg.seed, "probe", compute as u64);
        let first = start + interval.mul_f64(rng.gen::<f64>());
        self.computes[compute].probe = Some(ProbeState {
            interval,
            bytes,
            read_fraction,
            rng,
        });
        self.q.schedule_at(first, Event::ProbeTick { compute });
    }

    /// Turn on cross-shard replication: every storage server issues one
    /// replication RPC per `interval` (jittered) toward a uniformly
    /// random storage server in a uniformly random *other* shard,
    /// leaving through the gateway. The sharded executor carries the
    /// RPCs between shards; requires `TestbedConfig::gateway`.
    pub fn enable_remote_replication(
        &mut self,
        start: SimTime,
        shard: u32,
        n_shards: u32,
        peer_storages: u32,
        interval: SimDuration,
        blocks: u32,
    ) {
        assert!(
            self.gateway.is_some(),
            "remote replication needs `TestbedConfig::gateway`"
        );
        let mut rng = rng::stream_indexed(self.cfg.seed, "remote", shard as u64);
        for storage in 0..self.storages.len() {
            let first = start + interval.mul_f64(rng.gen::<f64>());
            self.q.schedule_at(first, Event::ReplTick { storage });
        }
        self.remote = Some(Box::new(RemoteState {
            shard,
            n_shards,
            peer_storages,
            blocks,
            interval,
            rng,
            next_rpc_id: 1,
            next_seq: 0,
            outbox: Vec::new(),
            issued: 0,
            served: 0,
            completed: 0,
            rtt_ns_sum: 0,
        }));
    }

    /// Drain the messages that reached the gateway since the last call,
    /// in arrival order (each stamped with a dense `seq`). Called by the
    /// sharded executor at every window edge.
    pub fn take_remote_outbox(&mut self) -> Vec<RemoteMsg> {
        self.remote
            .as_deref_mut()
            .map_or_else(Vec::new, |r| std::mem::take(&mut r.outbox))
    }

    /// Inject a message from another shard: it materializes at this
    /// shard's gateway at `at` and rides the local fabric to its target
    /// storage server. `at` must be ≥ the local clock (the executor's
    /// window invariant guarantees this).
    pub fn inject_remote(&mut self, at: SimTime, msg: RemoteMsg) {
        let Some(gdev) = self.gateway else { return };
        let target = if msg.is_resp {
            msg.src_storage
        } else {
            msg.dst_storage
        } as usize;
        let Some(node) = self.storages.get(target) else {
            return;
        };
        let size = if msg.is_resp {
            128
        } else {
            msg.blocks as usize * BLOCK_SIZE as usize + 128
        };
        let flow = FlowLabel {
            src: gdev,
            dst: node.device,
            src_port: 9101,
            dst_port: 41_000 + (msg.rpc_id & 0x3FF) as u16,
            proto: 17,
        };
        let ev = self
            .fabric
            .arrive_event(gdev, FabricPacket::new(flow, size, None, Msg::Remote(msg)));
        self.q.schedule_at(at, Event::Net(ev));
    }

    /// Cross-shard replication counters:
    /// `(issued, served, completed, rtt_ns_sum)`.
    pub fn replication_stats(&self) -> (u64, u64, u64, u64) {
        self.remote.as_deref().map_or((0, 0, 0, 0), |r| {
            (r.issued, r.served, r.completed, r.rtt_ns_sum)
        })
    }

    /// Schedule a fabric failure injection.
    pub fn schedule_failure(&mut self, at: SimTime, device: DeviceId, mode: FailureMode) {
        self.q.schedule_at(
            at,
            Event::InjectFailure {
                device,
                mode,
                convergence: None,
            },
        );
    }

    /// Schedule a fail-stop whose routing convergence differs from the
    /// fabric default (fabric-internal link-down converges in tens of
    /// milliseconds; host-facing ToR loss takes tens of seconds).
    pub fn schedule_failure_with(
        &mut self,
        at: SimTime,
        device: DeviceId,
        mode: FailureMode,
        convergence: SimDuration,
    ) {
        self.q.schedule_at(
            at,
            Event::InjectFailure {
                device,
                mode,
                convergence: Some(convergence),
            },
        );
    }

    /// Schedule a heal.
    pub fn schedule_heal(&mut self, at: SimTime, device: DeviceId) {
        self.q.schedule_at(at, Event::Heal { device });
    }

    /// Schedule a QoS spec replacement on a compute server's virtual disk
    /// (throttle injection; schedule [`QosSpec::unlimited`] to restore).
    pub fn schedule_qos(&mut self, at: SimTime, compute: usize, spec: QosSpec) {
        self.q.schedule_at(at, Event::SetQos { compute, spec });
    }

    /// Schedule a storage-service slowdown (`factor` > 1.0) or its heal
    /// (`factor` = 1.0).
    pub fn schedule_storage_degrade(&mut self, at: SimTime, storage: usize, factor: f64) {
        self.q
            .schedule_at(at, Event::DegradeStorage { storage, factor });
    }

    /// Schedule a DPU PCIe stall (`extra` latency per transfer) or its
    /// heal (`SimDuration::ZERO`).
    pub fn schedule_pcie_stall(&mut self, at: SimTime, compute: usize, extra: SimDuration) {
        self.q.schedule_at(at, Event::StallPcie { compute, extra });
    }

    /// Schedule the detachment of every fio driver: from `at` on,
    /// completions stop resubmitting and the testbed drains toward
    /// quiescence (in-flight and already-queued I/Os still finish).
    pub fn schedule_stop_fio(&mut self, at: SimTime) {
        for compute in 0..self.computes.len() {
            self.q.schedule_at(at, Event::StopFio { compute });
        }
    }

    /// I/Os submitted but not yet completed across all compute servers.
    pub fn outstanding_ios(&self) -> usize {
        self.computes.iter().map(|c| c.pending.len()).sum()
    }

    /// Events currently queued in the simulator (quiescence diagnostics;
    /// an idle testbed holds only periodic timer/probe events).
    pub fn queue_len(&self) -> usize {
        self.q.len()
    }

    /// Run the world until `horizon` (inclusive of events at it).
    ///
    /// Events are drained in timestamp batches
    /// ([`EventQueue::pop_batch`]): all events sharing the current
    /// timestamp come out of the queue in one pass, then dispatch runs
    /// strictly in popped order. Dispatch order — and therefore every
    /// simulation result — is identical to the sequential peek/pop loop;
    /// only the queue bookkeeping is amortized. Same-timestamp events
    /// *spawned by* a dispatch form the next batch, exactly where
    /// sequential popping would have placed them.
    pub fn run_until(&mut self, horizon: SimTime) {
        if self.prof.is_some() {
            return self.run_until_profiled(horizon);
        }
        let mut batch = std::mem::take(&mut self.batch);
        while self.q.pop_batch(horizon, &mut batch) > 0 {
            for (now, ev) in batch.drain(..) {
                self.dispatch(now, ev);
            }
        }
        self.batch = batch;
    }

    /// [`Testbed::run_until`] with per-phase wall-clock attribution.
    fn run_until_profiled(&mut self, horizon: SimTime) {
        let mut batch = std::mem::take(&mut self.batch);
        loop {
            let t0 = crate::wallclock::now();
            let n = self.q.pop_batch(horizon, &mut batch);
            let t1 = crate::wallclock::now();
            if n == 0 {
                break;
            }
            // prof is Some on this path by construction
            let p = self.prof.as_mut().unwrap();
            p.events += n as u64;
            p.pop_ns += (t1 - t0).as_nanos() as u64;
            for (now, ev) in batch.drain(..) {
                let d0 = crate::wallclock::now();
                let is_net = matches!(ev, Event::Net(_));
                self.dispatch(now, ev);
                let d = d0.elapsed().as_nanos() as u64;
                // prof is Some on this path by construction
                let p = self.prof.as_mut().unwrap();
                if is_net {
                    p.net_ns += d;
                } else {
                    p.host_ns += d;
                }
            }
        }
        self.batch = batch;
    }

    /// I/Os that were unanswered for ≥ `threshold` as of `now` (Table 2's
    /// metric with threshold = 1 s).
    pub fn hung_ios(&self, threshold: SimDuration) -> usize {
        self.hung_ios_at(self.q.now(), threshold)
    }

    /// [`Testbed::hung_ios`] at an explicit instant (fleet shards can sit
    /// at different local clocks, so the caller picks the common asof).
    pub fn hung_ios_at(&self, asof: SimTime, threshold: SimDuration) -> usize {
        self.traces
            .iter()
            .filter(|t| t.hung(asof, threshold))
            .count()
    }

    /// Distinct compute servers (≈ VMs) with at least one I/O unanswered
    /// for ≥ `threshold` as of `asof` — the y-axis of the paper's Fig. 8
    /// per-incident curves.
    pub fn hung_vms_at(&self, asof: SimTime, threshold: SimDuration) -> usize {
        let mut hung = vec![false; self.computes.len()];
        for t in self.traces.iter().filter(|t| t.hung(asof, threshold)) {
            hung[t.compute] = true;
        }
        hung.iter().filter(|&&h| h).count()
    }

    /// Advance the simulated clock across an idle stretch without
    /// dispatching anything (debug-panics if an event before `t` is
    /// still pending). The sharded executor lines every shard up on a
    /// window edge with this.
    pub fn advance_clock_to(&mut self, t: SimTime) {
        self.q.advance_to(t);
    }

    /// Events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.q.events_processed()
    }

    /// A byte-exact digest of every simulation-visible outcome: event
    /// counts, fabric delivery/drop stats, per-compute progress and QoS
    /// hashes, trace checksums, replication counters and a journal hash.
    /// Two runs are *the same simulation* iff their digests are equal —
    /// this is the sharded engine's N-thread == 1-thread determinism
    /// bar. The evaluation instant is explicit because engines may park
    /// their final clocks differently (legacy run vs windowed run) while
    /// agreeing on every event.
    pub fn metrics_digest(&self, asof: SimTime) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = write!(
            s,
            "events={}/{}",
            self.q.events_processed(),
            self.q.events_scheduled()
        );
        let d = self.fabric.drops();
        let (rh, rm) = self.fabric.route_cache_stats();
        let _ = write!(
            s,
            " delivered={} drops={}/{}/{}/{}/{} routes={rh}/{rm}",
            self.fabric.delivered(),
            d.fail_stop,
            d.blackhole,
            d.random_loss,
            d.queue_overflow,
            d.no_route,
        );
        let mut ios = 0u64;
        let mut bytes = 0u64;
        let mut ch = Fnv::new();
        for c in &self.computes {
            ios += c.completed_ios;
            bytes += c.completed_bytes;
            ch.u64(c.completed_ios);
            ch.u64(c.completed_bytes);
            ch.u64(c.qos.admitted_ios());
            ch.u64(c.qos.throttled_ios());
        }
        let _ = write!(s, " ios={ios} bytes={bytes} chash={:016x}", ch.finish());
        let mut th = Fnv::new();
        let mut completed = 0u64;
        let mut lat_ns = 0u64;
        for t in &self.traces {
            th.u64(t.compute as u64);
            th.u64(u64::from(t.kind == IoKind::Write));
            th.u64(t.bytes as u64);
            th.u64(t.submitted.as_nanos());
            th.u64(match t.completed {
                Some(c) => c.as_nanos(),
                None => u64::MAX,
            });
            th.u64(t.qos_delay.as_nanos());
            th.u64(t.sa.as_nanos());
            th.u64(t.fn_.as_nanos());
            th.u64(t.bn.as_nanos());
            th.u64(t.ssd.as_nanos());
            if let Some(c) = t.completed {
                completed += 1;
                lat_ns += c.saturating_since(t.submitted).as_nanos();
            }
        }
        let _ = write!(
            s,
            " traces={completed}/{} lat_ns={lat_ns} thash={:016x} hung={}",
            self.traces.len(),
            th.finish(),
            self.hung_ios_at(asof, SimDuration::from_secs(1)),
        );
        if let Some(r) = self.remote.as_deref() {
            let _ = write!(
                s,
                " repl={}/{}/{} rtt_ns={} seq={}",
                r.issued, r.served, r.completed, r.rtt_ns_sum, r.next_seq
            );
        }
        let mut jh = Fnv::new();
        for e in self.journal.events() {
            jh.u64(e.at.as_nanos());
            jh.bytes(e.track.as_bytes());
            match e.kind {
                ebs_obs::EventKind::Span { name, id, dur } => {
                    jh.bytes(name.as_bytes());
                    jh.u64(id);
                    jh.u64(dur.as_nanos());
                }
                ebs_obs::EventKind::Instant { name, id, arg } => {
                    jh.bytes(name.as_bytes());
                    jh.u64(id);
                    jh.u64(arg);
                }
                ebs_obs::EventKind::Counter { name, value } => {
                    jh.bytes(name.as_bytes());
                    jh.u64(value as u64);
                }
            }
        }
        let _ = write!(
            s,
            " journal={}+{} jhash={:016x}",
            self.journal.len(),
            self.journal.dropped(),
            jh.finish()
        );
        self.blk_digest(&mut s);
        s
    }

    fn dispatch(&mut self, now: SimTime, ev: Event) {
        match ev {
            Event::Net(nev) => {
                let Testbed { q, fabric, .. } = self;
                let mut sched = MapScheduler::new(q, Event::Net);
                if let Some(pkt) = fabric.handle(now, nev, &mut sched) {
                    self.deliver(now, pkt);
                }
            }
            Event::Guest {
                compute,
                io,
                from_fio,
            } => {
                self.guest_io(now, compute, io, from_fio);
            }
            Event::SaDone { compute, io_id } => self.sa_done(now, compute, io_id),
            Event::StorageDone { storage, reply } => self.storage_done(now, storage, *reply),
            Event::ComputeTimer { compute } => {
                self.computes[compute].timer_at = None;
                self.fire_compute_timers(now, compute);
                self.pump_compute(now, compute);
            }
            Event::StorageTimer { storage } => {
                self.storages[storage].timer_at = None;
                self.fire_storage_timers(now, storage);
                self.pump_storage(now, storage);
            }
            Event::InjectFailure {
                device,
                mode,
                convergence,
            } => {
                let Testbed { q, fabric, .. } = self;
                let mut sched = MapScheduler::new(q, Event::Net);
                match convergence {
                    Some(c) => fabric.inject_failure_with(device, mode, c, &mut sched),
                    None => fabric.inject_failure(device, mode, &mut sched),
                }
            }
            Event::Heal { device } => self.fabric.heal(device),
            Event::SetQos { compute, spec } => {
                let vds = self.cfg.vds_per_compute.max(1);
                let qos = &mut self.computes[compute].qos;
                for v in 0..vds {
                    qos.set_spec(compute as u64 * vds + v, spec);
                }
            }
            Event::DegradeStorage { storage, factor } => {
                self.storages[storage].backend.set_degrade(factor);
            }
            Event::StallPcie { compute, extra } => {
                self.computes[compute].pcie.set_stall(extra);
            }
            Event::StopFio { compute } => {
                self.computes[compute].fio = None;
            }
            Event::ProbeTick { compute } => self.probe_tick(now, compute),
            Event::ReplTick { storage } => self.repl_tick(now, storage),
            Event::BlkGuest {
                compute,
                queue,
                req,
            } => self.blk_guest(now, compute, queue, req),
            Event::BlkLocalDone {
                compute,
                queue,
                desc,
                status,
                len,
                trace_idx,
            } => self.blk_local_done(now, compute, queue, desc, status, len, trace_idx),
            Event::BlkRetx { compute, req_id } => self.blk_retx(now, compute, req_id),
        }
    }

    // --- fleet drivers: probes & cross-shard replication -----------------

    fn probe_tick(&mut self, now: SimTime, compute: usize) {
        let vds = self.cfg.vds_per_compute.max(1);
        let vd_blocks = self.cfg.vd_segments * ebs_sa::SEGMENT_BLOCKS;
        let (io, next) = {
            let Some(p) = self.computes[compute].probe.as_mut() else {
                return;
            };
            let blocks = u64::from((p.bytes / BLOCK_SIZE).max(1));
            let max_start = vd_blocks.saturating_sub(blocks).max(1);
            let vd_id = if vds > 1 {
                compute as u64 * vds + p.rng.gen_range(0..vds)
            } else {
                compute as u64
            };
            let io = IoRequest {
                vd_id,
                kind: if p.rng.gen::<f64>() < p.read_fraction {
                    IoKind::Read
                } else {
                    IoKind::Write
                },
                offset: p.rng.gen_range(0..max_start) * BLOCK_SIZE as u64,
                len: p.bytes,
            };
            (io, now + p.interval.mul_f64(0.5 + p.rng.gen::<f64>()))
        };
        self.q.schedule_at(next, Event::ProbeTick { compute });
        self.guest_io(now, compute, io, false);
    }

    fn repl_tick(&mut self, now: SimTime, storage: usize) {
        let (send, next) = {
            let Some(r) = self.remote.as_deref_mut() else {
                return;
            };
            let mut send = None;
            if r.n_shards > 1 && r.peer_storages > 0 {
                // Uniform pick over the *other* shards.
                let mut dst_shard = r.rng.gen_range(0..r.n_shards - 1);
                if dst_shard >= r.shard {
                    dst_shard += 1;
                }
                let msg = RemoteMsg {
                    src_shard: r.shard,
                    dst_shard,
                    src_storage: storage as u32,
                    dst_storage: r.rng.gen_range(0..r.peer_storages),
                    rpc_id: r.next_rpc_id,
                    blocks: r.blocks,
                    is_resp: false,
                    issued: now,
                    depart: SimTime::ZERO,
                    seq: 0,
                };
                r.next_rpc_id += 1;
                r.issued += 1;
                send = Some(msg);
            }
            (send, now + r.interval.mul_f64(0.5 + r.rng.gen::<f64>()))
        };
        self.q.schedule_at(next, Event::ReplTick { storage });
        if let (Some(msg), Some(gdev)) = (send, self.gateway) {
            let sdev = self.storages[storage].device;
            let flow = FlowLabel {
                src: sdev,
                dst: gdev,
                src_port: 40_000 + (msg.rpc_id & 0x3FF) as u16,
                dst_port: 9100,
                proto: 17,
            };
            let size = msg.blocks as usize * BLOCK_SIZE as usize + 128;
            self.send_fabric(now, flow, size, None, Msg::Remote(msg));
        }
    }

    /// A packet reached the shard boundary: stamp it with the departure
    /// time and the next outbox sequence, then park it for the executor's
    /// window-edge exchange.
    fn gateway_rx(&mut self, now: SimTime, pkt: FabricPacket<Msg>) {
        if let (Msg::Remote(mut m), Some(r)) = (pkt.payload, self.remote.as_deref_mut()) {
            m.depart = now;
            m.seq = r.next_seq;
            r.next_seq += 1;
            r.outbox.push(m);
        }
    }

    // --- guest I/O entry -------------------------------------------------

    fn guest_io(&mut self, now: SimTime, compute: usize, io: IoRequest, from_fio: bool) -> u64 {
        let c = &mut self.computes[compute];
        let io_id = c.next_io_id;
        c.next_io_id += 1;
        let qos_delay = c.qos.admit(now, io.vd_id, io.len as usize);
        let start = now + qos_delay;

        let subs = match split_io(&c.seg_table, &io, BLOCK_SIZE) {
            Ok(s) => s,
            Err(e) => panic!("workload generated invalid I/O: {e}"),
        };
        let blocks = (io.len / BLOCK_SIZE) as usize;

        // SA processing: CPU work (+ pipeline for SOLAR) + PCIe crossings.
        // For the software SA, light-load latency exceeds the pure CPU
        // work (VM exits, notification waits); under saturation the CPU
        // queue dominates. Take the max of the two.
        let sa_fin = if !self.cfg.sa_enabled {
            // Bare-RPC benchmarking mode (Table 1): skip the SA data
            // plane, keep only a token submission cost.
            c.cpu.run(start, SimDuration::from_nanos(200))
        } else {
            match self.cfg.variant {
                Variant::Kernel | Variant::Luna | Variant::Rdma => c
                    .cpu
                    .run(start, self.sa_costs.cpu_for(blocks))
                    .max(start + self.sa_costs.latency_per_io),
                Variant::SolarStar => {
                    let extra = SolarCosts::star_extra_per_block().saturating_mul(blocks as u64);
                    c.cpu.run(
                        start,
                        self.solar_costs
                            .cpu_per_rpc
                            .saturating_mul(subs.len() as u64)
                            + extra,
                    ) + self.solar_costs.pipeline
                }
                Variant::Solar => {
                    c.cpu.run(
                        start,
                        self.solar_costs
                            .cpu_per_rpc
                            .saturating_mul(subs.len() as u64),
                    ) + self.solar_costs.pipeline
                }
            }
        };
        // Data crossings: writes move the payload before transmission.
        let ready = if io.kind == IoKind::Write {
            c.pcie
                .transfer_block(sa_fin, self.cfg.variant.pcie_path(), io.len as usize)
        } else {
            sa_fin
        };

        let trace_idx = self.traces.len();
        if ebs_obs::ENABLED {
            // arg encodes `bytes << 1 | is_write` (journal args are plain
            // u64s; the consumers in `diag` decode this).
            self.journal.instant(
                now,
                crate::diag::IO_TRACK,
                "submit",
                trace_idx as u64,
                ((io.len as u64) << 1) | u64::from(io.kind == IoKind::Write),
            );
        }
        self.traces.push(IoTrace {
            compute,
            kind: io.kind,
            bytes: io.len,
            submitted: now,
            completed: None,
            qos_delay,
            sa: ready.saturating_since(start),
            fn_: SimDuration::ZERO,
            bn: SimDuration::ZERO,
            ssd: SimDuration::ZERO,
        });
        c.pending.insert(
            io_id,
            PendingIo {
                trace_idx,
                subs_total: subs.len(),
                subs_done: 0,
                sa_ready: ready,
                max_storage: StorageBreakdown {
                    bn: SimDuration::ZERO,
                    ssd: SimDuration::ZERO,
                },
                done_at: SimTime::ZERO,
                completion_sa: SimDuration::ZERO,
                from_fio,
                subs,
            },
        );
        self.q.schedule_at(ready, Event::SaDone { compute, io_id });
        io_id
    }

    // --- transport submit ------------------------------------------------

    fn sa_done(&mut self, now: SimTime, compute: usize, io_id: u64) {
        let c = &mut self.computes[compute];
        let pending = c.pending.get_mut(&io_id).expect("pending io");
        let subs = std::mem::take(&mut pending.subs);
        let trace = &self.traces[pending.trace_idx];
        let kind = trace.kind;
        let vd_id = compute as u64;

        for sub in subs {
            let rpc_id = c.next_rpc_id;
            c.next_rpc_id += 1;
            c.rpc_to_io.insert(rpc_id, (io_id, sub.blocks.len() as u32));
            let storage = sub.block_server;
            match &mut c.transport {
                ComputeTransport::Tcp { costs, conns } => {
                    let conn = conns.entry(storage).or_insert_with(|| {
                        RpcClient::connect(TcpConfig {
                            iss: (compute as u32) << 8 | storage,
                            mss: 8960, // jumbo-capable NICs with TSO/GSO
                            swift: self.cfg.tcp_swift,
                            ..TcpConfig::default()
                        })
                    });
                    let bytes = sub.blocks.len() * BLOCK_SIZE as usize;
                    let frame = match kind {
                        IoKind::Write => RpcFrame {
                            rpc_id,
                            method: RpcMethod::Write,
                            vd_id,
                            offset: sub.blocks[0] * BLOCK_SIZE as u64,
                            len: bytes as u32,
                            // Shared zero region: the simulator only
                            // cares about payload *length*, so every frame
                            // views one immutable zero slab (no per-RPC
                            // allocation).
                            payload: ebs_wire::pool::zero_payload(bytes),
                        },
                        IoKind::Read => RpcFrame {
                            rpc_id,
                            method: RpcMethod::Read,
                            vd_id,
                            offset: sub.blocks[0] * BLOCK_SIZE as u64,
                            len: bytes as u32,
                            payload: Bytes::new(),
                        },
                    };
                    // Stack cost: CPU for the tx side plus crossing latency.
                    let cpu_cost = costs.cpu_for_rpc(bytes);
                    let t =
                        c.cpu.run(now, cpu_cost) + costs.crossing_latency.saturating_sub(cpu_cost);
                    // The engine is sans-io: submission is immediate; the
                    // latency shows up by delaying the pump via a timer.
                    conn.call(t.max(now), &frame);
                    bump_timer(
                        &mut c.timer_at,
                        &mut self.q,
                        t.max(now),
                        Event::ComputeTimer { compute },
                    );
                }
                ComputeTransport::Rdma { costs, conns } => {
                    let conn = conns
                        .entry(storage)
                        .or_insert_with(|| RdmaQp::new(self.cfg.rdma.clone()));
                    let bytes = sub.blocks.len() * BLOCK_SIZE as usize;
                    let frame = RpcFrame {
                        rpc_id,
                        method: if kind == IoKind::Write {
                            RpcMethod::Write
                        } else {
                            RpcMethod::Read
                        },
                        vd_id,
                        offset: sub.blocks[0] * BLOCK_SIZE as u64,
                        len: bytes as u32,
                        payload: if kind == IoKind::Write {
                            ebs_wire::pool::zero_payload(bytes)
                        } else {
                            Bytes::new()
                        },
                    };
                    let t = c.cpu.run(now, costs.cpu_per_rpc) + costs.crossing_latency;
                    conn.post_send(frame.to_bytes());
                    bump_timer(
                        &mut c.timer_at,
                        &mut self.q,
                        t.max(now),
                        Event::ComputeTimer { compute },
                    );
                }
                ComputeTransport::Solar { clients } => {
                    let client = clients
                        .entry(storage)
                        .or_insert_with(|| SolarClient::new(self.cfg.solar.clone()));
                    match kind {
                        IoKind::Write => {
                            let blocks = sub
                                .blocks
                                .iter()
                                .map(|&b| WriteBlock {
                                    block_addr: b,
                                    payload: Bytes::new(),
                                    crc: 0,
                                })
                                .collect();
                            client.submit_write(now, rpc_id, vd_id, sub.segment_id, blocks);
                        }
                        IoKind::Read => {
                            let blocks = sub
                                .blocks
                                .iter()
                                .map(|&b| ReadBlock {
                                    block_addr: b,
                                    guest_addr: b * BLOCK_SIZE as u64,
                                })
                                .collect();
                            client.submit_read(now, rpc_id, vd_id, sub.segment_id, blocks);
                        }
                    }
                }
            }
        }
        self.pump_compute(now, compute);
    }

    // --- delivery from the fabric ---------------------------------------

    fn deliver(&mut self, now: SimTime, pkt: FabricPacket<Msg>) {
        let t0 = self.prof.is_some().then(crate::wallclock::now);
        match self.node_of_device[pkt.flow.dst.0 as usize] {
            NodeSlot::Storage(s) => self.storage_rx(now, s as usize, pkt),
            NodeSlot::Compute(c) => self.compute_rx(now, c as usize, pkt),
            NodeSlot::Gateway => self.gateway_rx(now, pkt),
            NodeSlot::None => {}
        }
        if let (Some(t0), Some(p)) = (t0, self.prof.as_deref_mut()) {
            p.deliver_ns += t0.elapsed().as_nanos() as u64;
        }
    }

    fn storage_rx(&mut self, now: SimTime, storage: usize, pkt: FabricPacket<Msg>) {
        let int = pkt.int;
        match pkt.payload {
            Msg::Tcp { compute, seg, .. } => {
                let node = &mut self.storages[storage];
                let srv = node.tcp.entry(compute).or_insert_with(|| {
                    RpcServer::listen(TcpConfig {
                        iss: 0x8000_0000 | (compute << 8),
                        mss: 8960,
                        swift: self.cfg.tcp_swift,
                        ..TcpConfig::default()
                    })
                });
                srv.on_segment(now, seg);
                // Serve any complete requests.
                let mut jobs = Vec::new();
                while let Some(req) = srv.poll_request() {
                    jobs.push(req);
                }
                for req in jobs {
                    self.serve_request(now, storage, compute, req, RpcTransportKind::Tcp);
                }
                self.pump_storage(now, storage);
            }
            Msg::Rdma {
                compute,
                pkt: mut qpkt,
                ..
            } => {
                // A fabric ECN mark rides into the QP packet so the
                // responder echoes it on the ack (DCQCN's CNP role).
                qpkt.ecn |= pkt.ecn;
                let node = &mut self.storages[storage];
                let qp = node
                    .rdma
                    .entry(compute)
                    .or_insert_with(|| RdmaQp::new(self.cfg.rdma.clone()));
                qp.on_packet(now, qpkt);
                let mut jobs = Vec::new();
                while let Some(msg) = qp.poll_recv() {
                    let mut dec = ebs_wire::FrameDecoder::new();
                    dec.extend(&msg);
                    if let Ok(Some(frame)) = dec.next_frame() {
                        jobs.push(frame);
                    }
                }
                for req in jobs {
                    self.serve_request(now, storage, compute, req, RpcTransportKind::Rdma);
                }
                self.pump_storage(now, storage);
            }
            Msg::Solar {
                compute, mut hdr, ..
            } => {
                let reply_port = pkt.flow.src_port;
                // The responder copies the request header into its ack, so
                // stamping the fabric's ECN mark here makes the ack echo it
                // back to the sender's congestion controller.
                if pkt.ecn {
                    hdr.flags |= ebs_wire::FLAG_ECN_ECHO;
                }
                let (action, gap_nacks) = {
                    let node = &mut self.storages[storage];
                    let resp = node.solar.entry(compute).or_default();
                    let action = resp.on_packet(InPacket {
                        hdr,
                        payload: Bytes::new(),
                        int,
                    });
                    let mut nacks = Vec::new();
                    while let Some(n) = resp.poll_gap_nack() {
                        nacks.push(n);
                    }
                    (action, nacks)
                };
                // Gap reports go straight back (tiny control packets).
                for n in gap_nacks {
                    self.q.schedule_at(
                        now,
                        Event::StorageDone {
                            storage,
                            reply: Box::new(Reply::Solar {
                                compute,
                                out: n,
                                echo_int: None,
                                reply_port,
                            }),
                        },
                    );
                }
                match action {
                    ServerAction::StoreBlock { hdr, int, .. } => {
                        let (done, bd) = self.storages[storage].backend.write(now, 1);
                        self.merge_breakdown(compute, hdr.rpc_id, bd);
                        let (ack, echo) = self.storages[storage]
                            .solar
                            .get_mut(&compute)
                            .expect("responder exists")
                            .write_ack(&hdr, int);
                        self.q.schedule_at(
                            done + self.server_stack_latency,
                            Event::StorageDone {
                                storage,
                                reply: Box::new(Reply::Solar {
                                    compute,
                                    out: ack,
                                    echo_int: echo,
                                    reply_port,
                                }),
                            },
                        );
                    }
                    ServerAction::FetchBlock { hdr } => {
                        let (done, bd) = self.storages[storage].backend.read(now, 1);
                        self.merge_breakdown(compute, hdr.rpc_id, bd);
                        let out = self.storages[storage]
                            .solar
                            .get_mut(&compute)
                            .expect("responder exists")
                            .read_resp(&hdr, Bytes::new(), 0);
                        self.q.schedule_at(
                            done + self.server_stack_latency,
                            Event::StorageDone {
                                storage,
                                reply: Box::new(Reply::Solar {
                                    compute,
                                    out,
                                    echo_int: None,
                                    reply_port,
                                }),
                            },
                        );
                    }
                    ServerAction::Reply(out) => {
                        self.q.schedule_at(
                            now,
                            Event::StorageDone {
                                storage,
                                reply: Box::new(Reply::Solar {
                                    compute,
                                    out,
                                    echo_int: None,
                                    reply_port,
                                }),
                            },
                        );
                    }
                    ServerAction::None => {}
                }
            }
            Msg::Remote(m) => {
                if m.is_resp {
                    // Round trip complete at the issuing storage server.
                    if let Some(r) = self.remote.as_deref_mut() {
                        r.completed += 1;
                        r.rtt_ns_sum += now.saturating_since(m.issued).as_nanos();
                    }
                } else {
                    // Serve the replica write on the local backend, then
                    // acknowledge toward the issuing shard.
                    let (done, _bd) = self.storages[storage]
                        .backend
                        .write(now, m.blocks.max(1) as usize);
                    if let Some(r) = self.remote.as_deref_mut() {
                        r.served += 1;
                    }
                    let resp = RemoteMsg { is_resp: true, ..m };
                    self.q.schedule_at(
                        done + self.server_stack_latency,
                        Event::StorageDone {
                            storage,
                            reply: Box::new(Reply::Remote(resp)),
                        },
                    );
                }
            }
            Msg::Pushdown(m) => self.blk_pushdown_storage(now, storage, m),
        }
    }

    fn merge_breakdown(&mut self, compute: u32, rpc_id: u64, bd: StorageBreakdown) {
        let e = self
            .breakdowns
            .entry((compute, rpc_id))
            .or_insert(StorageBreakdown {
                bn: SimDuration::ZERO,
                ssd: SimDuration::ZERO,
            });
        e.bn = e.bn.max(bd.bn);
        e.ssd = e.ssd.max(bd.ssd);
    }

    fn serve_request(
        &mut self,
        now: SimTime,
        storage: usize,
        compute: u32,
        req: RpcFrame,
        kind: RpcTransportKind,
    ) {
        let node = &mut self.storages[storage];
        let blocks = (req.len / BLOCK_SIZE).max(1) as usize;
        let (done, bd, resp) = match req.method {
            RpcMethod::Write => {
                let (done, bd) = node.backend.write(now, blocks);
                (
                    done,
                    bd,
                    RpcFrame {
                        rpc_id: req.rpc_id,
                        method: RpcMethod::WriteResp,
                        vd_id: req.vd_id,
                        offset: req.offset,
                        len: 0,
                        payload: Bytes::new(),
                    },
                )
            }
            RpcMethod::Read => {
                let (done, bd) = node.backend.read(now, blocks);
                (
                    done,
                    bd,
                    RpcFrame {
                        rpc_id: req.rpc_id,
                        method: RpcMethod::ReadResp,
                        vd_id: req.vd_id,
                        offset: req.offset,
                        len: req.len,
                        payload: ebs_wire::pool::zero_payload(req.len as usize),
                    },
                )
            }
            _ => return, // responses never arrive at the server
        };
        self.merge_breakdown(compute, req.rpc_id, bd);
        let reply = match kind {
            RpcTransportKind::Tcp => Reply::Tcp {
                compute,
                frame: resp,
            },
            RpcTransportKind::Rdma => Reply::Rdma {
                compute,
                frame: resp,
            },
        };
        // Storage-side stack crossings (rx of the request + tx of the
        // response) — half of Table 1's four per-RPC crossings.
        self.q.schedule_at(
            done + self.server_stack_latency,
            Event::StorageDone {
                storage,
                reply: Box::new(reply),
            },
        );
    }

    fn storage_done(&mut self, now: SimTime, storage: usize, reply: Reply) {
        match reply {
            Reply::Tcp { compute, frame } => {
                if let Some(srv) = self.storages[storage].tcp.get_mut(&compute) {
                    srv.respond(&frame);
                }
                self.pump_storage(now, storage);
            }
            Reply::Rdma { compute, frame } => {
                if let Some(qp) = self.storages[storage].rdma.get_mut(&compute) {
                    qp.post_send(frame.to_bytes());
                }
                self.pump_storage(now, storage);
            }
            Reply::Solar {
                compute,
                out,
                echo_int,
                reply_port,
            } => {
                let is_data = out.hdr.op == ebs_wire::EbsOp::ReadResp;
                let size = if is_data {
                    ebs_wire::SOLAR_OVERHEAD + out.hdr.len as usize
                } else {
                    ebs_wire::SOLAR_OVERHEAD + echo_int.as_ref().map_or(0, |i| i.wire_len())
                };
                let hdr = out.hdr;
                let sdev = self.storages[storage].device;
                let cdev = self.computes[compute as usize].device;
                self.send_fabric(
                    now,
                    FlowLabel {
                        src: sdev,
                        dst: cdev,
                        src_port: out.src_port,
                        // Replies return to the request's source port, so
                        // the reverse flow re-hashes with path remapping.
                        dst_port: reply_port,
                        proto: 17,
                    },
                    size,
                    // Read responses collect fresh INT on the reverse path.
                    is_data.then(IntStack::with_path_capacity),
                    Msg::Solar {
                        compute,
                        storage: storage as u32,
                        hdr,
                        echo_int,
                    },
                );
            }
            Reply::Remote(m) => {
                // The ack heads back to the issuing shard via the gateway.
                if let Some(gdev) = self.gateway {
                    let sdev = self.storages[storage].device;
                    let flow = FlowLabel {
                        src: sdev,
                        dst: gdev,
                        src_port: 9102,
                        dst_port: 42_000 + (m.rpc_id & 0x3FF) as u16,
                        proto: 17,
                    };
                    self.send_fabric(now, flow, 128, None, Msg::Remote(m));
                }
            }
            Reply::Pushdown(m) => self.blk_pushdown_reply(now, storage, m),
        }
    }

    fn compute_rx(&mut self, now: SimTime, compute: usize, pkt: FabricPacket<Msg>) {
        let collected_int = pkt.int;
        match pkt.payload {
            Msg::Tcp { storage, seg, .. } => {
                let c = &mut self.computes[compute];
                if let ComputeTransport::Tcp { conns, .. } = &mut c.transport {
                    if let Some(conn) = conns.get_mut(&storage) {
                        conn.on_segment(now, seg);
                    }
                }
                self.drain_completions(now, compute);
                self.pump_compute(now, compute);
            }
            Msg::Rdma {
                storage,
                pkt: mut qpkt,
                ..
            } => {
                qpkt.ecn |= pkt.ecn;
                let c = &mut self.computes[compute];
                if let ComputeTransport::Rdma { conns, .. } = &mut c.transport {
                    if let Some(qp) = conns.get_mut(&storage) {
                        qp.on_packet(now, qpkt);
                    }
                }
                self.drain_completions(now, compute);
                self.pump_compute(now, compute);
            }
            Msg::Solar {
                mut hdr,
                echo_int,
                storage,
                ..
            } => {
                // Marks applied on the reverse path (ack/read-response
                // direction) also reach the client's controller.
                if pkt.ecn {
                    hdr.flags |= ebs_wire::FLAG_ECN_ECHO;
                }
                let c = &mut self.computes[compute];
                if let ComputeTransport::Solar { clients, .. } = &mut c.transport {
                    if let Some(client) = clients.get_mut(&storage) {
                        let int = echo_int.or(collected_int);
                        // Read data DMAs into guest memory via host PCIe.
                        let at = if hdr.op == ebs_wire::EbsOp::ReadResp {
                            c.pcie.transfer_block(
                                now + self.solar_costs.pipeline,
                                self.cfg.variant.pcie_path(),
                                hdr.len as usize,
                            )
                        } else {
                            now
                        };
                        client.on_packet(
                            at.max(now),
                            InPacket {
                                hdr,
                                payload: Bytes::new(),
                                int,
                            },
                        );
                    }
                }
                self.drain_completions(now, compute);
                self.pump_compute(now, compute);
            }
            // Replication traffic never targets compute servers.
            Msg::Remote(_) => {}
            Msg::Pushdown(m) => self.blk_pushdown_compute(now, compute, m),
        }
    }

    // --- completion plumbing ---------------------------------------------

    fn drain_completions(&mut self, now: SimTime, compute: usize) {
        let mut done_rpcs = std::mem::take(&mut self.done_rpcs);
        {
            let Testbed {
                computes,
                journal,
                cfg,
                solar_costs,
                ..
            } = self;
            let c = &mut computes[compute];
            match &mut c.transport {
                ComputeTransport::Tcp { costs, conns } => {
                    let crossing = costs.crossing_latency;
                    let cpu_cost = costs.cpu_per_rpc;
                    let path = cfg.variant.pcie_path();
                    for conn in conns.values_mut() {
                        while let Some(done) = conn.poll_completion() {
                            let mut t =
                                c.cpu.run(now, cpu_cost) + crossing.saturating_sub(cpu_cost);
                            // Read data crosses the DPU's PCIe on its way
                            // to guest memory (Fig. 10a).
                            let bytes = done.response.payload.len();
                            if bytes > 0 {
                                t = t.max(c.pcie.transfer_block(now, path, bytes));
                            }
                            done_rpcs.push((done.rpc_id, t.max(now)));
                        }
                    }
                }
                ComputeTransport::Rdma { costs, conns } => {
                    let path = cfg.variant.pcie_path();
                    for qp in conns.values_mut() {
                        while let Some(msg) = qp.poll_recv() {
                            let mut dec = ebs_wire::FrameDecoder::new();
                            dec.extend(&msg);
                            if let Ok(Some(frame)) = dec.next_frame() {
                                let mut t =
                                    c.cpu.run(now, costs.cpu_per_rpc) + costs.crossing_latency;
                                let bytes = frame.payload.len();
                                if bytes > 0 {
                                    t = t.max(c.pcie.transfer_block(now, path, bytes));
                                }
                                done_rpcs.push((frame.rpc_id, t.max(now)));
                            }
                        }
                    }
                }
                ComputeTransport::Solar { clients, .. } => {
                    let doorbell = solar_costs.cpu_doorbell;
                    let cc_completion = solar_costs.cpu_cc_per_completion;
                    let cc_ack = solar_costs.cpu_cc_per_ack;
                    let rpc_blocks = &c.rpc_to_io;
                    let mut jobs: Vec<(u64, u32)> = Vec::new();
                    for client in clients.values_mut() {
                        while let Some(ev) = client.poll_event() {
                            match ev {
                                SolarEvent::RpcCompleted { rpc_id, .. } => {
                                    let blocks = rpc_blocks.get(&rpc_id).map_or(1, |&(_, b)| b);
                                    jobs.push((rpc_id, blocks));
                                }
                                SolarEvent::RpcFailed { rpc_id } => {
                                    // Leave the I/O incomplete: it will show
                                    // up as a hang, like production.
                                    journal.instant(now, "solar", "rpc_failed", rpc_id, 0);
                                }
                                SolarEvent::PathDown { path_id } => {
                                    journal.instant(
                                        now,
                                        "solar",
                                        "path_down",
                                        u64::from(path_id),
                                        0,
                                    );
                                }
                                SolarEvent::PathUp { path_id } => {
                                    journal.instant(now, "solar", "path_up", u64::from(path_id), 0);
                                }
                                _ => {}
                            }
                        }
                    }
                    for (rpc_id, blocks) in jobs {
                        // Only the integrity check + doorbell gates the
                        // I/O; the Path&CC bookkeeping runs after the
                        // doorbell but still occupies the cores — which
                        // is exactly how §4.7's SA tail arises under
                        // intensive I/O: CC backlog delays doorbells.
                        let t = c.cpu.run(now, doorbell);
                        c.cpu
                            .run(now, cc_completion + cc_ack.saturating_mul(blocks as u64));
                        done_rpcs.push((rpc_id, t.max(now)));
                    }
                }
            }
        }
        let is_solar = matches!(self.cfg.variant, Variant::Solar | Variant::SolarStar);
        for (rpc_id, t_done) in done_rpcs.drain(..) {
            let overhead = if is_solar {
                t_done.saturating_since(now)
            } else {
                SimDuration::ZERO
            };
            self.finish_rpc(compute, rpc_id, t_done, overhead);
        }
        self.done_rpcs = done_rpcs;
    }

    fn finish_rpc(
        &mut self,
        compute: usize,
        rpc_id: u64,
        t_done: SimTime,
        completion_sa: SimDuration,
    ) {
        let c = &mut self.computes[compute];
        let Some((io_id, _blocks)) = c.rpc_to_io.remove(&rpc_id) else {
            return;
        };
        let bd = self
            .breakdowns
            .remove(&(compute as u32, rpc_id))
            .unwrap_or(StorageBreakdown {
                bn: SimDuration::ZERO,
                ssd: SimDuration::ZERO,
            });
        let Some(p) = c.pending.get_mut(&io_id) else {
            return;
        };
        p.subs_done += 1;
        p.done_at = p.done_at.max(t_done);
        p.completion_sa = p.completion_sa.max(completion_sa);
        p.max_storage.bn = p.max_storage.bn.max(bd.bn);
        p.max_storage.ssd = p.max_storage.ssd.max(bd.ssd);
        if p.subs_done == p.subs_total {
            let p = c.pending.remove(&io_id).expect("present");
            let trace = &mut self.traces[p.trace_idx];
            trace.completed = Some(p.done_at);
            let transport_total = p.done_at.saturating_since(p.sa_ready);
            let completion_sa = p.completion_sa.min(transport_total);
            trace.sa += completion_sa;
            let transport_total = transport_total.saturating_sub(completion_sa);
            trace.bn = p.max_storage.bn.min(transport_total);
            trace.ssd = p
                .max_storage
                .ssd
                .min(transport_total.saturating_sub(trace.bn));
            trace.fn_ = transport_total
                .saturating_sub(trace.bn)
                .saturating_sub(trace.ssd);
            if ebs_obs::ENABLED {
                // Tile the I/O's interval with its component spans, in the
                // same attribution order the stacked bars use (QoS → SA →
                // FN → BN → SSD → completion-side SA). Durations match the
                // IoTrace fields exactly, so `Breakdown::from_journal`
                // reproduces `Breakdown::collect` bit for bit.
                let id = p.trace_idx as u64;
                let name = match trace.kind {
                    IoKind::Write => "write",
                    IoKind::Read => "read",
                };
                let start = trace.submitted + trace.qos_delay;
                if trace.qos_delay > SimDuration::ZERO {
                    self.journal
                        .span("sa.qos", name, id, trace.submitted, start);
                }
                self.journal.span("sa", name, id, start, p.sa_ready);
                let t1 = p.sa_ready + trace.fn_;
                let t2 = t1 + trace.bn;
                let t3 = t2 + trace.ssd;
                self.journal.span("fn", name, id, p.sa_ready, t1);
                self.journal.span("bn", name, id, t1, t2);
                self.journal.span("ssd", name, id, t2, t3);
                if p.done_at > t3 {
                    // Completion-side SA work (SOLAR's doorbell path).
                    self.journal.span("sa", name, id, t3, p.done_at);
                }
                self.journal
                    .span(crate::diag::IO_TRACK, name, id, start, p.done_at);
            }
            c.completed_ios += 1;
            c.completed_bytes += trace.bytes as u64;
            // Closed loop: only fio-originated completions resubmit, so
            // externally scheduled probe I/Os don't inflate the depth.
            if p.from_fio {
                if let Some(fio) = &mut c.fio {
                    let io = next_fio_io(fio, compute, &self.cfg);
                    self.q.schedule_at(
                        p.done_at,
                        Event::Guest {
                            compute,
                            io,
                            from_fio: true,
                        },
                    );
                }
            }
            // If the block frontend issued this I/O, complete its ring
            // descriptor too.
            self.blk_on_guest_io_done(compute, io_id, p.done_at);
        }
    }

    // --- pumping & timers --------------------------------------------------

    fn fire_compute_timers(&mut self, now: SimTime, compute: usize) {
        let c = &mut self.computes[compute];
        match &mut c.transport {
            ComputeTransport::Tcp { conns, .. } => {
                for conn in conns.values_mut() {
                    if matches!(conn.poll_timer(), Some(t) if t <= now) {
                        conn.on_timer(now);
                    }
                }
            }
            ComputeTransport::Rdma { conns, .. } => {
                for qp in conns.values_mut() {
                    if matches!(qp.poll_timer(), Some(t) if t <= now) {
                        qp.on_timer(now);
                    }
                }
            }
            ComputeTransport::Solar { clients, .. } => {
                for client in clients.values_mut() {
                    if matches!(client.poll_timer(), Some(t) if t <= now) {
                        client.on_timer(now);
                    }
                }
            }
        }
        self.drain_completions(now, compute);
    }

    fn fire_storage_timers(&mut self, now: SimTime, storage: usize) {
        let node = &mut self.storages[storage];
        for srv in node.tcp.values_mut() {
            if matches!(srv.poll_timer(), Some(t) if t <= now) {
                srv.on_timer(now);
            }
        }
        for qp in node.rdma.values_mut() {
            if matches!(qp.poll_timer(), Some(t) if t <= now) {
                qp.on_timer(now);
            }
        }
    }

    fn pump_compute(&mut self, now: SimTime, compute: usize) {
        let prof_t0 = self.prof.is_some().then(crate::wallclock::now);
        // Collect outgoing packets first (borrow of computes), then send.
        let mut outgoing = std::mem::take(&mut self.out_compute);
        let mut min_timer: Option<SimTime> = None;
        {
            let c = &mut self.computes[compute];
            let cdev = c.device;
            match &mut c.transport {
                ComputeTransport::Tcp { conns, .. } => {
                    for (&storage, conn) in conns.iter_mut() {
                        let sdev = self.storages[storage as usize].device;
                        while let Some(seg) = conn.poll_segment(now) {
                            let size = seg.wire_size();
                            outgoing.push((
                                FlowLabel {
                                    src: cdev,
                                    dst: sdev,
                                    src_port: 10_000 + storage as u16,
                                    dst_port: 7000,
                                    proto: 6,
                                },
                                size,
                                None,
                                Msg::Tcp {
                                    compute: compute as u32,
                                    storage,
                                    seg,
                                },
                            ));
                        }
                        min_timer = min_opt(min_timer, conn.poll_timer());
                    }
                }
                ComputeTransport::Rdma { conns, .. } => {
                    for (&storage, qp) in conns.iter_mut() {
                        let sdev = self.storages[storage as usize].device;
                        while let Some(pkt) = qp.poll_transmit(now) {
                            let size = pkt.wire_size();
                            outgoing.push((
                                FlowLabel {
                                    src: cdev,
                                    dst: sdev,
                                    src_port: 20_000 + storage as u16,
                                    dst_port: 4791,
                                    proto: 17,
                                },
                                size,
                                None,
                                Msg::Rdma {
                                    compute: compute as u32,
                                    storage,
                                    pkt,
                                },
                            ));
                        }
                        min_timer = min_opt(min_timer, qp.poll_timer());
                    }
                }
                ComputeTransport::Solar { clients, .. } => {
                    for (&storage, client) in clients.iter_mut() {
                        let sdev = self.storages[storage as usize].device;
                        while let Some(out) = client.poll_transmit(now) {
                            let size = out.wire_size()
                                + if out.hdr.op == ebs_wire::EbsOp::WriteBlock {
                                    out.hdr.len as usize
                                } else {
                                    0
                                };
                            let int = out.int_request.then(IntStack::with_path_capacity);
                            outgoing.push((
                                FlowLabel {
                                    src: cdev,
                                    dst: sdev,
                                    src_port: out.src_port,
                                    dst_port: 9000,
                                    proto: 17,
                                },
                                size,
                                int,
                                Msg::Solar {
                                    compute: compute as u32,
                                    storage,
                                    hdr: out.hdr,
                                    echo_int: None,
                                },
                            ));
                        }
                        min_timer = min_opt(min_timer, client.poll_timer());
                    }
                }
            }
        }
        for (flow, size, int, msg) in outgoing.drain(..) {
            self.send_fabric(now, flow, size, int, msg);
        }
        self.out_compute = outgoing;
        // (Re)arm the host timer.
        if let Some(t) = min_timer {
            let c = &mut self.computes[compute];
            if c.timer_at.is_none_or(|cur| t < cur) {
                c.timer_at = Some(t);
                self.q
                    .schedule_at(t.max(now), Event::ComputeTimer { compute });
            }
        }
        if let (Some(t0), Some(p)) = (prof_t0, self.prof.as_deref_mut()) {
            p.pump_ns += t0.elapsed().as_nanos() as u64;
        }
    }

    fn pump_storage(&mut self, now: SimTime, storage: usize) {
        let prof_t0 = self.prof.is_some().then(crate::wallclock::now);
        let mut outgoing = std::mem::take(&mut self.out_storage);
        let mut min_timer: Option<SimTime> = None;
        {
            let node = &mut self.storages[storage];
            let sdev = node.device;
            for (&compute, srv) in node.tcp.iter_mut() {
                let cdev = self.computes[compute as usize].device;
                while let Some(seg) = srv.poll_segment(now) {
                    let size = seg.wire_size();
                    outgoing.push((
                        FlowLabel {
                            src: sdev,
                            dst: cdev,
                            src_port: 7000,
                            dst_port: 10_000 + storage as u16,
                            proto: 6,
                        },
                        size,
                        Msg::Tcp {
                            compute,
                            storage: storage as u32,
                            seg,
                        },
                    ));
                }
                min_timer = min_opt(min_timer, srv.poll_timer());
            }
            for (&compute, qp) in node.rdma.iter_mut() {
                let cdev = self.computes[compute as usize].device;
                while let Some(pkt) = qp.poll_transmit(now) {
                    let size = pkt.wire_size();
                    outgoing.push((
                        FlowLabel {
                            src: sdev,
                            dst: cdev,
                            src_port: 4791,
                            dst_port: 20_000 + storage as u16,
                            proto: 17,
                        },
                        size,
                        Msg::Rdma {
                            compute,
                            storage: storage as u32,
                            pkt,
                        },
                    ));
                }
                min_timer = min_opt(min_timer, qp.poll_timer());
            }
        }
        for (flow, size, msg) in outgoing.drain(..) {
            self.send_fabric(now, flow, size, None, msg);
        }
        self.out_storage = outgoing;
        if let Some(t) = min_timer {
            let node = &mut self.storages[storage];
            if node.timer_at.is_none_or(|cur| t < cur) {
                node.timer_at = Some(t);
                self.q
                    .schedule_at(t.max(now), Event::StorageTimer { storage });
            }
        }
        if let (Some(t0), Some(p)) = (prof_t0, self.prof.as_deref_mut()) {
            p.pump_ns += t0.elapsed().as_nanos() as u64;
        }
    }

    fn send_fabric(
        &mut self,
        now: SimTime,
        flow: FlowLabel,
        size: usize,
        int: Option<IntStack>,
        msg: Msg,
    ) {
        self.fabric_bytes += size as u64;
        let Testbed { q, fabric, .. } = self;
        let mut sched = MapScheduler::new(q, Event::Net);
        let delivered = fabric.send(now, FabricPacket::new(flow, size, int, msg), &mut sched);
        if let Some(pkt) = delivered {
            self.deliver(now, pkt);
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum RpcTransportKind {
    Tcp,
    Rdma,
}

/// FNV-1a, for order-sensitive digest checksums ([`Testbed::metrics_digest`]).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

fn min_opt(a: Option<SimTime>, b: Option<SimTime>) -> Option<SimTime> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, y) => x.or(y),
    }
}

fn at_plus(t: SimTime, ns: u64) -> SimTime {
    t + SimDuration::from_nanos(ns)
}

fn bump_timer(timer_at: &mut Option<SimTime>, q: &mut EventQueue<Event>, at: SimTime, ev: Event) {
    if timer_at.is_none_or(|cur| at < cur) {
        *timer_at = Some(at);
        q.schedule_at(at, ev);
    }
}

fn next_fio_io(fio: &mut FioState, compute: usize, cfg: &TestbedConfig) -> IoRequest {
    fio.issued += 1;
    let vd_blocks = cfg.vd_segments * ebs_sa::SEGMENT_BLOCKS;
    let blocks = (fio.cfg.bytes / BLOCK_SIZE) as u64;
    let max_start = vd_blocks.saturating_sub(blocks).max(1);
    let offset_block = fio.rng.gen_range(0..max_start);
    let kind = if fio.rng.gen::<f64>() < fio.cfg.read_fraction {
        IoKind::Read
    } else {
        IoKind::Write
    };
    // Extra RNG draw only in the multi-vd regime, so single-vd runs stay
    // bit-identical with historical baselines.
    let vds = cfg.vds_per_compute.max(1);
    let vd_id = if vds > 1 {
        compute as u64 * vds + fio.rng.gen_range(0..vds)
    } else {
        compute as u64
    };
    IoRequest {
        vd_id,
        kind,
        offset: offset_block * BLOCK_SIZE as u64,
        len: fio.cfg.bytes,
    }
}
