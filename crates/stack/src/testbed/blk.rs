//! The virtio-blk frontend mounted on the testbed, and the pushdown
//! data path across its three placements.
//!
//! `ebs-blk` owns the ring state machine; this module is the *host* side:
//! it pops guest submissions off the rings, turns READ/WRITE descriptors
//! into ordinary SA guest I/Os (so they traverse QoS → SA → transport →
//! fabric → block server exactly like every other I/O), runs FLUSH and
//! DISCARD locally, and executes pushdown requests at whichever placement
//! the mount negotiated:
//!
//! * **client** — the baseline: read the whole range through the normal
//!   read path, then scan it on the compute server's DPU cores;
//! * **storage** — one small [`PushdownHdr`] frame per (segment, block
//!   server) part; the storage node reads the range off its SSD, scans it
//!   in software, and returns only the result blocks;
//! * **dpu** — same fan-out, but the scan runs in the storage-side DPU's
//!   metered [`ebs_dpu::PushdownStage`], which also accounts the FPGA
//!   cycles and the PCIe/fabric bytes the placement avoided.
//!
//! Pushdown requests are *not* QoS-admitted and create no
//! [`crate::IoTrace`]: they are a different request class with their own
//! [`BlkTrace`] stream (DESIGN.md §11 discusses why folding them into the
//! read path's QoS budget double-charges the client placement and nothing
//! else). Responses carry the aggregate raw CRC of the transformed
//! result; the client verifies it against the range's reference execution
//! before completing the descriptor (`docs/PROTOCOL.md` §7), failing the
//! request with [`ebs_wire::BLK_S_BADCRC`] on mismatch. Lost parts
//! retransmit on a fixed RTO; duplicate responses are idempotent (the
//! ring drops completions for descriptors the device no longer holds).

pub use ebs_blk::{BlkReq, DeviceConfig, FeatureError, Predicate, ReqKind, StorageFn};
pub use ebs_wire::{PushdownHdr, PushdownOp, PushdownPlacement};

use ebs_wire::{
    BLK_F_DISCARD, BLK_F_FLUSH, BLK_F_PUSHDOWN, BLK_F_PUSHDOWN_DPU, BLK_KNOWN_FEATURES,
    BLK_S_BADCRC, BLK_S_OK, BLK_S_UNSUPP, PD_FLAG_RESPONSE, PD_FLAG_RETRANSMIT,
};

use super::*;

/// How long a pushdown part waits for its response before retransmitting.
/// Deliberately coarse (the SLO for scans is throughput, not tail) and
/// idempotent on both sides, so chaos-injected loss only costs time.
const PD_RTO: SimDuration = SimDuration::from_millis(10);

/// Software scan cost per block (client or storage-node CPU): one pass
/// over 4 KiB plus the predicate compare.
const SCAN_NS_PER_BLOCK: u64 = 80;
/// Software XOR-fold cost per block (touches and writes all 4 KiB).
const MERGE_NS_PER_BLOCK: u64 = 250;
/// Client-side verify cost per range block: an XOR over per-block CRC
/// metadata, not a data pass.
const VERIFY_NS_PER_BLOCK: u64 = 4;
/// FLUSH latency: the write path is synchronous, so flush only drains
/// the device write cache.
const FLUSH_NS: u64 = 5_000;
/// DISCARD cost per block (trim-queue insert).
const DISCARD_NS_PER_BLOCK: u64 = 30;

/// Wire size of a pushdown request leg (header only — the whole point of
/// the placement comparison is that requests are one small frame).
const PD_REQ_BYTES: usize = ebs_wire::SOLAR_OVERHEAD + PushdownHdr::LEN;

/// A pushdown frame (or its response) in flight on the fabric. Plain
/// `Copy` data like [`RemoteMsg`]: the header *is* the message.
#[derive(Debug, Clone, Copy)]
pub struct PushdownMsg {
    /// Issuing compute server.
    pub compute: u32,
    /// Serving storage server.
    pub storage: u32,
    /// The pushdown frame (op, range, predicate; result on responses).
    pub hdr: PushdownHdr,
}

/// Per-compute mount configuration for [`Testbed::blk_mount`].
#[derive(Debug, Clone, Copy)]
pub struct BlkMountConfig {
    /// Queues the device exposes.
    pub num_queues: u16,
    /// Descriptors per queue (power of two).
    pub queue_depth: u16,
    /// Feature bits the driver acknowledges.
    pub features: u64,
    /// Where this mount executes pushdown requests.
    pub placement: PushdownPlacement,
}

impl BlkMountConfig {
    /// Two queues of 64 descriptors, every feature negotiated, pushdown
    /// at `placement`.
    pub fn with_placement(placement: PushdownPlacement) -> Self {
        BlkMountConfig {
            num_queues: 2,
            queue_depth: 64,
            features: BLK_KNOWN_FEATURES,
            placement,
        }
    }
}

/// One completed-or-in-flight block-frontend request (the blk analogue of
/// [`crate::IoTrace`]; pushdown requests appear here, never there).
#[derive(Debug, Clone, Copy)]
pub struct BlkTrace {
    /// Compute server.
    pub compute: usize,
    /// Queue index within the mount.
    pub queue: usize,
    /// Stable label: `read`/`write`/`flush`/`discard`/`pushdown.<placement>`.
    pub label: &'static str,
    /// Pushdown placement, for pushdown requests.
    pub placement: Option<PushdownPlacement>,
    /// Blocks covered by the request.
    pub blocks_in: u32,
    /// Result blocks delivered (reads: `blocks_in`; writes/flush: 0).
    pub blocks_out: u32,
    /// Ring submission time.
    pub submitted: SimTime,
    /// Completion delivery time (None while in flight).
    pub completed: Option<SimTime>,
    /// Completion status (`BLK_S_OK`, ...).
    pub status: u8,
}

/// Aggregate block-frontend counters across all mounts.
#[derive(Debug, Default, Clone, Copy)]
pub struct BlkCounters {
    /// Requests accepted by a ring.
    pub accepted: u64,
    /// Requests rejected with `RingFull`.
    pub rejected: u64,
    /// Completions delivered to the driver.
    pub completed: u64,
    /// Requests completed `BLK_S_UNSUPP` (feature not negotiated).
    pub unsupported: u64,
    /// Pushdown part frames sent (first transmissions).
    pub parts_sent: u64,
    /// Pushdown part retransmissions after an RTO.
    pub retransmits: u64,
    /// Duplicate/stale pushdown responses dropped at the client.
    pub dup_responses: u64,
    /// Pushdown results that failed CRC verification.
    pub crc_failures: u64,
    /// Block-data bytes moved between compute and storage on behalf of
    /// blk requests: whole ranges for reads/writes and client-placement
    /// scans, result blocks only for remote placements. This is the
    /// placement comparison's headline metric — [`Testbed::fabric_bytes`]
    /// counts wire *frames*, and the testbed's SOLAR read path models
    /// payload DMA at the endpoints rather than on the frame (see
    /// DESIGN.md §11), so data movement is accounted here.
    pub data_bytes: u64,
}

struct Mount {
    dev: ebs_blk::BlkDevice,
    placement: PushdownPlacement,
}

/// Where a ring descriptor went after `pop_avail`.
struct IoCtx {
    queue: usize,
    desc: u16,
    /// The request as popped (carries the pushdown function for the
    /// client placement's post-read scan).
    req: BlkReq,
    trace_idx: usize,
}

struct PdPart {
    storage: u32,
    first_block: u64,
    count: u32,
    done: bool,
}

struct PendingPd {
    compute: usize,
    queue: usize,
    desc: u16,
    func: StorageFn,
    placement: PushdownPlacement,
    vd_id: u64,
    first_block: u64,
    block_count: u32,
    parts: Vec<PdPart>,
    parts_done: u32,
    /// XOR-aggregate of the parts' result CRCs (linearity makes this the
    /// full range's aggregate once every part is in).
    agg_crc: u32,
    blocks_out: u32,
    trace_idx: usize,
}

/// All block-frontend state, boxed behind `Option` on [`Testbed`] so
/// runs that never mount a device pay one pointer and keep their metrics
/// digests byte-identical with historical baselines.
pub(crate) struct BlkState {
    mounts: Vec<Option<Mount>>,
    /// Per-storage-server metered DPU pushdown stage.
    dpu: Vec<ebs_dpu::PushdownStage>,
    /// `(compute, io_id)` → ring context for requests riding the SA path.
    io_map: FxHashMap<(usize, u64), IoCtx>,
    /// In-flight remote pushdowns by request id.
    pd_map: FxHashMap<u64, PendingPd>,
    next_req_id: u64,
    traces: Vec<BlkTrace>,
    counters: BlkCounters,
    /// Fault-injection hook: corrupt the next pushdown response's CRC.
    corrupt_next: bool,
}

impl BlkState {
    fn new(n_compute: usize, n_storage: usize) -> Self {
        BlkState {
            mounts: (0..n_compute).map(|_| None).collect(),
            dpu: (0..n_storage)
                .map(|_| ebs_dpu::PushdownStage::new(ebs_dpu::PushdownCosts::default()))
                .collect(),
            io_map: FxHashMap::default(),
            pd_map: FxHashMap::default(),
            next_req_id: 1,
            traces: Vec::new(),
            counters: BlkCounters::default(),
            corrupt_next: false,
        }
    }

    /// Complete descriptor `desc` on `(compute, queue)`: push it used,
    /// reap the completion for the driver, close the trace and journal
    /// the request's span on the `blk` track.
    #[allow(clippy::too_many_arguments)]
    fn complete(
        &mut self,
        journal: &mut Journal,
        at: SimTime,
        compute: usize,
        queue: usize,
        desc: u16,
        status: u8,
        len: u32,
        trace_idx: usize,
    ) {
        let Some(mount) = self.mounts.get_mut(compute).and_then(|m| m.as_mut()) else {
            return;
        };
        let Some(vq) = mount.dev.queue_mut(queue) else {
            return;
        };
        let held = vq.in_flight();
        vq.push_used(desc, status, len);
        if vq.in_flight() == held {
            // Duplicate completion (retransmit race): the ring dropped it.
            self.counters.dup_responses += 1;
            return;
        }
        // The driver reaps immediately — completion *delivery* is the
        // event being modelled; reap latency is inside the spans already.
        while vq.poll_used().is_some() {
            self.counters.completed += 1;
        }
        if status == BLK_S_UNSUPP {
            self.counters.unsupported += 1;
        }
        let tr = &mut self.traces[trace_idx];
        tr.completed = Some(at);
        tr.status = status;
        tr.blocks_out = len / ebs_sa::BLOCK_SIZE;
        if ebs_obs::ENABLED {
            journal.span("blk", tr.label, trace_idx as u64, tr.submitted, at);
        }
    }
}

fn func_of(hdr: &PushdownHdr) -> StorageFn {
    StorageFn {
        op: hdr.op,
        pred: Predicate {
            offset: hdr.pred_offset,
            mask: hdr.pred_mask,
            value: hdr.pred_value,
        },
        group_k: hdr.group_k,
    }
}

fn software_latency(op: PushdownOp, blocks: u32) -> SimDuration {
    let per_block = match op {
        PushdownOp::CompactionMerge => MERGE_NS_PER_BLOCK,
        PushdownOp::RangeScan | PushdownOp::ChecksumVerify => SCAN_NS_PER_BLOCK,
    };
    SimDuration::from_nanos(per_block * blocks as u64)
}

impl Testbed {
    // --- public API --------------------------------------------------------

    /// Mount a block device on compute server `compute`, negotiating
    /// `cfg.features` against everything the device offers. Returns the
    /// agreed feature set. Pushdown placements require their feature bits
    /// ([`ebs_wire::BLK_F_PUSHDOWN`], plus [`ebs_wire::BLK_F_PUSHDOWN_DPU`]
    /// for the DPU) — requests on a mount without them complete
    /// `BLK_S_UNSUPP`, the virtio-faithful outcome.
    pub fn blk_mount(&mut self, compute: usize, cfg: BlkMountConfig) -> Result<u64, FeatureError> {
        let dev = ebs_blk::BlkDevice::mount(
            &DeviceConfig {
                num_queues: cfg.num_queues,
                queue_depth: cfg.queue_depth,
                features: BLK_KNOWN_FEATURES,
            },
            cfg.features,
        )?;
        let features = dev.features();
        let (nc, ns) = (self.cfg.n_compute, self.cfg.n_storage);
        let st = self
            .blk
            .get_or_insert_with(|| Box::new(BlkState::new(nc, ns)));
        st.mounts[compute] = Some(Mount {
            dev,
            placement: cfg.placement,
        });
        Ok(features)
    }

    /// Schedule a guest ring submission on `(compute, queue)` at `at`.
    pub fn schedule_blk(&mut self, at: SimTime, compute: usize, queue: usize, req: BlkReq) {
        self.q.schedule_at(
            at,
            Event::BlkGuest {
                compute,
                queue,
                req,
            },
        );
    }

    /// Aggregate block-frontend counters (zeros when nothing is mounted).
    pub fn blk_counters(&self) -> BlkCounters {
        self.blk
            .as_deref()
            .map(|st| st.counters)
            .unwrap_or_default()
    }

    /// Per-request traces of the block frontend (empty when nothing is
    /// mounted).
    pub fn blk_traces(&self) -> &[BlkTrace] {
        self.blk.as_deref().map_or(&[], |st| &st.traces)
    }

    /// Negotiated features of the mount on `compute`, if any.
    pub fn blk_features(&self, compute: usize) -> Option<u64> {
        let m = self.blk.as_deref()?.mounts.get(compute)?.as_ref()?;
        Some(m.dev.features())
    }

    /// Total bytes handed to the fabric since construction (every
    /// transport and direction) — the bytes-moved metric the placement
    /// bench compares.
    pub fn fabric_bytes(&self) -> u64 {
        self.fabric_bytes
    }

    /// Ring-slot accounting across every mounted queue: `(free, capacity,
    /// device_held)`. The chaos conservation oracle checks
    /// `free + held == capacity` at quiesce.
    pub fn blk_ring_slots(&self) -> (u64, u64, u64) {
        let (mut free, mut cap, mut held) = (0u64, 0u64, 0u64);
        if let Some(st) = self.blk.as_deref() {
            for m in st.mounts.iter().flatten() {
                for qi in 0..m.dev.num_queues() {
                    let vq = m.dev.queue(qi).expect("queue index in range");
                    free += vq.free_descs() as u64;
                    cap += vq.capacity() as u64;
                    held += vq.in_flight() as u64;
                }
            }
        }
        (free, cap, held)
    }

    /// Run every queue's conservation check; returns the failures.
    pub fn blk_ring_errors(&self) -> Vec<String> {
        let mut out = Vec::new();
        if let Some(st) = self.blk.as_deref() {
            for (ci, m) in st.mounts.iter().enumerate() {
                let Some(m) = m else { continue };
                for qi in 0..m.dev.num_queues() {
                    let vq = m.dev.queue(qi).expect("queue index in range");
                    if let Err(e) = vq.check_conservation() {
                        out.push(format!("compute {ci} queue {qi}: {e}"));
                    }
                }
            }
        }
        out
    }

    /// Aggregate DPU pushdown-stage accounting across storage servers:
    /// `(requests, cycles, bytes_saved)`.
    pub fn blk_dpu_stats(&self) -> (u64, u64, u64) {
        let mut out = (0u64, 0u64, 0u64);
        if let Some(st) = self.blk.as_deref() {
            for s in &st.dpu {
                out.0 += s.requests();
                out.1 += s.cycles();
                out.2 += s.bytes_saved();
            }
        }
        out
    }

    /// Fault injection: flip the next pushdown response's aggregate CRC
    /// on its way out of the storage node (the Fig. 11 bit-flip injector
    /// pointed at the pushdown path). The client must reject the result
    /// with `BLK_S_BADCRC`.
    pub fn blk_corrupt_next_response(&mut self) {
        if let Some(st) = self.blk.as_deref_mut() {
            st.corrupt_next = true;
        }
    }

    // --- ring ingress ------------------------------------------------------

    pub(crate) fn blk_guest(&mut self, now: SimTime, compute: usize, queue: usize, req: BlkReq) {
        // Stage 1 under one destructured borrow: ring accept + pop +
        // classification. The two tails that need `&mut self` methods
        // (guest_io, send_fabric) run after it ends.
        let mut guest_read: Option<(IoRequest, usize, u16, BlkReq, usize)> = None;
        let mut remote: Option<(u64, Vec<(FlowLabel, Msg)>)> = None;
        {
            let Testbed {
                blk,
                computes,
                storages,
                journal,
                q,
                ..
            } = self;
            let Some(st) = blk.as_deref_mut() else { return };
            let Some(mount) = st.mounts.get_mut(compute).and_then(|m| m.as_mut()) else {
                return;
            };
            let features = mount.dev.features();
            let placement = mount.placement;
            let queue = queue.min(mount.dev.num_queues().saturating_sub(1));
            let vq = mount.dev.queue_mut(queue).expect("clamped queue index");
            if vq.submit(req).is_err() {
                st.counters.rejected += 1;
                if ebs_obs::ENABLED {
                    journal.instant(now, "blk", "ring_full", queue as u64, 0);
                }
                return;
            }
            st.counters.accepted += 1;
            let (desc, req) = vq.pop_avail().expect("just submitted");
            let label = match req.kind {
                ReqKind::Read => "read",
                ReqKind::Write => "write",
                ReqKind::Flush => "flush",
                ReqKind::Discard => "discard",
                ReqKind::Pushdown(_) => match placement {
                    PushdownPlacement::Client => "pushdown.client",
                    PushdownPlacement::StorageNode => "pushdown.storage",
                    PushdownPlacement::Dpu => "pushdown.dpu",
                },
            };
            let trace_idx = st.traces.len();
            st.traces.push(BlkTrace {
                compute,
                queue,
                label,
                placement: matches!(req.kind, ReqKind::Pushdown(_)).then_some(placement),
                blocks_in: req.blocks,
                blocks_out: 0,
                submitted: now,
                completed: None,
                status: BLK_S_OK,
            });
            // Feature gating: the virtio-faithful outcome for a request
            // type whose feature the driver never acknowledged.
            let missing = match req.kind {
                ReqKind::Flush => features & BLK_F_FLUSH == 0,
                ReqKind::Discard => features & BLK_F_DISCARD == 0,
                ReqKind::Pushdown(_) => {
                    features & BLK_F_PUSHDOWN == 0
                        || (placement == PushdownPlacement::Dpu
                            && features & BLK_F_PUSHDOWN_DPU == 0)
                }
                ReqKind::Read | ReqKind::Write => false,
            };
            if missing {
                st.complete(
                    journal,
                    now,
                    compute,
                    queue,
                    desc,
                    BLK_S_UNSUPP,
                    0,
                    trace_idx,
                );
                return;
            }
            match req.kind {
                ReqKind::Read | ReqKind::Write => {
                    let io = IoRequest {
                        vd_id: req.vd_id,
                        kind: if req.kind == ReqKind::Write {
                            IoKind::Write
                        } else {
                            IoKind::Read
                        },
                        offset: req.first_block * BLOCK_SIZE as u64,
                        len: req.blocks.max(1) * BLOCK_SIZE,
                    };
                    guest_read = Some((io, queue, desc, req, trace_idx));
                }
                ReqKind::Flush => {
                    q.schedule_at(
                        at_plus(now, FLUSH_NS),
                        Event::BlkLocalDone {
                            compute,
                            queue,
                            desc,
                            status: BLK_S_OK,
                            len: 0,
                            trace_idx,
                        },
                    );
                }
                ReqKind::Discard => {
                    q.schedule_at(
                        at_plus(now, DISCARD_NS_PER_BLOCK * req.blocks.max(1) as u64),
                        Event::BlkLocalDone {
                            compute,
                            queue,
                            desc,
                            status: BLK_S_OK,
                            len: 0,
                            trace_idx,
                        },
                    );
                }
                ReqKind::Pushdown(func) => {
                    if placement == PushdownPlacement::Client {
                        // Baseline: pull the whole range through the normal
                        // read path; the scan happens at completion.
                        let io = IoRequest {
                            vd_id: req.vd_id,
                            kind: IoKind::Read,
                            offset: req.first_block * BLOCK_SIZE as u64,
                            len: req.blocks.max(1) * BLOCK_SIZE,
                        };
                        guest_read = Some((io, queue, desc, req, trace_idx));
                    } else {
                        // One part per (segment, block server) run; each is
                        // one small self-contained frame.
                        let subs = match ebs_sa::split_range(
                            &computes[compute].seg_table,
                            req.vd_id,
                            req.first_block,
                            req.blocks,
                        ) {
                            Ok(s) => s,
                            Err(e) => panic!("blk workload generated invalid pushdown: {e}"),
                        };
                        let req_id = st.next_req_id;
                        st.next_req_id += 1;
                        let cdev = computes[compute].device;
                        let mut sends = Vec::with_capacity(subs.len());
                        let mut parts = Vec::with_capacity(subs.len());
                        for (pi, sub) in subs.iter().enumerate() {
                            let hdr = PushdownHdr {
                                version: PushdownHdr::VERSION,
                                op: func.op,
                                placement,
                                flags: 0,
                                req_id,
                                vd_id: req.vd_id,
                                first_block: sub.blocks[0],
                                block_count: sub.blocks.len() as u32,
                                pred_offset: func.pred.offset,
                                pred_mask: func.pred.mask,
                                pred_value: func.pred.value,
                                group_k: func.group_k,
                                status: 0,
                                part: pi as u16,
                                blocks_out: 0,
                                result_crc: 0,
                            };
                            let sdev = storages[sub.block_server as usize].device;
                            sends.push((
                                FlowLabel {
                                    src: cdev,
                                    dst: sdev,
                                    src_port: 30_000 + (req_id & 0x3FF) as u16,
                                    dst_port: 9200,
                                    proto: 17,
                                },
                                Msg::Pushdown(PushdownMsg {
                                    compute: compute as u32,
                                    storage: sub.block_server,
                                    hdr,
                                }),
                            ));
                            parts.push(PdPart {
                                storage: sub.block_server,
                                first_block: sub.blocks[0],
                                count: sub.blocks.len() as u32,
                                done: false,
                            });
                        }
                        st.counters.parts_sent += parts.len() as u64;
                        st.pd_map.insert(
                            req_id,
                            PendingPd {
                                compute,
                                queue,
                                desc,
                                func,
                                placement,
                                vd_id: req.vd_id,
                                first_block: req.first_block,
                                block_count: req.blocks,
                                parts,
                                parts_done: 0,
                                agg_crc: 0,
                                blocks_out: 0,
                                trace_idx,
                            },
                        );
                        remote = Some((req_id, sends));
                    }
                }
            }
        }
        if let Some((io, queue, desc, req, trace_idx)) = guest_read {
            let io_id = self.guest_io(now, compute, io, false);
            if let Some(st) = self.blk.as_deref_mut() {
                st.io_map.insert(
                    (compute, io_id),
                    IoCtx {
                        queue,
                        desc,
                        req,
                        trace_idx,
                    },
                );
            }
        }
        if let Some((req_id, sends)) = remote {
            for (flow, msg) in sends {
                self.send_fabric(now, flow, PD_REQ_BYTES, None, msg);
            }
            self.q
                .schedule_at(now + PD_RTO, Event::BlkRetx { compute, req_id });
        }
    }

    /// A locally-served request (flush/discard, or a feature rejection)
    /// finished.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn blk_local_done(
        &mut self,
        now: SimTime,
        compute: usize,
        queue: usize,
        desc: u16,
        status: u8,
        len: u32,
        trace_idx: usize,
    ) {
        let Testbed { blk, journal, .. } = self;
        if let Some(st) = blk.as_deref_mut() {
            st.complete(journal, now, compute, queue, desc, status, len, trace_idx);
        }
    }

    /// An SA-path I/O the block frontend issued (read/write descriptor,
    /// or the client placement's range read) completed at `done_at`.
    pub(crate) fn blk_on_guest_io_done(&mut self, compute: usize, io_id: u64, done_at: SimTime) {
        let Some(ctx) = self
            .blk
            .as_deref_mut()
            .and_then(|st| st.io_map.remove(&(compute, io_id)))
        else {
            return;
        };
        // Reads and writes haul the whole range across the fabric; the
        // client placement's scan is exactly a read plus local CPU.
        if let Some(st) = self.blk.as_deref_mut() {
            if ctx.req.kind != ReqKind::Flush {
                st.counters.data_bytes += ctx.req.blocks as u64 * BLOCK_SIZE as u64;
            }
        }
        let (at, len) = match ctx.req.kind {
            ReqKind::Pushdown(func) => {
                // Client placement: the range is in guest memory; scan it
                // on the compute server's DPU cores. Verification is the
                // scan itself — the client computed the result from data
                // whose per-block CRCs the read path already checked.
                let res =
                    ebs_blk::execute(func, ctx.req.vd_id, ctx.req.first_block, ctx.req.blocks);
                let cost = software_latency(func.op, ctx.req.blocks);
                let t = self.computes[compute].cpu.run(done_at, cost);
                (t.max(done_at), res.blocks_out * BLOCK_SIZE)
            }
            ReqKind::Read => (done_at, ctx.req.blocks * BLOCK_SIZE),
            _ => (done_at, 0),
        };
        let Testbed { blk, journal, .. } = self;
        if let Some(st) = blk.as_deref_mut() {
            st.complete(
                journal,
                at,
                compute,
                ctx.queue,
                ctx.desc,
                BLK_S_OK,
                len,
                ctx.trace_idx,
            );
        }
    }

    // --- pushdown: storage side -------------------------------------------

    /// A pushdown request frame reached a storage server: read the range
    /// off the SSD, execute the function at the requested placement's
    /// cost, and schedule the response.
    pub(crate) fn blk_pushdown_storage(&mut self, now: SimTime, storage: usize, m: PushdownMsg) {
        if m.hdr.flags & PD_FLAG_RESPONSE != 0 {
            return; // responses never land at a storage server
        }
        let blocks = m.hdr.block_count.max(1);
        let (done, _bd) = self.storages[storage].backend.read(now, blocks as usize);
        // Semantics are placement-independent (the reference execution);
        // only the cost model differs.
        let res = ebs_blk::execute(
            func_of(&m.hdr),
            m.hdr.vd_id,
            m.hdr.first_block,
            m.hdr.block_count,
        );
        let Some(st) = self.blk.as_deref_mut() else {
            return;
        };
        let exec = match m.hdr.placement {
            PushdownPlacement::Dpu => st.dpu[storage].meter(m.hdr.op, blocks, res.blocks_out),
            _ => software_latency(m.hdr.op, blocks),
        };
        let mut rh = m.hdr;
        rh.flags |= PD_FLAG_RESPONSE;
        rh.status = BLK_S_OK;
        rh.blocks_out = res.blocks_out;
        rh.result_crc = res.result_crc;
        if st.corrupt_next {
            st.corrupt_next = false;
            rh.result_crc ^= 0x5A5A_5A5A;
        }
        self.q.schedule_at(
            done + exec + self.server_stack_latency,
            Event::StorageDone {
                storage,
                reply: Box::new(Reply::Pushdown(PushdownMsg { hdr: rh, ..m })),
            },
        );
    }

    /// Emit a prepared pushdown response toward its compute server. The
    /// response leg is where the bytes move: header plus `blocks_out`
    /// 4 KiB result blocks.
    pub(crate) fn blk_pushdown_reply(&mut self, now: SimTime, storage: usize, m: PushdownMsg) {
        let sdev = self.storages[storage].device;
        let cdev = self.computes[m.compute as usize].device;
        let size = PD_REQ_BYTES + m.hdr.blocks_out as usize * BLOCK_SIZE as usize;
        self.send_fabric(
            now,
            FlowLabel {
                src: sdev,
                dst: cdev,
                src_port: 9200,
                dst_port: 30_000 + (m.hdr.req_id & 0x3FF) as u16,
                proto: 17,
            },
            size,
            None,
            Msg::Pushdown(m),
        );
    }

    // --- pushdown: client side --------------------------------------------

    /// A pushdown response reached its compute server: account the part,
    /// and on the last part verify the aggregate CRC and complete the
    /// ring descriptor.
    pub(crate) fn blk_pushdown_compute(&mut self, now: SimTime, compute: usize, m: PushdownMsg) {
        if m.hdr.flags & PD_FLAG_RESPONSE == 0 {
            return; // requests never land at a compute server
        }
        let finished = {
            let Some(st) = self.blk.as_deref_mut() else {
                return;
            };
            // Every arriving response physically moved its result blocks,
            // duplicates included.
            st.counters.data_bytes += m.hdr.blocks_out as u64 * BLOCK_SIZE as u64;
            let Some(p) = st.pd_map.get_mut(&m.hdr.req_id) else {
                st.counters.dup_responses += 1;
                return;
            };
            let pi = m.hdr.part as usize;
            if pi >= p.parts.len() || p.parts[pi].done {
                st.counters.dup_responses += 1;
                return;
            }
            p.parts[pi].done = true;
            p.parts_done += 1;
            p.agg_crc ^= m.hdr.result_crc;
            p.blocks_out += m.hdr.blocks_out;
            if p.parts_done < p.parts.len() as u32 {
                return;
            }
            st.pd_map.remove(&m.hdr.req_id).expect("present")
        };
        // All parts in: the CRC-of-transformed-data check. By linearity
        // the XOR of the part aggregates must equal the reference
        // aggregate over the whole range, whatever the sharding was.
        let reference = ebs_blk::execute(
            finished.func,
            finished.vd_id,
            finished.first_block,
            finished.block_count,
        );
        let ok =
            reference.result_crc == finished.agg_crc && reference.blocks_out == finished.blocks_out;
        let verify = SimDuration::from_nanos(VERIFY_NS_PER_BLOCK * finished.block_count as u64);
        let at = self.computes[compute].cpu.run(now, verify).max(now);
        let (status, len) = if ok {
            (BLK_S_OK, finished.blocks_out * BLOCK_SIZE)
        } else {
            (BLK_S_BADCRC, 0)
        };
        let Testbed { blk, journal, .. } = self;
        if let Some(st) = blk.as_deref_mut() {
            if !ok {
                st.counters.crc_failures += 1;
            }
            let _ = finished.placement;
            st.complete(
                journal,
                at,
                finished.compute,
                finished.queue,
                finished.desc,
                status,
                len,
                finished.trace_idx,
            );
        }
    }

    /// RTO fired for pushdown `req_id`: resend every part still missing
    /// and rearm. Idempotent on both sides — the storage server serves
    /// duplicates blindly, the client drops duplicate responses.
    pub(crate) fn blk_retx(&mut self, now: SimTime, compute: usize, req_id: u64) {
        let mut sends: Vec<(FlowLabel, Msg)> = Vec::new();
        {
            let Testbed {
                blk,
                computes,
                storages,
                ..
            } = self;
            let Some(st) = blk.as_deref_mut() else { return };
            let Some(p) = st.pd_map.get(&req_id) else {
                return; // completed; the timer dies here
            };
            let cdev = computes[p.compute].device;
            for (pi, part) in p.parts.iter().enumerate() {
                if part.done {
                    continue;
                }
                let hdr = PushdownHdr {
                    version: PushdownHdr::VERSION,
                    op: p.func.op,
                    placement: p.placement,
                    flags: PD_FLAG_RETRANSMIT,
                    req_id,
                    vd_id: p.vd_id,
                    first_block: part.first_block,
                    block_count: part.count,
                    pred_offset: p.func.pred.offset,
                    pred_mask: p.func.pred.mask,
                    pred_value: p.func.pred.value,
                    group_k: p.func.group_k,
                    status: 0,
                    part: pi as u16,
                    blocks_out: 0,
                    result_crc: 0,
                };
                sends.push((
                    FlowLabel {
                        src: cdev,
                        dst: storages[part.storage as usize].device,
                        // A fresh source port per retransmit round so the
                        // flow re-hashes around a dead path (the SOLAR
                        // path-remap trick at the pushdown layer).
                        src_port: 31_000 + (req_id.wrapping_add(now.as_nanos()) & 0x3FF) as u16,
                        dst_port: 9200,
                        proto: 17,
                    },
                    Msg::Pushdown(PushdownMsg {
                        compute: p.compute as u32,
                        storage: part.storage,
                        hdr,
                    }),
                ));
            }
            st.counters.retransmits += sends.len() as u64;
        }
        for (flow, msg) in sends {
            self.send_fabric(now, flow, PD_REQ_BYTES, None, msg);
        }
        self.q
            .schedule_at(now + PD_RTO, Event::BlkRetx { compute, req_id });
    }

    /// The digest section for the block frontend, appended only when a
    /// device was mounted so historical digests stay byte-identical.
    pub(crate) fn blk_digest(&self, s: &mut String) {
        use std::fmt::Write as _;
        let Some(st) = self.blk.as_deref() else {
            return;
        };
        let mut bh = Fnv::new();
        for t in &st.traces {
            bh.u64(t.compute as u64);
            bh.u64(t.queue as u64);
            bh.bytes(t.label.as_bytes());
            bh.u64(t.blocks_in as u64);
            bh.u64(t.blocks_out as u64);
            bh.u64(t.submitted.as_nanos());
            bh.u64(t.completed.map_or(u64::MAX, |c| c.as_nanos()));
            bh.u64(t.status as u64);
        }
        let c = st.counters;
        let _ = write!(
            s,
            " blk={}/{}/{}/{} parts={}/{} dup={} crcfail={} data={} bhash={:016x} fabric_bytes={}",
            c.accepted,
            c.completed,
            c.rejected,
            c.unsupported,
            c.parts_sent,
            c.retransmits,
            c.dup_responses,
            c.crc_failures,
            c.data_bytes,
            bh.finish(),
            self.fabric_bytes,
        );
    }
}
