//! # ebs-stack — the composed end-to-end EBS system
//!
//! Ties every substrate together into runnable deployments: compute
//! servers (guest I/O → QoS → SA → PCIe → transport) and storage servers
//! (block server → BN replication → SSD) on the Clos fabric, under any of
//! the paper's five data-path variants ([`Variant`]). Provides the
//! distributed-trace latency breakdown (Fig. 6), consumed-core accounting
//! (Table 1 / Fig. 14), closed-loop fio drivers, and scheduled failure
//! injection (Table 2 / Fig. 8) that the experiment harness builds on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibrate;
pub mod diag;
mod sharded;
mod testbed;
mod trace;
mod wallclock;

pub use calibrate::{RdmaCosts, SaCosts, SolarCosts};
pub use diag::{HopSpan, IoExplanation};
pub use sharded::{
    ReplicationConfig, ShardStats, ShardedTestbed, ShardedTestbedConfig, WorkerStats,
};
pub use testbed::blk::{BlkCounters, BlkMountConfig, BlkTrace, PushdownMsg};
pub use testbed::{
    blk, Event, FioConfig, Msg, PhaseCycles, RemoteMsg, Reply, Testbed, TestbedConfig, Variant,
};
pub use trace::{Breakdown, IoTrace};

#[cfg(test)]
mod tests {
    use super::*;
    use ebs_sa::{IoKind, IoRequest};
    use ebs_sim::{SimDuration, SimTime};

    fn one_io(variant: Variant, kind: IoKind, bytes: u32) -> IoTrace {
        let mut tb = Testbed::new(TestbedConfig::small(variant, 2, 3));
        tb.schedule_io(
            SimTime::from_millis(1),
            0,
            IoRequest {
                vd_id: 0,
                kind,
                offset: 0,
                len: bytes,
            },
        );
        tb.run_until(SimTime::from_secs(1));
        let t = tb.traces()[0];
        assert!(
            t.completed.is_some(),
            "{variant:?} {kind:?} io must complete"
        );
        t
    }

    #[test]
    fn solar_write_completes_with_sane_breakdown() {
        let t = one_io(Variant::Solar, IoKind::Write, 4096);
        let lat = t.latency().unwrap().as_micros_f64();
        assert!((15.0..200.0).contains(&lat), "latency {lat}us");
        assert!(t.sa.as_micros_f64() < 10.0, "solar SA tiny: {}", t.sa);
        assert!(t.ssd > SimDuration::ZERO);
        assert!(t.bn > SimDuration::ZERO);
        assert!(t.fn_ > SimDuration::ZERO);
    }

    #[test]
    fn luna_write_completes() {
        let t = one_io(Variant::Luna, IoKind::Write, 4096);
        let lat = t.latency().unwrap().as_micros_f64();
        assert!((40.0..400.0).contains(&lat), "latency {lat}us");
        assert!(t.sa.as_micros_f64() >= 20.0, "software SA: {}", t.sa);
    }

    #[test]
    fn kernel_is_slowest_solar_is_fastest() {
        let k = one_io(Variant::Kernel, IoKind::Write, 4096)
            .latency()
            .unwrap();
        let l = one_io(Variant::Luna, IoKind::Write, 4096)
            .latency()
            .unwrap();
        let s = one_io(Variant::Solar, IoKind::Write, 4096)
            .latency()
            .unwrap();
        assert!(k > l, "kernel {k} > luna {l}");
        assert!(l > s, "luna {l} > solar {s}");
    }

    #[test]
    fn reads_complete_on_all_variants() {
        for v in [
            Variant::Kernel,
            Variant::Luna,
            Variant::Rdma,
            Variant::SolarStar,
            Variant::Solar,
        ] {
            let t = one_io(v, IoKind::Read, 16384);
            assert!(t.latency().unwrap() > SimDuration::ZERO, "{v:?}");
            assert!(t.ssd.as_micros_f64() > 30.0, "{v:?} NAND read: {}", t.ssd);
        }
    }

    #[test]
    fn fio_closed_loop_sustains_depth() {
        let mut tb = Testbed::new(TestbedConfig::small(Variant::Solar, 1, 3));
        tb.attach_fio(
            SimTime::from_millis(1),
            0,
            FioConfig {
                depth: 8,
                bytes: 4096,
                read_fraction: 1.0,
            },
        );
        tb.run_until(SimTime::from_millis(80));
        let (ios, bytes) = tb.compute_progress(0);
        assert!(ios > 200, "closed loop kept running: {ios}");
        assert_eq!(bytes, ios * 4096);
        // All but the in-flight depth completed.
        let completed = tb.traces().iter().filter(|t| t.completed.is_some()).count();
        assert!(tb.traces().len() - completed <= 8);
    }

    #[test]
    fn multi_segment_io_splits_and_completes() {
        // An I/O spanning a segment boundary produces two sub-RPCs to two
        // different storage servers, and still completes exactly once.
        let mut tb = Testbed::new(TestbedConfig::small(Variant::Solar, 1, 3));
        let seg_bytes = ebs_sa::SEGMENT_BLOCKS * 4096;
        tb.schedule_io(
            SimTime::from_millis(1),
            0,
            IoRequest {
                vd_id: 0,
                kind: IoKind::Write,
                offset: seg_bytes - 2 * 4096,
                len: 4 * 4096,
            },
        );
        tb.run_until(SimTime::from_secs(1));
        assert_eq!(tb.traces().len(), 1);
        assert!(tb.traces()[0].completed.is_some());
    }

    #[test]
    fn consumed_cores_reflect_load() {
        let mut tb = Testbed::new(TestbedConfig::small(Variant::Kernel, 1, 3));
        tb.attach_fio(
            SimTime::from_millis(1),
            0,
            FioConfig {
                depth: 16,
                bytes: 16384,
                read_fraction: 0.0,
            },
        );
        tb.run_until(SimTime::from_millis(50));
        let cores = tb.consumed_cores(0);
        assert!(cores > 0.1, "kernel stack burns CPU: {cores}");
    }

    #[cfg(feature = "obs")]
    #[test]
    fn journal_breakdown_matches_iotrace_exactly() {
        use ebs_obs::EventKind;
        use std::collections::BTreeMap;

        let mut tb = Testbed::new(TestbedConfig::small(Variant::Solar, 1, 3));
        tb.attach_fio(
            SimTime::from_millis(1),
            0,
            FioConfig {
                depth: 4,
                bytes: 4096,
                read_fraction: 0.5,
            },
        );
        tb.run_until(SimTime::from_millis(20));

        // Per-I/O: the journal's component spans must sum to the exact
        // IoTrace fields (same u64 nanosecond arithmetic, by construction).
        let mut sums: BTreeMap<u64, BTreeMap<&str, u64>> = BTreeMap::new();
        for ev in tb.journal().events() {
            if let EventKind::Span { id, dur, .. } = ev.kind {
                *sums.entry(id).or_default().entry(ev.track).or_insert(0) += dur.as_nanos();
            }
        }
        let completed: Vec<(u64, &IoTrace)> = tb
            .traces()
            .iter()
            .enumerate()
            .filter(|(_, t)| t.completed.is_some())
            .map(|(i, t)| (i as u64, t))
            .collect();
        assert!(completed.len() > 20, "need a real sample");
        for (id, t) in &completed {
            let s = sums.get(id).expect("journal has this io");
            let get = |track: &str| s.get(track).copied().unwrap_or(0);
            assert_eq!(get("sa"), t.sa.as_nanos(), "sa split, io {id}");
            assert_eq!(get("fn"), t.fn_.as_nanos(), "fn split, io {id}");
            assert_eq!(get("bn"), t.bn.as_nanos(), "bn split, io {id}");
            assert_eq!(get("ssd"), t.ssd.as_nanos(), "ssd split, io {id}");
            assert_eq!(
                get("io"),
                t.latency().expect("completed").as_nanos(),
                "total, io {id}"
            );
        }

        // And in aggregate: the journal-derived Fig. 6 breakdown equals
        // the trace-derived one at every probed quantile.
        for kind in [ebs_sa::IoKind::Read, ebs_sa::IoKind::Write] {
            let a = Breakdown::collect(tb.traces(), kind, 4096);
            let b = Breakdown::from_journal(tb.journal(), kind, 4096);
            assert_eq!(a.total.count(), b.total.count(), "{kind:?} count");
            for q in [0.1, 0.5, 0.9, 0.99] {
                assert_eq!(a.at(q), b.at(q), "{kind:?} quantile {q}");
            }
        }
    }

    #[cfg(feature = "obs")]
    #[test]
    fn explain_slowest_matches_trace() {
        let mut tb = Testbed::new(TestbedConfig::small(Variant::Luna, 1, 3));
        tb.attach_fio(
            SimTime::from_millis(1),
            0,
            FioConfig {
                depth: 2,
                bytes: 16384,
                read_fraction: 0.0,
            },
        );
        tb.run_until(SimTime::from_millis(10));
        let e = tb.explain_slowest_io().expect("completed I/Os exist");
        let slowest = tb
            .traces()
            .iter()
            .filter(|t| t.completed.is_some())
            .max_by_key(|t| t.latency().expect("completed"))
            .expect("completed");
        assert_eq!(e.total, slowest.latency().expect("completed"));
        assert_eq!(e.kind, slowest.kind);
        assert_eq!(e.bytes, u64::from(slowest.bytes));
        // The hop slices reproduce the trace's component attribution.
        let sum_of = |track: &str| {
            e.hops
                .iter()
                .filter(|h| h.component == track)
                .fold(SimDuration::ZERO, |acc, h| acc + h.dur)
        };
        assert_eq!(sum_of("sa"), slowest.sa);
        assert_eq!(sum_of("fn"), slowest.fn_);
        assert_eq!(sum_of("bn"), slowest.bn);
        assert_eq!(sum_of("ssd"), slowest.ssd);
        assert!(e.render().contains("slowest io"));
    }

    #[cfg(feature = "obs")]
    #[test]
    fn sample_obs_populates_every_layer() {
        let mut tb = Testbed::new(TestbedConfig::small(Variant::Solar, 1, 3));
        tb.attach_fio(
            SimTime::from_millis(1),
            0,
            FioConfig {
                depth: 4,
                bytes: 4096,
                read_fraction: 0.5,
            },
        );
        tb.run_until(SimTime::from_millis(20));
        tb.sample_obs();
        let m = tb.metrics();
        assert!(m.counter("net", "delivered") > 0);
        assert!(m.counter("solar", "rpcs_completed") > 0);
        assert!(m.counter("sa.qos", "admitted_ios") > 0);
        assert!(m.counter("dpu.cpu", "jobs") > 0);
        // SOLAR's whole point (Fig. 10c): zero internal-PCIe crossings.
        assert_eq!(m.counter("dpu.pcie", "internal_bytes"), 0);
        assert!(m.gauge("dpu.pcie", "internal_utilization").is_some());
        assert!(m.counter("storage", "reads") + m.counter("storage", "writes") > 0);
        assert!(m.counter("sim", "events_scheduled") > 0);
        assert!(m.histogram("solar", "path_srtt_ns").is_some());
        // Sampling twice must not double-count (clear-first convention).
        let delivered = m.counter("net", "delivered");
        tb.sample_obs();
        assert_eq!(tb.metrics().counter("net", "delivered"), delivered);
    }

    #[test]
    fn solar_survives_tor_blackhole_luna_hangs() {
        // The core reliability claim (Table 2): a silent blackhole on the
        // compute-side ToR leaves Luna's single-path connections dead for
        // ≥1s, while Solar's multipath routes around it.
        let hung = |variant: Variant| {
            let mut tb = Testbed::new(TestbedConfig::small(variant, 4, 4));
            for cidx in 0..4 {
                tb.attach_fio(
                    SimTime::from_millis(1),
                    cidx,
                    FioConfig {
                        depth: 1,
                        bytes: 4096,
                        read_fraction: 0.2,
                    },
                );
            }
            // Blackhole half the flows through the first ToR at t=100ms.
            let tor = tb
                .fabric()
                .topology()
                .devices_of_kind(ebs_net::DeviceKind::Tor)[0];
            tb.schedule_failure(
                SimTime::from_millis(100),
                tor,
                ebs_net::FailureMode::Blackhole {
                    fraction: 0.5,
                    salt: 42,
                },
            );
            tb.run_until(SimTime::from_secs(4));
            tb.hung_ios(SimDuration::from_secs(1))
        };
        let luna = hung(Variant::Luna);
        let solar = hung(Variant::Solar);
        assert!(luna > 0, "luna must hang I/Os under a blackhole: {luna}");
        assert_eq!(solar, 0, "solar must not hang any I/O");
    }
}
