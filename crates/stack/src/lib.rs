//! # ebs-stack — the composed end-to-end EBS system
//!
//! Ties every substrate together into runnable deployments: compute
//! servers (guest I/O → QoS → SA → PCIe → transport) and storage servers
//! (block server → BN replication → SSD) on the Clos fabric, under any of
//! the paper's five data-path variants ([`Variant`]). Provides the
//! distributed-trace latency breakdown (Fig. 6), consumed-core accounting
//! (Table 1 / Fig. 14), closed-loop fio drivers, and scheduled failure
//! injection (Table 2 / Fig. 8) that the experiment harness builds on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibrate;
mod testbed;
mod trace;

pub use calibrate::{RdmaCosts, SaCosts, SolarCosts};
pub use testbed::{Event, FioConfig, Msg, Reply, Testbed, TestbedConfig, Variant};
pub use trace::{Breakdown, IoTrace};

#[cfg(test)]
mod tests {
    use super::*;
    use ebs_sa::{IoKind, IoRequest};
    use ebs_sim::{SimDuration, SimTime};

    fn one_io(variant: Variant, kind: IoKind, bytes: u32) -> IoTrace {
        let mut tb = Testbed::new(TestbedConfig::small(variant, 2, 3));
        tb.schedule_io(
            SimTime::from_millis(1),
            0,
            IoRequest {
                vd_id: 0,
                kind,
                offset: 0,
                len: bytes,
            },
        );
        tb.run_until(SimTime::from_secs(1));
        let t = tb.traces()[0];
        assert!(
            t.completed.is_some(),
            "{variant:?} {kind:?} io must complete"
        );
        t
    }

    #[test]
    fn solar_write_completes_with_sane_breakdown() {
        let t = one_io(Variant::Solar, IoKind::Write, 4096);
        let lat = t.latency().unwrap().as_micros_f64();
        assert!((15.0..200.0).contains(&lat), "latency {lat}us");
        assert!(t.sa.as_micros_f64() < 10.0, "solar SA tiny: {}", t.sa);
        assert!(t.ssd > SimDuration::ZERO);
        assert!(t.bn > SimDuration::ZERO);
        assert!(t.fn_ > SimDuration::ZERO);
    }

    #[test]
    fn luna_write_completes() {
        let t = one_io(Variant::Luna, IoKind::Write, 4096);
        let lat = t.latency().unwrap().as_micros_f64();
        assert!((40.0..400.0).contains(&lat), "latency {lat}us");
        assert!(t.sa.as_micros_f64() >= 20.0, "software SA: {}", t.sa);
    }

    #[test]
    fn kernel_is_slowest_solar_is_fastest() {
        let k = one_io(Variant::Kernel, IoKind::Write, 4096)
            .latency()
            .unwrap();
        let l = one_io(Variant::Luna, IoKind::Write, 4096)
            .latency()
            .unwrap();
        let s = one_io(Variant::Solar, IoKind::Write, 4096)
            .latency()
            .unwrap();
        assert!(k > l, "kernel {k} > luna {l}");
        assert!(l > s, "luna {l} > solar {s}");
    }

    #[test]
    fn reads_complete_on_all_variants() {
        for v in [
            Variant::Kernel,
            Variant::Luna,
            Variant::Rdma,
            Variant::SolarStar,
            Variant::Solar,
        ] {
            let t = one_io(v, IoKind::Read, 16384);
            assert!(t.latency().unwrap() > SimDuration::ZERO, "{v:?}");
            assert!(t.ssd.as_micros_f64() > 30.0, "{v:?} NAND read: {}", t.ssd);
        }
    }

    #[test]
    fn fio_closed_loop_sustains_depth() {
        let mut tb = Testbed::new(TestbedConfig::small(Variant::Solar, 1, 3));
        tb.attach_fio(
            SimTime::from_millis(1),
            0,
            FioConfig {
                depth: 8,
                bytes: 4096,
                read_fraction: 1.0,
            },
        );
        tb.run_until(SimTime::from_millis(80));
        let (ios, bytes) = tb.compute_progress(0);
        assert!(ios > 200, "closed loop kept running: {ios}");
        assert_eq!(bytes, ios * 4096);
        // All but the in-flight depth completed.
        let completed = tb.traces().iter().filter(|t| t.completed.is_some()).count();
        assert!(tb.traces().len() - completed <= 8);
    }

    #[test]
    fn multi_segment_io_splits_and_completes() {
        // An I/O spanning a segment boundary produces two sub-RPCs to two
        // different storage servers, and still completes exactly once.
        let mut tb = Testbed::new(TestbedConfig::small(Variant::Solar, 1, 3));
        let seg_bytes = ebs_sa::SEGMENT_BLOCKS * 4096;
        tb.schedule_io(
            SimTime::from_millis(1),
            0,
            IoRequest {
                vd_id: 0,
                kind: IoKind::Write,
                offset: seg_bytes - 2 * 4096,
                len: 4 * 4096,
            },
        );
        tb.run_until(SimTime::from_secs(1));
        assert_eq!(tb.traces().len(), 1);
        assert!(tb.traces()[0].completed.is_some());
    }

    #[test]
    fn consumed_cores_reflect_load() {
        let mut tb = Testbed::new(TestbedConfig::small(Variant::Kernel, 1, 3));
        tb.attach_fio(
            SimTime::from_millis(1),
            0,
            FioConfig {
                depth: 16,
                bytes: 16384,
                read_fraction: 0.0,
            },
        );
        tb.run_until(SimTime::from_millis(50));
        let cores = tb.consumed_cores(0);
        assert!(cores > 0.1, "kernel stack burns CPU: {cores}");
    }

    #[test]
    fn solar_survives_tor_blackhole_luna_hangs() {
        // The core reliability claim (Table 2): a silent blackhole on the
        // compute-side ToR leaves Luna's single-path connections dead for
        // ≥1s, while Solar's multipath routes around it.
        let hung = |variant: Variant| {
            let mut tb = Testbed::new(TestbedConfig::small(variant, 4, 4));
            for cidx in 0..4 {
                tb.attach_fio(
                    SimTime::from_millis(1),
                    cidx,
                    FioConfig {
                        depth: 1,
                        bytes: 4096,
                        read_fraction: 0.2,
                    },
                );
            }
            // Blackhole half the flows through the first ToR at t=100ms.
            let tor = tb
                .fabric()
                .topology()
                .devices_of_kind(ebs_net::DeviceKind::Tor)[0];
            tb.schedule_failure(
                SimTime::from_millis(100),
                tor,
                ebs_net::FailureMode::Blackhole {
                    fraction: 0.5,
                    salt: 42,
                },
            );
            tb.run_until(SimTime::from_secs(4));
            tb.hung_ios(SimDuration::from_secs(1))
        };
        let luna = hung(Variant::Luna);
        let solar = hung(Variant::Solar);
        assert!(luna > 0, "luna must hang I/Os under a blackhole: {luna}");
        assert_eq!(solar, 0, "solar must not hang any I/O");
    }
}
