//! Calibration constants for the end-to-end models.
//!
//! Every constant is fit to a number the paper reports, cited inline.
//! Experiments read these rather than hard-coding magic values, so the
//! ablation benches can perturb them.

use ebs_sim::SimDuration;

/// Software storage-agent costs (the SA of Fig. 2 running on CPU — the
/// kernel/LUNA/RDMA data paths).
#[derive(Debug, Clone, Copy)]
pub struct SaCosts {
    /// Per-I/O *CPU work* gating throughput: table lookups, buffer
    /// management, NVMe doorbell handling. Calibrated against Fig. 14's
    /// per-core throughput (LUNA 1-core ≈ 2 GB/s at 64 KiB, ≈10^5 IOPS at
    /// 4 KiB).
    pub cpu_per_io: SimDuration,
    /// Per-4KiB-block CPU work: software CRC32 + per-block bookkeeping.
    pub cpu_per_block: SimDuration,
    /// Per-I/O *latency* through the software SA at light load — larger
    /// than the pure CPU work because it includes VM exits, notification
    /// and scheduling waits that overlap other I/Os. Fig. 6 shows the
    /// software SA at ~30-45 µs median once LUNA removed the network
    /// bottleneck (§3.3 "SA is becoming the bottleneck").
    pub latency_per_io: SimDuration,
}

impl SaCosts {
    /// The software SA (host or DPU CPU).
    pub fn software() -> Self {
        SaCosts {
            cpu_per_io: SimDuration::from_micros_f64(7.0),
            cpu_per_block: SimDuration::from_micros_f64(0.8),
            latency_per_io: SimDuration::from_micros_f64(26.0),
        }
    }

    /// CPU work for an I/O of `blocks` blocks.
    pub fn cpu_for(&self, blocks: usize) -> SimDuration {
        self.cpu_per_io + self.cpu_per_block.saturating_mul(blocks as u64)
    }
}

/// SOLAR's hardware-era SA costs.
#[derive(Debug, Clone, Copy)]
pub struct SolarCosts {
    /// FPGA pipeline traversal per packet (QoS+Block+CRC+SEC+PktGen at
    /// a few hundred ns — Table 3's modules at line rate).
    pub pipeline: SimDuration,
    /// DPU-CPU control-plane work to issue an RPC: poll the I/O, build
    /// headers, pick paths (§4.5's WRITE workflow).
    pub cpu_per_rpc: SimDuration,
    /// Latency-critical completion work: the final data-integrity check
    /// (segment CRC aggregation) and the guest doorbell (§4.5). This is
    /// the only completion-side CPU the I/O waits for.
    pub cpu_doorbell: SimDuration,
    /// Post-doorbell Path&CC work per per-packet ACK: window updates,
    /// RTT/path bookkeeping. Occupies the DPU CPU (so it gates
    /// throughput and, when the cores saturate, delays doorbells — the
    /// SA tail of §4.7) but is off the critical path of the I/O it
    /// belongs to.
    pub cpu_cc_per_ack: SimDuration,
    /// Post-doorbell per-RPC CC/cleanup work.
    pub cpu_cc_per_completion: SimDuration,
}

impl SolarCosts {
    /// Full SOLAR (data plane in FPGA).
    pub fn offloaded() -> Self {
        SolarCosts {
            pipeline: SimDuration::from_nanos(350),
            cpu_per_rpc: SimDuration::from_micros_f64(2.0),
            cpu_doorbell: SimDuration::from_micros_f64(1.2),
            cpu_cc_per_ack: SimDuration::from_micros_f64(0.65),
            cpu_cc_per_completion: SimDuration::from_micros_f64(2.4),
        }
    }

    /// SOLAR* — §4.7's ablation with data-plane offloading disabled: the
    /// protocol is unchanged but blocks cross the DPU CPU, adding
    /// per-block software work (CRC + copies) back.
    pub fn star_extra_per_block() -> SimDuration {
        SimDuration::from_micros_f64(1.0)
    }
}

/// RDMA-variant costs: transport is offloaded (verbs post/poll is cheap)
/// but the SA stays in software (Fig. 10b).
#[derive(Debug, Clone, Copy)]
pub struct RdmaCosts {
    /// CPU per verb pair (post_send + completion poll).
    pub cpu_per_rpc: SimDuration,
    /// Added latency per crossing (NIC DMA + doorbell), far below a
    /// software stack.
    pub crossing_latency: SimDuration,
}

impl RdmaCosts {
    /// Calibrated to "close to RDMA" latency in Fig. 15a.
    pub fn default_costs() -> Self {
        RdmaCosts {
            cpu_per_rpc: SimDuration::from_micros_f64(0.7),
            crossing_latency: SimDuration::from_micros_f64(0.9),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solar_core_iops_matches_paper() {
        // §4.8: "SOLAR manages to handle about 150K IOPS per CPU core"
        // (one 4 KiB I/O = one RPC, one ACK, one completion).
        let c = SolarCosts::offloaded();
        let per_io = (c.cpu_per_rpc + c.cpu_doorbell + c.cpu_cc_per_ack + c.cpu_cc_per_completion)
            .as_secs_f64();
        let iops_per_core = 1.0 / per_io;
        assert!(
            (125_000.0..175_000.0).contains(&iops_per_core),
            "{iops_per_core} IOPS/core vs paper ~150K"
        );
    }

    #[test]
    fn software_sa_latency_dominates_solar_sa() {
        // Fig. 6c: SOLAR cuts the SA median by ~95% for 4K writes: the
        // FPGA path's submit latency vs the software SA's.
        let sw = SaCosts::software().latency_per_io.as_micros_f64();
        let hw = SolarCosts::offloaded().pipeline.as_micros_f64()
            + SolarCosts::offloaded().cpu_per_rpc.as_micros_f64();
        assert!(hw < 0.10 * sw, "hw {hw}us vs sw {sw}us");
    }

    #[test]
    fn single_core_throughput_gain_matches_fig14() {
        // Fig. 14a: SOLAR's single-core 64 KiB throughput ≈ +78% over
        // LUNA; Fig. 14b: single-core 4 KiB IOPS ≈ +46%.
        let sa = SaCosts::software();
        let luna = ebs_luna::StackCosts::luna();
        let solar = SolarCosts::offloaded();
        let blocks_64k = 16u64;
        let luna_io_cpu =
            (sa.cpu_for(16) + luna.cpu_for_rpc(65536) + luna.cpu_per_rpc).as_secs_f64();
        let solar_io_cpu = (solar.cpu_per_rpc
            + solar.cpu_doorbell
            + solar.cpu_cc_per_completion
            + solar.cpu_cc_per_ack.saturating_mul(blocks_64k))
        .as_secs_f64();
        let gain = luna_io_cpu / solar_io_cpu; // throughput ∝ 1/cpu
        assert!(
            (1.5..2.1).contains(&gain),
            "64K throughput gain {gain:.2} vs 1.78"
        );

        let luna_4k = (sa.cpu_for(1) + luna.cpu_for_rpc(4096) + luna.cpu_per_rpc).as_secs_f64();
        let solar_4k = (solar.cpu_per_rpc
            + solar.cpu_doorbell
            + solar.cpu_cc_per_completion
            + solar.cpu_cc_per_ack)
            .as_secs_f64();
        let gain = luna_4k / solar_4k;
        assert!(
            (1.25..1.75).contains(&gain),
            "4K IOPS gain {gain:.2} vs 1.46"
        );
    }
}
