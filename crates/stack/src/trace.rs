//! Distributed tracing of I/O latency.
//!
//! Production EBS attributes every I/O's latency to SA / FN / BN / SSD
//! via distributed trace (Fig. 6 caption); the testbed does the same so
//! experiments can print the paper's stacked-bar breakdowns. QoS policy
//! delay is recorded separately and excluded from the components, exactly
//! as the paper's measurement methodology prescribes.

use ebs_sa::IoKind;
use ebs_sim::{SimDuration, SimTime};
use ebs_stats::Histogram;

/// One I/O's trace record.
#[derive(Debug, Clone, Copy)]
pub struct IoTrace {
    /// Issuing compute server.
    pub compute: usize,
    /// Read or write.
    pub kind: IoKind,
    /// I/O size in bytes.
    pub bytes: u32,
    /// Guest submission time.
    pub submitted: SimTime,
    /// Completion time (None = still outstanding / hung).
    pub completed: Option<SimTime>,
    /// QoS policy delay (excluded from the component breakdown).
    pub qos_delay: SimDuration,
    /// Storage-agent time (tables, CRC, crypto, PCIe, CPU queueing).
    pub sa: SimDuration,
    /// Frontend-network time (transport round trip minus storage time).
    pub fn_: SimDuration,
    /// Backend-network time inside the storage cluster.
    pub bn: SimDuration,
    /// Chunk-server + SSD time.
    pub ssd: SimDuration,
}

impl IoTrace {
    /// End-to-end latency excluding QoS policy delay.
    pub fn latency(&self) -> Option<SimDuration> {
        self.completed.map(|c| {
            c.saturating_since(self.submitted)
                .saturating_sub(self.qos_delay)
        })
    }

    /// True if unanswered for at least `threshold` at observation time
    /// `now` (the paper's I/O-hang definition uses one minute; Table 2
    /// counts one second).
    pub fn hung(&self, now: SimTime, threshold: SimDuration) -> bool {
        match self.completed {
            Some(c) => c.saturating_since(self.submitted) >= threshold,
            None => now.saturating_since(self.submitted) >= threshold,
        }
    }
}

/// Aggregated component histograms over a set of traces (one Fig. 6 bar
/// group).
#[derive(Debug)]
pub struct Breakdown {
    /// SA component.
    pub sa: Histogram,
    /// FN component.
    pub fn_: Histogram,
    /// BN component.
    pub bn: Histogram,
    /// SSD component.
    pub ssd: Histogram,
    /// End-to-end (ex-QoS).
    pub total: Histogram,
}

impl Breakdown {
    /// Aggregate completed traces matching `kind` and `bytes`.
    pub fn collect<'a>(
        traces: impl IntoIterator<Item = &'a IoTrace>,
        kind: IoKind,
        bytes: u32,
    ) -> Self {
        let mut b = Breakdown {
            sa: Histogram::new(),
            fn_: Histogram::new(),
            bn: Histogram::new(),
            ssd: Histogram::new(),
            total: Histogram::new(),
        };
        for t in traces {
            if t.kind != kind || t.bytes != bytes || t.completed.is_none() {
                continue;
            }
            b.sa.record_ns(t.sa.as_nanos());
            b.fn_.record_ns(t.fn_.as_nanos());
            b.bn.record_ns(t.bn.as_nanos());
            b.ssd.record_ns(t.ssd.as_nanos());
            b.total
                .record_ns(t.latency().expect("completed").as_nanos());
        }
        b
    }

    /// Re-derive the Fig. 6 breakdown for (`kind`, `bytes`) I/Os from the
    /// observability journal instead of the [`IoTrace`] records. The
    /// testbed emits spans that tile each completed I/O (see
    /// [`crate::diag`]), so per-I/O component sums here equal the trace
    /// fields exactly; on a compiled-out or empty journal every histogram
    /// is simply empty.
    pub fn from_journal(journal: &ebs_obs::Journal, kind: IoKind, bytes: u32) -> Self {
        use ebs_obs::EventKind;
        use std::collections::BTreeMap;

        let want = match kind {
            IoKind::Read => "read",
            IoKind::Write => "write",
        };
        // Size filter: submit instants carry `bytes << 1 | is_write`.
        let mut bytes_of: BTreeMap<u64, u64> = BTreeMap::new();
        for ev in journal.events() {
            if ev.track != crate::diag::IO_TRACK {
                continue;
            }
            if let EventKind::Instant {
                name: "submit",
                id,
                arg,
            } = ev.kind
            {
                bytes_of.insert(id, arg >> 1);
            }
        }
        // Completed, matching I/Os and their end-to-end (ex-QoS) latency.
        let mut totals: BTreeMap<u64, u64> = BTreeMap::new();
        for ev in journal.events() {
            if ev.track != crate::diag::IO_TRACK {
                continue;
            }
            if let EventKind::Span { name, id, dur } = ev.kind {
                if name == want && bytes_of.get(&id) == Some(&(bytes as u64)) {
                    totals.insert(id, dur.as_nanos());
                }
            }
        }
        // Per-I/O component sums (`sa` appears twice per I/O: submission
        // and completion side).
        let mut comp: BTreeMap<u64, [u64; 4]> = BTreeMap::new();
        for ev in journal.events() {
            if let EventKind::Span { id, dur, .. } = ev.kind {
                if !totals.contains_key(&id) {
                    continue;
                }
                let sums = comp.entry(id).or_insert([0; 4]);
                match ev.track {
                    "sa" => sums[0] += dur.as_nanos(),
                    "fn" => sums[1] += dur.as_nanos(),
                    "bn" => sums[2] += dur.as_nanos(),
                    "ssd" => sums[3] += dur.as_nanos(),
                    _ => {}
                }
            }
        }
        let mut b = Breakdown {
            sa: Histogram::new(),
            fn_: Histogram::new(),
            bn: Histogram::new(),
            ssd: Histogram::new(),
            total: Histogram::new(),
        };
        for (id, total) in &totals {
            let sums = comp.get(id).copied().unwrap_or([0; 4]);
            b.sa.record_ns(sums[0]);
            b.fn_.record_ns(sums[1]);
            b.bn.record_ns(sums[2]);
            b.ssd.record_ns(sums[3]);
            b.total.record_ns(*total);
        }
        b
    }

    /// (sa, fn, bn, ssd, total) at quantile `q`, in microseconds.
    pub fn at(&self, q: f64) -> (f64, f64, f64, f64, f64) {
        let us = |h: &Histogram| h.quantile(q) as f64 / 1000.0;
        (
            us(&self.sa),
            us(&self.fn_),
            us(&self.bn),
            us(&self.ssd),
            us(&self.total),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(done_us: u64) -> IoTrace {
        IoTrace {
            compute: 0,
            kind: IoKind::Write,
            bytes: 4096,
            submitted: SimTime::ZERO,
            completed: Some(SimTime::from_micros(done_us)),
            qos_delay: SimDuration::ZERO,
            sa: SimDuration::from_micros(10),
            fn_: SimDuration::from_micros(20),
            bn: SimDuration::from_micros(5),
            ssd: SimDuration::from_micros(15),
        }
    }

    #[test]
    fn latency_excludes_qos() {
        let mut tr = t(100);
        tr.qos_delay = SimDuration::from_micros(40);
        assert_eq!(tr.latency().unwrap(), SimDuration::from_micros(60));
    }

    #[test]
    fn hang_detection() {
        let mut tr = t(100);
        tr.completed = None;
        assert!(!tr.hung(SimTime::from_millis(1), SimDuration::from_secs(1)));
        assert!(tr.hung(SimTime::from_secs(2), SimDuration::from_secs(1)));
        // A completed-but-slow I/O also counts.
        let slow = IoTrace {
            completed: Some(SimTime::from_secs(3)),
            ..t(0)
        };
        assert!(slow.hung(SimTime::from_secs(10), SimDuration::from_secs(1)));
    }

    #[test]
    fn breakdown_filters_and_aggregates() {
        let traces = vec![t(50), t(60), {
            let mut x = t(1000);
            x.kind = IoKind::Read;
            x
        }];
        let b = Breakdown::collect(&traces, IoKind::Write, 4096);
        assert_eq!(b.total.count(), 2);
        let (sa, f, bn, ssd, total) = b.at(0.5);
        assert!((sa - 10.0).abs() < 0.5);
        assert!((f - 20.0).abs() < 0.7);
        assert!((bn - 5.0).abs() < 0.3);
        assert!((ssd - 15.0).abs() < 0.6);
        assert!(total >= 50.0);
    }
}
