//! The host stack's single sanctioned wall-clock tap.
//!
//! Everything in `ebs-stack` that reads real time — the profiler's
//! per-phase attribution, the sharded executor's busy/stall accounting —
//! funnels through [`now`]. The readings feed human-facing diagnostics
//! only; simulated time is always an injected `ebs_sim::SimTime`. Keeping
//! the tap in one function gives the lint's call-graph pass a reviewed
//! boundary (`[callgraph] boundary` in `lint.toml`): taint from
//! `Instant::now` stops here instead of flagging every profiled entry
//! point from `run_until` up through the chaos harness.

/// Read the wall clock. Stats only — must never feed simulated state.
pub(crate) fn now() -> std::time::Instant {
    // lint: allow(determinism) — profiling/stall accounting only; readings never influence simulated state or replayed bytes
    std::time::Instant::now()
}
