//! Property tests: SOLAR delivers every block exactly once under loss,
//! reordering and path failures — the transport invariant the paper's
//! reliability claims rest on.

use bytes::Bytes;
use ebs_sim::{EventQueue, SimDuration, SimTime};
use ebs_solar::{
    InPacket, ReadBlock, ServerAction, SolarClient, SolarConfig, SolarEvent, SolarResponder,
    WriteBlock,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

enum Ev {
    ToServer(InPacket),
    ToClient(InPacket),
    Tick,
}

struct World {
    client: SolarClient,
    server: SolarResponder,
    q: EventQueue<Ev>,
    rng: SmallRng,
    loss: f64,
    /// Writes the server actually committed (exactly-once check).
    committed: Vec<(u64, u16)>,
    /// Per (direction, path) last scheduled delivery: a single ECMP route
    /// is FIFO, so same-path packets must not overtake each other (SOLAR's
    /// gap detector relies on exactly this fabric property). Cross-path
    /// reordering remains arbitrary via the jitter.
    last_delivery: std::collections::HashMap<(bool, u8), u64>,
}

impl World {
    fn new(seed: u64, loss: f64) -> Self {
        World {
            client: SolarClient::new(SolarConfig::default()),
            server: SolarResponder::new(),
            q: EventQueue::new(),
            rng: SmallRng::seed_from_u64(seed),
            loss,
            committed: Vec::new(),
            last_delivery: std::collections::HashMap::new(),
        }
    }

    fn fly(&mut self, now: SimTime, ev: Ev) {
        let key = match &ev {
            Ev::ToServer(p) => Some((true, p.hdr.path_id)),
            Ev::ToClient(p) => Some((false, p.hdr.path_id)),
            Ev::Tick => None,
        };
        if key.is_some() && self.rng.gen::<f64>() < self.loss {
            return; // lost in the fabric
        }
        let jitter = SimDuration::from_micros(self.rng.gen_range(5..100));
        let mut at = (now + jitter).as_nanos();
        if let Some(key) = key {
            let last = self.last_delivery.entry(key).or_insert(0);
            at = at.max(*last + 1); // per-path FIFO
            *last = at;
        }
        self.q.schedule_at(SimTime::from_nanos(at), ev);
    }

    fn pump(&mut self, now: SimTime) {
        while let Some(out) = self.client.poll_transmit(now) {
            self.fly(
                now,
                Ev::ToServer(InPacket {
                    hdr: out.hdr,
                    payload: out.payload,
                    int: None,
                }),
            );
        }
        if let Some(t) = self.client.poll_timer() {
            if t > now {
                self.q.schedule_at(t, Ev::Tick);
            }
        }
    }

    fn run(&mut self, horizon: SimTime) -> Vec<SolarEvent> {
        let mut events = Vec::new();
        self.pump(SimTime::ZERO);
        while let Some((now, ev)) = self.q.pop() {
            if now > horizon {
                break;
            }
            match ev {
                Ev::ToServer(pkt) => {
                    let action = self.server.on_packet(pkt);
                    match action {
                        ServerAction::StoreBlock { hdr, int, .. } => {
                            self.committed.push((hdr.rpc_id, hdr.pkt_id));
                            let (ack, _) = self.server.write_ack(&hdr, int);
                            self.fly(
                                now,
                                Ev::ToClient(InPacket {
                                    hdr: ack.hdr,
                                    payload: ack.payload,
                                    int: None,
                                }),
                            );
                        }
                        ServerAction::FetchBlock { hdr } => {
                            let resp = self.server.read_resp(
                                &hdr,
                                Bytes::from(vec![hdr.block_addr as u8; 32]),
                                hdr.block_addr as u32,
                            );
                            self.fly(
                                now,
                                Ev::ToClient(InPacket {
                                    hdr: resp.hdr,
                                    payload: resp.payload,
                                    int: None,
                                }),
                            );
                        }
                        ServerAction::Reply(p) => {
                            self.fly(
                                now,
                                Ev::ToClient(InPacket {
                                    hdr: p.hdr,
                                    payload: p.payload,
                                    int: None,
                                }),
                            );
                        }
                        ServerAction::None => {}
                    }
                }
                Ev::ToClient(pkt) => self.client.on_packet(now, pkt),
                Ev::Tick => self.client.on_timer(now),
            }
            if let Some(t) = self.client.poll_timer() {
                if t <= now {
                    self.client.on_timer(now);
                }
            }
            self.pump(now);
            while let Some(e) = self.client.poll_event() {
                events.push(e);
            }
            if self.client.inflight_rpcs() == 0 {
                break;
            }
        }
        events
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All write RPCs complete under 15% loss, and every block was
    /// committed at least once (duplicates allowed on the wire — the
    /// block write is idempotent, §4.4's independence property).
    #[test]
    fn writes_complete_under_loss(
        seed in any::<u64>(),
        n_rpcs in 1usize..6,
        blocks_per_rpc in 1usize..10,
    ) {
        let mut w = World::new(seed, 0.15);
        for r in 0..n_rpcs {
            let blocks = (0..blocks_per_rpc)
                .map(|i| WriteBlock { block_addr: i as u64, payload: Bytes::new(), crc: 0 })
                .collect();
            w.client.submit_write(SimTime::ZERO, r as u64, 1, 1, blocks);
        }
        let events = w.run(SimTime::from_secs(60));
        let completed = events
            .iter()
            .filter(|e| matches!(e, SolarEvent::RpcCompleted { .. }))
            .count();
        prop_assert_eq!(completed, n_rpcs, "stats: {:?}", w.client.stats());
        // Exactly-once upward: every (rpc, pkt) committed at least once.
        for r in 0..n_rpcs as u64 {
            for p in 0..blocks_per_rpc as u16 {
                prop_assert!(w.committed.contains(&(r, p)), "({r},{p}) never stored");
            }
        }
    }

    /// Reads deliver each block exactly once to the app even with loss
    /// and reordering.
    #[test]
    fn reads_deliver_exactly_once(
        seed in any::<u64>(),
        blocks in 1usize..16,
    ) {
        let mut w = World::new(seed, 0.15);
        let req = (0..blocks)
            .map(|i| ReadBlock { block_addr: i as u64, guest_addr: 0x1000 * i as u64 })
            .collect();
        w.client.submit_read(SimTime::ZERO, 9, 1, 1, req);
        let events = w.run(SimTime::from_secs(60));
        let mut got: Vec<u16> = events
            .iter()
            .filter_map(|e| match e {
                SolarEvent::BlockReceived { pkt_id, .. } => Some(*pkt_id),
                _ => None,
            })
            .collect();
        got.sort();
        let expect: Vec<u16> = (0..blocks as u16).collect();
        prop_assert_eq!(got, expect, "each block exactly once");
        prop_assert_eq!(
            events.iter().filter(|e| matches!(e, SolarEvent::RpcCompleted { .. })).count(),
            1
        );
    }

    /// Zero loss ⇒ zero retransmissions, even with heavy jitter-induced
    /// reordering (the one-block-one-packet independence property).
    #[test]
    fn reordering_alone_never_retransmits(seed in any::<u64>(), blocks in 1usize..32) {
        let mut w = World::new(seed, 0.0);
        let wb = (0..blocks)
            .map(|i| WriteBlock { block_addr: i as u64, payload: Bytes::new(), crc: 0 })
            .collect();
        w.client.submit_write(SimTime::ZERO, 1, 1, 1, wb);
        let _ = w.run(SimTime::from_secs(60));
        prop_assert_eq!(w.client.stats().retransmits, 0);
        prop_assert_eq!(w.client.stats().rpcs_completed, 1);
    }
}
