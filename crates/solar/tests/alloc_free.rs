//! Proof of the zero-copy data path: once the block pool is warm, a
//! steady-state SOLAR write burst performs **zero payload-sized heap
//! allocations**. Every 4 KiB packet payload is a recycled pool block and
//! every clone along the TX/retransmit path is an O(1) handle copy.
//!
//! The proof is a counting [`GlobalAlloc`] wrapper: while armed, it counts
//! every allocation of `PAYLOAD_BYTES` or more. Small bookkeeping
//! allocations (queue nodes, `Arc` headers) are deliberately not counted —
//! the claim pinned here is about the 4 KiB *payload* churn, which is what
//! scales with offered load.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use bytes::Bytes;
use ebs_sim::SimTime;
use ebs_solar::{InPacket, ServerAction, SolarClient, SolarConfig, SolarResponder, WriteBlock};

const PAYLOAD_BYTES: usize = 4096;

/// Counts allocations big enough to be packet payloads while armed.
struct PayloadAllocSpy;

static ARMED: AtomicBool = AtomicBool::new(false);
static PAYLOAD_ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System`; the only extra work is two atomic
// reads/writes, which allocate nothing.
unsafe impl GlobalAlloc for PayloadAllocSpy {
    // SAFETY contract: same as `System::alloc` — we forward the layout
    // untouched, so the returned pointer obeys it.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if layout.size() >= PAYLOAD_BYTES && ARMED.load(Ordering::Relaxed) {
            PAYLOAD_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: `layout` is the caller's, forwarded verbatim.
        unsafe { System.alloc(layout) }
    }

    // SAFETY contract: same as `System::dealloc` — pointer and layout are
    // forwarded verbatim from a matching `alloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` came from the matching `alloc` call.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY contract: same as `System::realloc` — arguments forwarded
    // verbatim.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if new_size >= PAYLOAD_BYTES && ARMED.load(Ordering::Relaxed) {
            PAYLOAD_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: `ptr`/`layout`/`new_size` are the caller's, forwarded
        // verbatim.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static SPY: PayloadAllocSpy = PayloadAllocSpy;

/// One complete 8-block write RPC: pooled payloads in, packets out, ACKs
/// back, RPC completed. Returns when nothing is left in flight.
fn write_burst(client: &mut SolarClient, resp: &mut SolarResponder, rpc_id: u64, now: SimTime) {
    let blocks: Vec<WriteBlock> = (0..8u64)
        .map(|i| {
            // The steady-state payload source: a recycled pool block,
            // filled in place and frozen without copying.
            let payload: Bytes = ebs_wire::pool::with_default_pool(|p| {
                let mut buf = p.take_zeroed();
                buf[..8].copy_from_slice(&rpc_id.to_le_bytes());
                buf.freeze().into_bytes()
            });
            let crc = ebs_crc::crc32_raw(&payload);
            WriteBlock {
                block_addr: i,
                payload,
                crc,
            }
        })
        .collect();
    client.submit_write(now, rpc_id, 1, 1, blocks);
    while let Some(out) = client.poll_transmit(now) {
        if let ServerAction::StoreBlock { hdr, int, .. } = resp.on_packet(InPacket {
            hdr: out.hdr,
            payload: out.payload,
            int: None,
        }) {
            let (ack, _) = resp.write_ack(&hdr, int);
            client.on_packet(
                now,
                InPacket {
                    hdr: ack.hdr,
                    payload: Bytes::new(),
                    int: None,
                },
            );
        }
    }
    // Fire expired timers and drain completion events the way a real
    // host would — left alone, the timer heap and event deque would grow
    // without bound and their capacity doublings would pollute the count.
    client.on_timer(now);
    while client.poll_event().is_some() {}
}

#[test]
fn steady_state_write_burst_makes_no_payload_allocations() {
    let mut client = SolarClient::new(SolarConfig::default());
    let mut resp = SolarResponder::new();
    let mut now = SimTime::ZERO;

    // Warm-up: populate the thread-local block pool and let the client's
    // internal maps/queues/timer heap reach their steady-state capacity
    // (the RTO timer heap drains only as simulated time passes, so it
    // needs several RTOs of warm-up before its footprint plateaus).
    for rpc in 0..512u64 {
        write_burst(&mut client, &mut resp, rpc, now);
        now += ebs_sim::SimDuration::from_micros(10);
    }

    // Steady state, under the microscope.
    let before = ebs_wire::pool::default_pool_stats();
    PAYLOAD_ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    for rpc in 512..768u64 {
        write_burst(&mut client, &mut resp, rpc, now);
        now += ebs_sim::SimDuration::from_micros(10);
    }
    ARMED.store(false, Ordering::SeqCst);
    let after = ebs_wire::pool::default_pool_stats();

    let payload_allocs = PAYLOAD_ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        after.misses, before.misses,
        "a warm pool must serve every steady-state block from its free list"
    );
    assert_eq!(
        client.stats().rpcs_completed,
        768,
        "every burst must complete"
    );
    assert_eq!(
        payload_allocs, 0,
        "steady-state write bursts must recycle every 4 KiB payload \
         (got {payload_allocs} payload-sized allocations in 256 RPCs)"
    );
}

/// Control experiment: the same burst built the pre-pool way (one `Vec`
/// per payload) is *not* allocation-free — proving the spy actually sees
/// payload-sized allocations and the zero above is meaningful.
#[test]
fn vec_payloads_are_seen_by_the_spy() {
    ARMED.store(true, Ordering::SeqCst);
    let before = PAYLOAD_ALLOCS.load(Ordering::SeqCst);
    let payload = Bytes::from(vec![0u8; PAYLOAD_BYTES]);
    let after = PAYLOAD_ALLOCS.load(Ordering::SeqCst);
    ARMED.store(false, Ordering::SeqCst);
    assert_eq!(payload.len(), PAYLOAD_BYTES);
    assert!(after > before, "the spy must count a 4 KiB Vec allocation");
}
