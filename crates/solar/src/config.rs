//! SOLAR transport configuration.

use ebs_sim::{Bandwidth, SimDuration};

/// HPCC-style congestion control parameters (per path).
#[derive(Debug, Clone, Copy)]
pub struct HpccConfig {
    /// Target utilization η (HPCC uses 0.95).
    pub eta: f64,
    /// Additive increase per ACK, in bytes (W_ai).
    pub wai_bytes: f64,
    /// Maximum additive-increase stages before a multiplicative update is
    /// forced (HPCC's maxStage).
    pub max_stage: u32,
    /// Line rate of the bottleneck-free path (sets the initial window).
    pub line_rate: Bandwidth,
    /// Base (unloaded) RTT; with `line_rate` gives the BDP.
    pub base_rtt: SimDuration,
    /// Lower bound on the window so a path can always probe (bytes).
    pub min_window: f64,
}

impl Default for HpccConfig {
    fn default() -> Self {
        HpccConfig {
            eta: 0.95,
            wai_bytes: 4096.0,
            max_stage: 5,
            // Per-path share of a 2x25GE NIC spraying over 4 paths: the
            // *initial* window is one path's fair share of the NIC; HPCC
            // grows it when INT shows headroom.
            line_rate: Bandwidth::from_gbps(25),
            base_rtt: SimDuration::from_micros(20),
            min_window: 2.0 * 4096.0,
        }
    }
}

impl HpccConfig {
    /// The bandwidth-delay product: initial and reference maximum window.
    pub fn bdp_bytes(&self) -> f64 {
        self.line_rate.bytes_per_sec() * self.base_rtt.as_secs_f64()
    }
}

/// SOLAR transport configuration.
#[derive(Debug, Clone)]
pub struct SolarConfig {
    /// Persistent paths per (compute, block-server) pair (§4.5 uses 4).
    pub n_paths: usize,
    /// Source UDP port of path 0; path `i` uses `base_port + i`.
    pub base_port: u16,
    /// Storage block size (4096).
    pub block_size: usize,
    /// RTO before any RTT estimate exists on a path.
    pub rto_initial: SimDuration,
    /// RTO floor.
    pub rto_min: SimDuration,
    /// RTO ceiling.
    pub rto_max: SimDuration,
    /// Consecutive timeouts on one path that mark it failed (§4.5 "uses
    /// consecutive timeouts to infer a path failure").
    pub path_fail_threshold: u32,
    /// Probe interval while a path is failed.
    pub probe_interval: SimDuration,
    /// Retained for ablations: sender-side dupack-style loss inference is
    /// unsound for SOLAR (ACK order is storage-completion order), so loss
    /// is detected at the *receiver* via per-path arrival-sequence gaps
    /// and reported with `GapNack`. This knob no longer gates anything.
    pub reorder_threshold: u32,
    /// Unanswered probes on a failed path before it is *remapped* to a
    /// fresh UDP source port — i.e. a different ECMP hash. Persistent
    /// paths are cheap to keep, but a silently blackholed bucket must
    /// eventually be abandoned, not just probed.
    pub remap_after_probes: u32,
    /// Per-packet retransmit budget before the RPC is failed upward.
    /// Production EBS never abandons an I/O (the guest observes a hang,
    /// not an error — §3.3), so the default is effectively unbounded;
    /// tests set small budgets to exercise the failure path.
    pub max_pkt_retries: u32,
    /// Request INT stamping and run HPCC; otherwise a fixed window.
    pub int_enabled: bool,
    /// Congestion control parameters.
    pub hpcc: HpccConfig,
}

impl Default for SolarConfig {
    fn default() -> Self {
        SolarConfig {
            n_paths: 4,
            base_port: 47000,
            block_size: 4096,
            rto_initial: SimDuration::from_millis(1),
            // The per-packet RTT includes storage service (a WRITE ack
            // returns after 3-replica commit; a READ response after a
            // NAND read), so the floor must clear the storage tail, not
            // just the network's.
            rto_min: SimDuration::from_micros(500),
            // Storage round trips are ~100us; capping backoff at 20ms
            // bounds any packet's worst-case delivery (even a long streak
            // of losses stays well under the 1s hang threshold).
            rto_max: SimDuration::from_millis(20),
            path_fail_threshold: 3,
            probe_interval: SimDuration::from_millis(10),
            reorder_threshold: 3,
            remap_after_probes: 2,
            max_pkt_retries: u32::MAX,
            int_enabled: true,
            hpcc: HpccConfig::default(),
        }
    }
}
