//! SOLAR transport configuration.

use ebs_cc::{CcAlgo, CcConfig, DcqcnConfig, FixedConfig, SwiftConfig};
use ebs_sim::SimDuration;

pub use ebs_cc::HpccConfig;

/// SOLAR transport configuration.
#[derive(Debug, Clone)]
pub struct SolarConfig {
    /// Persistent paths per (compute, block-server) pair (§4.5 uses 4).
    pub n_paths: usize,
    /// Source UDP port of path 0; path `i` uses `base_port + i`.
    pub base_port: u16,
    /// Storage block size (4096).
    pub block_size: usize,
    /// RTO before any RTT estimate exists on a path.
    pub rto_initial: SimDuration,
    /// RTO floor.
    pub rto_min: SimDuration,
    /// RTO ceiling.
    pub rto_max: SimDuration,
    /// Consecutive timeouts on one path that mark it failed (§4.5 "uses
    /// consecutive timeouts to infer a path failure").
    pub path_fail_threshold: u32,
    /// Probe interval while a path is failed.
    pub probe_interval: SimDuration,
    /// Retained for ablations: sender-side dupack-style loss inference is
    /// unsound for SOLAR (ACK order is storage-completion order), so loss
    /// is detected at the *receiver* via per-path arrival-sequence gaps
    /// and reported with `GapNack`. This knob no longer gates anything.
    pub reorder_threshold: u32,
    /// Unanswered probes on a failed path before it is *remapped* to a
    /// fresh UDP source port — i.e. a different ECMP hash. Persistent
    /// paths are cheap to keep, but a silently blackholed bucket must
    /// eventually be abandoned, not just probed.
    pub remap_after_probes: u32,
    /// Per-packet retransmit budget before the RPC is failed upward.
    /// Production EBS never abandons an I/O (the guest observes a hang,
    /// not an error — §3.3), so the default is effectively unbounded;
    /// tests set small budgets to exercise the failure path.
    pub max_pkt_retries: u32,
    /// Request INT stamping; HPCC needs it, the other controllers ignore
    /// it (Swift reads RTT samples, DCQCN the echoed ECN bit).
    pub int_enabled: bool,
    /// Which per-path congestion controller to run (the paper's choice
    /// is HPCC; the others exist for the CC comparison matrix).
    pub cc: CcAlgo,
    /// HPCC parameters (also sets the fixed controller's window: the
    /// per-path BDP, matching the pre-trait no-INT behavior).
    pub hpcc: HpccConfig,
    /// Swift parameters (used when `cc == Swift`).
    pub swift: SwiftConfig,
    /// DCQCN parameters (used when `cc == Dcqcn`).
    pub dcqcn: DcqcnConfig,
}

impl Default for SolarConfig {
    fn default() -> Self {
        SolarConfig {
            n_paths: 4,
            base_port: 47000,
            block_size: 4096,
            rto_initial: SimDuration::from_millis(1),
            // The per-packet RTT includes storage service (a WRITE ack
            // returns after 3-replica commit; a READ response after a
            // NAND read), so the floor must clear the storage tail, not
            // just the network's.
            rto_min: SimDuration::from_micros(500),
            // Storage round trips are ~100us; capping backoff at 20ms
            // bounds any packet's worst-case delivery (even a long streak
            // of losses stays well under the 1s hang threshold).
            rto_max: SimDuration::from_millis(20),
            path_fail_threshold: 3,
            probe_interval: SimDuration::from_millis(10),
            reorder_threshold: 3,
            remap_after_probes: 2,
            max_pkt_retries: u32::MAX,
            int_enabled: true,
            cc: CcAlgo::Hpcc,
            hpcc: HpccConfig::default(),
            swift: SwiftConfig::default(),
            dcqcn: DcqcnConfig::default(),
        }
    }
}

impl SolarConfig {
    /// The per-path controller parameter bundle `PathSet` builds from.
    /// The fixed arm pins the window at the HPCC BDP so `cc = Fixed`
    /// reproduces the pre-trait `int_enabled = false` behavior exactly.
    pub fn cc_config(&self) -> CcConfig {
        CcConfig {
            algo: self.cc,
            hpcc: self.hpcc,
            swift: self.swift,
            dcqcn: self.dcqcn,
            fixed: FixedConfig {
                window_bytes: self.hpcc.bdp_bytes(),
            },
        }
    }
}
