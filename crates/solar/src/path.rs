//! Per-path state: RTT/RTO, HPCC window, liveness.
//!
//! SOLAR keeps a small, fixed set of persistent paths to every block
//! server (distinct UDP source ports → distinct ECMP routes) and maintains
//! per-path condition — window, sending rate, RTT, consecutive timeouts —
//! entirely in the *control plane* (DPU CPU). No per-path state exists in
//! hardware, which is what lets multi-path scale (§4.4).

use std::collections::BTreeMap;

use ebs_sim::{SimDuration, SimTime};

use crate::config::SolarConfig;
use crate::hpcc::Hpcc;

/// Liveness of one path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathStatus {
    /// Healthy; eligible for spraying.
    Up,
    /// Declared failed after consecutive timeouts; probed until it
    /// answers.
    Failed {
        /// When the path was declared failed.
        since: SimTime,
    },
}

/// Identifies one in-flight packet (rpc, pkt) for bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PktKey {
    /// RPC id.
    pub rpc_id: u64,
    /// Packet index within the RPC.
    pub pkt_id: u16,
}

/// One persistent path toward a block server.
#[derive(Debug)]
pub struct Path {
    /// Path index (0..n_paths); the UDP source port is `base_port + id`.
    pub id: u8,
    status: PathStatus,
    srtt_ns: Option<f64>,
    rttvar_ns: f64,
    rto: SimDuration,
    consecutive_timeouts: u32,
    hpcc: Hpcc,
    inflight_bytes: u64,
    next_seq: u32,
    /// Outstanding path sequence numbers, for out-of-order loss detection.
    pub outstanding_seqs: BTreeMap<u32, PktKey>,
    next_probe: SimTime,
    /// Unanswered probes since the path failed.
    probes_unanswered: u32,
    /// How many times this path has been re-hashed onto a new source
    /// port after persistent probe failures.
    remap_generation: u16,
    /// Route epoch: bumped whenever the path's effective route changes
    /// (remap) or its liveness is re-established (revival). Timeouts of
    /// packets sent in an older epoch say nothing about the *current*
    /// route and must not count toward failing it — the liveness analogue
    /// of Karn's rule. Without this, a freshly revived path is instantly
    /// re-failed by the timeout wave of packets that flew on the old,
    /// bad route, and a client whose paths are all down can never escape.
    epoch: u32,
}

impl Path {
    /// A fresh, healthy path.
    pub fn new(id: u8, cfg: &SolarConfig) -> Self {
        Path {
            id,
            status: PathStatus::Up,
            srtt_ns: None,
            rttvar_ns: 0.0,
            rto: cfg.rto_initial,
            consecutive_timeouts: 0,
            hpcc: Hpcc::new(cfg.hpcc),
            inflight_bytes: 0,
            next_seq: 0,
            outstanding_seqs: BTreeMap::new(),
            next_probe: SimTime::ZERO,
            probes_unanswered: 0,
            remap_generation: 0,
            epoch: 0,
        }
    }

    /// The UDP source port this path currently uses. Remapping bumps the
    /// port by `n_paths` so the flow hashes onto a different ECMP bucket
    /// while the path id on the wire stays stable.
    pub fn src_port(&self, cfg: &SolarConfig) -> u16 {
        cfg.base_port + self.id as u16 + self.remap_generation.wrapping_mul(cfg.n_paths as u16)
    }

    /// Times this path has been remapped (diagnostics).
    pub fn remap_generation(&self) -> u16 {
        self.remap_generation
    }

    /// Current route epoch (see the field docs). Recorded per packet at
    /// transmit time; [`Path::on_timeout`] ignores stale-epoch timeouts.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Liveness.
    pub fn status(&self) -> PathStatus {
        self.status
    }

    /// True if the path may carry new packets.
    pub fn is_up(&self) -> bool {
        self.status == PathStatus::Up
    }

    /// Smoothed RTT estimate (used to prefer fast paths when spraying).
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt_ns.map(|ns| SimDuration::from_nanos(ns as u64))
    }

    /// Current retransmission timeout.
    pub fn rto(&self) -> SimDuration {
        self.rto
    }

    /// Congestion window in bytes.
    pub fn window(&self) -> u64 {
        self.hpcc.window() as u64
    }

    /// Last INT-derived utilization the congestion controller saw.
    pub fn last_utilization(&self) -> f64 {
        self.hpcc.last_utilization()
    }

    /// Unacked bytes currently attributed to this path.
    pub fn inflight_bytes(&self) -> u64 {
        self.inflight_bytes
    }

    /// Free window for new packets.
    pub fn available_window(&self) -> u64 {
        self.window().saturating_sub(self.inflight_bytes)
    }

    /// Consecutive timeout count (diagnostics).
    pub fn consecutive_timeouts(&self) -> u32 {
        self.consecutive_timeouts
    }

    /// Allocate the next per-path sequence number and account the bytes.
    pub fn register_tx(&mut self, key: PktKey, bytes: u64) -> u32 {
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        self.outstanding_seqs.insert(seq, key);
        self.inflight_bytes += bytes;
        seq
    }

    /// Remove a packet from this path's accounting (acked, timed out, or
    /// moved to another path).
    pub fn release(&mut self, seq: u32, bytes: u64) {
        self.outstanding_seqs.remove(&seq);
        self.inflight_bytes = self.inflight_bytes.saturating_sub(bytes);
    }

    /// Record a successful round trip: RTT sample (when `sample` is set —
    /// Karn's rule excludes retransmissions), HPCC update from the echoed
    /// INT, and liveness reset.
    pub fn on_ack(
        &mut self,
        now: SimTime,
        sample: Option<SimDuration>,
        int: Option<&ebs_wire::IntStack>,
        cfg: &SolarConfig,
    ) {
        self.consecutive_timeouts = 0;
        // NOTE: a Failed path is NOT revived by stray data ACKs — a lossy
        // path delivers a fraction of packets, and bouncing back on every
        // fluke success would keep feeding it traffic at ever-longer RTOs.
        // Only a clean probe round trip (`revive`) re-admits a path.
        if let Some(rtt) = sample {
            let r = rtt.as_nanos() as f64;
            match self.srtt_ns {
                None => {
                    self.srtt_ns = Some(r);
                    self.rttvar_ns = r / 2.0;
                }
                Some(srtt) => {
                    self.rttvar_ns = 0.75 * self.rttvar_ns + 0.25 * (srtt - r).abs();
                    self.srtt_ns = Some(0.875 * srtt + 0.125 * r);
                }
            }
            // RTO = srtt + 4*var, but never below 2x srtt: under incast
            // the *level* of RTT moves with queueing while the variance
            // estimator lags, and a timeout fired into genuine congestion
            // starts a flap-and-collapse spiral.
            // lint: allow(panic_discipline) — srtt_ns was assigned Some in both match arms above
            let srtt = self.srtt_ns.unwrap();
            let rto_ns = (srtt + 4.0 * self.rttvar_ns.max(1000.0)).max(2.0 * srtt);
            self.rto = SimDuration::from_nanos(rto_ns as u64)
                .max(cfg.rto_min)
                .min(cfg.rto_max);
        }
        if let Some(int) = int {
            self.hpcc.on_ack(now, int);
        }
    }

    /// Record a timeout of a packet sent in epoch `sent_epoch`; returns
    /// `true` if this crossed the failure threshold and the path was just
    /// declared down. A timeout from an older epoch flew on a route this
    /// path no longer uses (it has since remapped and/or revived): it
    /// still backs off the RTO — the *packet* is in trouble either way —
    /// but carries no evidence about the current route's liveness.
    pub fn on_timeout(&mut self, now: SimTime, sent_epoch: u32, cfg: &SolarConfig) -> bool {
        self.hpcc.on_timeout();
        self.rto = self.rto.mul_f64(2.0).min(cfg.rto_max);
        if sent_epoch != self.epoch {
            return false;
        }
        self.consecutive_timeouts += 1;
        if self.consecutive_timeouts >= cfg.path_fail_threshold && self.is_up() {
            self.status = PathStatus::Failed { since: now };
            self.next_probe = now + cfg.probe_interval;
            return true;
        }
        false
    }

    /// Next probe instant while failed.
    pub fn next_probe(&self) -> Option<SimTime> {
        match self.status {
            PathStatus::Failed { .. } => Some(self.next_probe),
            PathStatus::Up => None,
        }
    }

    /// A probe was just sent; schedule the next one. After
    /// `remap_after_probes` unanswered probes the path abandons its ECMP
    /// bucket: the source port moves, so the next probe tries a fresh
    /// fabric route.
    pub fn probe_sent(&mut self, now: SimTime, cfg: &SolarConfig) {
        self.next_probe = now + cfg.probe_interval;
        self.probes_unanswered += 1;
        if self.probes_unanswered >= cfg.remap_after_probes {
            self.remap_generation = self.remap_generation.wrapping_add(1);
            self.probes_unanswered = 0;
            self.epoch = self.epoch.wrapping_add(1);
        }
    }

    /// A probe answer arrived: the path is healthy again.
    pub fn revive(&mut self) {
        self.status = PathStatus::Up;
        self.consecutive_timeouts = 0;
        self.probes_unanswered = 0;
        self.epoch = self.epoch.wrapping_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SolarConfig {
        SolarConfig::default()
    }

    #[test]
    fn tx_accounting() {
        let c = cfg();
        let mut p = Path::new(0, &c);
        let k = PktKey {
            rpc_id: 1,
            pkt_id: 0,
        };
        let s0 = p.register_tx(k, 4096);
        let s1 = p.register_tx(
            PktKey {
                rpc_id: 1,
                pkt_id: 1,
            },
            4096,
        );
        assert_eq!(s1, s0 + 1);
        assert_eq!(p.inflight_bytes(), 8192);
        p.release(s0, 4096);
        assert_eq!(p.inflight_bytes(), 4096);
        assert_eq!(p.outstanding_seqs.len(), 1);
    }

    #[test]
    fn rtt_drives_rto() {
        let c = cfg();
        let mut p = Path::new(0, &c);
        for _ in 0..16 {
            p.on_ack(
                SimTime::from_micros(100),
                Some(SimDuration::from_micros(20)),
                None,
                &c,
            );
        }
        let rto = p.rto();
        // Converged rttvar makes srtt+4*var small; the floor clamps it.
        assert_eq!(rto, c.rto_min, "rto {rto}");
        assert_eq!(p.srtt().unwrap(), SimDuration::from_micros(20));
    }

    #[test]
    fn consecutive_timeouts_fail_path() {
        let c = cfg();
        let mut p = Path::new(0, &c);
        assert!(!p.on_timeout(SimTime::from_micros(1), p.epoch(), &c));
        assert!(!p.on_timeout(SimTime::from_micros(2), p.epoch(), &c));
        assert!(
            p.on_timeout(SimTime::from_micros(3), p.epoch(), &c),
            "third timeout fails path"
        );
        assert!(!p.is_up());
        // Further timeouts do not re-fail.
        assert!(!p.on_timeout(SimTime::from_micros(4), p.epoch(), &c));
    }

    #[test]
    fn ack_resets_timeout_streak() {
        let c = cfg();
        let mut p = Path::new(0, &c);
        p.on_timeout(SimTime::from_micros(1), p.epoch(), &c);
        p.on_timeout(SimTime::from_micros(2), p.epoch(), &c);
        p.on_ack(SimTime::from_micros(3), None, None, &c);
        assert_eq!(p.consecutive_timeouts(), 0);
        assert!(!p.on_timeout(SimTime::from_micros(4), p.epoch(), &c));
        assert!(p.is_up());
    }

    #[test]
    fn probe_cycle() {
        let c = cfg();
        let mut p = Path::new(0, &c);
        for i in 0..3 {
            p.on_timeout(SimTime::from_micros(i), p.epoch(), &c);
        }
        let probe_at = p.next_probe().expect("failed paths probe");
        assert!(probe_at > SimTime::from_micros(2));
        p.probe_sent(probe_at, &c);
        assert!(p.next_probe().unwrap() > probe_at);
        p.revive();
        assert!(p.is_up());
        assert!(p.next_probe().is_none());
    }

    #[test]
    fn timeout_backs_off_rto() {
        let c = cfg();
        let mut p = Path::new(0, &c);
        let r0 = p.rto();
        p.on_timeout(SimTime::from_micros(1), p.epoch(), &c);
        assert_eq!(p.rto(), r0.mul_f64(2.0));
    }
}
