//! Per-path state: RTT/RTO, HPCC window, liveness.
//!
//! SOLAR keeps a small, fixed set of persistent paths to every block
//! server (distinct UDP source ports → distinct ECMP routes) and maintains
//! per-path condition — window, sending rate, RTT, consecutive timeouts —
//! entirely in the *control plane* (DPU CPU). No per-path state exists in
//! hardware, which is what lets multi-path scale (§4.4).
//!
//! # Layout: struct-of-arrays
//!
//! The spray decision ([`SolarClient::poll_transmit`]) scans **every**
//! path per transmitted packet, reading exactly four scalars: liveness,
//! smoothed RTT, window and in-flight bytes. With one big struct per path
//! each of those reads pulls in a different cache line full of cold state
//! (the HPCC controller, the outstanding-sequence tree, probe counters).
//! [`PathSet`] therefore stores the hot scan fields in parallel arrays —
//! the whole spray scan for 8 paths touches a handful of contiguous
//! cache lines — and banishes everything only touched on ACK/timeout/
//! probe transitions to a cold per-path record. `probe_min_ns` caches
//! the earliest probe deadline so the per-poll "any probe due?" check is
//! one compare instead of a scan.
//!
//! [`SolarClient::poll_transmit`]: crate::SolarClient::poll_transmit

use std::collections::BTreeMap;

use ebs_cc::{AckSignal, AnyCc, CongestionControl};
use ebs_sim::{SimDuration, SimTime};

use crate::config::SolarConfig;

/// Liveness of one path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathStatus {
    /// Healthy; eligible for spraying.
    Up,
    /// Declared failed after consecutive timeouts; probed until it
    /// answers.
    Failed {
        /// When the path was declared failed.
        since: SimTime,
    },
}

/// Identifies one in-flight packet (rpc, pkt) for bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PktKey {
    /// RPC id.
    pub rpc_id: u64,
    /// Packet index within the RPC.
    pub pkt_id: u16,
}

/// Sentinel for "no probe scheduled" in [`PathSet::next_probe_ns`].
const NO_PROBE: u64 = u64::MAX;

/// Cold per-path state: only touched on ACK / timeout / probe
/// transitions, never by the per-packet spray scan.
#[derive(Debug)]
struct PathCold {
    rttvar_ns: f64,
    rto: SimDuration,
    consecutive_timeouts: u32,
    /// The per-path congestion controller `SolarConfig::cc` selects.
    cc: AnyCc,
    next_seq: u32,
    /// Outstanding path sequence numbers, for out-of-order loss detection.
    outstanding_seqs: BTreeMap<u32, PktKey>,
    /// When the path was declared failed (valid while not up).
    failed_since: SimTime,
    /// Unanswered probes since the path failed.
    probes_unanswered: u32,
    /// How many times this path has been re-hashed onto a new source
    /// port after persistent probe failures.
    remap_generation: u16,
    /// Route epoch: bumped whenever the path's effective route changes
    /// (remap) or its liveness is re-established (revival). Timeouts of
    /// packets sent in an older epoch say nothing about the *current*
    /// route and must not count toward failing it — the liveness analogue
    /// of Karn's rule. Without this, a freshly revived path is instantly
    /// re-failed by the timeout wave of packets that flew on the old,
    /// bad route, and a client whose paths are all down can never escape.
    epoch: u32,
}

/// The full per-client path table (see the module docs for the layout).
///
/// All methods take the path index `i` (`0..len()`); the UDP source port
/// is `base_port + i` plus the remap offset.
#[derive(Debug)]
pub struct PathSet {
    // --- hot: read by every spray / probe / timer poll ------------------
    /// Liveness flag (the hot projection of [`PathStatus`]).
    pub(crate) up: Vec<bool>,
    /// Smoothed RTT in ns; `NAN` until the first sample.
    pub(crate) srtt_ns: Vec<f64>,
    /// Cached `hpcc.window() as u64` (refreshed on every HPCC update).
    pub(crate) window: Vec<u64>,
    /// Unacked bytes currently attributed to the path.
    pub(crate) inflight: Vec<u64>,
    /// Next probe instant in ns; [`NO_PROBE`] while the path is up.
    pub(crate) next_probe_ns: Vec<u64>,
    /// `min(next_probe_ns)` — one compare decides "any probe due?".
    probe_min_ns: u64,
    // --- cold -----------------------------------------------------------
    cold: Vec<PathCold>,
}

impl PathSet {
    /// `n` fresh, healthy paths.
    pub fn new(n: usize, cfg: &SolarConfig) -> Self {
        let cc_cfg = cfg.cc_config();
        let cold: Vec<PathCold> = (0..n)
            .map(|_| PathCold {
                rttvar_ns: 0.0,
                rto: cfg.rto_initial,
                consecutive_timeouts: 0,
                cc: AnyCc::new(&cc_cfg),
                next_seq: 0,
                outstanding_seqs: BTreeMap::new(),
                failed_since: SimTime::ZERO,
                probes_unanswered: 0,
                remap_generation: 0,
                epoch: 0,
            })
            .collect();
        let window = cold.iter().map(|c| c.cc.window() as u64).collect();
        PathSet {
            up: vec![true; n],
            srtt_ns: vec![f64::NAN; n],
            window,
            inflight: vec![0; n],
            next_probe_ns: vec![NO_PROBE; n],
            probe_min_ns: NO_PROBE,
            cold,
        }
    }

    /// Number of paths.
    pub fn len(&self) -> usize {
        self.up.len()
    }

    /// True when the set holds no paths (never, for a valid client).
    pub fn is_empty(&self) -> bool {
        self.up.is_empty()
    }

    /// The UDP source port path `i` currently uses. Remapping bumps the
    /// port by `n_paths` so the flow hashes onto a different ECMP bucket
    /// while the path id on the wire stays stable.
    pub fn src_port(&self, i: usize, cfg: &SolarConfig) -> u16 {
        cfg.base_port
            + i as u16
            + self.cold[i]
                .remap_generation
                .wrapping_mul(cfg.n_paths as u16)
    }

    /// Times path `i` has been remapped (diagnostics).
    pub fn remap_generation(&self, i: usize) -> u16 {
        self.cold[i].remap_generation
    }

    /// Current route epoch of path `i`: bumped on every remap or revival
    /// so stale-route timeouts can be told apart from current-route ones.
    /// Recorded per packet at transmit time; [`PathSet::on_timeout`]
    /// ignores stale-epoch timeouts.
    pub fn epoch(&self, i: usize) -> u32 {
        self.cold[i].epoch
    }

    /// Liveness of path `i`.
    pub fn status(&self, i: usize) -> PathStatus {
        if self.up[i] {
            PathStatus::Up
        } else {
            PathStatus::Failed {
                since: self.cold[i].failed_since,
            }
        }
    }

    /// True if path `i` may carry new packets.
    pub fn is_up(&self, i: usize) -> bool {
        self.up[i]
    }

    /// Smoothed RTT estimate (used to prefer fast paths when spraying).
    pub fn srtt(&self, i: usize) -> Option<SimDuration> {
        let ns = self.srtt_ns[i];
        (!ns.is_nan()).then(|| SimDuration::from_nanos(ns as u64))
    }

    /// Current retransmission timeout of path `i`.
    pub fn rto(&self, i: usize) -> SimDuration {
        self.cold[i].rto
    }

    /// Congestion window of path `i` in bytes.
    pub fn window(&self, i: usize) -> u64 {
        self.window[i]
    }

    /// Last INT-derived utilization the congestion controller saw
    /// (0.0 unless the HPCC controller is selected — only HPCC consumes
    /// INT).
    pub fn last_utilization(&self, i: usize) -> f64 {
        self.cold[i]
            .cc
            .as_hpcc()
            .map_or(0.0, |h| h.last_utilization())
    }

    /// Unacked bytes currently attributed to path `i`.
    pub fn inflight_bytes(&self, i: usize) -> u64 {
        self.inflight[i]
    }

    /// Free window for new packets on path `i`.
    pub fn available_window(&self, i: usize) -> u64 {
        self.window[i].saturating_sub(self.inflight[i])
    }

    /// Consecutive timeout count (diagnostics).
    pub fn consecutive_timeouts(&self, i: usize) -> u32 {
        self.cold[i].consecutive_timeouts
    }

    /// Allocate the next per-path sequence number and account the bytes.
    pub fn register_tx(&mut self, i: usize, key: PktKey, bytes: u64) -> u32 {
        let c = &mut self.cold[i];
        let seq = c.next_seq;
        c.next_seq = c.next_seq.wrapping_add(1);
        c.outstanding_seqs.insert(seq, key);
        self.inflight[i] += bytes;
        seq
    }

    /// Remove a packet from path `i`'s accounting (acked, timed out, or
    /// moved to another path).
    pub fn release(&mut self, i: usize, seq: u32, bytes: u64) {
        self.cold[i].outstanding_seqs.remove(&seq);
        self.inflight[i] = self.inflight[i].saturating_sub(bytes);
    }

    /// Outstanding packets of path `i` with sequence in `start..end`
    /// (receiver-side gap reports; see `SolarClient::on_gap_nack`).
    pub fn outstanding_in(&self, i: usize, start: u32, end: u32) -> Vec<PktKey> {
        self.cold[i]
            .outstanding_seqs
            .range(start..end)
            .map(|(_, &k)| k)
            .collect()
    }

    /// Record a successful round trip on path `i`: RTT sample (when
    /// `sample` is set — Karn's rule excludes retransmissions), a
    /// congestion-controller update from whichever signals the ACK
    /// carried (echoed INT for HPCC, the RTT sample for Swift, the
    /// echoed ECN mark for DCQCN), and liveness reset.
    pub fn on_ack(
        &mut self,
        i: usize,
        now: SimTime,
        sample: Option<SimDuration>,
        int: Option<&ebs_wire::IntStack>,
        ecn: bool,
        cfg: &SolarConfig,
    ) {
        let c = &mut self.cold[i];
        c.consecutive_timeouts = 0;
        // NOTE: a Failed path is NOT revived by stray data ACKs — a lossy
        // path delivers a fraction of packets, and bouncing back on every
        // fluke success would keep feeding it traffic at ever-longer RTOs.
        // Only a clean probe round trip (`revive`) re-admits a path.
        if let Some(rtt) = sample {
            let r = rtt.as_nanos() as f64;
            let prev = self.srtt_ns[i];
            let srtt = if prev.is_nan() {
                c.rttvar_ns = r / 2.0;
                r
            } else {
                c.rttvar_ns = 0.75 * c.rttvar_ns + 0.25 * (prev - r).abs();
                0.875 * prev + 0.125 * r
            };
            self.srtt_ns[i] = srtt;
            // RTO = srtt + 4*var, but never below 2x srtt: under incast
            // the *level* of RTT moves with queueing while the variance
            // estimator lags, and a timeout fired into genuine congestion
            // starts a flap-and-collapse spiral.
            let rto_ns = (srtt + 4.0 * c.rttvar_ns.max(1000.0)).max(2.0 * srtt);
            c.rto = SimDuration::from_nanos(rto_ns as u64)
                .max(cfg.rto_min)
                .min(cfg.rto_max);
        }
        c.cc.on_ack(
            now,
            &AckSignal {
                rtt_sample: sample,
                int,
                ecn,
            },
        );
        self.window[i] = c.cc.window() as u64;
    }

    /// Record a timeout on path `i` of a packet sent in epoch
    /// `sent_epoch`; returns `true` if this crossed the failure threshold
    /// and the path was just declared down. A timeout from an older epoch
    /// flew on a route this path no longer uses (it has since remapped
    /// and/or revived): it still backs off the RTO — the *packet* is in
    /// trouble either way — but carries no evidence about the current
    /// route's liveness.
    pub fn on_timeout(
        &mut self,
        i: usize,
        now: SimTime,
        sent_epoch: u32,
        cfg: &SolarConfig,
    ) -> bool {
        let c = &mut self.cold[i];
        c.cc.on_timeout();
        self.window[i] = c.cc.window() as u64;
        c.rto = c.rto.mul_f64(2.0).min(cfg.rto_max);
        if sent_epoch != c.epoch {
            return false;
        }
        c.consecutive_timeouts += 1;
        if c.consecutive_timeouts >= cfg.path_fail_threshold && self.up[i] {
            self.up[i] = false;
            c.failed_since = now;
            let at = (now + cfg.probe_interval).as_nanos();
            self.next_probe_ns[i] = at;
            self.probe_min_ns = self.probe_min_ns.min(at);
            return true;
        }
        false
    }

    /// Next probe instant of path `i` while failed.
    pub fn next_probe(&self, i: usize) -> Option<SimTime> {
        let at = self.next_probe_ns[i];
        (at != NO_PROBE).then(|| SimTime::from_nanos(at))
    }

    /// Earliest probe deadline across all failed paths (O(1)).
    pub fn min_next_probe(&self) -> Option<SimTime> {
        (self.probe_min_ns != NO_PROBE).then(|| SimTime::from_nanos(self.probe_min_ns))
    }

    /// First path (in index order) whose probe is due at `now`, if any.
    /// One compare against the cached minimum in the common no-probe case.
    pub fn first_due_probe(&self, now: SimTime) -> Option<usize> {
        if self.probe_min_ns > now.as_nanos() {
            return None;
        }
        let now_ns = now.as_nanos();
        self.next_probe_ns.iter().position(|&at| at <= now_ns)
    }

    fn recompute_probe_min(&mut self) {
        self.probe_min_ns = self.next_probe_ns.iter().copied().min().unwrap_or(NO_PROBE);
    }

    /// A probe was just sent on path `i`; schedule the next one. After
    /// `remap_after_probes` unanswered probes the path abandons its ECMP
    /// bucket: the source port moves, so the next probe tries a fresh
    /// fabric route.
    pub fn probe_sent(&mut self, i: usize, now: SimTime, cfg: &SolarConfig) {
        self.next_probe_ns[i] = (now + cfg.probe_interval).as_nanos();
        let c = &mut self.cold[i];
        c.probes_unanswered += 1;
        if c.probes_unanswered >= cfg.remap_after_probes {
            c.remap_generation = c.remap_generation.wrapping_add(1);
            c.probes_unanswered = 0;
            c.epoch = c.epoch.wrapping_add(1);
        }
        self.recompute_probe_min();
    }

    /// A probe answer arrived: path `i` is healthy again.
    pub fn revive(&mut self, i: usize) {
        self.up[i] = true;
        self.next_probe_ns[i] = NO_PROBE;
        let c = &mut self.cold[i];
        c.consecutive_timeouts = 0;
        c.probes_unanswered = 0;
        c.epoch = c.epoch.wrapping_add(1);
        self.recompute_probe_min();
    }

    /// Read-only views for diagnostics (testbed debug dumps, tests).
    pub fn views(&self) -> impl Iterator<Item = PathView<'_>> {
        (0..self.len()).map(move |i| PathView { set: self, i })
    }
}

/// Read-only view of one path (diagnostics; the hot paths use the
/// index-based [`PathSet`] accessors directly).
#[derive(Debug, Clone, Copy)]
pub struct PathView<'a> {
    set: &'a PathSet,
    i: usize,
}

impl PathView<'_> {
    /// Path index (the UDP source port is `base_port + id`).
    pub fn id(&self) -> u8 {
        self.i as u8
    }
    /// Liveness.
    pub fn status(&self) -> PathStatus {
        self.set.status(self.i)
    }
    /// True if the path may carry new packets.
    pub fn is_up(&self) -> bool {
        self.set.is_up(self.i)
    }
    /// Smoothed RTT estimate.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.set.srtt(self.i)
    }
    /// Current retransmission timeout.
    pub fn rto(&self) -> SimDuration {
        self.set.rto(self.i)
    }
    /// Congestion window in bytes.
    pub fn window(&self) -> u64 {
        self.set.window(self.i)
    }
    /// Last INT-derived utilization.
    pub fn last_utilization(&self) -> f64 {
        self.set.last_utilization(self.i)
    }
    /// Unacked bytes currently attributed to this path.
    pub fn inflight_bytes(&self) -> u64 {
        self.set.inflight_bytes(self.i)
    }
    /// Next probe instant while failed.
    pub fn next_probe(&self) -> Option<SimTime> {
        self.set.next_probe(self.i)
    }
    /// Consecutive timeout count.
    pub fn consecutive_timeouts(&self) -> u32 {
        self.set.consecutive_timeouts(self.i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SolarConfig {
        SolarConfig::default()
    }

    fn one_path() -> (SolarConfig, PathSet) {
        let c = cfg();
        let p = PathSet::new(1, &c);
        (c, p)
    }

    #[test]
    fn tx_accounting() {
        let (_, mut p) = one_path();
        let k = PktKey {
            rpc_id: 1,
            pkt_id: 0,
        };
        let s0 = p.register_tx(0, k, 4096);
        let s1 = p.register_tx(
            0,
            PktKey {
                rpc_id: 1,
                pkt_id: 1,
            },
            4096,
        );
        assert_eq!(s1, s0 + 1);
        assert_eq!(p.inflight_bytes(0), 8192);
        p.release(0, s0, 4096);
        assert_eq!(p.inflight_bytes(0), 4096);
        assert_eq!(p.outstanding_in(0, 0, u32::MAX).len(), 1);
    }

    #[test]
    fn rtt_drives_rto() {
        let (c, mut p) = one_path();
        for _ in 0..16 {
            p.on_ack(
                0,
                SimTime::from_micros(100),
                Some(SimDuration::from_micros(20)),
                None,
                false,
                &c,
            );
        }
        let rto = p.rto(0);
        // Converged rttvar makes srtt+4*var small; the floor clamps it.
        assert_eq!(rto, c.rto_min, "rto {rto}");
        assert_eq!(p.srtt(0).unwrap(), SimDuration::from_micros(20));
    }

    #[test]
    fn consecutive_timeouts_fail_path() {
        let (c, mut p) = one_path();
        assert!(!p.on_timeout(0, SimTime::from_micros(1), p.epoch(0), &c));
        assert!(!p.on_timeout(0, SimTime::from_micros(2), p.epoch(0), &c));
        assert!(
            p.on_timeout(0, SimTime::from_micros(3), p.epoch(0), &c),
            "third timeout fails path"
        );
        assert!(!p.is_up(0));
        // Further timeouts do not re-fail.
        assert!(!p.on_timeout(0, SimTime::from_micros(4), p.epoch(0), &c));
    }

    #[test]
    fn ack_resets_timeout_streak() {
        let (c, mut p) = one_path();
        p.on_timeout(0, SimTime::from_micros(1), p.epoch(0), &c);
        p.on_timeout(0, SimTime::from_micros(2), p.epoch(0), &c);
        p.on_ack(0, SimTime::from_micros(3), None, None, false, &c);
        assert_eq!(p.consecutive_timeouts(0), 0);
        assert!(!p.on_timeout(0, SimTime::from_micros(4), p.epoch(0), &c));
        assert!(p.is_up(0));
    }

    #[test]
    fn probe_cycle() {
        let (c, mut p) = one_path();
        for i in 0..3 {
            p.on_timeout(0, SimTime::from_micros(i), p.epoch(0), &c);
        }
        let probe_at = p.next_probe(0).expect("failed paths probe");
        assert!(probe_at > SimTime::from_micros(2));
        assert_eq!(p.min_next_probe(), Some(probe_at));
        assert_eq!(p.first_due_probe(probe_at), Some(0));
        assert_eq!(p.first_due_probe(SimTime::from_micros(3)), None);
        p.probe_sent(0, probe_at, &c);
        assert!(p.next_probe(0).unwrap() > probe_at);
        p.revive(0);
        assert!(p.is_up(0));
        assert!(p.next_probe(0).is_none());
        assert!(p.min_next_probe().is_none());
    }

    #[test]
    fn timeout_backs_off_rto() {
        let (c, mut p) = one_path();
        let r0 = p.rto(0);
        p.on_timeout(0, SimTime::from_micros(1), p.epoch(0), &c);
        assert_eq!(p.rto(0), r0.mul_f64(2.0));
    }

    #[test]
    fn probe_min_tracks_multiple_paths() {
        let c = cfg();
        let mut p = PathSet::new(3, &c);
        // Fail paths 2 then 1 at different instants.
        for t in [1, 2, 3] {
            p.on_timeout(2, SimTime::from_micros(t), p.epoch(2), &c);
        }
        for t in [10, 11, 12] {
            p.on_timeout(1, SimTime::from_micros(t), p.epoch(1), &c);
        }
        let p2 = p.next_probe(2).unwrap();
        assert_eq!(
            p.min_next_probe(),
            Some(p2),
            "earliest failure probes first"
        );
        // Index order, not deadline order, picks among due probes.
        let late = p.next_probe(1).unwrap();
        assert_eq!(p.first_due_probe(late), Some(1));
        p.revive(2);
        assert_eq!(p.min_next_probe(), Some(late));
        p.revive(1);
        assert_eq!(p.min_next_probe(), None);
    }
}
