//! The SOLAR responder (block-server side).
//!
//! The receive path is where one-block-one-packet pays off: because every
//! packet is a self-contained block, the responder needs **no connection
//! state, no receive buffers and no reordering logic** — it turns each
//! request into zero or one storage action and, when the host completes
//! that action, into exactly one response packet. All functions here are
//! pure header transformations; the only mutable state is a per-path
//! sequence counter for the reverse direction.

use bytes::Bytes;
use ebs_wire::{EbsHeader, EbsOp, IntStack};

use crate::client::{InPacket, OutPacket};

/// What the host (block server) must do for an incoming packet.
#[derive(Debug)]
pub enum ServerAction {
    /// Persist one block (3-way replicate via BN, then call
    /// [`SolarResponder::write_ack`]).
    StoreBlock {
        /// The request header (pass back to `write_ack`).
        hdr: EbsHeader,
        /// Block payload to persist.
        data: Bytes,
        /// INT stack collected by the request (echoed in the ACK so the
        /// initiator's HPCC sees the forward path).
        int: Option<IntStack>,
    },
    /// Fetch one block (then call [`SolarResponder::read_resp`]).
    FetchBlock {
        /// The request header (pass back to `read_resp`).
        hdr: EbsHeader,
    },
    /// Answer a liveness probe immediately with the returned packet.
    Reply(OutPacket),
    /// Nothing to do (unknown/irrelevant op).
    None,
}

/// Per-peer responder state (one per compute-server client).
#[derive(Debug)]
pub struct SolarResponder {
    /// Per-path sequence counters for response packets (reads congest the
    /// reverse direction, so responses carry their own path sequence).
    resp_seq: [u32; 256],
    /// Per-path next expected arrival sequence. A single ECMP path is
    /// FIFO, so an arrival above the expectation proves the skipped
    /// sequences were lost — the receiver reports the gap immediately
    /// instead of leaving the sender to wait for an RTO (§4.5's
    /// out-of-order loss detection).
    arrival_expected: [u32; 256],
    /// Pending gap reports (drained via [`SolarResponder::poll_gap_nack`]).
    gap_nacks: std::collections::VecDeque<OutPacket>,
}

impl Default for SolarResponder {
    fn default() -> Self {
        Self::new()
    }
}

impl SolarResponder {
    /// Fresh responder.
    pub fn new() -> Self {
        SolarResponder {
            resp_seq: [0; 256],
            arrival_expected: [0; 256],
            gap_nacks: std::collections::VecDeque::new(),
        }
    }

    /// Drain the next pending gap report to send back to the initiator.
    pub fn poll_gap_nack(&mut self) -> Option<OutPacket> {
        self.gap_nacks.pop_front()
    }

    /// Track a data/request arrival on its path; queue a gap report if
    /// the sequence jumped.
    fn track_arrival(&mut self, hdr: &EbsHeader) {
        let p = hdr.path_id as usize;
        let expected = self.arrival_expected[p];
        let s = hdr.path_seq;
        // Wrapping serial comparison: treat s as "newer" when it is ahead.
        let ahead = s.wrapping_sub(expected);
        if ahead == 0 {
            self.arrival_expected[p] = s.wrapping_add(1);
        } else if ahead < u32::MAX / 2 {
            // Gap [expected, s) lost on a FIFO path: report it.
            let mut nack_hdr = *hdr;
            nack_hdr.op = EbsOp::GapNack;
            nack_hdr.len = 0;
            nack_hdr.block_addr = expected as u64; // gap start
            self.gap_nacks.push_back(OutPacket {
                hdr: nack_hdr,
                payload: Bytes::new(),
                src_port: response_port(hdr),
                int_request: false,
            });
            self.arrival_expected[p] = s.wrapping_add(1);
        }
        // else: an old (retransmitted-on-same-path) sequence — ignore.
    }

    /// Classify an incoming packet into the storage action it demands.
    pub fn on_packet(&mut self, pkt: InPacket) -> ServerAction {
        match pkt.hdr.op {
            EbsOp::WriteBlock => {
                self.track_arrival(&pkt.hdr);
                ServerAction::StoreBlock {
                    hdr: pkt.hdr,
                    data: pkt.payload,
                    int: pkt.int,
                }
            }
            EbsOp::ReadReq => {
                self.track_arrival(&pkt.hdr);
                ServerAction::FetchBlock { hdr: pkt.hdr }
            }
            EbsOp::Probe => {
                let mut hdr = pkt.hdr;
                hdr.op = EbsOp::ProbeAck;
                ServerAction::Reply(OutPacket {
                    hdr,
                    payload: Bytes::new(),
                    src_port: response_port(&pkt.hdr),
                    int_request: false,
                })
            }
            _ => ServerAction::None,
        }
    }

    /// Build the per-packet WRITE acknowledgment, echoing the request's
    /// INT stack for the initiator's congestion control.
    pub fn write_ack(
        &mut self,
        req: &EbsHeader,
        int: Option<IntStack>,
    ) -> (OutPacket, Option<IntStack>) {
        let mut hdr = *req;
        hdr.op = EbsOp::WriteAck;
        hdr.len = 0;
        hdr.path_seq = self.next_seq(req.path_id);
        (
            OutPacket {
                hdr,
                payload: Bytes::new(),
                src_port: response_port(req),
                int_request: false,
            },
            int,
        )
    }

    /// Build one READ response block. The responder computed `crc` in its
    /// CRC stage; the response collects fresh INT on the reverse path
    /// (`int_request = true`), which is the direction reads congest.
    pub fn read_resp(&mut self, req: &EbsHeader, data: Bytes, crc: u32) -> OutPacket {
        let mut hdr = *req;
        hdr.op = EbsOp::ReadResp;
        hdr.len = data.len() as u32;
        hdr.payload_crc = crc;
        hdr.path_seq = self.next_seq(req.path_id);
        OutPacket {
            hdr,
            payload: data,
            src_port: response_port(req),
            int_request: true,
        }
    }

    /// Build a NACK for a request the server cannot serve.
    pub fn nack(&mut self, req: &EbsHeader) -> OutPacket {
        let mut hdr = *req;
        hdr.op = EbsOp::Nack;
        hdr.len = 0;
        OutPacket {
            hdr,
            payload: Bytes::new(),
            src_port: response_port(req),
            int_request: false,
        }
    }

    fn next_seq(&mut self, path_id: u8) -> u32 {
        let s = self.resp_seq[path_id as usize];
        self.resp_seq[path_id as usize] = s.wrapping_add(1);
        s
    }
}

/// Responses return on the same path: the server's source port encodes the
/// same path id so ECMP hashes the reverse flow consistently.
fn response_port(req: &EbsHeader) -> u16 {
    9000 + req.path_id as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(op: EbsOp) -> EbsHeader {
        EbsHeader {
            version: EbsHeader::VERSION,
            op,
            flags: 0,
            path_id: 2,
            vd_id: 1,
            rpc_id: 5,
            pkt_id: 3,
            total_pkts: 4,
            block_addr: 0x10,
            len: 4096,
            payload_crc: 0xABCD,
            path_seq: 9,
            segment_id: 7,
        }
    }

    #[test]
    fn write_becomes_store_action() {
        let mut r = SolarResponder::new();
        let action = r.on_packet(InPacket {
            hdr: req(EbsOp::WriteBlock),
            payload: Bytes::from_static(b"data"),
            int: None,
        });
        match action {
            ServerAction::StoreBlock { hdr, data, .. } => {
                assert_eq!(hdr.rpc_id, 5);
                assert_eq!(&data[..], b"data");
            }
            other => panic!("wrong action {other:?}"),
        }
    }

    #[test]
    fn ack_echoes_identity_and_int() {
        let mut r = SolarResponder::new();
        let int = IntStack::new();
        let (ack, echoed) = r.write_ack(&req(EbsOp::WriteBlock), Some(int));
        assert_eq!(ack.hdr.op, EbsOp::WriteAck);
        assert_eq!(ack.hdr.rpc_id, 5);
        assert_eq!(ack.hdr.pkt_id, 3);
        assert_eq!(ack.hdr.path_id, 2);
        assert!(echoed.is_some());
    }

    #[test]
    fn read_resp_carries_block_and_crc() {
        let mut r = SolarResponder::new();
        // Pooled payload: proves the block-pool storage flows through the
        // responder as ordinary `Bytes`.
        let resp = r.read_resp(
            &req(EbsOp::ReadReq),
            ebs_wire::pool::block_from(&[7u8; 4096]),
            0x1234,
        );
        assert_eq!(resp.hdr.op, EbsOp::ReadResp);
        assert_eq!(resp.hdr.payload_crc, 0x1234);
        assert_eq!(resp.payload.len(), 4096);
        assert!(resp.int_request, "responses collect reverse-path INT");
    }

    #[test]
    fn response_seqs_increment_per_path() {
        let mut r = SolarResponder::new();
        let a = r.read_resp(&req(EbsOp::ReadReq), Bytes::new(), 0);
        let b = r.read_resp(&req(EbsOp::ReadReq), Bytes::new(), 0);
        assert_eq!(b.hdr.path_seq, a.hdr.path_seq + 1);
    }

    #[test]
    fn probe_is_answered_inline() {
        let mut r = SolarResponder::new();
        match r.on_packet(InPacket {
            hdr: req(EbsOp::Probe),
            payload: Bytes::new(),
            int: None,
        }) {
            ServerAction::Reply(p) => assert_eq!(p.hdr.op, EbsOp::ProbeAck),
            other => panic!("wrong action {other:?}"),
        }
    }

    #[test]
    fn responder_holds_no_per_request_state() {
        // The whole point: after classifying a million packets, the
        // responder's footprint is still just the seq counters.
        let mut r = SolarResponder::new();
        for i in 0..1000u64 {
            let mut h = req(EbsOp::WriteBlock);
            h.rpc_id = i;
            let _ = r.on_packet(InPacket {
                hdr: h,
                payload: Bytes::new(),
                int: None,
            });
        }
        // Two fixed 256-entry counter arrays + an (empty in steady
        // state) report queue — nothing proportional to requests served.
        assert!(std::mem::size_of::<SolarResponder>() <= 2 * 256 * 4 + 96);
    }
}
