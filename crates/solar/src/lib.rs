//! # ebs-solar — the storage-oriented reliable UDP transport (the paper's
//! core contribution)
//!
//! SOLAR fuses the network and storage layers: **each UDP packet carries
//! exactly one self-contained 4 KiB storage block** (§4.4). Consequences,
//! all realized in this crate:
//!
//! * the responder keeps no connection state machine, no receive buffers
//!   and no reordering logic ([`SolarResponder`] is a pure header
//!   transformer);
//! * packets are independent, so the transport is inherently resilient to
//!   reordering — which makes large-scale **multi-path** cheap: the
//!   initiator ([`SolarClient`]) sprays blocks over `n_paths` persistent
//!   UDP source ports (distinct ECMP routes), favoring low-RTT paths;
//! * loss is detected per path via sequence gaps or per-packet timeouts
//!   and repaired by **selective retransmission on a different path**;
//!   consecutive timeouts declare a path failed and traffic shifts in
//!   milliseconds — no waiting for routing convergence (§3.3's incident);
//! * per-packet ACKs echo INT telemetry and drive an HPCC-style
//!   fine-grained congestion controller per path ([`Hpcc`]).
//!
//! The engine is sans-io (smoltcp-style): hosts feed packets and timer
//! fires, and drain outgoing packets and events. `ebs-stack` runs it
//! inside the simulator; `examples/solar_loopback.rs` runs the same state
//! machine over real UDP sockets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod config;
mod path;
mod responder;

pub use client::{
    InPacket, OutPacket, ReadBlock, RpcKind, SolarClient, SolarEvent, SolarStats, WriteBlock,
};
pub use config::{HpccConfig, SolarConfig};
// The controller moved to `ebs-cc` behind the `CongestionControl` trait
// (it is one of four algorithms the `cc` config knob selects); re-export
// the historical names so `use ebs_solar::Hpcc` keeps working.
pub use ebs_cc::{CcAlgo, Hpcc};
pub use path::{PathSet, PathStatus, PathView, PktKey};
pub use responder::{ServerAction, SolarResponder};

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use ebs_sim::{SimDuration, SimTime};
    use ebs_wire::EbsOp;

    fn cfg() -> SolarConfig {
        SolarConfig::default()
    }

    fn write_blocks(n: usize) -> Vec<WriteBlock> {
        (0..n)
            .map(|i| WriteBlock {
                block_addr: i as u64,
                payload: Bytes::new(),
                crc: 0,
            })
            .collect()
    }

    /// Loopback driver: every transmitted packet is answered by the
    /// responder after `rtt`, unless `drop(pkt#)` says to lose it.
    fn run_loop(
        client: &mut SolarClient,
        resp: &mut SolarResponder,
        mut now: SimTime,
        rtt: SimDuration,
        until: SimTime,
        mut drop: impl FnMut(u64, &OutPacket) -> bool,
    ) -> (SimTime, Vec<SolarEvent>) {
        let mut events = Vec::new();
        let mut pkt_no = 0u64;
        let mut pending: std::collections::BTreeMap<u64, Vec<InPacket>> =
            std::collections::BTreeMap::new();
        // One pooled block serves every read response: O(1) handle clones
        // instead of a fresh Vec per reply.
        let read_payload = ebs_wire::pool::block_from(&[9u8; 64]);
        loop {
            // Transmit everything currently allowed.
            while let Some(out) = client.poll_transmit(now) {
                pkt_no += 1;
                if drop(pkt_no, &out) {
                    continue;
                }
                // Responder handles it; replies arrive after rtt.
                let action = resp.on_packet(InPacket {
                    hdr: out.hdr,
                    payload: out.payload.clone(),
                    int: None,
                });
                let reply = match action {
                    ServerAction::StoreBlock { hdr, int, .. } => Some(resp.write_ack(&hdr, int).0),
                    ServerAction::FetchBlock { hdr } => {
                        Some(resp.read_resp(&hdr, read_payload.clone(), 0x42))
                    }
                    ServerAction::Reply(p) => Some(p),
                    ServerAction::None => None,
                };
                if let Some(r) = reply {
                    pending
                        .entry((now + rtt).as_nanos())
                        .or_default()
                        .push(InPacket {
                            hdr: r.hdr,
                            payload: r.payload,
                            int: None,
                        });
                }
            }
            // Next event: earliest of (reply arrival, client timer).
            let next_reply = pending.keys().next().copied();
            let next_timer = client.poll_timer().map(|t| t.as_nanos());
            let next = match (next_reply, next_timer) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => break,
            };
            if next > until.as_nanos() {
                break;
            }
            now = SimTime::from_nanos(next);
            if Some(next) == next_reply {
                for pkt in pending.remove(&next).unwrap() {
                    client.on_packet(now, pkt);
                }
            }
            if client.poll_timer().map(|t| t.as_nanos()) == Some(next) {
                client.on_timer(now);
            }
            while let Some(e) = client.poll_event() {
                events.push(e);
            }
        }
        while let Some(e) = client.poll_event() {
            events.push(e);
        }
        (now, events)
    }

    #[test]
    fn write_completes_on_clean_path() {
        let mut c = SolarClient::new(cfg());
        let mut r = SolarResponder::new();
        c.submit_write(SimTime::ZERO, 1, 10, 100, write_blocks(4));
        let (_, events) = run_loop(
            &mut c,
            &mut r,
            SimTime::ZERO,
            SimDuration::from_micros(20),
            SimTime::from_millis(100),
            |_, _| false,
        );
        let done: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, SolarEvent::RpcCompleted { rpc_id: 1, .. }))
            .collect();
        assert_eq!(done.len(), 1);
        assert_eq!(c.stats().retransmits, 0);
        assert_eq!(c.outstanding_packets(), 0);
    }

    #[test]
    fn read_delivers_blocks_with_addr_table() {
        let mut c = SolarClient::new(cfg());
        let mut r = SolarResponder::new();
        let blocks = vec![
            ReadBlock {
                block_addr: 5,
                guest_addr: 0x1000,
            },
            ReadBlock {
                block_addr: 6,
                guest_addr: 0x2000,
            },
        ];
        c.submit_read(SimTime::ZERO, 2, 10, 100, blocks);
        assert_eq!(c.addr_table_entries(), 2);
        let (_, events) = run_loop(
            &mut c,
            &mut r,
            SimTime::ZERO,
            SimDuration::from_micros(20),
            SimTime::from_millis(100),
            |_, _| false,
        );
        let mut guest_addrs: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                SolarEvent::BlockReceived { guest_addr, .. } => Some(*guest_addr),
                _ => None,
            })
            .collect();
        guest_addrs.sort();
        assert_eq!(guest_addrs, vec![0x1000, 0x2000]);
        assert!(events.iter().any(|e| matches!(
            e,
            SolarEvent::RpcCompleted {
                rpc_id: 2,
                kind: RpcKind::Read,
                ..
            }
        )));
        assert_eq!(c.addr_table_entries(), 0, "Addr entries cleaned after use");
    }

    #[test]
    fn packets_spray_across_paths() {
        let mut c = SolarClient::new(cfg());
        c.submit_write(SimTime::ZERO, 1, 10, 100, write_blocks(32));
        let mut used = std::collections::HashSet::new();
        while let Some(out) = c.poll_transmit(SimTime::ZERO) {
            used.insert(out.hdr.path_id);
        }
        assert!(
            used.len() >= 2,
            "32 blocks must use multiple paths: {used:?}"
        );
    }

    #[test]
    fn lost_packet_retransmits_on_other_path() {
        let mut c = SolarClient::new(cfg());
        let mut r = SolarResponder::new();
        c.submit_write(SimTime::ZERO, 1, 10, 100, write_blocks(4));
        let mut first_path = None;
        let (_, events) = run_loop(
            &mut c,
            &mut r,
            SimTime::ZERO,
            SimDuration::from_micros(20),
            SimTime::from_secs(2),
            |n, out| {
                if n == 1 {
                    first_path = Some(out.hdr.path_id);
                    true // drop the very first packet
                } else {
                    false
                }
            },
        );
        assert!(events
            .iter()
            .any(|e| matches!(e, SolarEvent::RpcCompleted { rpc_id: 1, .. })));
        assert!(c.stats().retransmits >= 1);
        assert_eq!(c.stats().rpcs_completed, 1);
    }

    #[test]
    fn dead_path_fails_over_and_traffic_continues() {
        let mut c = SolarClient::new(cfg());
        let mut r = SolarResponder::new();
        // Path 0 blackholes everything, forever.
        c.submit_write(SimTime::ZERO, 1, 10, 100, write_blocks(16));
        let (_, events) = run_loop(
            &mut c,
            &mut r,
            SimTime::ZERO,
            SimDuration::from_micros(20),
            SimTime::from_secs(5),
            |_, out| out.hdr.path_id == 0, // probes die too: path stays dark
        );
        assert!(
            events
                .iter()
                .any(|e| matches!(e, SolarEvent::PathDown { path_id: 0 })),
            "path 0 must be declared down: {events:?}"
        );
        assert!(events
            .iter()
            .any(|e| matches!(e, SolarEvent::RpcCompleted { rpc_id: 1, .. })));
        // Subsequent RPCs avoid the dead path entirely (until probe).
        c.submit_write(SimTime::from_secs(6), 2, 10, 100, write_blocks(8));
        let mut used = std::collections::HashSet::new();
        while let Some(out) = c.poll_transmit(SimTime::from_secs(6)) {
            if out.hdr.op == EbsOp::WriteBlock {
                used.insert(out.hdr.path_id);
            }
        }
        assert!(!used.contains(&0), "failed path excluded: {used:?}");
    }

    #[test]
    fn failed_path_revives_after_probe() {
        let mut c = SolarClient::new(cfg());
        let mut r = SolarResponder::new();
        // Enough blocks that the dead path accumulates 3 consecutive
        // timeouts (retransmissions deliberately avoid it).
        c.submit_write(SimTime::ZERO, 1, 10, 100, write_blocks(32));
        // Drop path 0 data until t=1s; probes always pass.
        let (_, events) = run_loop(
            &mut c,
            &mut r,
            SimTime::ZERO,
            SimDuration::from_micros(20),
            SimTime::from_secs(3),
            |_, out| out.hdr.path_id == 0 && out.hdr.op == EbsOp::WriteBlock,
        );
        assert!(events
            .iter()
            .any(|e| matches!(e, SolarEvent::PathDown { path_id: 0 })));
        assert!(
            events
                .iter()
                .any(|e| matches!(e, SolarEvent::PathUp { path_id: 0 })),
            "probe must revive the path: {events:?}"
        );
        assert!(c.stats().probes_sent >= 1);
        assert!(c.paths()[0].is_up());
    }

    #[test]
    fn total_blackhole_fails_rpc_upward() {
        let mut c = SolarClient::new(SolarConfig {
            max_pkt_retries: 3,
            ..cfg()
        });
        let mut r = SolarResponder::new();
        c.submit_write(SimTime::ZERO, 1, 10, 100, write_blocks(2));
        let (_, events) = run_loop(
            &mut c,
            &mut r,
            SimTime::ZERO,
            SimDuration::from_micros(20),
            SimTime::from_secs(30),
            |_, _| true, // everything dies
        );
        assert!(events
            .iter()
            .any(|e| matches!(e, SolarEvent::RpcFailed { rpc_id: 1 })));
        assert_eq!(c.inflight_rpcs(), 0);
        assert_eq!(c.outstanding_packets(), 0);
    }

    #[test]
    fn reorder_resilience_no_spurious_retransmits() {
        // Deliver acks out of order within the reorder threshold: no
        // retransmissions should be triggered.
        let mut c = SolarClient::new(cfg());
        c.submit_write(SimTime::ZERO, 1, 10, 100, write_blocks(8));
        let mut outs = Vec::new();
        while let Some(o) = c.poll_transmit(SimTime::ZERO) {
            outs.push(o);
        }
        let mut r = SolarResponder::new();
        let mut acks: Vec<InPacket> = outs
            .iter()
            .map(|o| {
                let (a, _) = r.write_ack(&o.hdr, None);
                InPacket {
                    hdr: a.hdr,
                    payload: Bytes::new(),
                    int: None,
                }
            })
            .collect();
        acks.reverse(); // fully reversed delivery
        let now = SimTime::from_micros(50);
        for a in acks {
            c.on_packet(now, a);
        }
        assert_eq!(c.stats().retransmits, 0, "reordering must not fake loss");
        assert_eq!(c.stats().rpcs_completed, 1);
    }

    #[test]
    fn window_limits_inflight() {
        let mut small = cfg();
        small.hpcc.line_rate = ebs_sim::Bandwidth::from_gbps(1);
        small.hpcc.base_rtt = SimDuration::from_micros(40);
        // BDP = 125MB/s * 40us = 5000 bytes per path -> ~1 block.
        let mut c = SolarClient::new(small);
        c.submit_write(SimTime::ZERO, 1, 10, 100, write_blocks(64));
        let mut sent = 0;
        while c.poll_transmit(SimTime::ZERO).is_some() {
            sent += 1;
        }
        assert!(sent <= 8, "4 paths x ~1-block window, got {sent}");
        assert!(sent >= 4);
    }

    #[test]
    fn duplicate_acks_are_idempotent() {
        let mut c = SolarClient::new(cfg());
        c.submit_write(SimTime::ZERO, 1, 10, 100, write_blocks(2));
        let mut outs = Vec::new();
        while let Some(o) = c.poll_transmit(SimTime::ZERO) {
            outs.push(o);
        }
        let mut r = SolarResponder::new();
        let now = SimTime::from_micros(30);
        for o in &outs {
            let (a, _) = r.write_ack(&o.hdr, None);
            let pkt = InPacket {
                hdr: a.hdr,
                payload: Bytes::new(),
                int: None,
            };
            c.on_packet(now, pkt.clone());
            c.on_packet(now, pkt); // duplicate
        }
        assert_eq!(c.stats().rpcs_completed, 1);
        let completions = {
            let mut n = 0;
            while let Some(e) = c.poll_event() {
                if matches!(e, SolarEvent::RpcCompleted { .. }) {
                    n += 1;
                }
            }
            n
        };
        assert_eq!(completions, 1);
    }
}
