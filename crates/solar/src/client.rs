//! The SOLAR initiator (compute-side control plane).
//!
//! One [`SolarClient`] manages the transport toward **one block server**:
//! it sprays one-block packets across the persistent paths (favoring low
//! RTT), tracks per-packet timeouts for selective retransmission on a
//! different path, infers path failure from consecutive timeouts and
//! shifts traffic within milliseconds (§4.5), and runs HPCC per path from
//! the INT stacks echoed in per-packet ACKs.
//!
//! Sans-io: the host drives it with [`SolarClient::on_packet`] /
//! [`SolarClient::on_timer`], drains [`SolarClient::poll_transmit`] and
//! [`SolarClient::poll_event`].
//!
//! Simplification vs. Fig. 13: the paper sends one READ request RPC that
//! yields multiple response blocks; we send one small `ReadReq` packet per
//! block so that every outstanding packet has exactly one answer and the
//! retransmission machinery is identical for reads and writes. The wire
//! property that matters — each *data-bearing* packet is one self-
//! contained block — is unchanged.

use ebs_sim::FxHashMap;
use std::collections::{BinaryHeap, VecDeque};

use bytes::Bytes;
use ebs_sim::{SimDuration, SimTime};
use ebs_wire::{EbsHeader, EbsOp, IntStack, FLAG_ECN_ECHO, FLAG_INT_REQUEST, FLAG_RETRANSMIT};

use crate::config::SolarConfig;
use crate::path::{PathSet, PathView, PktKey};

/// A packet the host must put on the wire (UDP source port selects the
/// path: `base_port + hdr.path_id`).
#[derive(Debug, Clone)]
pub struct OutPacket {
    /// EBS header (path_id / path_seq already assigned).
    pub hdr: EbsHeader,
    /// Block payload (empty for requests/acks/probes).
    pub payload: Bytes,
    /// UDP source port to use.
    pub src_port: u16,
    /// Whether switches should stamp INT into this packet.
    pub int_request: bool,
}

impl OutPacket {
    /// Total wire size (Ethernet+IP+UDP+EBS headers + payload).
    pub fn wire_size(&self) -> usize {
        ebs_wire::SOLAR_OVERHEAD + self.payload.len()
    }
}

/// A packet arriving from the fabric.
#[derive(Debug, Clone)]
pub struct InPacket {
    /// Decoded EBS header.
    pub hdr: EbsHeader,
    /// Payload (for `ReadResp`).
    pub payload: Bytes,
    /// INT stack carried/echoed by this packet.
    pub int: Option<IntStack>,
}

/// What kind of I/O an RPC is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpcKind {
    /// Write blocks to the block server.
    Write,
    /// Read blocks back.
    Read,
}

/// Completion / notification events for the host.
#[derive(Debug)]
pub enum SolarEvent {
    /// Every packet of the RPC has been acknowledged / received.
    RpcCompleted {
        /// RPC id.
        rpc_id: u64,
        /// Read or write.
        kind: RpcKind,
        /// Submission-to-completion latency.
        latency: SimDuration,
    },
    /// One read block arrived (host DMAs it to `guest_addr` and feeds the
    /// segment CRC checker).
    BlockReceived {
        /// RPC id.
        rpc_id: u64,
        /// Packet index within the RPC.
        pkt_id: u16,
        /// Virtual-disk block address.
        block_addr: u64,
        /// Guest memory destination recorded in the Addr table.
        guest_addr: u64,
        /// Block payload.
        data: Bytes,
        /// CRC the responder computed (verified by the host's checker).
        crc: u32,
    },
    /// A packet exhausted its retry budget; the RPC failed upward.
    RpcFailed {
        /// RPC id.
        rpc_id: u64,
    },
    /// A path was declared failed (consecutive timeouts).
    PathDown {
        /// Path index.
        path_id: u8,
    },
    /// A failed path answered a probe and rejoined the spray set.
    PathUp {
        /// Path index.
        path_id: u8,
    },
}

/// Transport counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolarStats {
    /// Data/request packets sent (including retransmissions).
    pub pkts_sent: u64,
    /// Retransmitted packets.
    pub retransmits: u64,
    /// Per-packet timeouts.
    pub timeouts: u64,
    /// Losses inferred from path-sequence gaps (before RTO).
    pub reorder_losses: u64,
    /// RPCs completed.
    pub rpcs_completed: u64,
    /// RPCs failed.
    pub rpcs_failed: u64,
    /// Path failover events.
    pub path_failovers: u64,
    /// Probes sent.
    pub probes_sent: u64,
}

#[derive(Debug)]
struct Outstanding {
    hdr: EbsHeader,
    payload: Bytes,
    credit_bytes: u64,
    sent_at: SimTime,
    path: u8,
    path_seq: u32,
    /// Route epoch of `path` at transmit time (see [`Path::epoch`]).
    path_epoch: u32,
    retries: u32,
    generation: u64,
    retransmitted: bool,
    in_flight: bool,
    /// Path that most recently timed this packet out; the retransmit
    /// prefers any other path.
    avoid_path: Option<u8>,
}

#[derive(Debug)]
struct RpcState {
    kind: RpcKind,
    total: u16,
    done: u16,
    submitted: SimTime,
    failed: bool,
}

#[derive(Debug, PartialEq, Eq)]
struct TimerEntry {
    at_ns: u64,
    key: PktKey,
    generation: u64,
}

impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by time.
        other
            .at_ns
            .cmp(&self.at_ns)
            .then_with(|| other.key.cmp(&self.key))
            .then_with(|| other.generation.cmp(&self.generation))
    }
}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// One block of a WRITE submission.
#[derive(Debug, Clone)]
pub struct WriteBlock {
    /// Virtual-disk block address.
    pub block_addr: u64,
    /// Block payload (may be an empty placeholder in pure-latency sims;
    /// `len` is taken from the config block size in that case).
    pub payload: Bytes,
    /// Raw CRC32 of the (padded) payload, as the CRC stage computed it.
    pub crc: u32,
}

/// One block of a READ submission.
#[derive(Debug, Clone)]
pub struct ReadBlock {
    /// Virtual-disk block address to fetch.
    pub block_addr: u64,
    /// Guest memory address the block lands at (Addr-table entry).
    pub guest_addr: u64,
}

/// The SOLAR initiator toward one block server (see module docs).
#[derive(Debug)]
pub struct SolarClient {
    cfg: SolarConfig,
    paths: PathSet,
    outstanding: FxHashMap<PktKey, Outstanding>,
    /// The Addr table: (rpc, pkt) → guest address for in-flight reads. In
    /// real SOLAR this lives in FPGA BRAM (Table 3 charges it 5.1% LUT /
    /// 8.1% BRAM); it is the *only* per-request state the design needs.
    addr_table: FxHashMap<PktKey, u64>,
    txq: VecDeque<PktKey>,
    timers: BinaryHeap<TimerEntry>,
    rpcs: FxHashMap<u64, RpcState>,
    events: VecDeque<SolarEvent>,
    stats: SolarStats,
    next_generation: u64,
    rr_cursor: usize,
}

impl SolarClient {
    /// A client with `cfg.n_paths` fresh paths.
    ///
    /// # Panics
    /// Panics if `cfg.n_paths` is zero or exceeds 256.
    pub fn new(cfg: SolarConfig) -> Self {
        assert!(cfg.n_paths > 0 && cfg.n_paths <= 256, "1..=256 paths");
        let paths = PathSet::new(cfg.n_paths, &cfg);
        SolarClient {
            cfg,
            paths,
            outstanding: FxHashMap::default(),
            addr_table: FxHashMap::default(),
            txq: VecDeque::new(),
            timers: BinaryHeap::new(),
            rpcs: FxHashMap::default(),
            events: VecDeque::new(),
            stats: SolarStats::default(),
            next_generation: 1,
            rr_cursor: 0,
        }
    }

    /// Counters.
    pub fn stats(&self) -> SolarStats {
        self.stats
    }

    /// Per-path views (diagnostics / tests).
    pub fn paths(&self) -> Vec<PathView<'_>> {
        self.paths.views().collect()
    }

    /// In-flight plus queued packets.
    pub fn outstanding_packets(&self) -> usize {
        self.outstanding.len()
    }

    /// Number of RPCs not yet completed or failed.
    pub fn inflight_rpcs(&self) -> usize {
        self.rpcs.len()
    }

    /// Submit a WRITE: one packet per block.
    ///
    /// # Panics
    /// Panics if `rpc_id` is already in flight or `blocks` is empty.
    pub fn submit_write(
        &mut self,
        now: SimTime,
        rpc_id: u64,
        vd_id: u64,
        segment_id: u64,
        blocks: Vec<WriteBlock>,
    ) {
        assert!(!blocks.is_empty(), "empty write");
        assert!(
            !self.rpcs.contains_key(&rpc_id),
            "rpc_id {rpc_id} already in flight"
        );
        let total = blocks.len() as u16;
        self.rpcs.insert(
            rpc_id,
            RpcState {
                kind: RpcKind::Write,
                total,
                done: 0,
                submitted: now,
                failed: false,
            },
        );
        for (i, b) in blocks.into_iter().enumerate() {
            let len = if b.payload.is_empty() {
                self.cfg.block_size as u32
            } else {
                b.payload.len() as u32
            };
            let key = PktKey {
                rpc_id,
                pkt_id: i as u16,
            };
            let hdr = EbsHeader {
                version: EbsHeader::VERSION,
                op: EbsOp::WriteBlock,
                flags: if self.cfg.int_enabled {
                    FLAG_INT_REQUEST
                } else {
                    0
                },
                path_id: 0,
                vd_id,
                rpc_id,
                pkt_id: key.pkt_id,
                total_pkts: total,
                block_addr: b.block_addr,
                len,
                payload_crc: b.crc,
                path_seq: 0,
                segment_id,
            };
            self.outstanding.insert(
                key,
                Outstanding {
                    hdr,
                    payload: b.payload,
                    credit_bytes: len as u64 + ebs_wire::SOLAR_OVERHEAD as u64,
                    sent_at: now,
                    path: 0,
                    path_seq: 0,
                    path_epoch: 0,
                    retries: 0,
                    generation: 0,
                    retransmitted: false,
                    in_flight: false,
                    avoid_path: None,
                },
            );
            self.txq.push_back(key);
        }
    }

    /// Submit a READ: one request packet per block; responses DMA to the
    /// recorded guest addresses.
    ///
    /// # Panics
    /// Panics if `rpc_id` is already in flight or `blocks` is empty.
    pub fn submit_read(
        &mut self,
        now: SimTime,
        rpc_id: u64,
        vd_id: u64,
        segment_id: u64,
        blocks: Vec<ReadBlock>,
    ) {
        assert!(!blocks.is_empty(), "empty read");
        assert!(
            !self.rpcs.contains_key(&rpc_id),
            "rpc_id {rpc_id} already in flight"
        );
        let total = blocks.len() as u16;
        self.rpcs.insert(
            rpc_id,
            RpcState {
                kind: RpcKind::Read,
                total,
                done: 0,
                submitted: now,
                failed: false,
            },
        );
        for (i, b) in blocks.into_iter().enumerate() {
            let key = PktKey {
                rpc_id,
                pkt_id: i as u16,
            };
            let hdr = EbsHeader {
                version: EbsHeader::VERSION,
                op: EbsOp::ReadReq,
                flags: if self.cfg.int_enabled {
                    FLAG_INT_REQUEST
                } else {
                    0
                },
                path_id: 0,
                vd_id,
                rpc_id,
                pkt_id: key.pkt_id,
                total_pkts: total,
                block_addr: b.block_addr,
                len: self.cfg.block_size as u32,
                payload_crc: 0,
                path_seq: 0,
                // The Addr table entry travels with the client; segment_id
                // routes the lookup server-side.
                segment_id,
            };
            self.outstanding.insert(
                key,
                Outstanding {
                    hdr,
                    payload: Bytes::new(),
                    // Reads credit the *response* size against the window:
                    // that is the direction that congests.
                    credit_bytes: self.cfg.block_size as u64 + ebs_wire::SOLAR_OVERHEAD as u64,
                    sent_at: now,
                    path: 0,
                    path_seq: 0,
                    path_epoch: 0,
                    retries: 0,
                    generation: 0,
                    retransmitted: false,
                    in_flight: false,
                    avoid_path: None,
                },
            );
            // Addr-table entry: remember where the block lands.
            self.addr_insert(key, b.guest_addr);
            self.txq.push_back(key);
        }
    }

    fn addr_insert(&mut self, key: PktKey, guest_addr: u64) {
        self.addr_table.insert(key, guest_addr);
    }

    /// Earliest instant `on_timer` must run (packet RTOs and path probes).
    pub fn poll_timer(&self) -> Option<SimTime> {
        let t1 = self.timers.peek().map(|e| SimTime::from_nanos(e.at_ns));
        let t2 = self.paths.min_next_probe();
        match (t1, t2) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Fire due timers: packet timeouts (→ selective retransmit on another
    /// path, path-failure inference) and probe transmissions.
    pub fn on_timer(&mut self, now: SimTime) {
        // Packet RTOs.
        while let Some(top) = self.timers.peek() {
            if top.at_ns > now.as_nanos() {
                break;
            }
            let Some(TimerEntry {
                key, generation, ..
            }) = self.timers.pop()
            else {
                break;
            };
            let Some(o) = self.outstanding.get(&key) else {
                continue; // already completed
            };
            if o.generation != generation || !o.in_flight {
                continue; // retransmitted since; stale timer
            }
            self.handle_timeout(now, key);
        }
        // Probes for failed paths are emitted from poll_transmit; nothing
        // else to do here (next_probe gates them by time).
    }

    fn handle_timeout(&mut self, now: SimTime, key: PktKey) {
        let Some(o) = self.outstanding.get_mut(&key) else {
            return; // completed between the timer check and here
        };
        self.stats.timeouts += 1;
        let old_path = o.path;
        let old_seq = o.path_seq;
        let old_epoch = o.path_epoch;
        let credit = o.credit_bytes;
        o.in_flight = false;
        o.retransmitted = true;
        o.retries += 1;
        o.avoid_path = Some(old_path);
        let out_of_budget = o.retries > self.cfg.max_pkt_retries;
        let rpc_id = o.hdr.rpc_id;
        self.paths.release(old_path as usize, old_seq, credit);
        let failed_now = self
            .paths
            .on_timeout(old_path as usize, now, old_epoch, &self.cfg);
        if failed_now {
            self.stats.path_failovers += 1;
            self.events
                .push_back(SolarEvent::PathDown { path_id: old_path });
        }
        if out_of_budget {
            self.fail_rpc(rpc_id);
            return;
        }
        // Selective retransmission, preferably on a different path.
        self.stats.retransmits += 1;
        self.txq.push_front(key);
    }

    fn fail_rpc(&mut self, rpc_id: u64) {
        if let Some(rpc) = self.rpcs.get_mut(&rpc_id) {
            if !rpc.failed {
                rpc.failed = true;
                self.stats.rpcs_failed += 1;
                self.events.push_back(SolarEvent::RpcFailed { rpc_id });
            }
        }
        // Drop all of this RPC's outstanding packets.
        let keys: Vec<PktKey> = self
            .outstanding
            .keys()
            .filter(|k| k.rpc_id == rpc_id)
            .copied()
            .collect();
        for k in keys {
            if let Some(o) = self.outstanding.remove(&k) {
                if o.in_flight {
                    self.paths
                        .release(o.path as usize, o.path_seq, o.credit_bytes);
                }
            }
            self.addr_table.remove(&k);
        }
        self.txq.retain(|k| k.rpc_id != rpc_id);
        self.rpcs.remove(&rpc_id);
    }

    /// Pick the best up path with window for `bytes`: lowest smoothed RTT,
    /// unknown-RTT paths tried round-robin so all get measured. Falls back
    /// to *any* up path (ignoring window) only for retransmissions, and to
    /// the least-bad failed path if everything is down.
    ///
    /// Retransmissions rotate cyclically from the path that just timed the
    /// packet out rather than re-running the sRTT-greedy choice: with two
    /// low-RTT paths that both cross a lossy device, greedy selection
    /// ping-pongs between them forever (each retry avoids only the *last*
    /// failure) while a healthy higher-RTT path is never tried. Cyclic
    /// rotation guarantees every up path is attempted within `n_paths`
    /// retries.
    fn pick_path(&self, bytes: u64, ignore_window: bool, avoid: Option<u8>) -> Option<u8> {
        let n = self.paths.len();
        // The scan reads only the PathSet's hot arrays (liveness, srtt,
        // window, inflight) — see the struct-of-arrays notes in `path`.
        if ignore_window {
            if let Some(avoid_id) = avoid {
                for k in 1..=n {
                    let idx = (avoid_id as usize + k) % n;
                    if idx != avoid_id as usize && self.paths.up[idx] {
                        return Some(idx as u8);
                    }
                }
                // No other up path: fall through to the shared last-resort
                // logic below (lone healthy path, then failed-path probe).
            }
        }
        let mut best: Option<(u8, f64)> = None;
        // Pass 1 honors the avoid-hint; if nothing qualifies, retry
        // without it (a lone healthy path is better than none).
        for honor_avoid in [true, false] {
            for i in 0..n {
                let idx = (self.rr_cursor + i) % n;
                if honor_avoid && avoid == Some(idx as u8) {
                    continue;
                }
                if !self.paths.up[idx] {
                    continue;
                }
                if !ignore_window
                    && self.paths.window[idx].saturating_sub(self.paths.inflight[idx]) < bytes
                {
                    continue;
                }
                let srtt_ns = self.paths.srtt_ns[idx];
                // Unmeasured paths look fastest → get sampled. The ns
                // value round-trips through u64 exactly as `srtt()` does,
                // so ties resolve identically to the per-path accessor.
                let rtt = if srtt_ns.is_nan() {
                    0.0
                } else {
                    (srtt_ns as u64) as f64
                };
                match best {
                    None => best = Some((idx as u8, rtt)),
                    Some((_, b)) if rtt < b => best = Some((idx as u8, rtt)),
                    _ => {}
                }
            }
            if best.is_some() {
                break;
            }
        }
        // Last resort for retransmissions: every path is Failed, but an
        // idle transmit queue helps nobody — push the packet through the
        // least-recently-probed failed path (it doubles as a probe with
        // payload).
        if best.is_none() && ignore_window {
            let mut min: Option<(u8, u64)> = None;
            for (idx, &at) in self.paths.next_probe_ns.iter().enumerate() {
                if min.is_none_or(|(_, m)| at < m) {
                    min = Some((idx as u8, at));
                }
            }
            best = min.map(|(id, _)| (id, 0.0));
        }
        best.map(|(id, _)| id)
    }

    /// Produce the next packet to put on the wire, if any. Call repeatedly
    /// until `None` after submissions, ACKs and timer fires.
    pub fn poll_transmit(&mut self, now: SimTime) -> Option<OutPacket> {
        // 1. Probes for failed paths (one compare when none is due).
        if let Some(i) = self.paths.first_due_probe(now) {
            self.paths.probe_sent(i, now, &self.cfg);
            self.stats.probes_sent += 1;
            let src_port = self.paths.src_port(i, &self.cfg);
            return Some(OutPacket {
                hdr: EbsHeader {
                    version: EbsHeader::VERSION,
                    op: EbsOp::Probe,
                    flags: 0,
                    path_id: i as u8,
                    vd_id: 0,
                    rpc_id: 0,
                    pkt_id: 0,
                    total_pkts: 0,
                    block_addr: 0,
                    len: 0,
                    payload_crc: 0,
                    path_seq: 0,
                    segment_id: 0,
                },
                payload: Bytes::new(),
                src_port,
                int_request: false,
            });
        }

        // 2. Data / request packets gated by per-path windows. Scan a
        // bounded prefix of the queue so a window-blocked new packet at
        // the head cannot starve retransmissions (which bypass windows)
        // or packets destined for paths with free window.
        let mut chosen: Option<(usize, PktKey, u8)> = None;
        for (idx, &key) in self.txq.iter().enumerate().take(64) {
            let Some(o) = self.outstanding.get(&key) else {
                continue;
            };
            let is_retx = o.retries > 0;
            if let Some(path_id) = self.pick_path(o.credit_bytes, is_retx, o.avoid_path) {
                chosen = Some((idx, key, path_id));
                break;
            }
        }
        let (idx, key, path_id) = chosen?;
        self.txq.remove(idx);
        self.rr_cursor = (self.rr_cursor + 1) % self.paths.len();

        let generation = self.next_generation;
        self.next_generation += 1;
        let Some(o) = self.outstanding.get_mut(&key) else {
            // Unreachable by construction — the txq scan above verified the
            // key — but a lost entry must not take the whole client down.
            return None;
        };
        let bytes = o.credit_bytes;
        let is_retx = o.retries > 0;
        let seq = self.paths.register_tx(path_id as usize, key, bytes);
        o.path = path_id;
        o.path_seq = seq;
        o.path_epoch = self.paths.epoch(path_id as usize);
        o.sent_at = now;
        o.generation = generation;
        o.in_flight = true;
        o.hdr.path_id = path_id;
        o.hdr.path_seq = seq;
        if is_retx {
            o.hdr.flags |= FLAG_RETRANSMIT;
        }
        let rto = self.paths.rto(path_id as usize);
        self.timers.push(TimerEntry {
            at_ns: (now + rto).as_nanos(),
            key,
            generation,
        });
        self.stats.pkts_sent += 1;
        let src_port = self.paths.src_port(path_id as usize, &self.cfg);
        Some(OutPacket {
            hdr: o.hdr,
            // O(1) handle clone of the (possibly pooled) block — first
            // transmission and every retransmission share one buffer.
            payload: o.payload.clone(),
            src_port,
            int_request: self.cfg.int_enabled,
        })
    }

    /// Process a packet from the fabric (ACK, read response, probe ack or
    /// NACK).
    pub fn on_packet(&mut self, now: SimTime, pkt: InPacket) {
        match pkt.hdr.op {
            EbsOp::WriteAck => self.complete_packet(now, pkt, false),
            EbsOp::ReadResp => self.complete_packet(now, pkt, true),
            EbsOp::ProbeAck => {
                let id = pkt.hdr.path_id as usize;
                if id < self.paths.len() && !self.paths.is_up(id) {
                    self.paths.revive(id);
                    self.events.push_back(SolarEvent::PathUp {
                        path_id: pkt.hdr.path_id,
                    });
                }
            }
            EbsOp::Nack => {
                let key = PktKey {
                    rpc_id: pkt.hdr.rpc_id,
                    pkt_id: pkt.hdr.pkt_id,
                };
                if self.outstanding.get(&key).is_some_and(|o| o.in_flight) {
                    self.handle_timeout(now, key); // treat as immediate loss
                }
            }
            EbsOp::GapNack => self.on_gap_nack(now, &pkt.hdr),
            EbsOp::WriteBlock | EbsOp::ReadReq | EbsOp::Probe => {
                // Initiator never receives these; drop.
            }
        }
    }

    fn complete_packet(&mut self, now: SimTime, pkt: InPacket, is_read: bool) {
        let key = PktKey {
            rpc_id: pkt.hdr.rpc_id,
            pkt_id: pkt.hdr.pkt_id,
        };
        let Some(o) = self.outstanding.get(&key) else {
            return; // duplicate ack / ack after rpc failure
        };
        if !o.in_flight {
            return; // waiting in txq for retransmission: stale ack — accept it anyway
        }
        let Some(o) = self.outstanding.remove(&key) else {
            return; // just observed above; gone means nothing to release
        };
        let path = o.path as usize;
        self.paths.release(path, o.path_seq, o.credit_bytes);
        let sample = if o.retransmitted {
            None
        } else {
            Some(now.saturating_since(o.sent_at))
        };
        // The responder copies the request header into the ack, so a
        // RED mark picked up by either direction surfaces here.
        let ecn = pkt.hdr.flags & FLAG_ECN_ECHO != 0;
        self.paths
            .on_ack(path, now, sample, pkt.int.as_ref(), ecn, &self.cfg);

        if is_read {
            let guest_addr = self.addr_table.remove(&key).unwrap_or(0);
            self.events.push_back(SolarEvent::BlockReceived {
                rpc_id: key.rpc_id,
                pkt_id: key.pkt_id,
                block_addr: pkt.hdr.block_addr,
                guest_addr,
                data: pkt.payload,
                crc: pkt.hdr.payload_crc,
            });
        }

        // RPC progress.
        if let Some(rpc) = self.rpcs.get_mut(&key.rpc_id) {
            rpc.done += 1;
            if rpc.done == rpc.total && !rpc.failed {
                let kind = rpc.kind;
                let latency = now.saturating_since(rpc.submitted);
                self.rpcs.remove(&key.rpc_id);
                self.stats.rpcs_completed += 1;
                self.events.push_back(SolarEvent::RpcCompleted {
                    rpc_id: key.rpc_id,
                    kind,
                    latency,
                });
            }
        }
    }

    /// Handle a receiver-side gap report: every outstanding packet whose
    /// sequence falls in the reported gap is definitively lost (per-path
    /// FIFO) and is retransmitted immediately, without waiting for its
    /// RTO. ACK completion order carries *no* ordering information (it is
    /// storage completion order), which is why loss inference lives at
    /// the receiver, not in dupack counting.
    fn on_gap_nack(&mut self, _now: SimTime, hdr: &EbsHeader) {
        let path_idx = hdr.path_id as usize;
        if path_idx >= self.paths.len() {
            return;
        }
        let gap_start = hdr.block_addr as u32;
        let gap_end = hdr.path_seq;
        if gap_start >= gap_end {
            return;
        }
        let lost = self.paths.outstanding_in(path_idx, gap_start, gap_end);
        for k in lost {
            let Some(o) = self.outstanding.get_mut(&k) else {
                continue;
            };
            if !o.in_flight {
                continue;
            }
            self.stats.reorder_losses += 1;
            o.in_flight = false;
            o.retransmitted = true;
            o.retries += 1;
            let (p, s, c, rpc) = (o.path, o.path_seq, o.credit_bytes, o.hdr.rpc_id);
            self.paths.release(p as usize, s, c);
            if self.outstanding[&k].retries > self.cfg.max_pkt_retries {
                self.fail_rpc(rpc);
            } else {
                self.stats.retransmits += 1;
                self.txq.push_front(k);
            }
        }
    }

    /// Drain the next host-visible event.
    pub fn poll_event(&mut self) -> Option<SolarEvent> {
        self.events.pop_front()
    }

    /// Number of live Addr-table entries (in-flight read blocks).
    pub fn addr_table_entries(&self) -> usize {
        self.addr_table.len()
    }

    /// Debug: one line per outstanding packet (diagnostics only).
    pub fn debug_outstanding(&self) -> Vec<String> {
        self.outstanding
            .iter()
            .map(|(k, o)| {
                format!(
                    "rpc={} pkt={} retries={} in_flight={} path={} seq={} sent_at={} avoid={:?}",
                    k.rpc_id,
                    k.pkt_id,
                    o.retries,
                    o.in_flight,
                    o.path,
                    o.path_seq,
                    o.sent_at,
                    o.avoid_path
                )
            })
            .collect()
    }

    /// Debug: transmit-queue length (diagnostics only).
    pub fn debug_txq_len(&self) -> usize {
        self.txq.len()
    }
}

impl ebs_obs::Sample for SolarClient {
    /// Component `solar`: transport counters, liveness, and per-path RTT /
    /// occupancy distributions (one histogram observation per path, so
    /// multipath skew is visible without dynamic metric keys).
    fn sample_into(&self, _now: SimTime, m: &mut ebs_obs::Metrics) {
        let s = self.stats;
        m.counter_add("solar", "pkts_sent", s.pkts_sent);
        m.counter_add("solar", "retransmits", s.retransmits);
        m.counter_add("solar", "timeouts", s.timeouts);
        m.counter_add("solar", "reorder_losses", s.reorder_losses);
        m.counter_add("solar", "rpcs_completed", s.rpcs_completed);
        m.counter_add("solar", "rpcs_failed", s.rpcs_failed);
        m.counter_add("solar", "path_failovers", s.path_failovers);
        m.counter_add("solar", "probes_sent", s.probes_sent);
        let up = self.paths.views().filter(|p| p.is_up()).count();
        m.gauge_set("solar", "paths_up", up as f64);
        m.gauge_set("solar", "inflight_rpcs", self.rpcs.len() as f64);
        for p in self.paths.views() {
            if let Some(srtt) = p.srtt() {
                m.observe("solar", "path_srtt_ns", srtt.as_nanos());
            }
            m.observe("solar", "path_inflight_bytes", p.inflight_bytes());
            m.observe("solar", "path_window_bytes", p.window());
        }
    }
}
