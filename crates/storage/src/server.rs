//! Block servers, chunk servers and the backend network (BN).
//!
//! The storage-cluster substrate behind the FN (Fig. 1): a block server
//! receives per-segment RPCs from storage agents, writes three replicas
//! to chunk servers across the BN (RDMA since before LUNA — "The BN of
//! LUNA and SOLAR is RDMA", Fig. 6 caption), acknowledges once all
//! replicas are durable, and serves reads from a single replica.

use ebs_sim::{rng, Bandwidth, SimDuration, SimTime};
use rand::rngs::SmallRng;

use crate::ssd::{Ssd, SsdConfig};

/// Backend-network parameters (RDMA over a small intra-cluster fabric).
#[derive(Debug, Clone, Copy)]
pub struct BnConfig {
    /// One-way base latency (NIC + single-switch fabric).
    pub base_latency: SimDuration,
    /// Link rate for serialization.
    pub rate: Bandwidth,
    /// Log-normal jitter sigma on the base latency.
    pub jitter_sigma: f64,
}

impl Default for BnConfig {
    fn default() -> Self {
        BnConfig {
            base_latency: SimDuration::from_micros(4),
            rate: Bandwidth::from_gbps(100),
            jitter_sigma: 0.25,
        }
    }
}

/// Per-request latency breakdown reported by the storage cluster, feeding
/// Fig. 6's BN and SSD components.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageBreakdown {
    /// Time attributed to the backend network.
    pub bn: SimDuration,
    /// Time attributed to chunk-server processing + SSD.
    pub ssd: SimDuration,
}

/// Replication factor (the paper's "multiple (e.g., 3) copies").
pub const REPLICAS: usize = 3;

/// A storage server: one block server fronting `REPLICAS` chunk servers.
#[derive(Debug)]
pub struct StorageServer {
    bn: BnConfig,
    chunks: Vec<Ssd>,
    rng: SmallRng,
    writes: u64,
    reads: u64,
    /// Service-time multiplier (1.0 = healthy). A degraded block server
    /// models brown-out conditions — GC storms, a failing drive, BN
    /// congestion — without taking the server down: requests still
    /// complete, just slower.
    degrade: f64,
}

impl StorageServer {
    /// Build server `index` of a cluster with the given SSD/BN parameters.
    pub fn new(index: usize, ssd_cfg: SsdConfig, bn: BnConfig, seed: u64) -> Self {
        let chunks = (0..REPLICAS)
            .map(|r| Ssd::new(ssd_cfg, seed, &format!("storage-{index}-chunk-{r}")))
            .collect();
        StorageServer {
            bn,
            chunks,
            rng: rng::stream_indexed(seed, "storage-bn", index as u64),
            writes: 0,
            reads: 0,
            degrade: 1.0,
        }
    }

    /// Set the service-time multiplier: every request completing after
    /// this call takes `factor`× its modeled time (the slowdown is
    /// attributed to the SSD component). `1.0` restores healthy service;
    /// values below 1.0 are clamped to healthy.
    pub fn set_degrade(&mut self, factor: f64) {
        self.degrade = factor.max(1.0);
    }

    /// Current service-time multiplier (1.0 = healthy).
    pub fn degrade(&self) -> f64 {
        self.degrade
    }

    /// Stretch a request's completion by the degrade factor, charging the
    /// extra time to the SSD side of the breakdown.
    fn apply_degrade(
        &self,
        now: SimTime,
        done: SimTime,
        mut bd: StorageBreakdown,
    ) -> (SimTime, StorageBreakdown) {
        if self.degrade <= 1.0 {
            return (done, bd);
        }
        let extra = (done - now).mul_f64(self.degrade - 1.0);
        bd.ssd += extra;
        (done + extra, bd)
    }

    fn bn_oneway(&mut self, bytes: usize) -> SimDuration {
        let base = rng::lognormal(
            &mut self.rng,
            self.bn.base_latency.as_micros_f64(),
            self.bn.jitter_sigma,
        );
        SimDuration::from_micros_f64(base) + self.bn.rate.transmit_time(bytes)
    }

    /// Process a WRITE of `blocks` 4 KiB blocks arriving at the block
    /// server at `now`. Data fans out to all three chunk servers in
    /// parallel over the BN; the write is durable when the *last* replica
    /// has both arrived and been persisted. Returns (completion time,
    /// breakdown).
    pub fn write(&mut self, now: SimTime, blocks: usize) -> (SimTime, StorageBreakdown) {
        self.writes += 1;
        let bytes = blocks * 4096;
        let mut done = now;
        let mut max_bn = SimDuration::ZERO;
        for r in 0..REPLICAS {
            let bn_fwd = self.bn_oneway(bytes);
            let arrive = now + bn_fwd;
            let persisted = self.chunks[r].write(arrive, blocks);
            let bn_back = self.bn_oneway(64); // replica ack
            let replica_done = persisted + bn_back;
            max_bn = max_bn.max(bn_fwd + bn_back);
            done = done.max(replica_done);
        }
        let total = done - now;
        let bn = max_bn.min(total);
        self.apply_degrade(
            now,
            done,
            StorageBreakdown {
                bn,
                ssd: total - bn,
            },
        )
    }

    /// Process a READ of `blocks` blocks arriving at `now`: one replica
    /// serves it (round-robin by request count for load spreading).
    pub fn read(&mut self, now: SimTime, blocks: usize) -> (SimTime, StorageBreakdown) {
        self.reads += 1;
        let bytes = blocks * 4096;
        let replica = (self.reads as usize) % REPLICAS;
        let bn_fwd = self.bn_oneway(64); // read command
        let fetched = self.chunks[replica].read(now + bn_fwd, blocks);
        let bn_back = self.bn_oneway(bytes); // data returns
        let done = fetched + bn_back;
        let total = done - now;
        let bn = (bn_fwd + bn_back).min(total);
        self.apply_degrade(
            now,
            done,
            StorageBreakdown {
                bn,
                ssd: total - bn,
            },
        )
    }

    /// (reads, writes) served by this block server.
    pub fn ops(&self) -> (u64, u64) {
        (self.reads, self.writes)
    }
}

impl ebs_obs::Sample for StorageServer {
    /// Component `storage`: per-block-server op counters (they accumulate
    /// across the cluster when every server samples into one registry).
    fn sample_into(&self, _now: SimTime, m: &mut ebs_obs::Metrics) {
        m.counter_add("storage", "reads", self.reads);
        m.counter_add("storage", "writes", self.writes);
        if self.degrade > 1.0 {
            m.gauge_set("storage", "degrade_factor", self.degrade);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebs_stats::Histogram;

    fn server() -> StorageServer {
        StorageServer::new(0, SsdConfig::default(), BnConfig::default(), 7)
    }

    #[test]
    fn write_waits_for_all_replicas() {
        let mut s = server();
        let (done, bd) = s.write(SimTime::ZERO, 1);
        let total = (done - SimTime::ZERO).as_micros_f64();
        // BN (≈2×4-8us) + slowest of 3 cache writes (≈14-40us).
        assert!((15.0..200.0).contains(&total), "total {total}us");
        assert!(bd.bn > SimDuration::ZERO);
        assert!(bd.ssd > SimDuration::ZERO);
    }

    #[test]
    fn read_single_replica() {
        let mut s = server();
        let (done, bd) = s.read(SimTime::ZERO, 1);
        let total = (done - SimTime::ZERO).as_micros_f64();
        assert!((40.0..300.0).contains(&total), "total {total}us");
        assert!(bd.ssd > bd.bn, "NAND dominates a 4K read");
    }

    #[test]
    fn write_median_matches_paper_scale() {
        // Fig. 6c: the SSD component of a 4K write is a few tens of µs
        // (write cache), and BN is single-digit to low-tens µs.
        let mut s = server();
        let mut ssd_h = Histogram::new();
        let mut bn_h = Histogram::new();
        for i in 0..2000u64 {
            let t = SimTime::from_millis(i);
            let (_, bd) = s.write(t, 1);
            ssd_h.record_ns(bd.ssd.as_nanos());
            bn_h.record_ns(bd.bn.as_nanos());
        }
        let ssd_med = ssd_h.median() as f64 / 1000.0;
        let bn_med = bn_h.median() as f64 / 1000.0;
        assert!((12.0..45.0).contains(&ssd_med), "ssd median {ssd_med}us");
        assert!((5.0..40.0).contains(&bn_med), "bn median {bn_med}us");
    }

    #[test]
    fn breakdown_sums_to_total() {
        let mut s = server();
        for i in 0..100u64 {
            let t = SimTime::from_millis(i);
            let (done, bd) = s.write(t, 4);
            assert_eq!((done - t).as_nanos(), (bd.bn + bd.ssd).as_nanos());
        }
    }

    #[test]
    fn degrade_stretches_service_and_heals() {
        let mut slow = server();
        let mut healthy = server();
        slow.set_degrade(4.0);
        let t = SimTime::from_millis(1);
        let (d_slow, bd_slow) = slow.write(t, 1);
        let (d_fast, bd_fast) = healthy.write(t, 1);
        // Identical seeds: the degraded run is exactly 4x the healthy one.
        assert_eq!((d_slow - t).as_nanos(), (d_fast - t).as_nanos() * 4);
        // The extra time is charged to the SSD component; BN is untouched.
        assert_eq!(bd_slow.bn, bd_fast.bn);
        assert!(bd_slow.ssd > bd_fast.ssd);
        assert_eq!(
            (d_slow - t).as_nanos(),
            (bd_slow.bn + bd_slow.ssd).as_nanos()
        );
        // Healing restores byte-identical service.
        slow.set_degrade(1.0);
        let (a, _) = slow.read(SimTime::from_millis(2), 1);
        let (b, _) = healthy.read(SimTime::from_millis(2), 1);
        assert_eq!(a, b);
    }

    #[test]
    fn reads_rotate_replicas() {
        let mut s = server();
        for i in 0..30u64 {
            s.read(SimTime::from_millis(i), 1);
        }
        let loads: Vec<u64> = s.chunks.iter().map(|c| c.ops().0).collect();
        assert!(loads.iter().all(|&l| l == 10), "balanced: {loads:?}");
    }
}
