//! SSD service-time model.
//!
//! Fig. 6's "SSD" component: chunk-server processing plus the physical
//! device. Writes land in the SSD's DRAM write cache without touching
//! NAND (tens of µs — the paper notes random writes are turned sequential
//! by the LSM tree and commit aggregation, footnote 1), while reads must
//! touch NAND (~60-90 µs for 4 KiB). Latencies are log-normal around those
//! medians; parallel NAND channels give the device internal concurrency.

use ebs_sim::{rng, FifoResource, SimDuration, SimTime};
use rand::rngs::SmallRng;

/// SSD model parameters.
#[derive(Debug, Clone, Copy)]
pub struct SsdConfig {
    /// Median write-cache latency for one 4 KiB block.
    pub write_cache_us: f64,
    /// Log-normal sigma for writes.
    pub write_sigma: f64,
    /// Median NAND read latency for one 4 KiB block.
    pub read_nand_us: f64,
    /// Log-normal sigma for reads.
    pub read_sigma: f64,
    /// Parallel channels (internal concurrency).
    pub channels: usize,
    /// Per-additional-block transfer cost within one request.
    pub per_block_us: f64,
}

impl Default for SsdConfig {
    fn default() -> Self {
        SsdConfig {
            write_cache_us: 14.0,
            write_sigma: 0.30,
            read_nand_us: 68.0,
            read_sigma: 0.35,
            channels: 8,
            per_block_us: 1.5,
        }
    }
}

/// One SSD (with its chunk-server processing folded in).
#[derive(Debug)]
pub struct Ssd {
    cfg: SsdConfig,
    channels: FifoResource,
    rng: SmallRng,
    reads: u64,
    writes: u64,
}

impl Ssd {
    /// An SSD seeded deterministically per (seed, label).
    pub fn new(cfg: SsdConfig, seed: u64, label: &str) -> Self {
        Ssd {
            channels: FifoResource::new(cfg.channels),
            rng: rng::stream(seed, label),
            cfg,
            reads: 0,
            writes: 0,
        }
    }

    /// Service a write of `blocks` 4 KiB blocks submitted at `now`;
    /// returns completion time.
    pub fn write(&mut self, now: SimTime, blocks: usize) -> SimTime {
        self.writes += 1;
        let base = rng::lognormal(&mut self.rng, self.cfg.write_cache_us, self.cfg.write_sigma);
        let service = SimDuration::from_micros_f64(
            base + self.cfg.per_block_us * blocks.saturating_sub(1) as f64,
        );
        self.channels.admit(now, service)
    }

    /// Service a read of `blocks` blocks; returns completion time.
    pub fn read(&mut self, now: SimTime, blocks: usize) -> SimTime {
        self.reads += 1;
        let base = rng::lognormal(&mut self.rng, self.cfg.read_nand_us, self.cfg.read_sigma);
        let service = SimDuration::from_micros_f64(
            base + self.cfg.per_block_us * blocks.saturating_sub(1) as f64,
        );
        self.channels.admit(now, service)
    }

    /// (reads, writes) served.
    pub fn ops(&self) -> (u64, u64) {
        (self.reads, self.writes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_are_cache_fast_reads_touch_nand() {
        let mut ssd = Ssd::new(SsdConfig::default(), 1, "t");
        let n = 2000;
        let mut wsum = 0.0;
        let mut rsum = 0.0;
        for i in 0..n {
            // Spread arrivals so channel queueing doesn't bias the medians.
            let t = SimTime::from_millis(i as u64);
            wsum += (ssd.write(t, 1) - t).as_micros_f64();
            let t2 = t + SimDuration::from_micros(500);
            rsum += (ssd.read(t2, 1) - t2).as_micros_f64();
        }
        let wmean = wsum / n as f64;
        let rmean = rsum / n as f64;
        assert!((10.0..25.0).contains(&wmean), "write mean {wmean}us");
        assert!((55.0..110.0).contains(&rmean), "read mean {rmean}us");
        assert!(
            rmean > 3.0 * wmean,
            "reads are much slower than cached writes"
        );
    }

    #[test]
    fn multi_block_requests_cost_more() {
        let mut a = Ssd::new(SsdConfig::default(), 1, "a");
        let mut b = Ssd::new(SsdConfig::default(), 1, "a"); // same stream
        let t = SimTime::ZERO;
        let one = a.write(t, 1) - t;
        let sixteen = b.write(t, 16) - t;
        assert!(sixteen > one);
        assert!((sixteen - one).as_micros_f64() >= 15.0 * 1.4);
    }

    #[test]
    fn channels_give_concurrency() {
        let mut ssd = Ssd::new(SsdConfig::default(), 1, "c");
        let t = SimTime::ZERO;
        // 8 concurrent reads: all finish in one service time (8 channels);
        // the 9th queues.
        let mut finishes: Vec<SimTime> = (0..9).map(|_| ssd.read(t, 1)).collect();
        finishes.sort();
        let first8 = finishes[7] - t;
        let ninth = finishes[8] - t;
        assert!(ninth.as_micros_f64() > first8.as_micros_f64());
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = Ssd::new(SsdConfig::default(), 42, "x");
        let mut b = Ssd::new(SsdConfig::default(), 42, "x");
        for i in 0..50 {
            let t = SimTime::from_micros(i * 1000);
            assert_eq!(a.write(t, 1), b.write(t, 1));
        }
    }
}
