//! # ebs-storage — the storage-cluster substrate
//!
//! Everything behind the frontend network (Fig. 1): block servers that
//! aggregate and sequentialize per-segment operations, chunk servers with
//! an SSD service model (DRAM write cache vs. NAND reads), three-way
//! replication over an RDMA backend network, and the per-request latency
//! breakdown that feeds Fig. 6's BN and SSD components.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod server;
mod ssd;

pub use server::{BnConfig, StorageBreakdown, StorageServer, REPLICAS};
pub use ssd::{Ssd, SsdConfig};
