//! I/O size distribution (Fig. 5).
//!
//! Production EBS I/Os are small: ~40% are ≤ 4 KiB, typical sizes are
//! 4/16/64 KiB, and FN RPCs stay under 128 KiB because guest applications
//! (databases) issue small writes for integrity (§2.3). The default
//! mixture reproduces those anchor points.

use rand::Rng;

/// A discrete mixture of I/O sizes.
#[derive(Debug, Clone)]
pub struct SizeMixture {
    /// (bytes, weight) pairs; weights need not sum to 1.
    entries: Vec<(u32, f64)>,
    total: f64,
}

impl SizeMixture {
    /// Build from (bytes, weight) pairs.
    ///
    /// # Panics
    /// Panics if empty or total weight is non-positive.
    pub fn new(entries: Vec<(u32, f64)>) -> Self {
        assert!(!entries.is_empty());
        let total: f64 = entries.iter().map(|(_, w)| w).sum();
        assert!(total > 0.0);
        SizeMixture { entries, total }
    }

    /// The production-calibrated mixture of Fig. 5 (I/O sizes).
    pub fn fig5_io() -> Self {
        SizeMixture::new(vec![
            (4 * 1024, 0.40),
            (8 * 1024, 0.10),
            (16 * 1024, 0.22),
            (32 * 1024, 0.08),
            (64 * 1024, 0.13),
            (128 * 1024, 0.04),
            (256 * 1024, 0.02),
            (1024 * 1024, 0.01),
        ])
    }

    /// Sample one size.
    pub fn sample(&self, rng: &mut impl Rng) -> u32 {
        let mut x = rng.gen::<f64>() * self.total;
        for &(bytes, w) in &self.entries {
            if x < w {
                return bytes;
            }
            x -= w;
        }
        self.entries.last().expect("non-empty").0
    }

    /// Exact CDF at `bytes` (fraction of I/Os ≤ bytes).
    pub fn cdf(&self, bytes: u32) -> f64 {
        self.entries
            .iter()
            .filter(|(b, _)| *b <= bytes)
            .map(|(_, w)| w)
            .sum::<f64>()
            / self.total
    }

    /// The (x, F(x)) curve at each distinct size.
    pub fn curve(&self) -> Vec<(u32, f64)> {
        self.entries
            .iter()
            .map(|&(b, _)| (b, self.cdf(b)))
            .collect()
    }
}

/// Read/write mix: production writes outnumber reads 3-4× (§2.3).
#[derive(Debug, Clone, Copy)]
pub struct RwMix {
    /// Fraction of I/Os that are writes.
    pub write_fraction: f64,
}

impl RwMix {
    /// The production mix (write:read ≈ 3.5:1).
    pub fn production() -> Self {
        RwMix {
            write_fraction: 0.78,
        }
    }

    /// Sample: true = write.
    pub fn sample_is_write(&self, rng: &mut impl Rng) -> bool {
        rng.gen::<f64>() < self.write_fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fig5_anchor_points() {
        let m = SizeMixture::fig5_io();
        // "about 40% RPCs are up to 4K bytes"
        assert!((m.cdf(4096) - 0.40).abs() < 0.02);
        // RPC size is (almost all) under 128K.
        assert!(m.cdf(128 * 1024) > 0.95);
        assert!((m.cdf(1024 * 1024) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_matches_cdf() {
        let m = SizeMixture::fig5_io();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        let n = 100_000;
        let small = (0..n).filter(|_| m.sample(&mut rng) <= 4096).count() as f64 / n as f64;
        assert!((small - 0.40).abs() < 0.01, "{small}");
    }

    #[test]
    fn sizes_are_block_aligned() {
        let m = SizeMixture::fig5_io();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(4);
        for _ in 0..1000 {
            assert_eq!(m.sample(&mut rng) % 4096, 0);
        }
    }

    #[test]
    fn rw_mix_matches_production() {
        let mix = RwMix::production();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        let n = 100_000;
        let writes = (0..n).filter(|_| mix.sample_is_write(&mut rng)).count() as f64;
        let ratio = writes / (n as f64 - writes);
        assert!((3.0..4.2).contains(&ratio), "write:read {ratio}");
    }

    #[test]
    fn curve_is_monotone() {
        let m = SizeMixture::fig5_io();
        let c = m.curve();
        for w in c.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }
}
