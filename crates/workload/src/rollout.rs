//! Fleet rollout model (Fig. 7).
//!
//! Fig. 7 tracks normalized fleet-average latency and IOPS per quarter as
//! LUNA (reaching scale ~2021 Q1, −64% latency / +180% IOPS) and then
//! SOLAR (−25% further; −72% / ~3× combined) roll out. The model combines
//! per-stack performance — measured by this repository's own Fig. 6
//! experiment — with logistic deployment curves.

/// Deployment fractions of each stack in one quarter.
#[derive(Debug, Clone, Copy)]
pub struct QuarterMix {
    /// Quarter label index (0 = 2019 Q1 .. 11 = 2021 Q4).
    pub quarter: usize,
    /// Fraction of fleet still on kernel TCP.
    pub kernel: f64,
    /// Fraction on LUNA.
    pub luna: f64,
    /// Fraction on SOLAR.
    pub solar: f64,
}

/// Quarter labels of Fig. 7.
pub const QUARTERS: [&str; 12] = [
    "19Q1", "19Q2", "19Q3", "19Q4", "20Q1", "20Q2", "20Q3", "20Q4", "21Q1", "21Q2", "21Q3", "21Q4",
];

fn logistic(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// The rollout timeline: LUNA ramps 2019→full by 2021 Q1; SOLAR ramps
/// from 2020 and keeps growing through 2021 Q4 (§3.2, §4.7).
pub fn rollout() -> Vec<QuarterMix> {
    (0..12)
        .map(|q| {
            let t = q as f64;
            // LUNA adoption: midpoint ~19Q4, saturating by 21Q1.
            let luna_total = logistic((t - 3.0) * 1.1);
            // SOLAR adoption (carves out of the LUNA share): midpoint 21Q2.
            let solar = logistic((t - 9.0) * 1.0) * 0.75;
            let luna = (luna_total - solar).max(0.0);
            let kernel = (1.0 - luna - solar).max(0.0);
            QuarterMix {
                quarter: q,
                kernel,
                luna,
                solar,
            }
        })
        .collect()
}

/// Per-stack steady-state performance inputs (from the Fig. 6 experiment).
#[derive(Debug, Clone, Copy)]
pub struct StackPerf {
    /// Mean I/O latency, µs.
    pub latency_us: f64,
    /// Achievable IOPS per server (normalized units are fine).
    pub iops: f64,
}

/// One Fig. 7 output point.
#[derive(Debug, Clone, Copy)]
pub struct EvolutionPoint {
    /// Quarter index.
    pub quarter: usize,
    /// Fleet-average latency normalized to 2019 Q1.
    pub latency_norm: f64,
    /// Fleet-average IOPS normalized to 2021 Q4.
    pub iops_norm: f64,
}

/// Combine the rollout with measured per-stack performance.
///
/// IOPS per server also rides a hardware/demand growth trend (servers and
/// SSDs got faster over the three years, independent of the stack); the
/// paper's tripling is the *product* of stack efficiency and that trend.
pub fn evolution(kernel: StackPerf, luna: StackPerf, solar: StackPerf) -> Vec<EvolutionPoint> {
    let mix = rollout();
    let growth_per_quarter: f64 = 1.01; // platform growth independent of stack
    let lat = |m: &QuarterMix| {
        m.kernel * kernel.latency_us + m.luna * luna.latency_us + m.solar * solar.latency_us
    };
    let iops = |m: &QuarterMix| {
        (m.kernel * kernel.iops + m.luna * luna.iops + m.solar * solar.iops)
            * growth_per_quarter.powi(m.quarter as i32)
    };
    let lat0 = lat(&mix[0]);
    let iops_last = iops(&mix[11]);
    mix.iter()
        .map(|m| EvolutionPoint {
            quarter: m.quarter,
            latency_norm: lat(m) / lat0,
            iops_norm: iops(m) / iops_last,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perfs() -> (StackPerf, StackPerf, StackPerf) {
        (
            StackPerf {
                latency_us: 300.0,
                iops: 1.0,
            },
            StackPerf {
                latency_us: 105.0,
                iops: 2.6,
            },
            StackPerf {
                latency_us: 70.0,
                iops: 3.6,
            },
        )
    }

    #[test]
    fn fractions_always_sum_to_one() {
        for m in rollout() {
            let sum = m.kernel + m.luna + m.solar;
            assert!((sum - 1.0).abs() < 1e-9, "{m:?}");
            assert!(m.kernel >= 0.0 && m.luna >= 0.0 && m.solar >= 0.0);
        }
    }

    #[test]
    fn kernel_fades_solar_rises() {
        let r = rollout();
        assert!(r[0].kernel > 0.9);
        assert!(r[8].luna > 0.5, "LUNA at scale by 21Q1: {:?}", r[8]);
        assert!(r[11].solar > 0.4, "SOLAR at scale by 21Q4: {:?}", r[11]);
        assert!(r[11].kernel < 0.05);
    }

    #[test]
    fn latency_falls_by_roughly_72_percent() {
        let (k, l, s) = perfs();
        let e = evolution(k, l, s);
        let final_latency = e[11].latency_norm;
        assert!(
            (0.22..0.36).contains(&final_latency),
            "paper: −72%; got {:.0}%",
            (1.0 - final_latency) * 100.0
        );
        // Monotone (weakly) decreasing.
        for w in e.windows(2) {
            assert!(w[1].latency_norm <= w[0].latency_norm + 1e-9);
        }
    }

    #[test]
    fn iops_roughly_triples() {
        let (k, l, s) = perfs();
        let e = evolution(k, l, s);
        let gain = e[11].iops_norm / e[0].iops_norm;
        assert!((2.5..4.5).contains(&gain), "paper ~3x; got {gain:.2}x");
        assert!((e[11].iops_norm - 1.0).abs() < 1e-9, "normalized to 21Q4");
    }
}
