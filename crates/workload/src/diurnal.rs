//! Fleet traffic models: the monitoring figures (Figs. 3 & 4).
//!
//! Hourly-averaged per-server throughput over a week (EBS vs total, RX vs
//! TX) and per-minute IOPS over a day for a highly loaded server. These
//! are *input characterizations* in the paper — the generative model here
//! reproduces their anchor numbers: EBS ≈ 63% of TX / 51% of overall
//! traffic, write I/O rate 3-4× read, ~200K IOPS peaks (§2.3).

use rand::rngs::SmallRng;
use rand::Rng;

/// One hourly sample of per-server traffic (GB transferred that hour).
#[derive(Debug, Clone, Copy)]
pub struct TrafficSample {
    /// Hour index since the start of the window.
    pub hour: u32,
    /// EBS bytes received (GB).
    pub ebs_rx: f64,
    /// EBS bytes sent (GB).
    pub ebs_tx: f64,
    /// All bytes received (GB).
    pub all_rx: f64,
    /// All bytes sent (GB).
    pub all_tx: f64,
}

/// One hourly sample of fleet I/O request rate (kilo-requests/s/server).
#[derive(Debug, Clone, Copy)]
pub struct IoRateSample {
    /// Hour index.
    pub hour: u32,
    /// Read request rate.
    pub read_krps: f64,
    /// Write request rate.
    pub write_krps: f64,
}

/// Diurnal fleet model.
#[derive(Debug, Clone)]
pub struct FleetModel {
    /// Mean EBS TX per server-hour at the diurnal midpoint (GB).
    pub ebs_tx_base_gb: f64,
    /// EBS share of server TX traffic (the paper: 63%).
    pub ebs_tx_share: f64,
    /// EBS share of overall traffic (the paper: 51%).
    pub ebs_total_share: f64,
    /// Write:read volume ratio (3-4×).
    pub write_read_ratio: f64,
    /// Diurnal swing amplitude (fraction of base).
    pub diurnal_amplitude: f64,
    /// Relative noise sigma.
    pub noise: f64,
}

impl Default for FleetModel {
    fn default() -> Self {
        FleetModel {
            ebs_tx_base_gb: 0.85,
            ebs_tx_share: 0.63,
            ebs_total_share: 0.51,
            write_read_ratio: 3.5,
            diurnal_amplitude: 0.25,
            noise: 0.05,
        }
    }
}

impl FleetModel {
    fn diurnal(&self, hour: u32, rng: &mut SmallRng) -> f64 {
        let phase = (hour % 24) as f64 / 24.0 * std::f64::consts::TAU;
        let season = 1.0 + self.diurnal_amplitude * (phase - 0.7).sin();
        let noise = 1.0 + self.noise * (rng.gen::<f64>() * 2.0 - 1.0);
        season * noise
    }

    /// Hourly traffic samples over `hours` (168 = Fig. 3a's week).
    pub fn traffic(&self, hours: u32, seed: u64) -> Vec<TrafficSample> {
        let mut rng = ebs_sim::rng::stream(seed, "fleet-traffic");
        (0..hours)
            .map(|hour| {
                let s = self.diurnal(hour, &mut rng);
                // TX carries writes (3.5x reads); RX carries read returns.
                let ebs_tx = self.ebs_tx_base_gb * s;
                let ebs_rx = ebs_tx / self.write_read_ratio;
                let all_tx = ebs_tx / self.ebs_tx_share;
                // Overall EBS share pins the RX side:
                // (ebs_tx+ebs_rx) / (all_tx+all_rx) = ebs_total_share.
                let all = (ebs_tx + ebs_rx) / self.ebs_total_share;
                let all_rx = (all - all_tx).max(ebs_rx);
                TrafficSample {
                    hour,
                    ebs_rx,
                    ebs_tx,
                    all_rx,
                    all_tx,
                }
            })
            .collect()
    }

    /// Hourly fleet-average I/O rates over `hours` (Fig. 3b).
    pub fn io_rates(&self, hours: u32, seed: u64) -> Vec<IoRateSample> {
        let mut rng = ebs_sim::rng::stream(seed, "fleet-iorate");
        (0..hours)
            .map(|hour| {
                let s = self.diurnal(hour, &mut rng);
                let write_krps = 9.0 * s;
                let read_krps = write_krps / self.write_read_ratio;
                IoRateSample {
                    hour,
                    read_krps,
                    write_krps,
                }
            })
            .collect()
    }
}

/// Per-minute IOPS of one highly loaded server over a day (Fig. 4: hovers
/// above 10^5 with bursts toward 200K).
pub fn hot_server_iops(seed: u64) -> Vec<(u32, f64)> {
    let mut rng = ebs_sim::rng::stream(seed, "hot-server");
    (0..24 * 60)
        .map(|minute| {
            let phase = minute as f64 / (24.0 * 60.0) * std::f64::consts::TAU;
            let base = 130_000.0 * (1.0 + 0.18 * (phase - 1.0).sin());
            let burst = if rng.gen::<f64>() < 0.04 {
                rng.gen_range(30_000.0..70_000.0)
            } else {
                0.0
            };
            let noise = rng.gen_range(-12_000.0..12_000.0);
            (minute, (base + burst + noise).max(20_000.0))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_shares_match_paper() {
        let m = FleetModel::default();
        let samples = m.traffic(168, 1);
        assert_eq!(samples.len(), 168);
        let (mut ebs, mut tx_share_acc, mut all) = (0.0, 0.0, 0.0);
        for s in &samples {
            ebs += s.ebs_rx + s.ebs_tx;
            all += s.all_rx + s.all_tx;
            tx_share_acc += s.ebs_tx / s.all_tx;
        }
        let total_share = ebs / all;
        let tx_share = tx_share_acc / samples.len() as f64;
        assert!((tx_share - 0.63).abs() < 0.02, "tx share {tx_share}");
        assert!(
            (total_share - 0.51).abs() < 0.03,
            "total share {total_share}"
        );
    }

    #[test]
    fn write_rate_is_3_to_4x_read() {
        let m = FleetModel::default();
        for s in m.io_rates(168, 1) {
            let ratio = s.write_krps / s.read_krps;
            assert!((3.0..4.2).contains(&ratio), "{ratio}");
        }
    }

    #[test]
    fn hot_server_peaks_near_200k() {
        let series = hot_server_iops(1);
        assert_eq!(series.len(), 1440);
        let max = series.iter().map(|(_, v)| *v).fold(0.0, f64::max);
        let mean = series.iter().map(|(_, v)| *v).sum::<f64>() / 1440.0;
        assert!((150_000.0..230_000.0).contains(&max), "peak {max}");
        assert!((90_000.0..170_000.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn deterministic() {
        let m = FleetModel::default();
        let a = m.traffic(24, 9);
        let b = m.traffic(24, 9);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.ebs_tx, y.ebs_tx);
        }
    }
}
