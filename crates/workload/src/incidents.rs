//! Network-incident model (Fig. 8).
//!
//! Fig. 8 scatters ~100 production failures from a two-year LUNA-era
//! window: x = failure duration (minutes), y = VMs left with I/O hangs,
//! colored by failure tier. The structural facts the model encodes:
//! blast radius grows with tier height (a ToR strands one rack; a core
//! switch or DC router can strand thousands of VMs across the cluster),
//! and hang count is nearly duration-independent — every VM actively
//! using a blackholed path hangs almost immediately, which is exactly why
//! §3.3 concludes only sub-second *endpoint* rerouting (SOLAR) helps.

use rand::Rng;

use crate::FailureTier;

/// One incident point for the scatter.
#[derive(Debug, Clone, Copy)]
pub struct Incident {
    /// Failure location tier.
    pub tier: FailureTier,
    /// Duration until network operations isolated/repaired it (minutes).
    pub duration_min: f64,
    /// VMs that experienced I/O hangs.
    pub vms_hung: u64,
}

/// Generate `n` incidents with production-like tier mix and durations.
pub fn generate(n: usize, seed: u64) -> Vec<Incident> {
    let mut rng = ebs_sim::rng::stream(seed, "incidents");
    (0..n)
        .map(|_| {
            let tier = match rng.gen_range(0..100) {
                0..=44 => FailureTier::Tor,
                45..=74 => FailureTier::Spine,
                75..=92 => FailureTier::Core,
                _ => FailureTier::DcRouter,
            };
            // Repair times: minutes to ~2 hours, log-uniform-ish (the §3.3
            // incident took 12 min to isolate + 30 min to recover).
            let duration_min = 10f64.powf(rng.gen_range(0.0..2.0)).clamp(1.0, 100.0);
            // Blast radius by tier; hang count is load- not duration-
            // driven (a hung VM hangs within seconds of the blackhole).
            let (lo, hi): (f64, f64) = match tier {
                FailureTier::Tor => (20.0, 300.0),
                FailureTier::Spine => (80.0, 1200.0),
                FailureTier::Core => (300.0, 6000.0),
                FailureTier::DcRouter => (800.0, 12000.0),
            };
            let vms_hung = 10f64.powf(rng.gen_range(lo.log10()..hi.log10())).round() as u64;
            Incident {
                tier,
                duration_min,
                vms_hung,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_ordering_of_blast_radius() {
        let incidents = generate(400, 1);
        let mean = |t: FailureTier| {
            let v: Vec<f64> = incidents
                .iter()
                .filter(|i| i.tier == t)
                .map(|i| i.vms_hung as f64)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        let tor = mean(FailureTier::Tor);
        let spine = mean(FailureTier::Spine);
        let core = mean(FailureTier::Core);
        let router = mean(FailureTier::DcRouter);
        assert!(
            tor < spine && spine < core && core < router,
            "blast radius must grow with tier: {tor} {spine} {core} {router}"
        );
    }

    #[test]
    fn durations_span_the_figure_range() {
        let incidents = generate(100, 2);
        let min = incidents
            .iter()
            .map(|i| i.duration_min)
            .fold(f64::MAX, f64::min);
        let max = incidents.iter().map(|i| i.duration_min).fold(0.0, f64::max);
        assert!((1.0..10.0).contains(&min));
        assert!(max > 40.0 && max <= 100.0);
    }

    #[test]
    fn all_tiers_appear() {
        let incidents = generate(100, 3);
        for t in [
            FailureTier::Tor,
            FailureTier::Spine,
            FailureTier::Core,
            FailureTier::DcRouter,
        ] {
            assert!(incidents.iter().any(|i| i.tier == t), "{t:?} missing");
        }
    }

    #[test]
    fn deterministic() {
        let a = generate(50, 7);
        let b = generate(50, 7);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.vms_hung, y.vms_hung);
        }
    }
}
