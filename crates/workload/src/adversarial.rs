//! Adversarial traffic patterns for the congestion-control matrix.
//!
//! Four stress shapes the CC literature (HPCC, Swift, DCQCN) evaluates
//! against, expressed as pure data: a deterministic list of [`IoEvent`]s
//! a harness replays into a testbed with `schedule_io`. No RNG — the
//! same config always yields the same event list, so CC comparison runs
//! are byte-identical across replays.
//!
//! The patterns exploit the testbed's topology (compute and storage
//! live in separate pods, so every RPC crosses the spine):
//!
//! * **Incast** — one victim compute issues deep bursts of large reads;
//!   every storage server responds at once and the N:1 convergence
//!   point is the victim's ToR downlink.
//! * **Microburst** — short synchronized write bursts separated by idle
//!   gaps, faster than any RTT-granularity controller can react.
//! * **Elephant/mice** — a few bulk writers (elephants) share the
//!   fabric with many latency-sensitive 4 KiB readers (mice); the
//!   interesting metric is the mice's p99.
//! * **Oversubscribed spine** — every compute writes simultaneously,
//!   saturating the pod-to-pod tier.

use ebs_wire::BLOCK_SIZE;

/// One scheduled guest I/O in an adversarial pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoEvent {
    /// Submission time, microseconds from pattern start.
    pub at_us: u64,
    /// Issuing compute server.
    pub compute: u32,
    /// Byte length (block-aligned).
    pub bytes: u32,
    /// Block-aligned byte offset on the compute's virtual disk.
    pub offset: u64,
    /// True for a write, false for a read.
    pub write: bool,
}

/// Sizing knobs shared by all patterns.
#[derive(Debug, Clone, Copy)]
pub struct AdversarialConfig {
    /// Compute servers participating.
    pub n_compute: u32,
    /// Pattern duration in microseconds.
    pub duration_us: u64,
}

impl Default for AdversarialConfig {
    fn default() -> Self {
        AdversarialConfig {
            n_compute: 8,
            duration_us: 4_000,
        }
    }
}

const BLK: u64 = BLOCK_SIZE as u64;

/// Wrap a strided offset into a bounded disk region so segment lookups
/// stay within the provisioned virtual disk.
fn wrap(offset_blocks: u64) -> u64 {
    (offset_blocks % 1024) * BLK
}

/// N:1 incast: compute 0 is the victim. Every 500 µs it opens a burst
/// of 32 large reads; the responses from every storage server converge
/// on its access link simultaneously.
pub fn incast(cfg: &AdversarialConfig) -> Vec<IoEvent> {
    let mut ev = Vec::new();
    let mut round = 0u64;
    while round * 500 < cfg.duration_us {
        for k in 0..32u64 {
            ev.push(IoEvent {
                at_us: round * 500,
                compute: 0,
                bytes: 128 * 1024,
                // Stride reads across the disk so they fan out over
                // many segments — and therefore many storage servers.
                offset: wrap(round * 32 * 32 + k * 32),
                write: false,
            });
        }
        round += 1;
    }
    ev
}

/// Microbursts: every 200 µs, all computes fire an 8-deep write burst
/// inside a ~10 µs window, then go idle.
pub fn microburst(cfg: &AdversarialConfig) -> Vec<IoEvent> {
    let mut ev = Vec::new();
    let mut round = 0u64;
    while round * 200 < cfg.duration_us {
        for c in 0..cfg.n_compute {
            for k in 0..8u64 {
                ev.push(IoEvent {
                    at_us: round * 200 + k + c as u64,
                    compute: c,
                    bytes: 16 * 1024,
                    offset: wrap(round * 8 + k),
                    write: true,
                });
            }
        }
        round += 1;
    }
    ev
}

/// Elephants and mice: computes 0-1 stream 512 KiB sequential writes
/// back-to-back; the rest issue a steady 4 KiB read every 50 µs.
pub fn elephant_mice(cfg: &AdversarialConfig) -> Vec<IoEvent> {
    let mut ev = Vec::new();
    let elephants = cfg.n_compute.min(2);
    for c in 0..elephants {
        let mut t = 0u64;
        let mut seq = 0u64;
        while t < cfg.duration_us {
            ev.push(IoEvent {
                at_us: t,
                compute: c,
                bytes: 512 * 1024,
                offset: wrap(seq * 128),
                write: true,
            });
            seq += 1;
            t += 100; // ~aggressive open-loop stream
        }
    }
    for c in elephants..cfg.n_compute {
        let mut t = (c as u64) * 7; // deterministic phase offset
        let mut seq = 0u64;
        while t < cfg.duration_us {
            ev.push(IoEvent {
                at_us: t,
                compute: c,
                bytes: 4 * 1024,
                offset: wrap(seq),
                write: false,
            });
            seq += 1;
            t += 50;
        }
    }
    ev
}

/// Oversubscribed spine: every compute streams 256 KiB writes
/// open-loop for the whole duration. With compute and storage in
/// separate pods, all of it lands on the spine tier at once.
pub fn oversubscribed_spine(cfg: &AdversarialConfig) -> Vec<IoEvent> {
    let mut ev = Vec::new();
    for c in 0..cfg.n_compute {
        let mut t = (c as u64) * 3;
        let mut seq = 0u64;
        while t < cfg.duration_us {
            ev.push(IoEvent {
                at_us: t,
                compute: c,
                bytes: 256 * 1024,
                offset: wrap(seq * 64),
                write: true,
            });
            seq += 1;
            t += 150;
        }
    }
    ev
}

/// One adversarial pattern generator, as the suite exposes it.
pub type PatternFn = fn(&AdversarialConfig) -> Vec<IoEvent>;

/// The full pattern suite, as `(name, generator)` pairs — the CC
/// comparison matrix iterates this.
pub fn suite() -> [(&'static str, PatternFn); 4] {
    [
        ("incast", incast),
        ("microburst", microburst),
        ("elephant_mice", elephant_mice),
        ("oversub_spine", oversubscribed_spine),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patterns_are_deterministic_and_nonempty() {
        let cfg = AdversarialConfig::default();
        for (name, gen) in suite() {
            let a = gen(&cfg);
            let b = gen(&cfg);
            assert!(!a.is_empty(), "{name} generated no events");
            assert_eq!(a, b, "{name} must be deterministic");
        }
    }

    #[test]
    fn events_are_block_aligned_and_in_horizon() {
        let cfg = AdversarialConfig {
            n_compute: 6,
            duration_us: 2_000,
        };
        for (name, gen) in suite() {
            for e in gen(&cfg) {
                assert_eq!(e.bytes as u64 % BLK, 0, "{name}: unaligned len");
                assert_eq!(e.offset % BLK, 0, "{name}: unaligned offset");
                assert!(e.compute < cfg.n_compute, "{name}: bad compute");
                assert!(e.at_us < cfg.duration_us + 500, "{name}: past horizon");
            }
        }
    }

    #[test]
    fn incast_converges_on_one_victim() {
        let ev = incast(&AdversarialConfig::default());
        assert!(ev.iter().all(|e| e.compute == 0 && !e.write));
    }

    #[test]
    fn elephant_mice_has_both_classes() {
        let ev = elephant_mice(&AdversarialConfig::default());
        assert!(ev.iter().any(|e| e.write && e.bytes >= 512 * 1024));
        assert!(ev.iter().any(|e| !e.write && e.bytes == 4096));
    }
}
