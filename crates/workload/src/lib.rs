//! # ebs-workload — production-calibrated workload & incident generators
//!
//! The inputs behind the paper's characterization figures:
//!
//! * [`SizeMixture`] / [`RwMix`] — the I/O size CDF and 3-4:1 write:read
//!   mix of Fig. 5 / §2.3;
//! * [`FleetModel`] / [`hot_server_iops`] — hourly fleet traffic (Fig. 3)
//!   and per-minute hot-server IOPS (Fig. 4);
//! * [`rollout`] / [`evolution`] — the three-year deployment model behind
//!   Fig. 7, combined with this repo's own measured per-stack
//!   performance;
//! * [`incidents`] — the Luna-era failure scatter of Fig. 8.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversarial;
mod diurnal;
pub mod incidents;
mod rollout;
mod sizes;

pub use adversarial::{AdversarialConfig, IoEvent};
pub use diurnal::{hot_server_iops, FleetModel, IoRateSample, TrafficSample};
pub use rollout::{evolution, rollout, EvolutionPoint, QuarterMix, StackPerf, QUARTERS};
pub use sizes::{RwMix, SizeMixture};

/// Failure location tiers of Fig. 8 / Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureTier {
    /// Top-of-rack switch.
    Tor,
    /// Pod spine switch.
    Spine,
    /// Datacenter core switch.
    Core,
    /// Region DC router.
    DcRouter,
}

impl FailureTier {
    /// Display label matching the figure legend.
    pub fn label(&self) -> &'static str {
        match self {
            FailureTier::Tor => "ToR Switch Failure",
            FailureTier::Spine => "Spine Switch Failure",
            FailureTier::Core => "Core Switch Failure",
            FailureTier::DcRouter => "DC Router Failure",
        }
    }
}
