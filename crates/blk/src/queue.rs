//! The split virtqueue: descriptor table + available ring + used ring as
//! one pure state machine.
//!
//! The shape is virtio's: `cap` descriptors (power of two), a free list
//! threaded through the descriptor table's `next` fields, an avail ring
//! the driver appends to and a used ring the device appends to, both with
//! free-running `u16` indices masked by `cap - 1`. Because completion
//! frees descriptors through the free list, the device may complete
//! requests in **any order** — out-of-order delivery is the normal case
//! on a multi-path storage fabric, not an exception.
//!
//! The ring owns no payloads; requests are [`BlkReq`] descriptions and
//! the host moves data through the `ebs-wire` block pool. What the ring
//! *does* guarantee is conservation: every descriptor is at all times in
//! exactly one of three places — the free list, device-held, or parked in
//! the used ring awaiting [`VirtQueue::poll_used`] — and
//! [`VirtQueue::check_conservation`] proves it (the chaos oracle calls it
//! at quiesce).

use ebs_wire::{BLK_S_OK, BLK_S_UNSUPP};

use crate::pushdown::StorageFn;

/// What a ring request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// Read `blocks` 4 KiB blocks starting at `first_block`.
    Read,
    /// Write `blocks` 4 KiB blocks starting at `first_block`.
    Write,
    /// Flush the write-back cache (block range ignored).
    Flush,
    /// Discard the block range.
    Discard,
    /// Execute a storage function over the block range.
    Pushdown(StorageFn),
}

/// One ring request: a kind plus the virtual-disk block range it covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlkReq {
    /// Request kind.
    pub kind: ReqKind,
    /// Virtual disk id.
    pub vd_id: u64,
    /// First 4 KiB block.
    pub first_block: u64,
    /// Block count (0 allowed only for Flush).
    pub blocks: u32,
}

impl BlkReq {
    /// A read of `blocks` blocks starting at `first_block`.
    pub fn read(vd_id: u64, first_block: u64, blocks: u32) -> Self {
        BlkReq {
            kind: ReqKind::Read,
            vd_id,
            first_block,
            blocks,
        }
    }

    /// A write of `blocks` blocks starting at `first_block`.
    pub fn write(vd_id: u64, first_block: u64, blocks: u32) -> Self {
        BlkReq {
            kind: ReqKind::Write,
            vd_id,
            first_block,
            blocks,
        }
    }

    /// A cache flush (covers no blocks).
    pub fn flush(vd_id: u64) -> Self {
        BlkReq {
            kind: ReqKind::Flush,
            vd_id,
            first_block: 0,
            blocks: 0,
        }
    }

    /// A discard of `blocks` blocks starting at `first_block`.
    pub fn discard(vd_id: u64, first_block: u64, blocks: u32) -> Self {
        BlkReq {
            kind: ReqKind::Discard,
            vd_id,
            first_block,
            blocks,
        }
    }

    /// A storage-function pushdown over `blocks` blocks starting at
    /// `first_block`.
    pub fn pushdown(vd_id: u64, first_block: u64, blocks: u32, func: StorageFn) -> Self {
        BlkReq {
            kind: ReqKind::Pushdown(func),
            vd_id,
            first_block,
            blocks,
        }
    }
}

/// Submit failed: every descriptor is in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingFull;

impl core::fmt::Display for RingFull {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "virtqueue full: no free descriptors")
    }
}

/// A completion the driver reaped from the used ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Head descriptor index of the completed request.
    pub desc: u16,
    /// Completion status (`BLK_S_OK`, ...).
    pub status: u8,
    /// Device-written bytes.
    pub len: u32,
    /// The request as submitted (the ring keeps it so the driver needs no
    /// side table).
    pub req: BlkReq,
}

#[derive(Debug, Clone, Copy)]
struct DescSlot {
    req: BlkReq,
    next_free: u16,
    held: bool,
}

#[derive(Debug, Clone, Copy)]
struct UsedSlot {
    desc: u16,
    status: u8,
    len: u32,
}

/// One split virtqueue (see module docs).
#[derive(Debug)]
pub struct VirtQueue {
    cap: u16,
    desc: Vec<DescSlot>,
    free_head: u16,
    free_count: u16,
    avail: Vec<u16>,
    avail_idx: u16,
    avail_seen: u16,
    used: Vec<UsedSlot>,
    used_idx: u16,
    used_seen: u16,
    submitted: u64,
    completed: u64,
}

const NO_FREE: u16 = u16::MAX;

impl VirtQueue {
    /// A queue with `cap` descriptors. `cap` must be a nonzero power of
    /// two ≤ 32768 (checked by [`crate::negotiate`]; a bad value here
    /// saturates to the nearest valid one rather than panicking).
    pub fn new(cap: u16) -> Self {
        let cap = cap.clamp(1, 1 << 15).next_power_of_two();
        let idle = BlkReq {
            kind: ReqKind::Flush,
            vd_id: 0,
            first_block: 0,
            blocks: 0,
        };
        let mut desc = Vec::with_capacity(cap as usize);
        for i in 0..cap {
            desc.push(DescSlot {
                req: idle,
                next_free: if i + 1 < cap { i + 1 } else { NO_FREE },
                held: false,
            });
        }
        VirtQueue {
            cap,
            desc,
            free_head: 0,
            free_count: cap,
            avail: vec![0; cap as usize],
            avail_idx: 0,
            avail_seen: 0,
            used: vec![
                UsedSlot {
                    desc: 0,
                    status: BLK_S_UNSUPP,
                    len: 0
                };
                cap as usize
            ],
            used_idx: 0,
            used_seen: 0,
            submitted: 0,
            completed: 0,
        }
    }

    #[inline]
    fn mask(&self, idx: u16) -> usize {
        (idx & (self.cap - 1)) as usize
    }

    /// Descriptor capacity.
    pub fn capacity(&self) -> u16 {
        self.cap
    }

    /// Free descriptors available for submission.
    pub fn free_descs(&self) -> u16 {
        self.free_count
    }

    /// Descriptors currently held by the device (popped, not yet pushed
    /// used).
    pub fn in_flight(&self) -> usize {
        self.desc.iter().filter(|d| d.held).count()
    }

    /// Total requests ever submitted on this queue.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Total completions ever reaped from this queue.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    // --- driver side -------------------------------------------------------

    /// Driver: allocate a descriptor for `req` and publish it on the
    /// available ring. Returns the descriptor index.
    pub fn submit(&mut self, req: BlkReq) -> Result<u16, RingFull> {
        if self.free_count == 0 {
            return Err(RingFull);
        }
        let d = self.free_head;
        let slot = &mut self.desc[d as usize];
        self.free_head = slot.next_free;
        self.free_count -= 1;
        slot.req = req;
        slot.next_free = NO_FREE;
        let at = self.mask(self.avail_idx);
        self.avail[at] = d;
        self.avail_idx = self.avail_idx.wrapping_add(1);
        self.submitted += 1;
        Ok(d)
    }

    /// Driver: reap the next completion from the used ring, freeing its
    /// descriptor. Returns None when the used ring is empty.
    pub fn poll_used(&mut self) -> Option<Completion> {
        if self.used_seen == self.used_idx {
            return None;
        }
        let at = self.mask(self.used_seen);
        self.used_seen = self.used_seen.wrapping_add(1);
        let u = self.used[at];
        let slot = &mut self.desc[u.desc as usize];
        let req = slot.req;
        slot.held = false;
        slot.next_free = self.free_head;
        self.free_head = u.desc;
        self.free_count += 1;
        self.completed += 1;
        Some(Completion {
            desc: u.desc,
            status: u.status,
            len: u.len,
            req,
        })
    }

    // --- device side -------------------------------------------------------

    /// Device: pop the next submission off the available ring. Returns
    /// the descriptor index and the request it carries.
    pub fn pop_avail(&mut self) -> Option<(u16, BlkReq)> {
        if self.avail_seen == self.avail_idx {
            return None;
        }
        let at = self.mask(self.avail_seen);
        self.avail_seen = self.avail_seen.wrapping_add(1);
        let d = self.avail[at];
        self.desc[d as usize].held = true;
        Some((d, self.desc[d as usize].req))
    }

    /// Device: complete descriptor `d` with `status`, delivering `len`
    /// device-written bytes. Descriptors may complete in any order.
    /// Completing a descriptor the device does not hold is ignored (a
    /// duplicate response after a retransmit race).
    pub fn push_used(&mut self, d: u16, status: u8, len: u32) {
        if d >= self.cap || !self.desc[d as usize].held {
            return;
        }
        self.desc[d as usize].held = false;
        // Park it in the used ring; poll_used() returns it to the free
        // list. Mark non-held so a duplicate push is dropped above, but
        // conservation counts it as "pending used" until reaped.
        let at = self.mask(self.used_idx);
        self.used[at] = UsedSlot {
            desc: d,
            status,
            len,
        };
        self.used_idx = self.used_idx.wrapping_add(1);
    }

    /// Device convenience: complete with [`BLK_S_OK`].
    pub fn push_used_ok(&mut self, d: u16, len: u32) {
        self.push_used(d, BLK_S_OK, len);
    }

    // --- invariants --------------------------------------------------------

    /// The conservation invariant: free + device-held + used-pending +
    /// avail-pending equals capacity. Returns `(free, held, used_pending,
    /// avail_pending)` on success, or an error string naming the leak.
    pub fn check_conservation(&self) -> Result<(u16, usize, u16, u16), String> {
        let free = self.free_count;
        let held = self.in_flight();
        let used_pending = self.used_idx.wrapping_sub(self.used_seen);
        let avail_pending = self.avail_idx.wrapping_sub(self.avail_seen);
        let total = free as usize + held + used_pending as usize + avail_pending as usize;
        if total != self.cap as usize {
            return Err(format!(
                "descriptor leak: free={free} held={held} used_pending={used_pending} \
                 avail_pending={avail_pending} != cap={}",
                self.cap
            ));
        }
        // Walk the free list and make sure it really has `free` nodes.
        let mut n = 0u32;
        let mut cur = self.free_head;
        while cur != NO_FREE && n <= self.cap as u32 {
            n += 1;
            cur = self.desc[cur as usize].next_free;
        }
        if n != free as u32 {
            return Err(format!("free list length {n} != free_count {free}"));
        }
        Ok((free, held, used_pending, avail_pending))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebs_wire::BLK_S_IOERR;

    fn rd(first: u64, blocks: u32) -> BlkReq {
        BlkReq {
            kind: ReqKind::Read,
            vd_id: 1,
            first_block: first,
            blocks,
        }
    }

    #[test]
    fn submit_pop_complete_poll_roundtrip() {
        let mut q = VirtQueue::new(8);
        let d = q.submit(rd(10, 4)).unwrap();
        let (pd, req) = q.pop_avail().unwrap();
        assert_eq!(pd, d);
        assert_eq!(req, rd(10, 4));
        q.push_used_ok(d, 4 * 4096);
        let c = q.poll_used().unwrap();
        assert_eq!(c.desc, d);
        assert_eq!(c.status, BLK_S_OK);
        assert_eq!(c.len, 4 * 4096);
        assert_eq!(c.req, rd(10, 4));
        assert_eq!(q.free_descs(), 8);
        q.check_conservation().unwrap();
    }

    #[test]
    fn ring_full_at_capacity_then_recovers() {
        let mut q = VirtQueue::new(4);
        let mut descs = vec![];
        for i in 0..4 {
            descs.push(q.submit(rd(i, 1)).unwrap());
        }
        assert_eq!(q.submit(rd(99, 1)), Err(RingFull));
        q.check_conservation().unwrap();
        // Drain one and the ring accepts again.
        let (d, _) = q.pop_avail().unwrap();
        q.push_used_ok(d, 4096);
        assert!(q.poll_used().is_some());
        assert!(q.submit(rd(100, 1)).is_ok());
        q.check_conservation().unwrap();
    }

    #[test]
    fn indices_wrap_past_u16_boundary() {
        // Free-running u16 indices must survive wrap-around: run enough
        // submit/complete cycles on a tiny ring to wrap all counters.
        let mut q = VirtQueue::new(4);
        for i in 0..70_000u64 {
            let d = q.submit(rd(i, 1)).unwrap();
            let (pd, _) = q.pop_avail().unwrap();
            assert_eq!(pd, d);
            q.push_used_ok(pd, 4096);
            let c = q.poll_used().unwrap();
            assert_eq!(c.desc, d);
        }
        assert_eq!(q.submitted(), 70_000);
        assert_eq!(q.completed(), 70_000);
        assert_eq!(q.free_descs(), 4);
        q.check_conservation().unwrap();
    }

    #[test]
    fn out_of_order_completion_delivers_in_completion_order() {
        let mut q = VirtQueue::new(8);
        let a = q.submit(rd(1, 1)).unwrap();
        let b = q.submit(rd(2, 1)).unwrap();
        let c = q.submit(rd(3, 1)).unwrap();
        for _ in 0..3 {
            q.pop_avail().unwrap();
        }
        // Complete in reverse submission order.
        q.push_used(c, BLK_S_OK, 4096);
        q.push_used(a, BLK_S_IOERR, 0);
        q.push_used(b, BLK_S_OK, 4096);
        let got: Vec<(u16, u8)> = core::iter::from_fn(|| q.poll_used())
            .map(|x| (x.desc, x.status))
            .collect();
        assert_eq!(got, vec![(c, BLK_S_OK), (a, BLK_S_IOERR), (b, BLK_S_OK)]);
        q.check_conservation().unwrap();
        assert_eq!(q.free_descs(), 8);
    }

    #[test]
    fn duplicate_push_used_is_dropped() {
        let mut q = VirtQueue::new(4);
        let d = q.submit(rd(5, 1)).unwrap();
        q.pop_avail().unwrap();
        q.push_used_ok(d, 4096);
        q.push_used_ok(d, 4096); // retransmit race: second response ignored
        assert!(q.poll_used().is_some());
        assert!(q.poll_used().is_none());
        assert_eq!(q.free_descs(), 4);
        q.check_conservation().unwrap();
    }

    #[test]
    fn reused_descriptor_carries_fresh_request() {
        let mut q = VirtQueue::new(1);
        let d1 = q.submit(rd(1, 1)).unwrap();
        let (p1, _) = q.pop_avail().unwrap();
        q.push_used_ok(p1, 4096);
        assert_eq!(q.poll_used().unwrap().req, rd(1, 1));
        let d2 = q.submit(rd(2, 2)).unwrap();
        assert_eq!(d1, d2, "single-slot ring reuses the descriptor");
        let (_, req) = q.pop_avail().unwrap();
        assert_eq!(req, rd(2, 2));
    }
}
