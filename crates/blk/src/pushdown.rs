//! Storage-function pushdown: the closed function enum, its reference
//! execution, and the CRC rule that makes transformed results verifiable.
//!
//! BPF-oF's observation is that filter/scan/compaction work can run next
//! to the data instead of dragging every block across the fabric; FlexBSO
//! shows the same functions fit a SmartNIC pipeline. We model exactly
//! three functions ([`StorageFn`] is a **closed** enum — a function the
//! verifier hasn't blessed cannot exist):
//!
//! * **RangeScan** — return only blocks matching a byte predicate;
//! * **ChecksumVerify** — return no data, only the range's aggregate CRC;
//! * **CompactionMerge** — XOR-fold each group of `k` blocks into one.
//!
//! **The CRC-of-transformed-data rule.** Raw CRC32 (init 0, xorout 0) is
//! linear over XOR: `crc(a ⊕ b) = crc(a) ⊕ crc(b)`. Every result
//! therefore carries an aggregate checksum the *client* can recompute
//! from data it actually received:
//!
//! * RangeScan: XOR of the returned blocks' raw CRCs — recomputable from
//!   the returned payload alone;
//! * ChecksumVerify: XOR of *all* source blocks' raw CRCs — the client
//!   compares against the VD's expected signature;
//! * CompactionMerge: by linearity, each output block's CRC is the XOR of
//!   its group's source CRCs, so the aggregate equals the XOR of **all**
//!   source-block CRCs — independent of `k` and of how the range was
//!   sharded across storage servers. That grouping-invariance is what
//!   lets a multi-part response be verified without knowing the split.
//!
//! Blocks themselves are synthesized deterministically from
//! `(vd_id, block_addr)` ([`synth_block`]), so client, storage node and
//! DPU all agree on the bytes without shipping them — the simulator's
//! stand-in for content-addressed test data.

use ebs_crc::block_crc_raw;
use ebs_wire::{PushdownOp, BLOCK_SIZE};

/// The byte predicate of a range scan: `block[offset] & mask == value & mask`.
///
/// Selectivity is `2^-popcount(mask)` over the uniform synthesized
/// blocks, so benches dial the hit rate with the mask width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Predicate {
    /// Byte offset within the 4 KiB block to test.
    pub offset: u16,
    /// Mask applied to the tested byte.
    pub mask: u8,
    /// Value compared against the masked byte.
    pub value: u8,
}

impl Predicate {
    /// A predicate matching every block (mask 0).
    pub const ALL: Predicate = Predicate {
        offset: 0,
        mask: 0,
        value: 0,
    };
}

/// One storage function: what to run over a block range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StorageFn {
    /// Function selector.
    pub op: PushdownOp,
    /// Scan predicate (ignored by ChecksumVerify and CompactionMerge).
    pub pred: Predicate,
    /// CompactionMerge group size (blocks folded per output; ≥ 1).
    pub group_k: u8,
}

impl StorageFn {
    /// A range scan with the given predicate.
    pub fn scan(pred: Predicate) -> Self {
        StorageFn {
            op: PushdownOp::RangeScan,
            pred,
            group_k: 0,
        }
    }

    /// A checksum-verify over the range.
    pub fn checksum_verify() -> Self {
        StorageFn {
            op: PushdownOp::ChecksumVerify,
            pred: Predicate::ALL,
            group_k: 0,
        }
    }

    /// A compaction merge folding each `k`-block group into one block.
    pub fn merge(k: u8) -> Self {
        StorageFn {
            op: PushdownOp::CompactionMerge,
            pred: Predicate::ALL,
            group_k: k.max(1),
        }
    }
}

/// What a pushdown execution produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushdownResult {
    /// Blocks in the result payload (0 for ChecksumVerify).
    pub blocks_out: u32,
    /// Aggregate raw CRC32 of the result (see module docs).
    pub result_crc: u32,
    /// Blocks actually scanned (== the range size; the cost driver).
    pub blocks_scanned: u32,
}

/// Deterministically synthesize the 4 KiB block at `(vd_id, addr)`.
///
/// splitmix64 seeds an xorshift64* stream; 512 u64 words fill the block.
/// Every placement — client, storage node, DPU stage — produces the same
/// bytes, which is what lets the integrity check recompute CRCs of data
/// it synthesized rather than received.
pub fn synth_block(vd_id: u64, addr: u64) -> [u8; BLOCK_SIZE] {
    let mut block = [0u8; BLOCK_SIZE];
    // splitmix64 over (vd_id, addr) for the stream seed.
    let mut z = vd_id
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(addr)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    let mut s = z ^ (z >> 31);
    if s == 0 {
        s = 0x9E37_79B9_7F4A_7C15;
    }
    for chunk in block.chunks_exact_mut(8) {
        // xorshift64*
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        let w = s.wrapping_mul(0x2545_F491_4F6C_DD1D);
        chunk.copy_from_slice(&w.to_le_bytes());
    }
    block
}

/// Does `block` match `pred`?
pub fn matches(pred: Predicate, block: &[u8; BLOCK_SIZE]) -> bool {
    let b = block[pred.offset as usize % BLOCK_SIZE];
    b & pred.mask == pred.value & pred.mask
}

/// Reference execution of `func` over `[first_block, first_block + count)`
/// of `vd_id`. This is the *semantic* ground truth every placement runs:
/// the placements differ in where the cycles are spent and how many bytes
/// cross the fabric, never in the answer.
pub fn execute(func: StorageFn, vd_id: u64, first_block: u64, count: u32) -> PushdownResult {
    match func.op {
        PushdownOp::RangeScan => {
            let mut blocks_out = 0u32;
            let mut crc = 0u32;
            for i in 0..count {
                let block = synth_block(vd_id, first_block + i as u64);
                if matches(func.pred, &block) {
                    blocks_out += 1;
                    crc ^= block_crc_raw(&block, BLOCK_SIZE);
                }
            }
            PushdownResult {
                blocks_out,
                result_crc: crc,
                blocks_scanned: count,
            }
        }
        PushdownOp::ChecksumVerify => {
            let mut crc = 0u32;
            for i in 0..count {
                let block = synth_block(vd_id, first_block + i as u64);
                crc ^= block_crc_raw(&block, BLOCK_SIZE);
            }
            PushdownResult {
                blocks_out: 0,
                result_crc: crc,
                blocks_scanned: count,
            }
        }
        PushdownOp::CompactionMerge => {
            let k = func.group_k.max(1) as u32;
            let mut blocks_out = 0u32;
            let mut crc = 0u32;
            let mut i = 0u32;
            while i < count {
                let group = k.min(count - i);
                let mut folded = synth_block(vd_id, first_block + i as u64);
                for j in 1..group {
                    let b = synth_block(vd_id, first_block + (i + j) as u64);
                    for (f, x) in folded.iter_mut().zip(b.iter()) {
                        *f ^= x;
                    }
                }
                blocks_out += 1;
                crc ^= block_crc_raw(&folded, BLOCK_SIZE);
                i += group;
            }
            PushdownResult {
                blocks_out,
                result_crc: crc,
                blocks_scanned: count,
            }
        }
    }
}

/// Client-side verification of a RangeScan result: recompute each
/// returned block's raw CRC from the bytes actually received and compare
/// the XOR-aggregate against the claimed `result_crc`. `blocks` is the
/// response payload.
pub fn verify_scan(blocks: &[[u8; BLOCK_SIZE]], claimed_crc: u32) -> bool {
    let mut crc = 0u32;
    for b in blocks {
        crc ^= block_crc_raw(b, BLOCK_SIZE);
    }
    crc == claimed_crc
}

/// Client-side verification of a CompactionMerge (or multi-part
/// ChecksumVerify) aggregate: by CRC linearity the claimed aggregate must
/// equal the XOR of **all** source-block raw CRCs, regardless of grouping
/// or sharding. The client recomputes that signature from the range it
/// asked about.
pub fn verify_merge(vd_id: u64, first_block: u64, count: u32, claimed_crc: u32) -> bool {
    let mut crc = 0u32;
    for i in 0..count {
        let block = synth_block(vd_id, first_block + i as u64);
        crc ^= block_crc_raw(&block, BLOCK_SIZE);
    }
    crc == claimed_crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebs_crc::crc32_raw;

    #[test]
    fn synth_block_is_deterministic_and_distinct() {
        assert_eq!(synth_block(1, 7), synth_block(1, 7));
        assert_ne!(synth_block(1, 7), synth_block(1, 8));
        assert_ne!(synth_block(1, 7), synth_block(2, 7));
    }

    #[test]
    fn predicate_selectivity_tracks_mask_width() {
        // mask 0x07 keeps 3 bits → expect ~1/8 of blocks to match.
        let pred = Predicate {
            offset: 17,
            mask: 0x07,
            value: 0x05,
        };
        let hits = (0..4096u64)
            .filter(|&a| matches(pred, &synth_block(9, a)))
            .count();
        assert!((380..=650).contains(&hits), "got {hits}, expect ~512");
    }

    #[test]
    fn scan_crc_verifies_against_returned_payload() {
        let pred = Predicate {
            offset: 3,
            mask: 0x03,
            value: 0x01,
        };
        let res = execute(StorageFn::scan(pred), 5, 100, 64);
        let returned: Vec<[u8; BLOCK_SIZE]> = (0..64u64)
            .map(|i| synth_block(5, 100 + i))
            .filter(|b| matches(pred, b))
            .collect();
        assert_eq!(returned.len() as u32, res.blocks_out);
        assert!(verify_scan(&returned, res.result_crc));
    }

    #[test]
    fn scan_crc_rejects_planted_bit_flip() {
        let pred = Predicate {
            offset: 3,
            mask: 0x03,
            value: 0x01,
        };
        let res = execute(StorageFn::scan(pred), 5, 100, 64);
        let mut returned: Vec<[u8; BLOCK_SIZE]> = (0..64u64)
            .map(|i| synth_block(5, 100 + i))
            .filter(|b| matches(pred, b))
            .collect();
        assert!(!returned.is_empty());
        returned[0][1234] ^= 0x40; // the planted corruption
        assert!(!verify_scan(&returned, res.result_crc));
    }

    #[test]
    fn checksum_verify_matches_source_signature() {
        let res = execute(StorageFn::checksum_verify(), 2, 0, 128);
        assert_eq!(res.blocks_out, 0);
        assert!(verify_merge(2, 0, 128, res.result_crc));
        assert!(!verify_merge(2, 0, 128, res.result_crc ^ 1));
    }

    #[test]
    fn merge_aggregate_is_grouping_invariant() {
        // The documented invariant: the aggregate CRC equals the XOR of
        // all source CRCs for ANY k — and for any sharding of the range.
        let sig = execute(StorageFn::checksum_verify(), 3, 50, 96).result_crc;
        for k in [1u8, 2, 3, 8, 96] {
            let res = execute(StorageFn::merge(k), 3, 50, 96);
            assert_eq!(res.result_crc, sig, "k={k}");
            assert!(verify_merge(3, 50, 96, res.result_crc));
        }
        // Sharded: two parts XOR to the same aggregate.
        let a = execute(StorageFn::merge(4), 3, 50, 40).result_crc;
        let b = execute(StorageFn::merge(4), 3, 90, 56).result_crc;
        assert_eq!(a ^ b, sig);
    }

    #[test]
    fn crc_linearity_over_xor_holds() {
        // The property the whole rule rests on: raw CRC32 is linear.
        let x = synth_block(1, 1);
        let y = synth_block(1, 2);
        let mut z = x;
        for (a, b) in z.iter_mut().zip(y.iter()) {
            *a ^= b;
        }
        assert_eq!(crc32_raw(&z), crc32_raw(&x) ^ crc32_raw(&y));
    }

    #[test]
    fn merge_crc_rejects_corrupted_fold() {
        let res = execute(StorageFn::merge(4), 7, 0, 32);
        assert!(verify_merge(7, 0, 32, res.result_crc));
        assert!(!verify_merge(7, 0, 32, res.result_crc ^ 0x8000));
    }
}
