//! # ebs-blk — the virtio-blk-shaped guest frontend
//!
//! The compute-to-storage path the paper describes terminates in a block
//! device the guest sees. This crate is that device, shaped like
//! virtio-blk's split ring (FlexBSO exposes the same surface through
//! vhost-user): a [`VirtQueue`] holds a descriptor table, a driver-owned
//! available ring and a device-owned used ring, all sized to a power of
//! two and indexed by free-running 16-bit counters. Multiple queues per
//! device ([`BlkDevice`]) give each vCPU its own submission path.
//!
//! Everything here is **sans-io and time-free**: the ring is a pure state
//! machine over [`BlkReq`] values, the host (`ebs-stack`'s `Testbed`)
//! decides when submissions are popped and completions pushed, and the
//! same crate drives the chaos runner and the placement bench without a
//! single clock read.
//!
//! On top of the ring sits the **pushdown layer** ([`pushdown`]): a small
//! closed enum of storage functions — range scan with a byte predicate,
//! checksum-verify, compaction merge — that can execute at the client
//! (baseline), on the storage node, or as a metered DPU pipeline stage.
//! The transformed result carries an aggregate CRC derived from the
//! source blocks' raw CRCs so the client can verify data it never read
//! in full (`docs/PROTOCOL.md` §7).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod pushdown;
mod queue;

pub use pushdown::{
    execute, matches, synth_block, verify_merge, verify_scan, Predicate, PushdownResult, StorageFn,
};
pub use queue::{BlkReq, Completion, ReqKind, RingFull, VirtQueue};

use ebs_wire::{BLK_F_MQ, BLK_F_PUSHDOWN, BLK_F_PUSHDOWN_DPU, BLK_KNOWN_FEATURES};

/// Device-side static configuration offered to the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceConfig {
    /// Queues the device exposes (≥ 2 requires [`BLK_F_MQ`]).
    pub num_queues: u16,
    /// Descriptors per queue; must be a power of two.
    pub queue_depth: u16,
    /// Feature bits the device offers (subset of [`BLK_KNOWN_FEATURES`]).
    pub features: u64,
}

/// Why feature negotiation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureError {
    /// The driver acknowledged a bit outside [`BLK_KNOWN_FEATURES`].
    UnknownBits(u64),
    /// The driver acknowledged a bit the device did not offer.
    NotOffered(u64),
    /// The driver wants multiple queues without acknowledging [`BLK_F_MQ`].
    QueueCountWithoutMq,
    /// [`BLK_F_PUSHDOWN_DPU`] requires [`BLK_F_PUSHDOWN`].
    DpuWithoutPushdown,
    /// `queue_depth` is zero or not a power of two.
    BadQueueDepth,
}

impl core::fmt::Display for FeatureError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FeatureError::UnknownBits(b) => write!(f, "unknown feature bits {b:#x}"),
            FeatureError::NotOffered(b) => write!(f, "feature bits {b:#x} not offered"),
            FeatureError::QueueCountWithoutMq => write!(f, "multi-queue without BLK_F_MQ"),
            FeatureError::DpuWithoutPushdown => {
                write!(f, "BLK_F_PUSHDOWN_DPU without BLK_F_PUSHDOWN")
            }
            FeatureError::BadQueueDepth => write!(f, "queue depth must be a nonzero power of two"),
        }
    }
}

/// Negotiate features: the driver acknowledges `driver_ack`, the device
/// offered `cfg.features`. Returns the agreed feature set.
///
/// Rejection cases mirror the virtio spec's FEATURES_OK dance: unknown
/// bits, bits not offered, and dependent bits without their prerequisite
/// all fail negotiation instead of being silently masked — a driver that
/// asks for something the device cannot honour must find out now, not at
/// I/O time.
pub fn negotiate(cfg: &DeviceConfig, driver_ack: u64) -> Result<u64, FeatureError> {
    if cfg.queue_depth == 0 || !cfg.queue_depth.is_power_of_two() {
        return Err(FeatureError::BadQueueDepth);
    }
    let unknown = driver_ack & !BLK_KNOWN_FEATURES;
    if unknown != 0 {
        return Err(FeatureError::UnknownBits(unknown));
    }
    let not_offered = driver_ack & !cfg.features;
    if not_offered != 0 {
        return Err(FeatureError::NotOffered(not_offered));
    }
    if cfg.num_queues > 1 && driver_ack & BLK_F_MQ == 0 {
        return Err(FeatureError::QueueCountWithoutMq);
    }
    if driver_ack & BLK_F_PUSHDOWN_DPU != 0 && driver_ack & BLK_F_PUSHDOWN == 0 {
        return Err(FeatureError::DpuWithoutPushdown);
    }
    Ok(driver_ack)
}

/// A mounted multi-queue block device: the negotiated feature set plus
/// one [`VirtQueue`] per queue.
#[derive(Debug)]
pub struct BlkDevice {
    features: u64,
    queues: Vec<VirtQueue>,
}

impl BlkDevice {
    /// Negotiate against `cfg` and build the device's queues.
    pub fn mount(cfg: &DeviceConfig, driver_ack: u64) -> Result<Self, FeatureError> {
        let features = negotiate(cfg, driver_ack)?;
        let n = if features & BLK_F_MQ != 0 {
            cfg.num_queues.max(1)
        } else {
            1
        };
        let queues = (0..n).map(|_| VirtQueue::new(cfg.queue_depth)).collect();
        Ok(BlkDevice { features, queues })
    }

    /// The negotiated feature bits.
    pub fn features(&self) -> u64 {
        self.features
    }

    /// Number of queues.
    pub fn num_queues(&self) -> usize {
        self.queues.len()
    }

    /// Borrow queue `q` mutably (None when out of range).
    pub fn queue_mut(&mut self, q: usize) -> Option<&mut VirtQueue> {
        self.queues.get_mut(q)
    }

    /// Borrow queue `q` (None when out of range).
    pub fn queue(&self, q: usize) -> Option<&VirtQueue> {
        self.queues.get(q)
    }

    /// Total descriptors currently held by the device across all queues.
    pub fn in_flight(&self) -> usize {
        self.queues.iter().map(|q| q.in_flight()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebs_wire::{BLK_F_DISCARD, BLK_F_FLUSH, BLK_F_SEG_MAX};

    fn cfg() -> DeviceConfig {
        DeviceConfig {
            num_queues: 4,
            queue_depth: 64,
            features: BLK_KNOWN_FEATURES,
        }
    }

    #[test]
    fn negotiation_accepts_known_subset() {
        let ack = BLK_F_MQ | BLK_F_FLUSH | BLK_F_PUSHDOWN;
        assert_eq!(negotiate(&cfg(), ack), Ok(ack));
    }

    #[test]
    fn negotiation_rejects_unknown_bits() {
        let ack = BLK_F_MQ | (1 << 40);
        assert_eq!(
            negotiate(&cfg(), ack),
            Err(FeatureError::UnknownBits(1 << 40))
        );
    }

    #[test]
    fn negotiation_rejects_unoffered_bits() {
        let mut c = cfg();
        c.features = BLK_F_MQ | BLK_F_FLUSH;
        assert_eq!(
            negotiate(&c, BLK_F_MQ | BLK_F_DISCARD),
            Err(FeatureError::NotOffered(BLK_F_DISCARD))
        );
    }

    #[test]
    fn negotiation_rejects_mq_shape_without_mq_bit() {
        assert_eq!(
            negotiate(&cfg(), BLK_F_FLUSH),
            Err(FeatureError::QueueCountWithoutMq)
        );
    }

    #[test]
    fn negotiation_rejects_dpu_without_pushdown() {
        assert_eq!(
            negotiate(&cfg(), BLK_F_MQ | BLK_F_PUSHDOWN_DPU),
            Err(FeatureError::DpuWithoutPushdown)
        );
    }

    #[test]
    fn negotiation_rejects_non_power_of_two_depth() {
        let mut c = cfg();
        c.queue_depth = 48;
        assert_eq!(negotiate(&c, BLK_F_MQ), Err(FeatureError::BadQueueDepth));
    }

    #[test]
    fn mount_without_mq_collapses_to_one_queue() {
        let mut c = cfg();
        c.num_queues = 1;
        let dev = BlkDevice::mount(&c, BLK_F_SEG_MAX).unwrap();
        assert_eq!(dev.num_queues(), 1);
        let dev = BlkDevice::mount(&cfg(), BLK_F_MQ).unwrap();
        assert_eq!(dev.num_queues(), 4);
    }
}
