//! Property test: ANY interleaving of driver submits, device pops,
//! out-of-order completions and driver polls conserves descriptors — the
//! ring never leaks or double-frees a slot, and draining everything
//! returns the queue to a fully free state.

use ebs_blk::{BlkReq, ReqKind, VirtQueue};
use proptest::prelude::*;

fn req(i: u64) -> BlkReq {
    BlkReq {
        kind: ReqKind::Read,
        vd_id: 1,
        first_block: i,
        blocks: 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn any_interleaving_conserves_descriptors(
        cap_pow in 0u32..6, // capacities 1..32
        // (op selector, out-of-order pick): 0 = submit, 1 = device pop,
        // 2 = device completes an arbitrary held descriptor, 3 = poll.
        ops in proptest::collection::vec((0u8..4, any::<u8>()), 1..400),
    ) {
        let cap = 1u16 << cap_pow;
        let mut q = VirtQueue::new(cap);
        let mut held: Vec<u16> = Vec::new();
        let mut submitted = 0u64;
        let mut reaped = 0u64;
        for (op, pick) in ops {
            match op {
                0 => match q.submit(req(submitted)) {
                    Ok(_) => submitted += 1,
                    Err(_) => prop_assert_eq!(q.free_descs(), 0),
                },
                1 => {
                    if let Some((d, _)) = q.pop_avail() {
                        held.push(d);
                    }
                }
                2 => {
                    if !held.is_empty() {
                        // Complete an arbitrary held descriptor:
                        // out-of-order by construction.
                        let d = held.remove(pick as usize % held.len());
                        q.push_used(d, 0, 4096);
                    }
                }
                _ => {
                    if q.poll_used().is_some() {
                        reaped += 1;
                    }
                }
            }
            // The invariant holds after EVERY step, not just at quiesce.
            if let Err(e) = q.check_conservation() {
                prop_assert!(false, "after op {op}: {e}");
            }
            prop_assert_eq!(q.in_flight(), held.len());
        }
        // Drain to quiescence: pop + complete + poll everything.
        while let Some((d, _)) = q.pop_avail() {
            held.push(d);
        }
        for d in held.drain(..) {
            q.push_used(d, 0, 4096);
        }
        while q.poll_used().is_some() {
            reaped += 1;
        }
        prop_assert_eq!(q.free_descs(), cap);
        prop_assert_eq!(reaped, submitted);
        prop_assert_eq!(q.submitted(), submitted);
        prop_assert_eq!(q.completed(), reaped);
        q.check_conservation().expect("quiesced queue conserves");
    }
}
