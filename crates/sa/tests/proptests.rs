//! Property tests on the storage agent's invariants.

use ebs_sa::{split_io, IoKind, IoRequest, QosSpec, QosTable, SegmentTable, BLOCK_SIZE};
use ebs_sim::{Bandwidth, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Splitting partitions an I/O exactly: the sub-I/Os' block lists
    /// concatenate to precisely the requested block range, in order, and
    /// each sub-I/O stays within one segment.
    #[test]
    fn split_is_an_exact_partition(
        segs in 1u64..8,
        start in 0u64..2048,
        blocks in 1u64..200,
    ) {
        let mut table = SegmentTable::new(ebs_sa::SEGMENT_BLOCKS);
        let vd_blocks = 8 * ebs_sa::SEGMENT_BLOCKS;
        table.provision(1, vd_blocks, |s| (s % segs.max(1)) as u32);
        let start = start.min(vd_blocks - 1);
        let blocks = blocks.min(vd_blocks - start);
        let req = IoRequest {
            vd_id: 1,
            kind: IoKind::Write,
            offset: start * BLOCK_SIZE as u64,
            len: (blocks * BLOCK_SIZE as u64) as u32,
        };
        let subs = split_io(&table, &req, BLOCK_SIZE).unwrap();
        let all: Vec<u64> = subs.iter().flat_map(|s| s.blocks.iter().copied()).collect();
        let expect: Vec<u64> = (start..start + blocks).collect();
        prop_assert_eq!(all, expect);
        for sub in &subs {
            let seg0 = sub.blocks[0] / ebs_sa::SEGMENT_BLOCKS;
            for &b in &sub.blocks {
                prop_assert_eq!(b / ebs_sa::SEGMENT_BLOCKS, seg0, "one segment per sub-I/O");
            }
            let entry = table.lookup(1, sub.blocks[0]).unwrap();
            prop_assert_eq!(entry.block_server, sub.block_server);
            prop_assert_eq!(entry.segment_id, sub.segment_id);
        }
    }

    /// The QoS dual token bucket never admits more than the configured
    /// IOPS (over a long window, with arbitrary arrival patterns).
    #[test]
    fn qos_never_exceeds_iops(
        iops in 100u64..5000,
        arrivals in proptest::collection::vec(0u64..1_000_000, 50..300),
    ) {
        let mut q = QosTable::new();
        q.set_spec(1, QosSpec {
            iops,
            bandwidth: Bandwidth::from_gbps(100), // not binding
            burst_secs: 0.1,
        });
        let mut times: Vec<u64> = arrivals;
        times.sort();
        let horizon_us = *times.last().unwrap() + 1;
        let mut admitted_immediately = 0u64;
        for &us in &times {
            if q.admit(SimTime::from_micros(us), 1, 4096) == SimDuration::ZERO {
                admitted_immediately += 1;
            }
        }
        // Over the window, immediate admissions ≤ rate * window + burst.
        let allowance = iops as f64 * (horizon_us as f64 / 1e6) + iops as f64 * 0.1 + 1.0;
        prop_assert!(
            (admitted_immediately as f64) <= allowance,
            "{admitted_immediately} admitted vs allowance {allowance}"
        );
    }

    /// Delayed admissions report a delay that actually restores the
    /// budget: replaying the same I/O at `now + delay` is admitted.
    #[test]
    fn qos_delay_is_sufficient(burst_ios in 1usize..40) {
        let mut q = QosTable::new();
        q.set_spec(1, QosSpec {
            iops: 1000,
            bandwidth: Bandwidth::from_mbps(800),
            burst_secs: 0.005,
        });
        let now = SimTime::from_secs(1);
        let mut max_delay = SimDuration::ZERO;
        for _ in 0..burst_ios {
            max_delay = max_delay.max(q.admit(now, 1, 4096));
        }
        // After waiting out the worst delay plus one token interval, an
        // I/O goes straight through.
        let later = now + max_delay + SimDuration::from_millis(1);
        prop_assert_eq!(q.admit(later, 1, 4096), SimDuration::ZERO);
    }
}
