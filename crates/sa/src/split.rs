//! I/O splitting: carve a guest I/O into per-block-server sub-I/Os.
//!
//! All SA data-plane operations are per-block (§2.2): an I/O is decomposed
//! into 4 KiB blocks, grouped into one sub-I/O per (segment, block server)
//! run. Because segments are 2 MiB and guest I/Os are small (Fig. 5), the
//! vast majority of I/Os produce exactly one sub-I/O (§4.5 notes the
//! splitting chance is deliberately low).

use crate::segment::{SegmentError, SegmentTable};

/// Direction of an I/O.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoKind {
    /// Guest write.
    Write,
    /// Guest read.
    Read,
}

/// A guest I/O request as it arrives from the NVMe queue pair.
#[derive(Debug, Clone, Copy)]
pub struct IoRequest {
    /// Virtual disk.
    pub vd_id: u64,
    /// Read or write.
    pub kind: IoKind,
    /// Byte offset on the disk (must be block-aligned).
    pub offset: u64,
    /// Byte length (must be a multiple of the block size).
    pub len: u32,
}

/// One sub-I/O: a run of blocks within a single segment, headed to one
/// block server as one RPC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubIo {
    /// Destination block server.
    pub block_server: u32,
    /// Segment the blocks live in.
    pub segment_id: u64,
    /// Virtual-disk block addresses, consecutive.
    pub blocks: Vec<u64>,
}

/// Split errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitError {
    /// Offset or length not 4 KiB-aligned.
    Misaligned,
    /// Zero-length I/O.
    Empty,
    /// Segment lookup failed.
    Segment(SegmentError),
}

impl core::fmt::Display for SplitError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SplitError::Misaligned => write!(f, "offset/len not block aligned"),
            SplitError::Empty => write!(f, "zero-length I/O"),
            SplitError::Segment(e) => write!(f, "segment lookup: {e}"),
        }
    }
}

impl std::error::Error for SplitError {}

/// Split `req` into per-segment sub-I/Os using `table`.
pub fn split_io(
    table: &SegmentTable,
    req: &IoRequest,
    block_size: u32,
) -> Result<Vec<SubIo>, SplitError> {
    if req.len == 0 {
        return Err(SplitError::Empty);
    }
    if !req.offset.is_multiple_of(block_size as u64) || !req.len.is_multiple_of(block_size) {
        return Err(SplitError::Misaligned);
    }
    let first = req.offset / block_size as u64;
    let count = (req.len / block_size) as u64;
    let mut out: Vec<SubIo> = Vec::with_capacity(1);
    for b in first..first + count {
        let entry = table.lookup(req.vd_id, b).map_err(SplitError::Segment)?;
        match out.last_mut() {
            Some(last) if last.segment_id == entry.segment_id => last.blocks.push(b),
            _ => out.push(SubIo {
                block_server: entry.block_server,
                segment_id: entry.segment_id,
                blocks: vec![b],
            }),
        }
    }
    Ok(out)
}

/// Split a raw block range into per-segment sub-I/Os — the pushdown
/// path's entry point, where the request arrives as `(first_block,
/// count)` instead of a byte extent. Each [`SubIo`] becomes one pushdown
/// part executed on its owning block server (or that server's DPU).
pub fn split_range(
    table: &SegmentTable,
    vd_id: u64,
    first_block: u64,
    count: u32,
) -> Result<Vec<SubIo>, SplitError> {
    if count == 0 {
        return Err(SplitError::Empty);
    }
    let mut out: Vec<SubIo> = Vec::with_capacity(1);
    for b in first_block..first_block + count as u64 {
        let entry = table.lookup(vd_id, b).map_err(SplitError::Segment)?;
        match out.last_mut() {
            Some(last) if last.segment_id == entry.segment_id => last.blocks.push(b),
            _ => out.push(SubIo {
                block_server: entry.block_server,
                segment_id: entry.segment_id,
                blocks: vec![b],
            }),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::SEGMENT_BLOCKS;

    const BS: u32 = 4096;

    fn table() -> SegmentTable {
        let mut t = SegmentTable::new(SEGMENT_BLOCKS);
        t.provision(1, 4 * SEGMENT_BLOCKS, |seg| (seg % 2) as u32);
        t
    }

    #[test]
    fn small_io_single_subio() {
        let t = table();
        let req = IoRequest {
            vd_id: 1,
            kind: IoKind::Write,
            offset: 0,
            len: 16 * 1024, // 4 blocks
        };
        let subs = split_io(&t, &req, BS).unwrap();
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].blocks, vec![0, 1, 2, 3]);
    }

    #[test]
    fn io_across_segment_boundary_splits() {
        let t = table();
        // Start 2 blocks before the end of segment 0.
        let req = IoRequest {
            vd_id: 1,
            kind: IoKind::Write,
            offset: (SEGMENT_BLOCKS - 2) * BS as u64,
            len: 4 * BS,
        };
        let subs = split_io(&t, &req, BS).unwrap();
        assert_eq!(subs.len(), 2);
        assert_eq!(subs[0].blocks.len(), 2);
        assert_eq!(subs[1].blocks.len(), 2);
        assert_ne!(subs[0].segment_id, subs[1].segment_id);
        assert_ne!(subs[0].block_server, subs[1].block_server);
    }

    #[test]
    fn splitting_is_rare_for_small_ios() {
        // The design claim (§4.5): with 2 MiB segments and 16 KiB I/Os at
        // random aligned offsets, < 1% of I/Os split.
        let t = table();
        let total = 1000;
        let mut split_count = 0;
        for i in 0..total {
            let offset = ((i * 37) % (4 * SEGMENT_BLOCKS - 4)) * BS as u64;
            let req = IoRequest {
                vd_id: 1,
                kind: IoKind::Read,
                offset,
                len: 4 * BS,
            };
            if split_io(&t, &req, BS).unwrap().len() > 1 {
                split_count += 1;
            }
        }
        assert!(split_count * 100 < total, "{split_count}/{total} split");
    }

    #[test]
    fn rejects_misaligned() {
        let t = table();
        let req = IoRequest {
            vd_id: 1,
            kind: IoKind::Write,
            offset: 100,
            len: BS,
        };
        assert_eq!(split_io(&t, &req, BS), Err(SplitError::Misaligned));
    }

    #[test]
    fn rejects_empty() {
        let t = table();
        let req = IoRequest {
            vd_id: 1,
            kind: IoKind::Write,
            offset: 0,
            len: 0,
        };
        assert_eq!(split_io(&t, &req, BS), Err(SplitError::Empty));
    }

    #[test]
    fn rejects_out_of_range() {
        let t = table();
        let req = IoRequest {
            vd_id: 1,
            kind: IoKind::Read,
            offset: 4 * SEGMENT_BLOCKS * BS as u64,
            len: BS,
        };
        assert!(matches!(
            split_io(&t, &req, BS),
            Err(SplitError::Segment(SegmentError::OutOfRange))
        ));
    }

    #[test]
    fn split_range_matches_split_io_on_the_same_extent() {
        let t = table();
        let req = IoRequest {
            vd_id: 1,
            kind: IoKind::Read,
            offset: (SEGMENT_BLOCKS - 2) * BS as u64,
            len: 6 * BS,
        };
        let via_io = split_io(&t, &req, BS).unwrap();
        let via_range = split_range(&t, 1, SEGMENT_BLOCKS - 2, 6).unwrap();
        assert_eq!(via_io, via_range);
        assert_eq!(via_range.len(), 2);
    }

    #[test]
    fn split_range_rejects_empty_and_out_of_range() {
        let t = table();
        assert_eq!(split_range(&t, 1, 0, 0), Err(SplitError::Empty));
        assert!(matches!(
            split_range(&t, 1, 4 * SEGMENT_BLOCKS, 1),
            Err(SplitError::Segment(SegmentError::OutOfRange))
        ));
    }

    #[test]
    fn large_io_block_lists_are_exact() {
        let t = table();
        let req = IoRequest {
            vd_id: 1,
            kind: IoKind::Write,
            offset: 0,
            len: (2 * SEGMENT_BLOCKS) as u32 * BS, // spans 2 full segments
        };
        let subs = split_io(&t, &req, BS).unwrap();
        assert_eq!(subs.len(), 2);
        let total: usize = subs.iter().map(|s| s.blocks.len()).sum();
        assert_eq!(total as u64, 2 * SEGMENT_BLOCKS);
    }
}
