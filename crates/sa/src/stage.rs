//! Write-path payload staging: guest buffer → per-block pooled payloads.
//!
//! After [`split_io`](crate::split_io) decides *where* each 4 KiB block of
//! a guest write goes, the SA still has to produce the per-packet payload
//! buffers and the per-block raw CRC32 the FPGA stamps into every SOLAR
//! header (§4.4/§4.5). This module does that carving through
//! [`ebs_wire::BlockPool`], so a steady write workload allocates no
//! payload memory at all: each block is copied once from the guest buffer
//! into a recycled pooled block, CRC'd with the dispatched hardware
//! kernel, and handed to the transport as a cheaply-cloneable
//! [`bytes::Bytes`] that recycles when the last clone (ACK'd retransmit
//! copy included) drops.

use bytes::Bytes;
use ebs_wire::BlockPool;

use crate::split::SubIo;

/// One staged block: a wire-ready payload plus the raw CRC the hardware
/// would stamp for it.
#[derive(Debug, Clone)]
pub struct StagedBlock {
    /// Virtual-disk block address.
    pub block_addr: u64,
    /// Pooled, immutable block payload (exactly one packet's worth).
    pub payload: Bytes,
    /// Raw (linear) CRC32 of the zero-padded block, as the FPGA computes
    /// it — the input to the §4.5 segment aggregation check.
    pub crc: u32,
}

/// Stage the blocks of one sub-I/O out of the guest payload.
///
/// `io_first_block` is the first block address of the *whole* guest I/O
/// (i.e. `offset / block_size`), which anchors each sub-I/O block address
/// to its byte range in `payload`. A payload shorter than the block run
/// yields zero-padded tail blocks, mirroring the fixed-width hardware
/// datapath.
///
/// # Panics
/// Panics if a block of `sub` lies before `io_first_block` (the sub-I/O
/// does not belong to this I/O).
pub fn stage_sub_io(
    pool: &BlockPool,
    sub: &SubIo,
    io_first_block: u64,
    payload: &[u8],
    block_size: usize,
) -> Vec<StagedBlock> {
    let mut out = Vec::with_capacity(sub.blocks.len());
    for &addr in &sub.blocks {
        assert!(addr >= io_first_block, "block {addr} outside this I/O");
        let rel = (addr - io_first_block) as usize * block_size;
        let lo = rel.min(payload.len());
        let hi = (rel + block_size).min(payload.len());
        let src = &payload[lo..hi];
        let mut buf = pool.take_zeroed();
        buf[..src.len()].copy_from_slice(src);
        let crc = ebs_crc::crc32_raw(&buf);
        out.push(StagedBlock {
            block_addr: addr,
            payload: buf.freeze().into_bytes(),
            crc,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::{SegmentTable, SEGMENT_BLOCKS};
    use crate::split::{split_io, IoKind, IoRequest};

    const BS: usize = 64; // small blocks keep the tests readable

    fn staged(payload: &[u8], offset: u64, len: u32) -> (BlockPool, Vec<StagedBlock>) {
        let mut t = SegmentTable::new(SEGMENT_BLOCKS);
        t.provision(1, 4 * SEGMENT_BLOCKS, |seg| (seg % 2) as u32);
        let req = IoRequest {
            vd_id: 1,
            kind: IoKind::Write,
            offset,
            len,
        };
        let subs = split_io(&t, &req, BS as u32).unwrap();
        let pool = BlockPool::new(BS, 64);
        let first = offset / BS as u64;
        let blocks = subs
            .iter()
            .flat_map(|s| stage_sub_io(&pool, s, first, payload, BS))
            .collect();
        (pool, blocks)
    }

    #[test]
    fn staging_preserves_data_and_addresses() {
        let payload: Vec<u8> = (0..4 * BS).map(|i| i as u8).collect();
        let (_pool, blocks) = staged(&payload, 2 * BS as u64, 4 * BS as u32);
        assert_eq!(blocks.len(), 4);
        for (i, b) in blocks.iter().enumerate() {
            assert_eq!(b.block_addr, 2 + i as u64);
            assert_eq!(&b.payload[..], &payload[i * BS..(i + 1) * BS]);
            assert_eq!(b.crc, ebs_crc::block_crc_raw(&b.payload, BS));
        }
    }

    #[test]
    fn short_payload_tail_is_zero_padded() {
        let payload = vec![0xEEu8; BS + 10];
        let (_pool, blocks) = staged(&payload, 0, 2 * BS as u32);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[1].payload.len(), BS);
        assert!(blocks[1].payload[10..].iter().all(|&x| x == 0));
        assert_eq!(blocks[1].crc, ebs_crc::block_crc_raw(&payload[BS..], BS));
    }

    #[test]
    fn steady_state_staging_recycles_blocks() {
        let payload = vec![7u8; 4 * BS];
        let mut t = SegmentTable::new(SEGMENT_BLOCKS);
        t.provision(1, SEGMENT_BLOCKS, |_| 0);
        let req = IoRequest {
            vd_id: 1,
            kind: IoKind::Write,
            offset: 0,
            len: 4 * BS as u32,
        };
        let subs = split_io(&t, &req, BS as u32).unwrap();
        let pool = BlockPool::new(BS, 64);
        for _ in 0..100 {
            let blocks = stage_sub_io(&pool, &subs[0], 0, &payload, BS);
            drop(blocks); // transport done with them → recycle
        }
        let stats = pool.stats();
        assert_eq!(stats.misses, 4, "only the cold round allocates");
        assert_eq!(stats.hits, 99 * 4);
    }

    #[test]
    fn aggregation_check_accepts_staged_blocks() {
        // End-to-end: staged payloads + CRCs satisfy the §4.5 checker.
        let payload: Vec<u8> = (0..8 * BS).map(|i| (i * 13) as u8).collect();
        let (_pool, blocks) = staged(&payload, 0, 8 * BS as u32);
        let mut chk = ebs_crc::SegmentChecker::new(BS);
        for b in &blocks {
            chk.add_block(&b.payload, b.crc);
        }
        assert_eq!(chk.verify_and_reset(), ebs_crc::SegmentVerdict::Ok);
    }
}
