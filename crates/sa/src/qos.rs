//! The QoS Table: per-virtual-disk dual token buckets (IOPS + bandwidth).
//!
//! Every I/O traverses the QoS table for admission control (§2.2) so one
//! noisy disk cannot exceed the service level its owner purchased. The
//! paper's latency figures explicitly *exclude* policy-induced queueing
//! (Fig. 6 caption), so admission returns the delay for the caller to
//! apply (and to subtract in measurements).

use ebs_sim::{Bandwidth, FxHashMap, SimDuration, SimTime};

/// Purchased service level of one virtual disk.
#[derive(Debug, Clone, Copy)]
pub struct QosSpec {
    /// I/O operations per second.
    pub iops: u64,
    /// Sustained bandwidth.
    pub bandwidth: Bandwidth,
    /// Burst allowance, in units of one second of the sustained rate.
    pub burst_secs: f64,
}

impl QosSpec {
    /// An effectively unlimited spec (for experiments where QoS must not
    /// bind).
    pub fn unlimited() -> Self {
        QosSpec {
            iops: u64::MAX / 2,
            bandwidth: Bandwidth::from_gbps(10_000),
            burst_secs: 1.0,
        }
    }
}

#[derive(Debug)]
struct Bucket {
    /// Tokens available at `refreshed`.
    tokens: f64,
    capacity: f64,
    rate_per_sec: f64,
    refreshed: SimTime,
}

impl Bucket {
    fn new(rate_per_sec: f64, capacity: f64) -> Self {
        Bucket {
            tokens: capacity,
            capacity,
            rate_per_sec,
            refreshed: SimTime::ZERO,
        }
    }

    fn refill(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.refreshed).as_secs_f64();
        self.tokens = (self.tokens + dt * self.rate_per_sec).min(self.capacity);
        self.refreshed = now;
    }

    /// Take `cost` tokens, going negative if needed; returns how long the
    /// caller must wait for the balance to be non-negative again.
    fn take(&mut self, now: SimTime, cost: f64) -> SimDuration {
        self.refill(now);
        self.tokens -= cost;
        if self.tokens >= 0.0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_secs_f64(-self.tokens / self.rate_per_sec)
        }
    }
}

#[derive(Debug)]
struct VdQos {
    iops: Bucket,
    bytes: Bucket,
}

/// The QoS table of one storage agent.
#[derive(Debug, Default)]
pub struct QosTable {
    disks: FxHashMap<u64, VdQos>,
    admitted_ios: u64,
    admitted_bytes: u64,
    throttled_ios: u64,
    total_delay: SimDuration,
}

impl QosTable {
    /// An empty table.
    pub fn new() -> Self {
        QosTable::default()
    }

    /// Register (or update) a disk's service level.
    pub fn set_spec(&mut self, vd_id: u64, spec: QosSpec) {
        let bps = spec.bandwidth.bytes_per_sec();
        self.disks.insert(
            vd_id,
            VdQos {
                iops: Bucket::new(spec.iops as f64, spec.iops as f64 * spec.burst_secs),
                bytes: Bucket::new(bps, bps * spec.burst_secs),
            },
        );
    }

    /// Number of registered disks (sizing input for the FPGA QoS table).
    pub fn disks_registered(&self) -> usize {
        self.disks.len()
    }

    /// Admit one I/O of `bytes` at `now`; returns the policy delay to
    /// apply before it proceeds (zero when within the purchased rate).
    /// Unregistered disks are admitted immediately (fail-open, like a
    /// missing table entry in hardware).
    pub fn admit(&mut self, now: SimTime, vd_id: u64, bytes: usize) -> SimDuration {
        self.admitted_ios += 1;
        self.admitted_bytes += bytes as u64;
        let Some(vd) = self.disks.get_mut(&vd_id) else {
            return SimDuration::ZERO;
        };
        let d1 = vd.iops.take(now, 1.0);
        let d2 = vd.bytes.take(now, bytes as f64);
        let delay = d1.max(d2);
        if delay > SimDuration::ZERO {
            self.throttled_ios += 1;
            self.total_delay += delay;
        }
        delay
    }

    /// I/Os that went through [`QosTable::admit`] (throttled or not).
    pub fn admitted_ios(&self) -> u64 {
        self.admitted_ios
    }

    /// Bytes that went through [`QosTable::admit`].
    pub fn admitted_bytes(&self) -> u64 {
        self.admitted_bytes
    }

    /// I/Os that got a non-zero policy delay.
    pub fn throttled_ios(&self) -> u64 {
        self.throttled_ios
    }

    /// Sum of policy delays handed out.
    pub fn total_delay(&self) -> SimDuration {
        self.total_delay
    }
}

impl ebs_obs::Sample for QosTable {
    /// Component `sa.qos`: admission counters and throttle pressure.
    fn sample_into(&self, _now: SimTime, m: &mut ebs_obs::Metrics) {
        m.gauge_set("sa.qos", "disks_registered", self.disks.len() as f64);
        m.counter_add("sa.qos", "admitted_ios", self.admitted_ios);
        m.counter_add("sa.qos", "admitted_bytes", self.admitted_bytes);
        m.counter_add("sa.qos", "throttled_ios", self.throttled_ios);
        m.counter_add("sa.qos", "total_delay_ns", self.total_delay.as_nanos());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_1k_iops_100mbs() -> QosSpec {
        QosSpec {
            iops: 1000,
            bandwidth: Bandwidth::from_mbps(800), // 100 MB/s
            burst_secs: 0.01,                     // small burst for tight tests
        }
    }

    #[test]
    fn within_rate_is_free() {
        let mut q = QosTable::new();
        q.set_spec(1, spec_1k_iops_100mbs());
        // 10 IOPS-worth over a second: never delayed.
        for i in 0..10 {
            let d = q.admit(SimTime::from_millis(i * 100), 1, 4096);
            assert_eq!(d, SimDuration::ZERO, "op {i}");
        }
    }

    #[test]
    fn iops_overload_delays() {
        let mut q = QosTable::new();
        q.set_spec(1, spec_1k_iops_100mbs());
        // Burst capacity is 10 ops; the 11th in the same instant waits.
        let now = SimTime::from_secs(1);
        let mut delayed = 0;
        for _ in 0..30 {
            if q.admit(now, 1, 512) > SimDuration::ZERO {
                delayed += 1;
            }
        }
        assert!(delayed >= 19, "{delayed} of 30 delayed");
    }

    #[test]
    fn bandwidth_overload_delays_proportionally() {
        let mut q = QosTable::new();
        q.set_spec(1, spec_1k_iops_100mbs());
        let now = SimTime::from_secs(1);
        // Burst = 1 MB. A 2 MB I/O overdraws by 1 MB -> 10 ms at 100 MB/s.
        let d = q.admit(now, 1, 2 * 1024 * 1024);
        let ms = d.as_secs_f64() * 1e3;
        assert!((9.0..12.0).contains(&ms), "delay {ms} ms");
    }

    #[test]
    fn tokens_refill_over_time() {
        let mut q = QosTable::new();
        q.set_spec(1, spec_1k_iops_100mbs());
        let t0 = SimTime::from_secs(1);
        // Drain the burst.
        for _ in 0..10 {
            q.admit(t0, 1, 4096);
        }
        assert!(q.admit(t0, 1, 4096) > SimDuration::ZERO);
        // After a second the bucket is full again.
        assert_eq!(q.admit(SimTime::from_secs(3), 1, 4096), SimDuration::ZERO);
    }

    #[test]
    fn unregistered_disks_fail_open() {
        let mut q = QosTable::new();
        assert_eq!(q.admit(SimTime::ZERO, 42, 1 << 20), SimDuration::ZERO);
    }

    #[test]
    fn disks_are_isolated() {
        let mut q = QosTable::new();
        q.set_spec(1, spec_1k_iops_100mbs());
        q.set_spec(2, spec_1k_iops_100mbs());
        let now = SimTime::from_secs(1);
        for _ in 0..30 {
            q.admit(now, 1, 4096); // hammer disk 1
        }
        assert_eq!(
            q.admit(now, 2, 4096),
            SimDuration::ZERO,
            "disk 2 unaffected"
        );
    }
}
