//! The Segment Table — the core data structure of storage virtualization
//! (§2.2, Fig. 2): it maps a virtual disk's block addresses to data
//! segments on physical disks in specific block servers.

use ebs_sim::FxHashMap;

/// Where a contiguous run of a virtual disk's blocks physically lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentEntry {
    /// Globally unique segment id.
    pub segment_id: u64,
    /// Index of the block server hosting the segment.
    pub block_server: u32,
    /// Block offset of the segment on the physical disk.
    pub physical_block: u64,
}

/// Errors from the segment table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentError {
    /// The virtual disk is not provisioned.
    UnknownDisk,
    /// The block address is beyond the disk's provisioned size.
    OutOfRange,
}

impl core::fmt::Display for SegmentError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SegmentError::UnknownDisk => write!(f, "unknown virtual disk"),
            SegmentError::OutOfRange => write!(f, "block address out of range"),
        }
    }
}

impl std::error::Error for SegmentError {}

/// The segment table of one storage agent.
///
/// Segments are large (2 MiB = 512 × 4 KiB blocks, §4.5) and contiguous in
/// LBA space precisely so that most small I/Os fall inside a single
/// segment and need no splitting.
#[derive(Debug, Clone)]
pub struct SegmentTable {
    segment_blocks: u64,
    disks: FxHashMap<u64, Vec<SegmentEntry>>,
    next_segment_id: u64,
}

/// Default segment size: 2 MiB in 4 KiB blocks.
pub const SEGMENT_BLOCKS: u64 = 512;

impl SegmentTable {
    /// An empty table with the given segment size in blocks.
    ///
    /// # Panics
    /// Panics if `segment_blocks` is zero.
    pub fn new(segment_blocks: u64) -> Self {
        assert!(segment_blocks > 0);
        SegmentTable {
            segment_blocks,
            disks: FxHashMap::default(),
            next_segment_id: 1,
        }
    }

    /// Segment size in blocks.
    pub fn segment_blocks(&self) -> u64 {
        self.segment_blocks
    }

    /// Provision a virtual disk of `size_blocks`, placing each segment on
    /// the block server chosen by `place(segment_index)` (the management
    /// plane's placement policy).
    pub fn provision(&mut self, vd_id: u64, size_blocks: u64, mut place: impl FnMut(u64) -> u32) {
        let n_segs = size_blocks.div_ceil(self.segment_blocks);
        let entries = (0..n_segs)
            .map(|i| {
                let id = self.next_segment_id;
                self.next_segment_id += 1;
                SegmentEntry {
                    segment_id: id,
                    block_server: place(i),
                    physical_block: i * self.segment_blocks,
                }
            })
            .collect();
        self.disks.insert(vd_id, entries);
    }

    /// Provisioned size of a disk in blocks (0 if unknown).
    pub fn disk_blocks(&self, vd_id: u64) -> u64 {
        self.disks
            .get(&vd_id)
            .map(|v| v.len() as u64 * self.segment_blocks)
            .unwrap_or(0)
    }

    /// Number of provisioned disks.
    pub fn disks_provisioned(&self) -> usize {
        self.disks.len()
    }

    /// Total segment entries (sizing input for the FPGA Block table).
    pub fn total_segments(&self) -> usize {
        self.disks.values().map(Vec::len).sum()
    }

    /// Look up the segment holding `block_addr` of `vd_id`.
    pub fn lookup(&self, vd_id: u64, block_addr: u64) -> Result<SegmentEntry, SegmentError> {
        let segs = self.disks.get(&vd_id).ok_or(SegmentError::UnknownDisk)?;
        let idx = (block_addr / self.segment_blocks) as usize;
        segs.get(idx).copied().ok_or(SegmentError::OutOfRange)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provision_and_lookup() {
        let mut t = SegmentTable::new(SEGMENT_BLOCKS);
        t.provision(1, 2048, |seg| (seg % 3) as u32); // 4 segments over 3 servers
        assert_eq!(t.disk_blocks(1), 2048);
        assert_eq!(t.total_segments(), 4);
        let e0 = t.lookup(1, 0).unwrap();
        let e1 = t.lookup(1, 511).unwrap();
        assert_eq!(e0.segment_id, e1.segment_id, "same segment");
        let e2 = t.lookup(1, 512).unwrap();
        assert_ne!(e0.segment_id, e2.segment_id);
        assert_eq!(e2.block_server, 1);
    }

    #[test]
    fn unknown_disk_errors() {
        let t = SegmentTable::new(SEGMENT_BLOCKS);
        assert_eq!(t.lookup(9, 0), Err(SegmentError::UnknownDisk));
    }

    #[test]
    fn out_of_range_errors() {
        let mut t = SegmentTable::new(SEGMENT_BLOCKS);
        t.provision(1, 512, |_| 0);
        assert!(t.lookup(1, 511).is_ok());
        assert_eq!(t.lookup(1, 512), Err(SegmentError::OutOfRange));
    }

    #[test]
    fn ragged_last_segment() {
        let mut t = SegmentTable::new(SEGMENT_BLOCKS);
        t.provision(1, 700, |_| 0); // 2 segments, second partial
        assert_eq!(t.total_segments(), 2);
        assert!(t.lookup(1, 699).is_ok());
    }

    #[test]
    fn segment_ids_unique_across_disks() {
        let mut t = SegmentTable::new(64);
        t.provision(1, 128, |_| 0);
        t.provision(2, 128, |_| 1);
        let a = t.lookup(1, 0).unwrap().segment_id;
        let b = t.lookup(2, 0).unwrap().segment_id;
        assert_ne!(a, b);
    }
}
