//! # ebs-sa — the storage agent (SA)
//!
//! The hypervisor function that converts guest storage operations into
//! network transactions (§2.2, Fig. 2). Its data plane is exactly the
//! logic that LUNA runs in software and SOLAR offloads into the FPGA
//! pipeline (`ebs-dpu` wraps these same structures as match-action
//! stages):
//!
//! * [`SegmentTable`] — virtual-disk block address → (segment, block
//!   server): the heart of storage virtualization;
//! * [`QosTable`] — per-disk dual token buckets (IOPS + bandwidth) for
//!   admission control;
//! * [`split_io`] — decompose a guest I/O into per-block, per-segment
//!   sub-I/Os (one RPC each);
//! * [`stage_sub_io`] — carve the guest payload into pooled, CRC-stamped
//!   per-block packet payloads (zero allocations in steady state).
//!
//! CRC and encryption — the other two heavy SA stages — live in `ebs-crc`
//! and `ebs-crypto`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod qos;
mod segment;
mod split;
mod stage;

pub use qos::{QosSpec, QosTable};
pub use segment::{SegmentEntry, SegmentError, SegmentTable, SEGMENT_BLOCKS};
pub use split::{split_io, split_range, IoKind, IoRequest, SplitError, SubIo};
pub use stage::{stage_sub_io, StagedBlock};

/// The EBS block size in bytes (4 KiB, matching SSD sectors).
pub const BLOCK_SIZE: u32 = 4096;
