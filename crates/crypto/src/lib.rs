//! # ebs-crypto — the SEC (storage encryption) module
//!
//! EBS optionally encrypts virtual-disk data before it leaves the compute
//! server (Fig. 2 / Fig. 12: the SEC stage sits between CRC and PktGen in
//! the SOLAR FPGA pipeline). This crate supplies that stage:
//!
//! * [`chacha20_xor`] — a from-scratch RFC 8439 ChaCha20 keystream XOR;
//! * [`SecEngine`] — per-virtual-disk keying with deterministic
//!   block-address-derived nonces, so any 4 KiB block can be encrypted or
//!   decrypted independently (a hard requirement of SOLAR's
//!   one-block-one-packet design: there is no stream context shared across
//!   packets).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chacha;

pub use chacha::chacha20_xor;

/// Per-virtual-disk encryption engine.
///
/// The nonce binds ciphertext to `(virtual disk, block address)` so blocks
/// can never be transplanted between addresses without detection, while
/// staying stateless per packet.
#[derive(Debug, Clone)]
pub struct SecEngine {
    key: [u8; 32],
    enabled: bool,
}

impl SecEngine {
    /// An engine holding the virtual disk's data key.
    pub fn new(key: [u8; 32]) -> Self {
        SecEngine { key, enabled: true }
    }

    /// A pass-through engine for unencrypted disks.
    pub fn disabled() -> Self {
        SecEngine {
            key: [0; 32],
            enabled: false,
        }
    }

    /// Whether this disk encrypts data.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn nonce(vd_id: u64, block_addr: u64) -> [u8; 12] {
        let mut n = [0u8; 12];
        n[..8].copy_from_slice(&block_addr.to_le_bytes());
        n[8..].copy_from_slice(&(vd_id as u32).to_le_bytes());
        n
    }

    /// Encrypt one block in place. A no-op for disabled engines.
    pub fn encrypt_block(&self, vd_id: u64, block_addr: u64, data: &mut [u8]) {
        if self.enabled {
            chacha20_xor(&self.key, 0, &Self::nonce(vd_id, block_addr), data);
        }
    }

    /// Decrypt one block in place (ChaCha20 is an involution under XOR).
    pub fn decrypt_block(&self, vd_id: u64, block_addr: u64, data: &mut [u8]) {
        self.encrypt_block(vd_id, block_addr, data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_per_block() {
        let eng = SecEngine::new([0x42; 32]);
        let original = vec![0xA5u8; 4096];
        let mut data = original.clone();
        eng.encrypt_block(1, 0x0F, &mut data);
        assert_ne!(data, original);
        eng.decrypt_block(1, 0x0F, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn blocks_encrypt_independently() {
        // The same plaintext at two addresses yields different ciphertexts
        // and each decrypts alone — no cross-packet state.
        let eng = SecEngine::new([0x42; 32]);
        let mut a = vec![1u8; 4096];
        let mut b = vec![1u8; 4096];
        eng.encrypt_block(1, 0, &mut a);
        eng.encrypt_block(1, 1, &mut b);
        assert_ne!(a, b);
        eng.decrypt_block(1, 1, &mut b);
        assert_eq!(b, vec![1u8; 4096]);
    }

    #[test]
    fn different_disks_differ() {
        let eng = SecEngine::new([0x42; 32]);
        let mut a = vec![1u8; 64];
        let mut b = vec![1u8; 64];
        eng.encrypt_block(1, 7, &mut a);
        eng.encrypt_block(2, 7, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn disabled_engine_is_identity() {
        let eng = SecEngine::disabled();
        let mut data = vec![9u8; 128];
        eng.encrypt_block(1, 1, &mut data);
        assert_eq!(data, vec![9u8; 128]);
        assert!(!eng.is_enabled());
    }
}
