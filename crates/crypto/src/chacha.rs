//! ChaCha20 stream cipher (RFC 8439), implemented from scratch.
//!
//! The paper's SEC module optionally encrypts block payloads inside the
//! FPGA pipeline (Fig. 12). The exact cipher Alibaba uses is not disclosed;
//! any symmetric cipher exercises the same pipeline stage, and ChaCha20 is
//! simple enough to implement dependency-free while being a real,
//! vector-testable algorithm.

/// The ChaCha20 block function state: 16 32-bit words.
type State = [u32; 16];

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(s: &mut State, a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

fn chacha20_block(key: &[u8; 32], counter: u32, nonce: &[u8; 12], out: &mut [u8; 64]) {
    let mut s: State = [0; 16];
    s[..4].copy_from_slice(&SIGMA);
    for i in 0..8 {
        s[4 + i] = u32::from_le_bytes(key[4 * i..4 * i + 4].try_into().unwrap());
    }
    s[12] = counter;
    for i in 0..3 {
        s[13 + i] = u32::from_le_bytes(nonce[4 * i..4 * i + 4].try_into().unwrap());
    }
    let init = s;
    for _ in 0..10 {
        quarter_round(&mut s, 0, 4, 8, 12);
        quarter_round(&mut s, 1, 5, 9, 13);
        quarter_round(&mut s, 2, 6, 10, 14);
        quarter_round(&mut s, 3, 7, 11, 15);
        quarter_round(&mut s, 0, 5, 10, 15);
        quarter_round(&mut s, 1, 6, 11, 12);
        quarter_round(&mut s, 2, 7, 8, 13);
        quarter_round(&mut s, 3, 4, 9, 14);
    }
    for i in 0..16 {
        let word = s[i].wrapping_add(init[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
    }
}

/// XOR `data` with the ChaCha20 keystream for `(key, nonce)` starting at
/// block `counter`. Applying it twice restores the plaintext.
pub fn chacha20_xor(key: &[u8; 32], counter: u32, nonce: &[u8; 12], data: &mut [u8]) {
    let mut block = [0u8; 64];
    let mut ctr = counter;
    for chunk in data.chunks_mut(64) {
        chacha20_block(key, ctr, nonce, &mut block);
        for (d, k) in chunk.iter_mut().zip(block.iter()) {
            *d ^= *k;
        }
        ctr = ctr.wrapping_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.3.2 test vector for the block function.
    #[test]
    fn rfc8439_block_vector() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let mut out = [0u8; 64];
        chacha20_block(&key, 1, &nonce, &mut out);
        let expect: [u8; 64] = [
            0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd, 0x1f, 0xa3, 0x20,
            0x71, 0xc4, 0xc7, 0xd1, 0xf4, 0xc7, 0x33, 0xc0, 0x68, 0x03, 0x04, 0x22, 0xaa, 0x9a,
            0xc3, 0xd4, 0x6c, 0x4e, 0xd2, 0x82, 0x64, 0x46, 0x07, 0x9f, 0xaa, 0x09, 0x14, 0xc2,
            0xd7, 0x05, 0xd9, 0x8b, 0x02, 0xa2, 0xb5, 0x12, 0x9c, 0xd1, 0xde, 0x16, 0x4e, 0xb9,
            0xcb, 0xd0, 0x83, 0xe8, 0xa2, 0x50, 0x3c, 0x4e,
        ];
        assert_eq!(out, expect);
    }

    /// RFC 8439 §2.4.2 encryption test vector.
    #[test]
    fn rfc8439_encrypt_vector() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let mut data = *b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        chacha20_xor(&key, 1, &nonce, &mut data);
        assert_eq!(
            &data[..16],
            &[
                0x6e, 0x2e, 0x35, 0x9a, 0x25, 0x68, 0xf9, 0x80, 0x41, 0xba, 0x07, 0x28, 0xdd, 0x0d,
                0x69, 0x81
            ]
        );
        // Decrypting restores the plaintext (keystream involution).
        chacha20_xor(&key, 1, &nonce, &mut data);
        assert!(data.starts_with(b"Ladies and Gentlemen"));
    }

    #[test]
    fn xor_roundtrips() {
        let key = [7u8; 32];
        let nonce = [3u8; 12];
        let original: Vec<u8> = (0..4096u32).map(|i| (i % 256) as u8).collect();
        let mut data = original.clone();
        chacha20_xor(&key, 0, &nonce, &mut data);
        assert_ne!(data, original);
        chacha20_xor(&key, 0, &nonce, &mut data);
        assert_eq!(data, original);
    }
}
