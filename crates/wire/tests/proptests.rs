//! Property tests: every wire codec round-trips arbitrary field values,
//! and decoders never panic on arbitrary bytes.

use bytes::BytesMut;
use ebs_wire::{
    EbsHeader, EbsOp, IntHop, IntStack, Ipv4Header, RpcFrame, RpcMethod, TcpFlags, TcpHeader,
    UdpHeader,
};
use proptest::prelude::*;

fn op_strategy() -> impl Strategy<Value = EbsOp> {
    prop::sample::select(vec![
        EbsOp::WriteBlock,
        EbsOp::WriteAck,
        EbsOp::ReadReq,
        EbsOp::ReadResp,
        EbsOp::Nack,
        EbsOp::Probe,
        EbsOp::ProbeAck,
        EbsOp::GapNack,
    ])
}

fn method_strategy() -> impl Strategy<Value = RpcMethod> {
    prop::sample::select(vec![
        RpcMethod::Write,
        RpcMethod::Read,
        RpcMethod::WriteResp,
        RpcMethod::ReadResp,
        RpcMethod::Error,
    ])
}

proptest! {
    #[test]
    fn ebs_header_roundtrip(
        op in op_strategy(),
        flags in any::<u8>(),
        path_id in any::<u8>(),
        vd_id in any::<u64>(),
        rpc_id in any::<u64>(),
        pkt_id in any::<u16>(),
        total in any::<u16>(),
        addr in any::<u64>(),
        len in any::<u32>(),
        crc in any::<u32>(),
        seq in any::<u32>(),
        seg in any::<u64>(),
    ) {
        let hdr = EbsHeader {
            version: EbsHeader::VERSION,
            op,
            flags,
            path_id,
            vd_id,
            rpc_id,
            pkt_id,
            total_pkts: total,
            block_addr: addr,
            len,
            payload_crc: crc,
            path_seq: seq,
            segment_id: seg,
        };
        let mut buf = BytesMut::new();
        hdr.encode(&mut buf);
        prop_assert_eq!(buf.len(), EbsHeader::LEN);
        prop_assert_eq!(EbsHeader::decode(&mut buf.freeze()).unwrap(), hdr);
    }

    #[test]
    fn ipv4_roundtrip(src in any::<u32>(), dst in any::<u32>(),
                      proto in any::<u8>(), ttl in any::<u8>(),
                      len in any::<u16>(), tos in any::<u8>()) {
        let hdr = Ipv4Header { src, dst, protocol: proto, ttl, total_len: len, tos };
        let mut buf = BytesMut::new();
        hdr.encode(&mut buf);
        prop_assert_eq!(Ipv4Header::decode(&mut buf.freeze()).unwrap(), hdr);
    }

    #[test]
    fn udp_tcp_roundtrip(sp in any::<u16>(), dp in any::<u16>(),
                         seq in any::<u32>(), ack in any::<u32>(),
                         win in any::<u16>(), fl in 0u8..32) {
        let u = UdpHeader { src_port: sp, dst_port: dp, len: 8 + (seq as u16 % 1000) };
        let mut buf = BytesMut::new();
        u.encode(&mut buf);
        prop_assert_eq!(UdpHeader::decode(&mut buf.freeze()).unwrap(), u);

        let t = TcpHeader { src_port: sp, dst_port: dp, seq, ack, flags: TcpFlags(fl), window: win };
        let mut buf = BytesMut::new();
        t.encode(&mut buf);
        prop_assert_eq!(TcpHeader::decode(&mut buf.freeze()).unwrap(), t);
    }

    #[test]
    fn int_stack_roundtrip(hops in proptest::collection::vec(
        (any::<u32>(), any::<u32>(), any::<u64>(), any::<u64>(), any::<u32>()), 0..15))
    {
        let mut stack = IntStack::new();
        for (d, q, tx, ts, mbps) in hops {
            stack.push(IntHop { device_id: d, queue_bytes: q, tx_bytes: tx, ts_ns: ts, link_mbps: mbps });
        }
        let mut buf = BytesMut::new();
        stack.encode(&mut buf);
        prop_assert_eq!(IntStack::decode(&mut buf.freeze()).unwrap(), stack);
    }

    #[test]
    fn rpc_frame_roundtrip(
        rpc_id in any::<u64>(),
        method in method_strategy(),
        vd in any::<u64>(),
        offset in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        let frame = RpcFrame {
            rpc_id,
            method,
            vd_id: vd,
            offset,
            len: payload.len() as u32,
            payload: bytes::Bytes::from(payload),
        };
        let mut dec = ebs_wire::FrameDecoder::new();
        dec.extend(&frame.to_bytes());
        prop_assert_eq!(dec.next_frame().unwrap().unwrap(), frame);
    }

    /// Decoders never panic on garbage (they return errors instead).
    #[test]
    fn decoders_are_total(junk in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = EbsHeader::decode(&mut &junk[..]);
        let _ = Ipv4Header::decode(&mut &junk[..]);
        let _ = TcpHeader::decode(&mut &junk[..]);
        let _ = UdpHeader::decode(&mut &junk[..]);
        let _ = IntStack::decode(&mut &junk[..]);
        let mut dec = ebs_wire::FrameDecoder::new();
        dec.extend(&junk);
        let _ = dec.next_frame();
    }

    /// Slab handle recycling never aliases: a handle freed by `take` can
    /// never observe the slot's next occupant, and every live handle
    /// observes exactly the value it was issued for — under arbitrary
    /// interleavings of inserts and takes (including stale double-takes,
    /// which must not evict the recycled value). This is the invariant
    /// the fabric's packet arena rests on.
    #[test]
    #[cfg_attr(miri, ignore)] // covered by the deterministic slab unit tests under Miri
    fn slab_recycling_never_aliases_live_handles(
        ops in proptest::collection::vec((any::<bool>(), any::<prop::sample::Index>()), 1..200),
    ) {
        let mut slab: ebs_wire::slab::Slab<u64> = ebs_wire::slab::Slab::new();
        let mut live: Vec<(ebs_wire::slab::Handle, u64)> = Vec::new();
        let mut dead: Vec<ebs_wire::slab::Handle> = Vec::new();
        let mut next_val = 0u64;
        for (is_insert, idx) in ops {
            if is_insert || live.is_empty() {
                let h = slab.insert(next_val);
                // A fresh handle must not collide with any handle ever
                // issued (slot reuse must come with a new generation).
                for (lh, _) in &live {
                    prop_assert_ne!(*lh, h);
                }
                for dh in &dead {
                    prop_assert_ne!(*dh, h);
                }
                live.push((h, next_val));
                next_val += 1;
            } else {
                let (h, v) = live.swap_remove(idx.index(live.len()));
                prop_assert_eq!(slab.take(h), Some(v));
                prop_assert_eq!(slab.take(h), None, "double take is a no-op");
                dead.push(h);
            }
            // Every live handle sees its own value; every dead handle
            // sees nothing, no matter how its slot was recycled.
            for (lh, lv) in &live {
                prop_assert_eq!(slab.get(*lh), Some(lv));
            }
            for dh in &dead {
                prop_assert_eq!(slab.get(*dh), None);
            }
            prop_assert_eq!(slab.len(), live.len());
        }
    }
}
